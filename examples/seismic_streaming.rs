//! Seismic-imaging scenario: streaming compression of RTM snapshots.
//!
//! ```bash
//! cargo run --release --example seismic_streaming
//! ```
//!
//! Reverse-time-migration (the paper's RTM dataset) writes a long sequence of
//! wavefield snapshots that must be compressed on the fly and read back later
//! in reverse order. Latency matters, so this example uses the
//! throughput-preferred TP mode for the in-loop compression, measures the
//! sustained throughput over a sequence of snapshots, and verifies that every
//! snapshot decompresses within its bound.

use std::time::Instant;
use szhi::prelude::*;

fn main() {
    let dims = Dims::d3(96, 96, 48);
    let n_snapshots = 8;
    let rel_eb = 1e-3;
    let cfg = SzhiConfig::new(ErrorBound::Relative(rel_eb)).with_mode(PipelineMode::Tp);

    println!(
        "streaming {n_snapshots} RTM-like snapshots of {} each\n",
        dims
    );
    let mut archived: Vec<Vec<u8>> = Vec::new();
    let mut originals = Vec::new();
    let mut total_in = 0usize;
    let mut total_out = 0usize;
    let start = Instant::now();
    for step in 0..n_snapshots {
        // Each time step is a different wavefield snapshot (seeded by step).
        let snapshot = DatasetKind::Rtm.generate(dims, 1000 + step as u64);
        let compressed = compress(&snapshot, &cfg).expect("compress");
        total_in += dims.nbytes_f32();
        total_out += compressed.len();
        archived.push(compressed);
        originals.push(snapshot);
    }
    let elapsed = start.elapsed();
    println!(
        "compressed {:.1} MiB into {:.1} MiB ({:.1}x) at {:.2} GiB/s end-to-end (including synthesis)",
        total_in as f64 / (1 << 20) as f64,
        total_out as f64 / (1 << 20) as f64,
        total_in as f64 / total_out as f64,
        total_in as f64 / (1u64 << 30) as f64 / elapsed.as_secs_f64()
    );

    // RTM consumes the snapshots in reverse order during the imaging sweep.
    for (step, (bytes, original)) in archived.iter().zip(&originals).enumerate().rev() {
        let restored = decompress(bytes).expect("decompress");
        let q = QualityReport::compare(original, &restored);
        let abs_eb = rel_eb * original.value_range() as f64;
        assert!(
            q.max_abs_error <= abs_eb + 1e-9,
            "snapshot {step} violated its bound"
        );
        if step == 0 || step == n_snapshots - 1 {
            println!(
                "snapshot {step}: PSNR {:.1} dB, max error {:.3e} ≤ bound {:.3e}",
                q.psnr, q.max_abs_error, abs_eb
            );
        }
    }
    println!("all snapshots verified within the error bound (reverse replay order).");
}
