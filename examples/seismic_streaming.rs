//! Seismic-imaging scenario: streaming compression of RTM snapshots to
//! real files with bounded memory.
//!
//! ```bash
//! cargo run --release --example seismic_streaming
//! ```
//!
//! Reverse-time-migration (the paper's RTM dataset) writes a long sequence
//! of wavefield snapshots that must be compressed on the fly and read back
//! later in reverse order. This example streams each snapshot through the
//! v4 [`StreamSink`] straight onto a `File` — neither the uncompressed
//! snapshot nor the compressed stream ever exists in memory in one piece:
//! each chunk body hits the disk the moment it is encoded, and the chunk
//! table plus trailer land at `finish()`. The archive is then replayed in
//! reverse through the seek-based [`StreamSource`], which locates each
//! file's chunk table via its trailer and lets the CRC32 table and chunk
//! checksums vouch for the archive's integrity, one chunk in memory at a
//! time.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use std::time::Instant;
use szhi::prelude::*;

fn archive_path(dir: &std::path::Path, step: usize) -> PathBuf {
    dir.join(format!("rtm_snapshot_{step:03}.szhi"))
}

fn main() {
    let dims = Dims::d3(96, 96, 48);
    let n_snapshots = 8;
    // Each time step is a different wavefield snapshot (seeded by step).
    let originals: Vec<Grid<f32>> = (0..n_snapshots)
        .map(|step| DatasetKind::Rtm.generate(dims, 1000 + step as u64))
        .collect();
    // Streaming can't resolve a value-range-relative bound (the sink never
    // sees the whole field), so derive the absolute bound once from the
    // first snapshot's dynamic range — what a real acquisition pipeline does
    // with its instrument precision.
    let abs_eb = 1e-3 * originals[0].value_range() as f64;
    // A streaming-safe configuration: absolute bound, no whole-field
    // auto-tune, 48³-aligned chunks, per-chunk pipeline selection.
    let cfg = SzhiConfig::new(ErrorBound::Absolute(abs_eb))
        .with_auto_tune(false)
        .with_chunk_span([48, 48, 48])
        .with_mode_tuning(ModeTuning::PerChunk);

    let dir = std::env::temp_dir().join(format!("szhi_seismic_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create archive directory");
    println!(
        "streaming {n_snapshots} RTM-like snapshots of {dims} each to {}\n",
        dir.display()
    );

    let mut total_in = 0usize;
    let mut total_out = 0u64;
    let start = Instant::now();
    for (step, snapshot) in originals.iter().enumerate() {
        // Feed the sink one chunk at a time, as a solver would emit them;
        // every chunk body goes to the file immediately.
        let file = BufWriter::new(File::create(archive_path(&dir, step)).expect("create archive"));
        let mut sink = StreamSink::new(file, dims, &cfg).expect("streaming config");
        while let Some(region) = sink.next_chunk_region() {
            let chunk_dims = sink.plan().chunk_dims(sink.next_index());
            let chunk = Grid::from_vec(chunk_dims, snapshot.extract(&region));
            sink.push_chunk(&chunk).expect("push");
        }
        let (_, stats) = sink.finish_with_stats().expect("finish");
        total_in += dims.nbytes_f32();
        total_out += stats.compressed_bytes as u64;
    }
    let elapsed = start.elapsed();
    println!(
        "compressed {:.1} MiB into {:.1} MiB ({:.1}x) at {:.2} GiB/s sustained",
        total_in as f64 / (1 << 20) as f64,
        total_out as f64 / (1 << 20) as f64,
        total_in as f64 / total_out as f64,
        total_in as f64 / (1u64 << 30) as f64 / elapsed.as_secs_f64()
    );

    // RTM consumes the snapshots in reverse order during the imaging sweep;
    // the seek-based source checks the table CRC32 at open and every
    // chunk's CRC32 before decoding it — one chunk in memory at a time.
    for (step, original) in originals.iter().enumerate().rev() {
        let file = BufReader::new(File::open(archive_path(&dir, step)).expect("open archive"));
        let mut source = StreamSource::new(file).expect("parse trailer + table");
        let mut restored = Grid::zeros(dims);
        let mut modes = std::collections::BTreeSet::new();
        for i in 0..source.chunk_count() {
            modes.insert(source.chunk_pipeline(i).name());
        }
        for chunk in source.chunks() {
            let (region, sub) = chunk.expect("chunk decode");
            restored.insert(&region, sub.as_slice());
        }
        let q = QualityReport::compare(original, &restored);
        assert!(
            q.max_abs_error <= abs_eb + 1e-9,
            "snapshot {step} violated its bound"
        );
        if step == 0 || step == n_snapshots - 1 {
            println!(
                "snapshot {step}: PSNR {:.1} dB, max error {:.3e} ≤ bound {:.3e}, chunk modes {:?}",
                q.psnr, q.max_abs_error, abs_eb, modes
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    println!("all snapshots verified within the error bound (reverse replay order).");
}
