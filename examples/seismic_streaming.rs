//! Seismic-imaging scenario: streaming compression of RTM snapshots.
//!
//! ```bash
//! cargo run --release --example seismic_streaming
//! ```
//!
//! Reverse-time-migration (the paper's RTM dataset) writes a long sequence of
//! wavefield snapshots that must be compressed on the fly and read back later
//! in reverse order. This example streams each snapshot through the v3
//! [`StreamWriter`] chunk by chunk — the full snapshot is never handed to the
//! compressor in one piece — with per-chunk pipeline-mode tuning, measures
//! the sustained throughput, and replays the archive in reverse through the
//! lazy [`StreamReader`], letting its CRC32 chunk checksums vouch for the
//! archive's integrity.

use std::time::Instant;
use szhi::prelude::*;

fn main() {
    let dims = Dims::d3(96, 96, 48);
    let n_snapshots = 8;
    // Each time step is a different wavefield snapshot (seeded by step).
    let originals: Vec<Grid<f32>> = (0..n_snapshots)
        .map(|step| DatasetKind::Rtm.generate(dims, 1000 + step as u64))
        .collect();
    // Streaming can't resolve a value-range-relative bound (the writer never
    // sees the whole field), so derive the absolute bound once from the
    // first snapshot's dynamic range — what a real acquisition pipeline does
    // with its instrument precision.
    let abs_eb = 1e-3 * originals[0].value_range() as f64;
    // A streaming-safe configuration: absolute bound, no whole-field
    // auto-tune, 48³-aligned chunks, per-chunk pipeline selection.
    let cfg = SzhiConfig::new(ErrorBound::Absolute(abs_eb))
        .with_auto_tune(false)
        .with_chunk_span([48, 48, 48])
        .with_mode_tuning(ModeTuning::PerChunk);

    println!("streaming {n_snapshots} RTM-like snapshots of {dims} each\n");
    let mut archived: Vec<Vec<u8>> = Vec::new();
    let mut total_in = 0usize;
    let mut total_out = 0usize;
    let start = Instant::now();
    for snapshot in &originals {
        // Feed the writer one chunk at a time, as a solver would emit them.
        let mut writer = StreamWriter::new(dims, &cfg).expect("streaming config");
        while let Some(region) = writer.next_chunk_region() {
            let chunk_dims = writer.plan().chunk_dims(writer.next_index());
            let chunk = Grid::from_vec(chunk_dims, snapshot.extract(&region));
            writer.push_chunk(&chunk).expect("push");
        }
        let compressed = writer.finish().expect("finish");
        total_in += dims.nbytes_f32();
        total_out += compressed.len();
        archived.push(compressed);
    }
    let elapsed = start.elapsed();
    println!(
        "compressed {:.1} MiB into {:.1} MiB ({:.1}x) at {:.2} GiB/s sustained",
        total_in as f64 / (1 << 20) as f64,
        total_out as f64 / (1 << 20) as f64,
        total_in as f64 / total_out as f64,
        total_in as f64 / (1u64 << 30) as f64 / elapsed.as_secs_f64()
    );

    // RTM consumes the snapshots in reverse order during the imaging sweep;
    // the lazy reader checks every chunk's CRC32 before decoding it.
    for (step, (bytes, original)) in archived.iter().zip(&originals).enumerate().rev() {
        let reader = StreamReader::new(bytes).expect("parse");
        let mut restored = Grid::zeros(dims);
        for chunk in reader.chunks() {
            let (region, sub) = chunk.expect("chunk decode");
            restored.insert(&region, sub.as_slice());
        }
        let q = QualityReport::compare(original, &restored);
        assert!(
            q.max_abs_error <= abs_eb + 1e-9,
            "snapshot {step} violated its bound"
        );
        if step == 0 || step == n_snapshots - 1 {
            let modes: std::collections::BTreeSet<&str> = (0..reader.chunk_count())
                .map(|i| reader.chunk_pipeline(i).name())
                .collect();
            println!(
                "snapshot {step}: PSNR {:.1} dB, max error {:.3e} ≤ bound {:.3e}, chunk modes {:?}",
                q.psnr, q.max_abs_error, abs_eb, modes
            );
        }
    }
    println!("all snapshots verified within the error bound (reverse replay order).");
}
