//! Climate-archive scenario: sweep error bounds on a 2D CESM-like field.
//!
//! ```bash
//! cargo run --release --example climate_archive
//! ```
//!
//! Climate model output (the paper's CESM-ATM dataset) is archived for
//! decades, so archives care about the ratio/fidelity trade-off: this example
//! compresses a 2D atmosphere-like field at several error bounds, prints the
//! resulting storage budget per snapshot, and shows how the two cuSZ-Hi modes
//! compare against the Lorenzo-based cuSZ-L baseline that a GPU workflow
//! might otherwise use.

use szhi::baselines::{Compressor, CuszL, SzhiCr, SzhiTp};
use szhi::prelude::*;

fn main() {
    // A 450×900 atmospheric field (a 1:4-scale CESM-ATM snapshot).
    let field = DatasetKind::CesmAtm.generate(Dims::d2(450, 900), 7);
    let snapshot_bytes = field.dims().nbytes_f32();
    println!(
        "snapshot: {} ({} KiB)\n",
        field.dims(),
        snapshot_bytes / 1024
    );

    let compressors: Vec<Box<dyn Compressor>> = vec![
        Box::new(SzhiCr),
        Box::new(SzhiTp),
        Box::new(CuszL::default()),
    ];

    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10}",
        "compressor", "rel. eb", "ratio", "KiB/snapshot", "PSNR dB"
    );
    for rel_eb in [1e-2, 1e-3, 1e-4] {
        for c in &compressors {
            let bytes = c
                .compress(&field, ErrorBound::Relative(rel_eb))
                .expect("compress");
            let restored = c.decompress(&bytes).expect("decompress");
            let q = QualityReport::compare(&field, &restored);
            // The dual-quantization baselines (cuSZ-L) reconstruct through a
            // single f64→f32 cast, adding up to |value|·f32::EPSILON on top
            // of the bound (derived in tests/end_to_end.rs::assert_bound);
            // at tight bounds that cast noise dominates, so allow it here.
            let max_abs = field.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs())) as f64;
            let slack = max_abs * f32::EPSILON as f64 + 1e-12;
            assert!(
                q.max_abs_error <= rel_eb * field.value_range() as f64 + slack,
                "{} violated the bound at eb {rel_eb:e}: {} > {}",
                c.name(),
                q.max_abs_error,
                rel_eb * field.value_range() as f64
            );
            println!(
                "{:<12} {:>10.0e} {:>12.1} {:>12.1} {:>10.1}",
                c.name(),
                rel_eb,
                snapshot_bytes as f64 / bytes.len() as f64,
                bytes.len() as f64 / 1024.0,
                q.psnr
            );
        }
        println!();
    }
    println!(
        "A year of daily snapshots at eb=1e-3 fits in roughly the space of a week of raw output."
    );
}
