//! Quickstart: compress and decompress a 3D scientific field with cuSZ-Hi.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a small cosmology-like field, compresses it in both CR and TP
//! modes under a value-range-relative error bound of 1e-3, verifies the
//! point-wise bound and prints the resulting ratios.

use szhi::prelude::*;

fn main() {
    // 1. A 64³ Nyx-like (cosmological density) field.
    let dims = Dims::d3(64, 64, 64);
    let field = DatasetKind::Nyx.generate(dims, 2024);
    let abs_eb = 1e-3 * field.value_range() as f64;
    println!(
        "input: {} points ({} KiB), value range {:.3e}",
        field.len(),
        dims.nbytes_f32() / 1024,
        field.value_range()
    );

    for mode in [PipelineMode::Cr, PipelineMode::Tp] {
        // 2. Compress with a value-range-relative error bound of 1e-3.
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3)).with_mode(mode);
        let compressed = compress(&field, &cfg).expect("compression failed");

        // 3. Decompress and verify.
        let restored = decompress(&compressed).expect("decompression failed");
        let report = QualityReport::compare(&field, &restored);
        assert!(
            report.max_abs_error <= abs_eb + 1e-12,
            "error bound violated"
        );

        let ratio = dims.nbytes_f32() as f64 / compressed.len() as f64;
        println!(
            "cuSZ-Hi-{}: {} bytes, compression ratio {:.1}x, PSNR {:.1} dB, max error {:.3e} (bound {:.3e})",
            mode.name(),
            compressed.len(),
            ratio,
            report.psnr,
            report.max_abs_error,
            abs_eb
        );
    }
}
