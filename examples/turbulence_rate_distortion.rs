//! Turbulence post-analysis scenario: rate-distortion comparison on a
//! JHTDB-like field.
//!
//! ```bash
//! cargo run --release --example turbulence_rate_distortion
//! ```
//!
//! Turbulence snapshots (the paper's motivating 128-TB use case) are the
//! hardest of the six dataset families — rough, multi-scale fields — and are
//! where high-ratio compressors separate from throughput-oriented ones. This
//! example sweeps the error bound for every error-bounded compressor in the
//! workspace and prints the (bitrate, PSNR) points of Figure 8 for a
//! turbulence-like field, so the crossovers between compressors can be
//! inspected directly.

use szhi::prelude::*;

fn main() {
    let field = DatasetKind::Jhtdb.generate(Dims::d3(96, 96, 96), 11);
    println!(
        "field: {} ({} MiB)\n",
        field.dims(),
        field.dims().nbytes_f32() >> 20
    );

    let compressors = szhi::baselines::table4_compressors();
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "compressor", "rel. eb", "bitrate", "PSNR dB", "ratio"
    );
    for c in &compressors {
        for rel_eb in [1e-1, 1e-2, 1e-3, 1e-4] {
            let bytes = match c.compress(&field, ErrorBound::Relative(rel_eb)) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("{} failed at {rel_eb:e}: {e}", c.name());
                    continue;
                }
            };
            let restored = c.decompress(&bytes).expect("decompress");
            let q = QualityReport::compare(&field, &restored);
            let bitrate = bytes.len() as f64 * 8.0 / field.len() as f64;
            println!(
                "{:<12} {:>10.0e} {:>10.3} {:>10.1} {:>10.1}",
                c.name(),
                rel_eb,
                bitrate,
                q.psnr,
                field.dims().nbytes_f32() as f64 / bytes.len() as f64
            );
        }
        println!();
    }
    println!(
        "Lower bitrate at equal PSNR is better; cuSZ-Hi-CR should dominate the low-bitrate region."
    );
}
