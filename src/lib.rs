//! # szhi — a Rust reproduction of cuSZ-Hi
//!
//! `szhi` is an umbrella crate re-exporting the public API of the workspace
//! that reproduces the SC 2025 paper *"Boosting Scientific Error-Bounded
//! Lossy Compression through Optimized Synergistic Lossy-Lossless
//! Orchestration"* (cuSZ-Hi).
//!
//! The primary entry points are [`szhi_core::compress`] and
//! [`szhi_core::decompress`] (re-exported here), which implement the
//! cuSZ-Hi compressor with its two lossless pipelines (`CR` and `TP` modes).
//! The [`baselines`] module provides from-scratch re-implementations of the
//! compressors the paper compares against, and [`datagen`] provides the
//! synthetic scientific field generators used by the experiment harness.
//!
//! ```
//! use szhi::prelude::*;
//!
//! // Generate a small turbulence-like 3D field.
//! let field = szhi::datagen::DatasetKind::Jhtdb.generate(szhi::ndgrid::Dims::d3(32, 32, 32), 7);
//! // Compress with a value-range-relative error bound of 1e-3 (CR mode).
//! let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3)).with_mode(PipelineMode::Cr);
//! let compressed = compress(&field, &cfg).unwrap();
//! let restored = decompress(&compressed).unwrap();
//! assert_eq!(restored.dims(), field.dims());
//! ```
#![forbid(unsafe_code)]

pub use szhi_baselines as baselines;
pub use szhi_codec as codec;
pub use szhi_core as core;
pub use szhi_datagen as datagen;
pub use szhi_metrics as metrics;
pub use szhi_ndgrid as ndgrid;
pub use szhi_predictor as predictor;
pub use szhi_tuner as tuner;

pub use szhi_core::{compress, decompress};

/// Commonly used items for working with the compressor.
pub mod prelude {
    pub use szhi_baselines::Compressor;
    pub use szhi_core::{
        compress, decompress, ErrorBound, ForwardSource, JobHandle, JobProgress, JobService,
        ModeTuning, PipelineMode, StreamReader, StreamSink, StreamSource, StreamWriter, SzhiConfig,
    };
    pub use szhi_datagen::DatasetKind;
    pub use szhi_metrics::QualityReport;
    pub use szhi_ndgrid::{Dims, Grid};
}
