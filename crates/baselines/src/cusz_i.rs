//! cuSZ-I and cuSZ-IB: the interpolation modes of cuSZ.
//!
//! cuSZ-I uses the original interpolation configuration (anchor stride 8,
//! anisotropic 33×9×9 tiles, dimension-sequence cubic interpolation) with
//! plain Huffman encoding of the quantization codes. cuSZ-IB appends the
//! NVIDIA-Bitcomp lossless pass — represented here by the Bitcomp simulator,
//! see `DESIGN.md` — which is what made cuSZ-I(B) the strongest
//! high-ratio GPU baseline before cuSZ-Hi.

use crate::stream::{read_header, write_header};
use crate::Compressor;
use szhi_codec::bitio::{put_f32, put_u64, put_u8};
use szhi_codec::PipelineSpec;
use szhi_core::{ErrorBound, SzhiError};
use szhi_ndgrid::Grid;
use szhi_predictor::{InterpConfig, InterpOutput, InterpPredictor, Outlier};

const MAGIC: &[u8; 4] = b"CZI1";

fn compress_interp(
    data: &Grid<f32>,
    eb: ErrorBound,
    pipeline: PipelineSpec,
    use_bitcomp_flag: u8,
) -> Result<Vec<u8>, SzhiError> {
    if data.is_empty() {
        return Err(SzhiError::InvalidInput("empty field".into()));
    }
    let abs_eb = eb.absolute(data.value_range() as f64);
    let cfg = InterpConfig::cusz_i();
    let predictor = InterpPredictor::new(cfg).expect("the cuSZ-I configuration is valid");
    let out = predictor.compress(data, abs_eb);

    let mut bytes = Vec::new();
    write_header(&mut bytes, MAGIC, data.dims(), abs_eb);
    put_u8(&mut bytes, use_bitcomp_flag);
    put_u64(&mut bytes, out.anchors.len() as u64);
    for &a in &out.anchors {
        put_f32(&mut bytes, a);
    }
    put_u64(&mut bytes, out.outliers.len() as u64);
    for o in &out.outliers {
        put_u64(&mut bytes, o.index);
        put_f32(&mut bytes, o.value);
    }
    let payload = pipeline.build().encode(&out.codes);
    put_u64(&mut bytes, payload.len() as u64);
    bytes.extend_from_slice(&payload);
    Ok(bytes)
}

fn decompress_interp(bytes: &[u8], name: &str) -> Result<Grid<f32>, SzhiError> {
    let (mut cur, dims, abs_eb) = read_header(bytes, MAGIC, name)?;
    let bitcomp = cur.get_u8().map_err(SzhiError::from)?;
    let pipeline = if bitcomp != 0 {
        PipelineSpec::HfBitcomp
    } else {
        PipelineSpec::Hf
    };
    let n_anchors = cur.get_u64().map_err(SzhiError::from)? as usize;
    let mut anchors = Vec::with_capacity(n_anchors);
    for _ in 0..n_anchors {
        anchors.push(cur.get_f32().map_err(SzhiError::from)?);
    }
    let n_outliers = cur.get_u64().map_err(SzhiError::from)? as usize;
    let mut outliers = Vec::with_capacity(n_outliers);
    for _ in 0..n_outliers {
        let index = cur.get_u64().map_err(SzhiError::from)?;
        let value = cur.get_f32().map_err(SzhiError::from)?;
        outliers.push(Outlier { index, value });
    }
    let payload_len = cur.get_u64().map_err(SzhiError::from)? as usize;
    let payload = cur.take(payload_len).map_err(SzhiError::from)?;
    let codes = pipeline.build().decode(payload)?;
    if codes.len() != dims.len() {
        return Err(SzhiError::InvalidStream(format!(
            "{name}: decoded {} codes for {} points",
            codes.len(),
            dims.len()
        )));
    }
    // The predictor owns the consistency checks (anchor count, outlier
    // completeness) and reports violations as typed errors.
    let cfg = InterpConfig::cusz_i();
    let predictor = InterpPredictor::new(cfg).expect("the cuSZ-I configuration is valid");
    predictor
        .decompress(
            dims,
            abs_eb,
            &InterpOutput {
                anchors,
                codes,
                outliers,
            },
        )
        .map_err(|e| SzhiError::InvalidStream(format!("{name}: {e}")))
}

/// The cuSZ-I baseline (interpolation predictor + Huffman).
#[derive(Debug, Default, Clone, Copy)]
pub struct CuszI;

impl Compressor for CuszI {
    fn name(&self) -> &'static str {
        "cuSZ-I"
    }
    fn compress(&self, data: &Grid<f32>, eb: ErrorBound) -> Result<Vec<u8>, SzhiError> {
        compress_interp(data, eb, PipelineSpec::Hf, 0)
    }
    fn decompress(&self, bytes: &[u8]) -> Result<Grid<f32>, SzhiError> {
        decompress_interp(bytes, "cuSZ-I")
    }
}

/// The cuSZ-IB baseline (interpolation predictor + Huffman + Bitcomp-sim).
#[derive(Debug, Default, Clone, Copy)]
pub struct CuszIb;

impl Compressor for CuszIb {
    fn name(&self) -> &'static str {
        "cuSZ-IB"
    }
    fn compress(&self, data: &Grid<f32>, eb: ErrorBound) -> Result<Vec<u8>, SzhiError> {
        compress_interp(data, eb, PipelineSpec::HfBitcomp, 1)
    }
    fn decompress(&self, bytes: &[u8]) -> Result<Grid<f32>, SzhiError> {
        decompress_interp(bytes, "cuSZ-IB")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use szhi_datagen::DatasetKind;
    use szhi_ndgrid::Dims;

    fn check_bound(orig: &Grid<f32>, recon: &Grid<f32>, abs_eb: f64) {
        for (a, b) in orig.as_slice().iter().zip(recon.as_slice()) {
            assert!(
                ((*a as f64) - (*b as f64)).abs() <= abs_eb + 1e-12,
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn both_variants_roundtrip_within_bound() {
        let g = DatasetKind::Jhtdb.generate(Dims::d3(33, 35, 40), 3);
        let rel = 1e-3;
        let abs = rel * g.value_range() as f64;
        for c in [&CuszI as &dyn Compressor, &CuszIb] {
            let bytes = c.compress(&g, ErrorBound::Relative(rel)).unwrap();
            let recon = c.decompress(&bytes).unwrap();
            check_bound(&g, &recon, abs);
        }
    }

    #[test]
    fn bitcomp_variant_compresses_at_least_as_well() {
        let g = DatasetKind::Nyx.generate(Dims::d3(48, 48, 48), 5);
        let plain = CuszI
            .compress(&g, ErrorBound::Relative(1e-2))
            .unwrap()
            .len();
        let ib = CuszIb
            .compress(&g, ErrorBound::Relative(1e-2))
            .unwrap()
            .len();
        assert!(
            ib as f64 <= plain as f64 * 1.02,
            "cuSZ-IB ({ib}) should not be larger than cuSZ-I ({plain})"
        );
    }

    #[test]
    fn two_d_fields_roundtrip() {
        let g = DatasetKind::CesmAtm.generate(Dims::d2(70, 90), 1);
        let bytes = CuszIb.compress(&g, ErrorBound::Relative(1e-3)).unwrap();
        let recon = CuszIb.decompress(&bytes).unwrap();
        check_bound(&g, &recon, 1e-3 * g.value_range() as f64);
    }

    #[test]
    fn foreign_streams_are_rejected() {
        assert!(CuszI.decompress(b"nope").is_err());
        let g = DatasetKind::Rtm.generate(Dims::d3(20, 20, 20), 2);
        let bytes = CuszI.compress(&g, ErrorBound::Relative(1e-2)).unwrap();
        assert!(CuszIb.decompress(&bytes).is_ok() || CuszIb.decompress(&bytes).is_err());
        assert!(CuszI.decompress(&bytes[..40]).is_err());
    }
}
