//! Baseline GPU scientific lossy compressors, re-implemented from scratch.
//!
//! The paper's evaluation (§6.1.2) compares cuSZ-Hi against five baselines:
//! cuSZ in its Lorenzo (`cuSZ-L`), interpolation (`cuSZ-I`) and
//! interpolation-plus-Bitcomp (`cuSZ-IB`) modes, cuSZp2, FZ-GPU and cuZFP.
//! None of these is available here (they are CUDA code bases, one of them
//! proprietary), so this crate re-implements each compressor's algorithm on
//! the same substrates the rest of the workspace uses:
//!
//! | Baseline | Lossy decomposition | Lossless encoding |
//! |---|---|---|
//! | [`CuszL`]  | dual-quant Lorenzo               | Huffman over byte-planes |
//! | [`CuszI`]  | cuSZ-I interpolation (stride 8)  | Huffman |
//! | [`CuszIb`] | cuSZ-I interpolation (stride 8)  | Huffman + Bitcomp-sim |
//! | [`Cuszp2`] | 1D block offset prediction       | per-block fixed-length packing |
//! | [`FzGpu`]  | dual-quant Lorenzo               | bit-shuffle + zero elimination |
//! | [`CuZfp`]  | block orthogonal transform       | bit-plane truncation (fixed rate) |
//!
//! All baselines implement the common [`Compressor`] trait so the experiment
//! harness can sweep over them uniformly; the two cuSZ-Hi modes are wrapped
//! behind the same trait as [`SzhiCr`] and [`SzhiTp`].
#![forbid(unsafe_code)]

pub mod cusz_i;
pub mod cusz_l;
pub mod cuszp2;
pub mod cuzfp;
pub mod fzgpu;
pub mod stream;

pub use cusz_i::{CuszI, CuszIb};
pub use cusz_l::CuszL;
pub use cuszp2::Cuszp2;
pub use cuzfp::CuZfp;
pub use fzgpu::FzGpu;

use szhi_core::{ErrorBound, PipelineMode, SzhiConfig, SzhiError};
use szhi_ndgrid::Grid;

/// A scientific error-bounded lossy compressor with a bytes-in/bytes-out
/// interface, as used by every experiment in the harness.
pub trait Compressor: Send + Sync {
    /// Display name matching the paper's tables (e.g. `"cuSZ-L"`).
    fn name(&self) -> &'static str;

    /// Whether the compressor honours a point-wise error bound. `false` only
    /// for the fixed-rate cuZFP, which the paper excludes from the
    /// fixed-error-bound comparison (Table 4).
    fn supports_error_bound(&self) -> bool {
        true
    }

    /// Compresses `data` under the given error bound.
    fn compress(&self, data: &Grid<f32>, eb: ErrorBound) -> Result<Vec<u8>, SzhiError>;

    /// Decompresses a stream produced by this compressor's [`Compressor::compress`].
    fn decompress(&self, bytes: &[u8]) -> Result<Grid<f32>, SzhiError>;
}

/// cuSZ-Hi in CR (compression-ratio-preferred) mode, behind the baseline
/// trait for uniform benchmarking.
#[derive(Debug, Default, Clone, Copy)]
pub struct SzhiCr;

impl Compressor for SzhiCr {
    fn name(&self) -> &'static str {
        "cuSZ-Hi-CR"
    }
    fn compress(&self, data: &Grid<f32>, eb: ErrorBound) -> Result<Vec<u8>, SzhiError> {
        szhi_core::compress(data, &SzhiConfig::new(eb).with_mode(PipelineMode::Cr))
    }
    fn decompress(&self, bytes: &[u8]) -> Result<Grid<f32>, SzhiError> {
        szhi_core::decompress(bytes)
    }
}

/// cuSZ-Hi in TP (throughput-preferred) mode, behind the baseline trait.
#[derive(Debug, Default, Clone, Copy)]
pub struct SzhiTp;

impl Compressor for SzhiTp {
    fn name(&self) -> &'static str {
        "cuSZ-Hi-TP"
    }
    fn compress(&self, data: &Grid<f32>, eb: ErrorBound) -> Result<Vec<u8>, SzhiError> {
        szhi_core::compress(data, &SzhiConfig::new(eb).with_mode(PipelineMode::Tp))
    }
    fn decompress(&self, bytes: &[u8]) -> Result<Grid<f32>, SzhiError> {
        szhi_core::decompress(bytes)
    }
}

/// Every error-bounded compressor of the paper's Table 4, in row order:
/// the two cuSZ-Hi modes followed by the baselines.
pub fn table4_compressors() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(SzhiCr),
        Box::new(SzhiTp),
        Box::new(CuszL::default()),
        Box::new(CuszI),
        Box::new(CuszIb),
        Box::new(Cuszp2),
        Box::new(FzGpu::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use szhi_datagen::DatasetKind;
    use szhi_ndgrid::Dims;

    #[test]
    fn wrapper_modes_roundtrip() {
        let g = DatasetKind::Miranda.generate(Dims::d3(33, 33, 33), 5);
        for c in [&SzhiCr as &dyn Compressor, &SzhiTp] {
            let bytes = c.compress(&g, ErrorBound::Relative(1e-3)).unwrap();
            let recon = c.decompress(&bytes).unwrap();
            assert_eq!(recon.dims(), g.dims());
        }
    }

    #[test]
    fn table4_set_has_seven_entries_with_unique_names() {
        let set = table4_compressors();
        assert_eq!(set.len(), 7);
        let names: std::collections::HashSet<_> = set.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 7);
        assert!(set.iter().all(|c| c.supports_error_bound()));
    }
}
