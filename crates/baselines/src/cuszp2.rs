//! cuSZp2: 1D block offset prediction with fixed-length encoding.
//!
//! cuSZp2 is the paper's throughput-oriented baseline: values are
//! pre-quantized to integers, each 32-element 1D block predicts every element
//! from its predecessor (offset/delta prediction), and the zig-zag-coded
//! deltas are packed with the block's maximum significant bit count — the
//! `P3 → LE2` pipeline of Figure 2. This re-implementation corresponds to
//! cuSZp2's "outlier mode": deltas that do not fit a 32-bit zig-zag code are
//! escaped to a lossless side channel.

use crate::stream::{read_header, read_int_outliers, write_header, write_int_outliers};
use crate::Compressor;
use rayon::prelude::*;
use szhi_codec::bitio::put_u64;
use szhi_codec::fixedlen::{pack_u32, unpack_u32, unzigzag_u32, zigzag_i32};
use szhi_core::{ErrorBound, SzhiError};
use szhi_ndgrid::Grid;

const MAGIC: &[u8; 4] = b"CZP2";
/// Elements per prediction/packing block (cuSZp2's warp-sized blocks).
const BLOCK: usize = 32;

/// The cuSZp2 baseline compressor.
#[derive(Debug, Default, Clone, Copy)]
pub struct Cuszp2;

impl Compressor for Cuszp2 {
    fn name(&self) -> &'static str {
        "cuSZp2"
    }

    fn compress(&self, data: &Grid<f32>, eb: ErrorBound) -> Result<Vec<u8>, SzhiError> {
        if data.is_empty() {
            return Err(SzhiError::InvalidInput("empty field".into()));
        }
        let abs_eb = eb.absolute(data.value_range() as f64);
        let two_eb = 2.0 * abs_eb;
        // Pre-quantization (parallel).
        let q: Vec<i64> = data
            .as_slice()
            .par_iter()
            .map(|&v| (v as f64 / two_eb).round() as i64)
            .collect();
        // Per-block 1D offset prediction: delta against the previous element
        // inside the block, the block leader against zero.
        let mut deltas = vec![0u32; q.len()];
        let mut outliers: Vec<(u64, i64)> = Vec::new();
        for (b, block) in q.chunks(BLOCK).enumerate() {
            let base = b * BLOCK;
            let mut prev = 0i64;
            for (i, &qi) in block.iter().enumerate() {
                let d = qi - prev;
                if d.abs() <= (i32::MAX / 2) as i64 {
                    deltas[base + i] = zigzag_i32(d as i32);
                } else {
                    // Escape: store the exact integer and use a zero delta so
                    // the packing stays narrow.
                    deltas[base + i] = 0;
                    outliers.push(((base + i) as u64, qi));
                }
                prev = qi;
            }
        }
        let packed = pack_u32(&deltas, BLOCK);

        let mut bytes = Vec::new();
        write_header(&mut bytes, MAGIC, data.dims(), abs_eb);
        write_int_outliers(&mut bytes, &outliers);
        put_u64(&mut bytes, packed.len() as u64);
        bytes.extend_from_slice(&packed);
        Ok(bytes)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Grid<f32>, SzhiError> {
        let (mut cur, dims, abs_eb) = read_header(bytes, MAGIC, "cuSZp2")?;
        let outliers = read_int_outliers(&mut cur)?;
        let packed_len = cur.get_u64().map_err(SzhiError::from)? as usize;
        let packed = cur.take(packed_len).map_err(SzhiError::from)?;
        let deltas = unpack_u32(packed)?;
        if deltas.len() != dims.len() {
            return Err(SzhiError::InvalidStream(format!(
                "cuSZp2: decoded {} deltas for {} points",
                deltas.len(),
                dims.len()
            )));
        }
        let two_eb = 2.0 * abs_eb;
        let mut q = vec![0i64; dims.len()];
        for (b, chunk) in deltas.chunks(BLOCK).enumerate() {
            let base = b * BLOCK;
            let mut prev = 0i64;
            for (i, &d) in chunk.iter().enumerate() {
                prev += unzigzag_u32(d) as i64;
                q[base + i] = prev;
            }
        }
        for &(idx, v) in &outliers {
            // Re-derive the escaped element and everything after it in its
            // block (the deltas downstream of an escape are relative to the
            // exact value).
            let idx = idx as usize;
            let block_end = ((idx / BLOCK) + 1) * BLOCK;
            let mut prev = v;
            q[idx] = v;
            for j in (idx + 1)..block_end.min(q.len()) {
                prev += unzigzag_u32(deltas[j]) as i64;
                q[j] = prev;
            }
        }
        let values: Vec<f32> = q
            .par_iter()
            .map(|&qi| (qi as f64 * two_eb) as f32)
            .collect();
        Ok(Grid::from_vec(dims, values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use szhi_datagen::DatasetKind;
    use szhi_ndgrid::Dims;

    fn check_bound(orig: &Grid<f32>, recon: &Grid<f32>, abs_eb: f64) {
        for (a, b) in orig.as_slice().iter().zip(recon.as_slice()) {
            let slack = (a.abs() as f64) * f32::EPSILON as f64;
            assert!(
                ((*a as f64) - (*b as f64)).abs() <= abs_eb + slack + 1e-12,
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn roundtrip_within_bound() {
        let c = Cuszp2;
        for kind in [
            DatasetKind::Miranda,
            DatasetKind::Jhtdb,
            DatasetKind::CesmAtm,
        ] {
            let dims = if kind == DatasetKind::CesmAtm {
                Dims::d2(50, 70)
            } else {
                Dims::d3(24, 28, 30)
            };
            let g = kind.generate(dims, 9);
            let rel = 1e-3;
            let bytes = c.compress(&g, ErrorBound::Relative(rel)).unwrap();
            let recon = c.decompress(&bytes).unwrap();
            check_bound(&g, &recon, rel * g.value_range() as f64);
        }
    }

    #[test]
    fn smooth_data_compresses() {
        let g = DatasetKind::Miranda.generate(Dims::d3(48, 48, 48), 4);
        let bytes = Cuszp2.compress(&g, ErrorBound::Relative(1e-2)).unwrap();
        let ratio = g.dims().nbytes_f32() as f64 / bytes.len() as f64;
        assert!(ratio > 3.0, "cuSZp2 ratio only {ratio:.2}");
    }

    #[test]
    fn interpolation_compressors_beat_cuszp2_on_smooth_3d_data() {
        // The paper's core claim ordering: offset prediction < interpolation.
        let g = DatasetKind::Nyx.generate(Dims::d3(48, 48, 48), 6);
        let eb = ErrorBound::Relative(1e-2);
        let p2 = Cuszp2.compress(&g, eb).unwrap().len();
        let hi = crate::SzhiCr.compress(&g, eb).unwrap().len();
        assert!(
            hi < p2,
            "cuSZ-Hi ({hi}) must beat cuSZp2 ({p2}) on smooth 3D data"
        );
    }

    #[test]
    fn truncation_is_rejected() {
        let g = DatasetKind::Rtm.generate(Dims::d3(16, 16, 16), 8);
        let bytes = Cuszp2.compress(&g, ErrorBound::Relative(1e-2)).unwrap();
        assert!(Cuszp2.decompress(&bytes[..bytes.len() / 3]).is_err());
        assert!(Cuszp2.decompress(b"junk").is_err());
    }
}
