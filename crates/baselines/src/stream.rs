//! Shared stream-header helpers for the baseline compressors.
//!
//! Every baseline writes a small self-describing header (magic, shape,
//! absolute error bound) followed by compressor-specific sections; this
//! module centralises the header so the per-baseline formats stay tiny.

use szhi_codec::bitio::{put_f64, put_u64, put_u8, ByteCursor};
use szhi_core::SzhiError;
use szhi_ndgrid::Dims;

/// Writes the common baseline header.
pub fn write_header(out: &mut Vec<u8>, magic: &[u8; 4], dims: Dims, abs_eb: f64) {
    out.extend_from_slice(magic);
    put_u8(out, dims.rank() as u8);
    put_u64(out, dims.nz() as u64);
    put_u64(out, dims.ny() as u64);
    put_u64(out, dims.nx() as u64);
    put_f64(out, abs_eb);
}

/// Reads the common baseline header, checking the magic bytes.
pub fn read_header<'a>(
    bytes: &'a [u8],
    magic: &[u8; 4],
    name: &str,
) -> Result<(ByteCursor<'a>, Dims, f64), SzhiError> {
    let mut cur = ByteCursor::new(bytes);
    let found = cur
        .take(4)
        .map_err(|_| SzhiError::InvalidStream(format!("{name}: stream too short")))?;
    if found != magic {
        return Err(SzhiError::InvalidStream(format!("{name}: bad magic")));
    }
    let rank = cur.get_u8().map_err(SzhiError::from)? as usize;
    let nz = cur.get_u64().map_err(SzhiError::from)? as usize;
    let ny = cur.get_u64().map_err(SzhiError::from)? as usize;
    let nx = cur.get_u64().map_err(SzhiError::from)? as usize;
    let dims = match rank {
        1 => Dims::d1(nx),
        2 => Dims::d2(ny, nx),
        3 => Dims::d3(nz, ny, nx),
        _ => {
            return Err(SzhiError::InvalidStream(format!(
                "{name}: unsupported rank {rank}"
            )))
        }
    };
    let abs_eb = cur.get_f64().map_err(SzhiError::from)?;
    Ok((cur, dims, abs_eb))
}

/// Serialises a `u16` code array as two byte planes (all low bytes, then all
/// high bytes) so byte-oriented entropy coders see two homogeneous streams.
pub fn codes_to_byte_planes(codes: &[u16]) -> Vec<u8> {
    let mut out = Vec::with_capacity(codes.len() * 2);
    out.extend(codes.iter().map(|&c| (c & 0xff) as u8));
    out.extend(codes.iter().map(|&c| (c >> 8) as u8));
    out
}

/// Inverse of [`codes_to_byte_planes`].
pub fn byte_planes_to_codes(bytes: &[u8], n: usize) -> Result<Vec<u16>, SzhiError> {
    if bytes.len() != 2 * n {
        return Err(SzhiError::InvalidStream(format!(
            "expected {} code bytes, got {}",
            2 * n,
            bytes.len()
        )));
    }
    Ok((0..n)
        .map(|i| bytes[i] as u16 | ((bytes[n + i] as u16) << 8))
        .collect())
}

/// Serialises an outlier list `(index, i64 value)` used by the
/// integer-domain predictors.
pub fn write_int_outliers(out: &mut Vec<u8>, outliers: &[(u64, i64)]) {
    put_u64(out, outliers.len() as u64);
    for &(idx, v) in outliers {
        put_u64(out, idx);
        put_u64(out, v as u64);
    }
}

/// Inverse of [`write_int_outliers`].
pub fn read_int_outliers(cur: &mut ByteCursor<'_>) -> Result<Vec<(u64, i64)>, SzhiError> {
    let n = cur.get_u64().map_err(SzhiError::from)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = cur.get_u64().map_err(SzhiError::from)?;
        let v = cur.get_u64().map_err(SzhiError::from)? as i64;
        out.push((idx, v));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips() {
        let mut buf = Vec::new();
        write_header(&mut buf, b"TEST", Dims::d3(4, 5, 6), 2.5e-3);
        let (_, dims, eb) = read_header(&buf, b"TEST", "test").unwrap();
        assert_eq!(dims, Dims::d3(4, 5, 6));
        assert_eq!(eb, 2.5e-3);
        assert!(read_header(&buf, b"XXXX", "test").is_err());
    }

    #[test]
    fn byte_planes_roundtrip() {
        let codes: Vec<u16> = (0..1000u16).map(|i| i.wrapping_mul(257)).collect();
        let planes = codes_to_byte_planes(&codes);
        assert_eq!(byte_planes_to_codes(&planes, codes.len()).unwrap(), codes);
        assert!(byte_planes_to_codes(&planes, codes.len() + 1).is_err());
    }

    #[test]
    fn int_outliers_roundtrip() {
        let outliers = vec![(3u64, -100i64), (77, 1 << 40)];
        let mut buf = Vec::new();
        write_int_outliers(&mut buf, &outliers);
        let mut cur = ByteCursor::new(&buf);
        assert_eq!(read_int_outliers(&mut cur).unwrap(), outliers);
    }
}
