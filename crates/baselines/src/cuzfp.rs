//! cuZFP: a fixed-rate block-transform compressor.
//!
//! ZFP partitions the field into 4³ blocks, aligns each block to a common
//! exponent, decorrelates it with an integer orthogonal transform and encodes
//! the coefficients bit plane by bit plane, truncated to a fixed number of
//! bits per value. It therefore offers a *fixed rate* rather than a bounded
//! point-wise error, which is why the paper excludes it from the
//! fixed-error-bound comparison (Table 4) and sweeps its rate in the
//! rate-distortion study (Figure 8).
//!
//! This re-implementation keeps the structure (block floating point →
//! integer decorrelating transform → most-significant-first bit-plane coding
//! with a fixed per-block budget) but uses an exactly invertible Haar-style
//! integer lifting instead of ZFP's proprietary lifting constants; the
//! substitution is documented in `DESIGN.md`.

use crate::stream::{read_header, write_header};
use crate::Compressor;
use rayon::prelude::*;
use szhi_codec::bitio::{put_u64, BitReader, BitWriter};
use szhi_core::{ErrorBound, SzhiError};
use szhi_ndgrid::{Dims, Grid};

const MAGIC: &[u8; 4] = b"ZFP1";
/// Block edge length.
const EDGE: usize = 4;
/// Precision of the block-floating-point integers (bits of magnitude).
const PRECISION: i32 = 24;

/// The cuZFP baseline compressor (fixed rate).
#[derive(Debug, Clone, Copy)]
pub struct CuZfp {
    /// Compressed bits per value.
    rate: f64,
}

impl Default for CuZfp {
    fn default() -> Self {
        CuZfp { rate: 8.0 }
    }
}

impl CuZfp {
    /// Creates a compressor with the given rate in bits per value.
    pub fn with_rate(rate: f64) -> Self {
        assert!(
            (1.0..=32.0).contains(&rate),
            "rate must be within 1..=32 bits/value"
        );
        CuZfp { rate }
    }

    /// The configured rate in bits per value.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

/// Exactly invertible Haar-style lifting on a group of four integers.
#[inline]
fn fwd_lift(v: &mut [i64; 4]) {
    let d0 = v[0] - v[1];
    let s0 = v[1] + (d0 >> 1);
    let d1 = v[2] - v[3];
    let s1 = v[3] + (d1 >> 1);
    let dd = s0 - s1;
    let ss = s1 + (dd >> 1);
    *v = [ss, dd, d0, d1];
}

#[inline]
fn inv_lift(v: &mut [i64; 4]) {
    let [ss, dd, d0, d1] = *v;
    let s1 = ss - (dd >> 1);
    let s0 = s1 + dd;
    let x3 = s1 - (d1 >> 1);
    let x2 = x3 + d1;
    let x1 = s0 - (d0 >> 1);
    let x0 = x1 + d0;
    *v = [x0, x1, x2, x3];
}

/// Mask used for the two's-complement ↔ negabinary conversion (as in ZFP).
/// Negabinary is used instead of sign-magnitude or zig-zag because zeroing
/// its low digits perturbs the value by at most the sum of those digit
/// weights — truncating bit planes never flips the sign of a coefficient.
const NB_MASK: u64 = 0xaaaa_aaaa_aaaa_aaaa;

#[inline]
fn int_to_negabinary(v: i64) -> u64 {
    ((v as u64).wrapping_add(NB_MASK)) ^ NB_MASK
}

#[inline]
fn negabinary_to_int(u: u64) -> i64 {
    ((u ^ NB_MASK).wrapping_sub(NB_MASK)) as i64
}

/// Geometry of the block lattice for a field shape.
struct BlockLattice {
    dims: Dims,
    nbz: usize,
    nby: usize,
    nbx: usize,
    /// Number of values per block (4, 16 or 64 depending on rank).
    block_values: usize,
}

impl BlockLattice {
    fn new(dims: Dims) -> Self {
        let nb = |extent: usize| extent.div_ceil(EDGE);
        let rank = dims.rank();
        let block_values = EDGE.pow(rank as u32);
        BlockLattice {
            dims,
            nbz: if rank >= 3 { nb(dims.nz()) } else { 1 },
            nby: if rank >= 2 { nb(dims.ny()) } else { 1 },
            nbx: nb(dims.nx()),
            block_values,
        }
    }

    fn len(&self) -> usize {
        self.nbz * self.nby * self.nbx
    }

    fn origin(&self, b: usize) -> (usize, usize, usize) {
        let bx = b % self.nbx;
        let rest = b / self.nbx;
        let by = rest % self.nby;
        let bz = rest / self.nby;
        (bz * EDGE, by * EDGE, bx * EDGE)
    }

    /// Gathers the block values, clamping coordinates at the domain boundary
    /// (edge replication for partial blocks).
    fn gather(&self, data: &[f32], b: usize) -> Vec<f32> {
        let (z0, y0, x0) = self.origin(b);
        let rank = self.dims.rank();
        let mut out = Vec::with_capacity(self.block_values);
        let zr = if rank >= 3 { EDGE } else { 1 };
        let yr = if rank >= 2 { EDGE } else { 1 };
        for dz in 0..zr {
            let z = (z0 + dz).min(self.dims.nz() - 1);
            for dy in 0..yr {
                let y = (y0 + dy).min(self.dims.ny() - 1);
                for dx in 0..EDGE {
                    let x = (x0 + dx).min(self.dims.nx() - 1);
                    out.push(data[self.dims.index(z, y, x)]);
                }
            }
        }
        out
    }

    /// Scatters decoded block values back, ignoring padded positions.
    fn scatter(&self, data: &mut [f32], b: usize, values: &[f32]) {
        let (z0, y0, x0) = self.origin(b);
        let rank = self.dims.rank();
        let zr = if rank >= 3 { EDGE } else { 1 };
        let yr = if rank >= 2 { EDGE } else { 1 };
        let mut i = 0;
        for dz in 0..zr {
            for dy in 0..yr {
                for dx in 0..EDGE {
                    let (z, y, x) = (z0 + dz, y0 + dy, x0 + dx);
                    if z < self.dims.nz() && y < self.dims.ny() && x < self.dims.nx() {
                        data[self.dims.index(z, y, x)] = values[i];
                    }
                    i += 1;
                }
            }
        }
    }
}

/// Applies the lifting along every axis of a block of `n` values (4, 16 or 64).
fn transform(block: &mut [i64], forward: bool) {
    let n = block.len();
    let lift = |group: &mut [i64; 4]| {
        if forward {
            fwd_lift(group)
        } else {
            inv_lift(group)
        }
    };
    // Along x: contiguous groups of 4.
    let along_x = |block: &mut [i64]| {
        for chunk in block.chunks_exact_mut(EDGE) {
            let mut g = [chunk[0], chunk[1], chunk[2], chunk[3]];
            lift(&mut g);
            chunk.copy_from_slice(&g);
        }
    };
    // Along y (stride 4) and z (stride 16) for higher ranks.
    let along_stride = |block: &mut [i64], stride: usize| {
        let groups = block.len() / (EDGE * stride);
        for outer in 0..groups {
            for inner in 0..stride {
                let base = outer * EDGE * stride + inner;
                let mut g = [
                    block[base],
                    block[base + stride],
                    block[base + 2 * stride],
                    block[base + 3 * stride],
                ];
                lift(&mut g);
                block[base] = g[0];
                block[base + stride] = g[1];
                block[base + 2 * stride] = g[2];
                block[base + 3 * stride] = g[3];
            }
        }
    };
    if forward {
        along_x(block);
        if n >= 16 {
            along_stride(block, EDGE);
        }
        if n >= 64 {
            along_stride(block, EDGE * EDGE);
        }
    } else {
        if n >= 64 {
            along_stride(block, EDGE * EDGE);
        }
        if n >= 16 {
            along_stride(block, EDGE);
        }
        along_x(block);
    }
}

/// Encodes one block into exactly `budget_bits` bits.
fn encode_block(values: &[f32], budget_bits: usize, bw: &mut BitWriter) {
    let n = values.len();
    let start_bits = bw.bit_len();
    // Common exponent of the block.
    let max_abs = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 || !max_abs.is_finite() {
        // All-zero (or non-finite-free) block: a single flag, then padding.
        bw.put_bits(0, 9);
        pad_to(bw, start_bits + budget_bits);
        return;
    }
    let emax = max_abs.log2().floor() as i32;
    bw.put_bits((emax + 256) as u64 + 1, 9); // +1 so 0 means "empty block"
    let scale = 2f64.powi(PRECISION - 1 - emax);
    let mut q: Vec<i64> = values
        .iter()
        .map(|&v| (v as f64 * scale).round() as i64)
        .collect();
    transform(&mut q, true);
    let zz: Vec<u64> = q.iter().map(|&v| int_to_negabinary(v)).collect();
    // Highest occupied bit plane.
    let top = zz.iter().fold(0u32, |m, &v| m.max(64 - v.leading_zeros()));
    bw.put_bits(top as u64, 6);
    let mut remaining = budget_bits.saturating_sub(bw.bit_len() - start_bits);
    let mut plane = top;
    while plane > 0 && remaining >= n {
        plane -= 1;
        for &v in &zz {
            bw.put_bit((v >> plane) & 1 == 1);
        }
        remaining -= n;
    }
    pad_to(bw, start_bits + budget_bits);
}

fn pad_to(bw: &mut BitWriter, target_bits: usize) {
    while bw.bit_len() < target_bits {
        let chunk = (target_bits - bw.bit_len()).min(32) as u32;
        bw.put_bits(0, chunk);
    }
}

/// Decodes one block of `n` values from exactly `budget_bits` bits.
fn decode_block(
    br: &mut BitReader<'_>,
    n: usize,
    budget_bits: usize,
) -> Result<Vec<f32>, SzhiError> {
    let start = br.bits_consumed();
    let tag = br.get_bits(9).map_err(SzhiError::from)?;
    if tag == 0 {
        skip_to(br, start + budget_bits)?;
        return Ok(vec![0.0f32; n]);
    }
    let emax = tag as i32 - 1 - 256;
    let top = br.get_bits(6).map_err(SzhiError::from)? as u32;
    let mut zz = vec![0u64; n];
    let mut consumed = br.bits_consumed() - start;
    let mut plane = top;
    while plane > 0 && consumed + n <= budget_bits {
        plane -= 1;
        for value in zz.iter_mut() {
            if br.get_bit().map_err(SzhiError::from)? {
                *value |= 1 << plane;
            }
        }
        consumed += n;
    }
    skip_to(br, start + budget_bits)?;
    let mut q: Vec<i64> = zz.iter().map(|&v| negabinary_to_int(v)).collect();
    transform(&mut q, false);
    let scale = 2f64.powi(PRECISION - 1 - emax);
    Ok(q.iter().map(|&v| (v as f64 / scale) as f32).collect())
}

fn skip_to(br: &mut BitReader<'_>, target: usize) -> Result<(), SzhiError> {
    while br.bits_consumed() < target {
        let chunk = (target - br.bits_consumed()).min(32) as u32;
        br.get_bits(chunk).map_err(SzhiError::from)?;
    }
    Ok(())
}

impl Compressor for CuZfp {
    fn name(&self) -> &'static str {
        "cuZFP"
    }

    fn supports_error_bound(&self) -> bool {
        false
    }

    /// Compresses at the configured fixed rate. The error-bound argument is
    /// ignored (cuZFP does not support a fixed-error-bound mode — §6.2.1).
    fn compress(&self, data: &Grid<f32>, _eb: ErrorBound) -> Result<Vec<u8>, SzhiError> {
        if data.is_empty() {
            return Err(SzhiError::InvalidInput("empty field".into()));
        }
        let dims = data.dims();
        let lattice = BlockLattice::new(dims);
        let budget_bits = (self.rate * lattice.block_values as f64).ceil() as usize;
        // Blocks are encoded independently and in parallel, then concatenated
        // (every block occupies exactly `budget_bits` bits).
        let chunks: Vec<Vec<u8>> = (0..lattice.len())
            .into_par_iter()
            .map(|b| {
                let values = lattice.gather(data.as_slice(), b);
                let mut bw = BitWriter::with_capacity_bits(budget_bits + 16);
                encode_block(&values, budget_bits, &mut bw);
                bw.finish()
            })
            .collect();

        let mut bytes = Vec::new();
        write_header(&mut bytes, MAGIC, dims, 0.0);
        put_u64(&mut bytes, budget_bits as u64);
        // Re-pack the per-block byte chunks into one contiguous bit stream.
        let mut bw = BitWriter::with_capacity_bits(budget_bits * lattice.len());
        for chunk in &chunks {
            let mut br = BitReader::new(chunk);
            let mut remaining = budget_bits;
            while remaining > 0 {
                let take = remaining.min(32) as u32;
                let v = br.get_bits(take).map_err(SzhiError::from)?;
                bw.put_bits(v, take);
                remaining -= take as usize;
            }
        }
        let payload = bw.finish();
        put_u64(&mut bytes, payload.len() as u64);
        bytes.extend_from_slice(&payload);
        Ok(bytes)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Grid<f32>, SzhiError> {
        let (mut cur, dims, _eb) = read_header(bytes, MAGIC, "cuZFP")?;
        let budget_bits = cur.get_u64().map_err(SzhiError::from)? as usize;
        let payload_len = cur.get_u64().map_err(SzhiError::from)? as usize;
        let payload = cur.take(payload_len).map_err(SzhiError::from)?;
        let lattice = BlockLattice::new(dims);
        let mut out = vec![0.0f32; dims.len()];
        let mut br = BitReader::new(payload);
        for b in 0..lattice.len() {
            let values = decode_block(&mut br, lattice.block_values, budget_bits)?;
            lattice.scatter(&mut out, b, &values);
        }
        Ok(Grid::from_vec(dims, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use szhi_datagen::DatasetKind;
    use szhi_metrics::QualityReport;

    #[test]
    fn lifting_is_exactly_invertible() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(109);
        for _ in 0..1000 {
            let orig: [i64; 4] = [
                rng.gen_range(-1_000_000i64..1_000_000),
                rng.gen_range(-1_000_000i64..1_000_000),
                rng.gen_range(-1_000_000i64..1_000_000),
                rng.gen_range(-1_000_000i64..1_000_000),
            ];
            let mut v = orig;
            fwd_lift(&mut v);
            inv_lift(&mut v);
            assert_eq!(v, orig);
        }
    }

    #[test]
    fn transform_roundtrips_all_ranks() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(113);
        for n in [4usize, 16, 64] {
            let orig: Vec<i64> = (0..n)
                .map(|_| rng.gen_range(-100_000i64..100_000))
                .collect();
            let mut v = orig.clone();
            transform(&mut v, true);
            transform(&mut v, false);
            assert_eq!(v, orig, "rank with {n} values");
        }
    }

    #[test]
    fn compressed_size_matches_rate() {
        let g = DatasetKind::Miranda.generate(Dims::d3(32, 32, 32), 3);
        for rate in [4.0f64, 8.0, 16.0] {
            let c = CuZfp::with_rate(rate);
            let bytes = c.compress(&g, ErrorBound::Relative(1e-3)).unwrap();
            let bits_per_value = bytes.len() as f64 * 8.0 / g.len() as f64;
            assert!(
                bits_per_value < rate * 1.1 + 0.2,
                "rate {rate}: got {bits_per_value} bits/value"
            );
            let recon = c.decompress(&bytes).unwrap();
            assert_eq!(recon.dims(), g.dims());
        }
    }

    #[test]
    fn higher_rates_give_higher_psnr() {
        let g = DatasetKind::Rtm.generate(Dims::d3(36, 36, 20), 5);
        let mut psnrs = Vec::new();
        for rate in [2.0f64, 8.0, 16.0] {
            let c = CuZfp::with_rate(rate);
            let recon = c
                .decompress(&c.compress(&g, ErrorBound::Relative(1e-3)).unwrap())
                .unwrap();
            psnrs.push(QualityReport::compare(&g, &recon).psnr);
        }
        assert!(
            psnrs[0] < psnrs[1] && psnrs[1] < psnrs[2],
            "PSNR must grow with rate: {psnrs:?}"
        );
    }

    #[test]
    fn reconstruction_quality_is_reasonable_at_16_bits() {
        let g = DatasetKind::Miranda.generate(Dims::d3(32, 32, 32), 7);
        let c = CuZfp::with_rate(16.0);
        let recon = c
            .decompress(&c.compress(&g, ErrorBound::Relative(1e-3)).unwrap())
            .unwrap();
        let q = QualityReport::compare(&g, &recon);
        assert!(q.psnr > 60.0, "16-bit cuZFP PSNR only {:.1} dB", q.psnr);
    }

    #[test]
    fn two_d_and_one_d_fields_roundtrip() {
        let g2 = DatasetKind::CesmAtm.generate(Dims::d2(50, 66), 1);
        let c = CuZfp::with_rate(12.0);
        let recon = c
            .decompress(&c.compress(&g2, ErrorBound::Relative(1e-3)).unwrap())
            .unwrap();
        assert_eq!(recon.dims(), g2.dims());
        let q = QualityReport::compare(&g2, &recon);
        assert!(q.psnr > 40.0, "2D PSNR only {:.1}", q.psnr);

        let g1 = Grid::from_fn(Dims::d1(1000), |_, _, x| (x as f32 * 0.01).sin());
        let recon = c
            .decompress(&c.compress(&g1, ErrorBound::Relative(1e-3)).unwrap())
            .unwrap();
        assert_eq!(recon.dims(), g1.dims());
    }

    #[test]
    fn does_not_claim_error_bound_support() {
        assert!(!CuZfp::default().supports_error_bound());
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(CuZfp::default().decompress(b"zz").is_err());
    }

    use szhi_ndgrid::Dims;
    use szhi_ndgrid::Grid;
}
