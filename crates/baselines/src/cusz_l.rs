//! cuSZ-L: the Lorenzo-predictor mode of cuSZ.
//!
//! Dual-quantization Lorenzo extrapolation (the original cuSZ decomposition)
//! followed by Huffman encoding of the quantization codes — the
//! `P1 → LE1` pipeline of Figure 2. The 16-bit codes are serialised as two
//! byte planes before Huffman coding so the (almost constant) high bytes
//! collapse.

use crate::stream::{
    byte_planes_to_codes, codes_to_byte_planes, read_header, read_int_outliers, write_header,
    write_int_outliers,
};
use crate::Compressor;
use szhi_codec::bitio::put_u64;
use szhi_codec::huffman;
use szhi_core::{ErrorBound, SzhiError};
use szhi_ndgrid::Grid;
use szhi_predictor::lorenzo::{self, LorenzoOutput, DEFAULT_RADIUS};

const MAGIC: &[u8; 4] = b"CZL1";

/// The cuSZ-L baseline compressor.
#[derive(Debug, Clone, Copy)]
pub struct CuszL {
    radius: u32,
}

impl Default for CuszL {
    fn default() -> Self {
        CuszL {
            radius: DEFAULT_RADIUS,
        }
    }
}

impl CuszL {
    /// Creates the compressor with a custom quantization radius.
    pub fn with_radius(radius: u32) -> Self {
        assert!(radius >= 2);
        CuszL { radius }
    }
}

impl Compressor for CuszL {
    fn name(&self) -> &'static str {
        "cuSZ-L"
    }

    fn compress(&self, data: &Grid<f32>, eb: ErrorBound) -> Result<Vec<u8>, SzhiError> {
        if data.is_empty() {
            return Err(SzhiError::InvalidInput("empty field".into()));
        }
        let abs_eb = eb.absolute(data.value_range() as f64);
        let out = lorenzo::compress(data, abs_eb, self.radius);
        let mut bytes = Vec::new();
        write_header(&mut bytes, MAGIC, data.dims(), abs_eb);
        put_u64(&mut bytes, self.radius as u64);
        write_int_outliers(&mut bytes, &out.outliers);
        let planes = codes_to_byte_planes(&out.codes);
        let encoded = huffman::encode(&planes);
        put_u64(&mut bytes, encoded.len() as u64);
        bytes.extend_from_slice(&encoded);
        Ok(bytes)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Grid<f32>, SzhiError> {
        let (mut cur, dims, abs_eb) = read_header(bytes, MAGIC, "cuSZ-L")?;
        let radius = cur.get_u64().map_err(SzhiError::from)? as u32;
        let outliers = read_int_outliers(&mut cur)?;
        let enc_len = cur.get_u64().map_err(SzhiError::from)? as usize;
        let encoded = cur.take(enc_len).map_err(SzhiError::from)?;
        let planes = huffman::decode(encoded)?;
        let codes = byte_planes_to_codes(&planes, dims.len())?;
        let output = LorenzoOutput {
            codes,
            outliers,
            radius,
        };
        Ok(lorenzo::decompress(&output, dims, abs_eb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use szhi_datagen::DatasetKind;
    use szhi_ndgrid::Dims;

    fn check_bound(orig: &Grid<f32>, recon: &Grid<f32>, abs_eb: f64) {
        for (a, b) in orig.as_slice().iter().zip(recon.as_slice()) {
            let slack = (a.abs() as f64) * f32::EPSILON as f64;
            assert!(
                ((*a as f64) - (*b as f64)).abs() <= abs_eb + slack + 1e-12,
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn roundtrip_within_bound() {
        let c = CuszL::default();
        for kind in [DatasetKind::Miranda, DatasetKind::CesmAtm] {
            let dims = if kind == DatasetKind::CesmAtm {
                Dims::d2(60, 80)
            } else {
                Dims::d3(32, 32, 32)
            };
            let g = kind.generate(dims, 3);
            let rel = 1e-3;
            let bytes = c.compress(&g, ErrorBound::Relative(rel)).unwrap();
            let recon = c.decompress(&bytes).unwrap();
            check_bound(&g, &recon, rel * g.value_range() as f64);
        }
    }

    #[test]
    fn compresses_smooth_data() {
        let g = DatasetKind::Miranda.generate(Dims::d3(48, 48, 48), 7);
        let c = CuszL::default();
        let bytes = c.compress(&g, ErrorBound::Relative(1e-2)).unwrap();
        let ratio = g.dims().nbytes_f32() as f64 / bytes.len() as f64;
        assert!(ratio > 3.0, "cuSZ-L ratio only {ratio:.2}");
    }

    #[test]
    fn rejects_foreign_streams() {
        let c = CuszL::default();
        assert!(c.decompress(b"garbage").is_err());
        let g = DatasetKind::Nyx.generate(Dims::d3(16, 16, 16), 1);
        let bytes = c.compress(&g, ErrorBound::Relative(1e-2)).unwrap();
        assert!(c.decompress(&bytes[..bytes.len() / 2]).is_err());
    }
}
