//! FZ-GPU: Lorenzo prediction with bit-shuffle and de-duplication encoding.
//!
//! FZ-GPU derives from cuSZ but replaces the Huffman stage with a
//! throughput-oriented lossless pair: the 16-bit quantization codes are
//! bit-shuffled (so the mostly-zero high bit planes become long runs) and the
//! resulting stream is de-duplicated by zero-block elimination — the
//! `P1 → LE2` (bit-shuffle + dictionary) pipeline of Figure 2.

use crate::stream::{
    byte_planes_to_codes, codes_to_byte_planes, read_header, read_int_outliers, write_header,
    write_int_outliers,
};
use crate::Compressor;
use szhi_codec::bitio::put_u64;
use szhi_codec::components::{Bit, Rze};
use szhi_core::{ErrorBound, SzhiError};
use szhi_ndgrid::Grid;
use szhi_predictor::lorenzo::{self, LorenzoOutput, DEFAULT_RADIUS};

const MAGIC: &[u8; 4] = b"FZG1";

#[inline]
fn zigzag16(v: i32) -> u16 {
    (((v << 1) ^ (v >> 31)) & 0xffff) as u16
}

#[inline]
fn unzigzag16(v: u16) -> i32 {
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

/// The FZ-GPU baseline compressor.
#[derive(Debug, Clone, Copy)]
pub struct FzGpu {
    radius: u32,
}

impl Default for FzGpu {
    fn default() -> Self {
        FzGpu {
            radius: DEFAULT_RADIUS,
        }
    }
}

impl Compressor for FzGpu {
    fn name(&self) -> &'static str {
        "FZ-GPU"
    }

    fn compress(&self, data: &Grid<f32>, eb: ErrorBound) -> Result<Vec<u8>, SzhiError> {
        if data.is_empty() {
            return Err(SzhiError::InvalidInput("empty field".into()));
        }
        let abs_eb = eb.absolute(data.value_range() as f64);
        let out = lorenzo::compress(data, abs_eb, self.radius);
        // Re-bias the codes with a zig-zag map so "no error" becomes 0 and
        // small ± errors become small magnitudes: the high byte plane and the
        // upper bit planes of the low bytes are then almost entirely zero and
        // collapse in the de-duplication stage.
        let rebased: Vec<u16> = out
            .codes
            .iter()
            .map(|&c| zigzag16(c as i32 - self.radius as i32))
            .collect();
        let planes = codes_to_byte_planes(&rebased);
        let shuffled = Bit::new(1).encode_bytes(&planes);
        let dedup = Rze::new(8).encode_bytes(&shuffled);

        let mut bytes = Vec::new();
        write_header(&mut bytes, MAGIC, data.dims(), abs_eb);
        put_u64(&mut bytes, self.radius as u64);
        write_int_outliers(&mut bytes, &out.outliers);
        put_u64(&mut bytes, dedup.len() as u64);
        bytes.extend_from_slice(&dedup);
        Ok(bytes)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Grid<f32>, SzhiError> {
        let (mut cur, dims, abs_eb) = read_header(bytes, MAGIC, "FZ-GPU")?;
        let radius = cur.get_u64().map_err(SzhiError::from)? as u32;
        let outliers = read_int_outliers(&mut cur)?;
        let enc_len = cur.get_u64().map_err(SzhiError::from)? as usize;
        let encoded = cur.take(enc_len).map_err(SzhiError::from)?;
        let shuffled = Rze::new(8).decode_bytes(encoded)?;
        let planes = Bit::new(1).decode_bytes(&shuffled)?;
        let rebased = byte_planes_to_codes(&planes, dims.len())?;
        let codes: Vec<u16> = rebased
            .iter()
            .map(|&c| (unzigzag16(c) + radius as i32) as u16)
            .collect();
        let output = LorenzoOutput {
            codes,
            outliers,
            radius,
        };
        Ok(lorenzo::decompress(&output, dims, abs_eb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use szhi_datagen::DatasetKind;
    use szhi_ndgrid::Dims;

    fn check_bound(orig: &Grid<f32>, recon: &Grid<f32>, abs_eb: f64) {
        for (a, b) in orig.as_slice().iter().zip(recon.as_slice()) {
            let slack = (a.abs() as f64) * f32::EPSILON as f64;
            assert!(
                ((*a as f64) - (*b as f64)).abs() <= abs_eb + slack + 1e-12,
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn roundtrip_within_bound() {
        let c = FzGpu::default();
        for kind in [DatasetKind::Miranda, DatasetKind::Qmcpack] {
            let g = kind.generate(Dims::d3(30, 34, 38), 3);
            let rel = 1e-3;
            let bytes = c.compress(&g, ErrorBound::Relative(rel)).unwrap();
            let recon = c.decompress(&bytes).unwrap();
            check_bound(&g, &recon, rel * g.value_range() as f64);
        }
    }

    #[test]
    fn smooth_data_compresses() {
        let g = DatasetKind::Rtm.generate(Dims::d3(48, 48, 30), 2);
        let bytes = FzGpu::default()
            .compress(&g, ErrorBound::Relative(1e-2))
            .unwrap();
        let ratio = g.dims().nbytes_f32() as f64 / bytes.len() as f64;
        assert!(ratio > 3.0, "FZ-GPU ratio only {ratio:.2}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(FzGpu::default().decompress(b"xx").is_err());
    }
}
