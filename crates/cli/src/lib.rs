//! # szhi-cli — the command-line serving layer
//!
//! This crate puts the szhi compressor behind four subcommands:
//!
//! - `encode` streams a raw little-endian f32 field through
//!   [`szhi_core::StreamSink`] into a trailered container, never holding
//!   the uncompressed field in memory;
//! - `decode` reads a container back to raw f32 — seekable files go
//!   through [`szhi_core::StreamSource`] (with `--chunk` random access),
//!   and `-` decodes straight off a non-seekable stdin pipe through
//!   [`szhi_core::ForwardSource`];
//! - `inspect` dumps the header, chunk table, trailer and mode/config
//!   histograms of any container version without decoding a single
//!   payload byte;
//! - `bench` compresses a synthetic field, and with `--jobs N` drives N
//!   concurrent [`szhi_core::JobService`] jobs over the shared worker
//!   pool, checking every job's output byte-identical to a serial run.
//!
//! The command implementations live in the library (not the binary) so
//! the integration tests and the golden-corpus generator exercise the
//! exact code the `szhi-cli` binary ships. The argument parser is
//! hand-rolled: the build environment is offline and the workspace adds
//! no external dependencies.

// szhi-analyzer: scope(no-panic-decode: all)

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod args;
pub mod commands;
pub mod golden;
pub mod inspect;
pub mod raw;

use szhi_core::SzhiError;

/// A CLI failure, split by exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The command line itself is malformed (unknown flag, missing or
    /// unparsable value). Exit code 2; the usage text is printed.
    Usage(String),
    /// The command was well-formed but failed while running (I/O error,
    /// corrupt stream, bound violation). Exit code 1.
    Runtime(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Runtime(_) => 1,
        }
    }

    /// The error message (without the `szhi-cli: error:` prefix).
    pub fn message(&self) -> &str {
        match self {
            CliError::Usage(msg) | CliError::Runtime(msg) => msg,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

impl std::error::Error for CliError {}

impl From<SzhiError> for CliError {
    fn from(e: SzhiError) -> Self {
        CliError::Runtime(e.to_string())
    }
}

/// Runs the CLI on an already-split argument list (`argv` without the
/// program name) and returns the process exit code, printing any error to
/// stderr in the stable `szhi-cli: error: <message>` shape the
/// integration tests assert on.
pub fn run(argv: &[String]) -> i32 {
    let cmd = match args::parse(argv) {
        Ok(cmd) => cmd,
        Err(e) => return report(&e),
    };
    match commands::dispatch(&cmd) {
        Ok(()) => 0,
        Err(e) => report(&e),
    }
}

fn report(e: &CliError) -> i32 {
    eprintln!("szhi-cli: error: {}", e.message());
    if matches!(e, CliError::Usage(_)) {
        eprintln!();
        eprintln!("{}", args::USAGE);
    }
    e.exit_code()
}
