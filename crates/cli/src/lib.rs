//! # szhi-cli — the command-line serving layer
//!
//! This crate puts the szhi compressor behind four subcommands:
//!
//! - `encode` streams a raw little-endian f32 field through
//!   [`szhi_core::StreamSink`] into a trailered container, never holding
//!   the uncompressed field in memory;
//! - `decode` reads a container back to raw f32 — seekable files go
//!   through [`szhi_core::StreamSource`] (with `--chunk` random access),
//!   and `-` decodes straight off a non-seekable stdin pipe through
//!   [`szhi_core::ForwardSource`];
//! - `inspect` dumps the header, chunk table, trailer and mode/config
//!   histograms of any container version without decoding a single
//!   payload byte;
//! - `bench` compresses a synthetic field, and with `--jobs N` drives N
//!   concurrent [`szhi_core::JobService`] jobs over the shared worker
//!   pool, checking every job's output byte-identical to a serial run.
//!
//! The command implementations live in the library (not the binary) so
//! the integration tests and the golden-corpus generator exercise the
//! exact code the `szhi-cli` binary ships. The argument parser is
//! hand-rolled: the build environment is offline and the workspace adds
//! no external dependencies.

// szhi-analyzer: scope(no-panic-decode: all)

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod args;
pub mod commands;
pub mod golden;
pub mod inspect;
pub mod raw;

use szhi_core::SzhiError;

/// A CLI failure, split by exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The command line itself is malformed (unknown flag, missing or
    /// unparsable value). Exit code 2; the usage text is printed.
    Usage(String),
    /// The command was well-formed but failed while running (I/O error,
    /// corrupt stream, bound violation). Exit code 1.
    Runtime(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Runtime(_) => 1,
        }
    }

    /// The error message (without the `szhi-cli: error:` prefix).
    pub fn message(&self) -> &str {
        match self {
            CliError::Usage(msg) | CliError::Runtime(msg) => msg,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

impl std::error::Error for CliError {}

impl From<SzhiError> for CliError {
    fn from(e: SzhiError) -> Self {
        CliError::Runtime(e.to_string())
    }
}

/// Runs the CLI on an already-split argument list (`argv` without the
/// program name) and returns the process exit code, printing any error to
/// stderr in the stable `szhi-cli: error: <message>` shape the
/// integration tests assert on.
///
/// The global `--stats`, `--stats-json PATH` and `--trace PATH` flags
/// work with every subcommand: they are split off before subcommand
/// parsing, switch the telemetry collectors on for the run, and emit
/// their outputs after the subcommand finishes (also on failure, so a
/// crashed run still leaves its trace behind).
pub fn run(argv: &[String]) -> i32 {
    let (argv, tel) = match args::split_telemetry(argv) {
        Ok(split) => split,
        Err(e) => return report(&e),
    };
    let cmd = match args::parse(&argv) {
        Ok(cmd) => cmd,
        Err(e) => return report(&e),
    };
    if tel.any() {
        // Stats feed the summary table and the JSON dump, and give the
        // trace export its final counter values — so they are on for
        // every telemetry mode.
        szhi_telemetry::set_stats_enabled(true);
    }
    if tel.trace.is_some() {
        szhi_telemetry::set_trace_enabled(true);
    }
    let before = szhi_telemetry::Snapshot::capture();
    let result = commands::dispatch(&cmd);
    let emitted = emit_telemetry(&tel, &before);
    match result.and(emitted) {
        Ok(()) => 0,
        Err(e) => report(&e),
    }
}

/// Writes the telemetry outputs requested by the global flags: the
/// `--stats` summary table (stderr, so piped stdout payloads stay
/// clean), the `--stats-json` registry dump, and the `--trace` Chrome
/// Trace Event Format export.
fn emit_telemetry(
    tel: &args::TelemetryArgs,
    before: &szhi_telemetry::Snapshot,
) -> Result<(), CliError> {
    if !tel.any() {
        return Ok(());
    }
    let delta = szhi_telemetry::Snapshot::capture().delta(before);
    if tel.stats {
        eprint!("{}", szhi_telemetry::render_stats(&delta));
    }
    if let Some(path) = &tel.stats_json {
        std::fs::write(path, szhi_telemetry::stats_json(&delta))
            .map_err(|e| CliError::Runtime(format!("writing stats JSON {path}: {e}")))?;
    }
    if let Some(path) = &tel.trace {
        std::fs::write(path, szhi_telemetry::export_trace_json())
            .map_err(|e| CliError::Runtime(format!("writing trace {path}: {e}")))?;
    }
    Ok(())
}

fn report(e: &CliError) -> i32 {
    eprintln!("szhi-cli: error: {}", e.message());
    if matches!(e, CliError::Usage(_)) {
        eprintln!();
        eprintln!("{}", args::USAGE);
    }
    e.exit_code()
}
