//! Hand-rolled argument parsing for the four subcommands.
//!
//! Flags accept both `--flag value` and `--flag=value`. Every parse
//! failure is a [`CliError::Usage`] (exit code 2) carrying a message that
//! names the offending token, followed by the usage text on stderr.

// szhi-analyzer: scope(no-panic-decode: all)

use crate::CliError;
use szhi_core::{ModeTuning, SzhiConfig};
use szhi_datagen::DatasetKind;
use szhi_ndgrid::Dims;

/// The usage text printed after every usage error and by `--help`.
pub const USAGE: &str = "usage: szhi-cli <subcommand> [options]

subcommands:
  encode <input> <output|-> --dims Z,Y,X --eb F [options]
      Compress a raw little-endian f32 file into a trailered container.
      --dims Z,Y,X        field shape (required)
      --eb F              error bound (required; absolute unless --rel)
      --rel               treat --eb as value-range-relative
      --chunk-span Z,Y,X  chunk span (default 64,64,64)
      --mode M            global | per-chunk | exhaustive | estimated
      --tune-interp       per-chunk interpolation tuning (v5 container)
      --threads N         worker threads for this run

  decode <input|-> <output|-> [--chunk I]
      Decompress a container back to raw little-endian f32. `-` as input
      reads a non-seekable pipe (stdin) through the forward-only source;
      --chunk I extracts one chunk (chunk-local row-major order).

  inspect <input>
      Print header, chunk table, trailer and mode/config histograms
      without decoding any chunk payload.

  bench [--dims Z,Y,X] [--eb F] [--dataset NAME] [--seed N]
        [--chunk-span Z,Y,X] [--mode M] [--jobs N] [--threads N]
      Compress/decompress a synthetic field and report ratio and
      throughput; --jobs N runs N concurrent jobs through the job
      service and checks each against a serial run byte-for-byte.

global options (accepted by every subcommand):
  --stats             print a telemetry summary table to stderr on exit
  --stats-json PATH   write every counter and histogram to PATH as JSON
  --trace PATH        write a chrome://tracing-compatible trace to PATH

exit codes: 0 success, 1 runtime failure, 2 usage error";

/// Pipeline-mode tuning policy named on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeArg {
    /// One global pipeline for every chunk.
    Global,
    /// Per-chunk choice between the CR and TP production pipelines.
    PerChunk,
    /// Exhaustive trial-encoding over the Figure-6 catalogue.
    Exhaustive,
    /// Cost-model-guided selection over the Figure-6 catalogue.
    Estimated,
}

impl ModeArg {
    /// The [`ModeTuning`] policy this flag value selects.
    pub fn tuning(&self) -> ModeTuning {
        match self {
            ModeArg::Global => ModeTuning::Global,
            ModeArg::PerChunk => ModeTuning::PerChunk,
            ModeArg::Exhaustive => ModeTuning::exhaustive(),
            ModeArg::Estimated => ModeTuning::estimated(),
        }
    }

    fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "global" => Ok(ModeArg::Global),
            "per-chunk" => Ok(ModeArg::PerChunk),
            "exhaustive" => Ok(ModeArg::Exhaustive),
            "estimated" => Ok(ModeArg::Estimated),
            _ => Err(usage(format!(
                "unknown --mode '{s}' (expected global, per-chunk, exhaustive or estimated)"
            ))),
        }
    }
}

/// Parsed `encode` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodeArgs {
    /// Raw f32 input file.
    pub input: String,
    /// Output path, or `-` for stdout.
    pub output: String,
    /// Field shape.
    pub dims: Dims,
    /// Error bound value (`--eb`).
    pub eb: f64,
    /// Whether `--eb` is value-range-relative.
    pub rel: bool,
    /// Chunk span.
    pub chunk_span: [usize; 3],
    /// Pipeline-mode tuning policy.
    pub mode: ModeArg,
    /// Per-chunk interpolation tuning (emits the v5 container).
    pub tune_interp: bool,
    /// Worker-thread override.
    pub threads: Option<usize>,
}

/// Parsed `decode` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeArgs {
    /// Container path, or `-` for stdin (forward-only).
    pub input: String,
    /// Raw f32 output path, or `-` for stdout.
    pub output: String,
    /// Decode only this chunk index.
    pub chunk: Option<usize>,
}

/// Parsed `inspect` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InspectArgs {
    /// Container path.
    pub input: String,
}

/// Parsed `bench` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Synthetic field shape.
    pub dims: Dims,
    /// Value-range-relative error bound.
    pub eb: f64,
    /// Dataset generator family.
    pub dataset: DatasetKind,
    /// Generator seed.
    pub seed: u64,
    /// Chunk span.
    pub chunk_span: [usize; 3],
    /// Pipeline-mode tuning policy.
    pub mode: ModeArg,
    /// Concurrent jobs to run through the job service.
    pub jobs: usize,
    /// Worker-thread override.
    pub threads: Option<usize>,
}

/// The global telemetry outputs requested on the command line. These
/// flags are accepted anywhere on the line, for every subcommand, and
/// stripped before subcommand parsing (see [`split_telemetry`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryArgs {
    /// `--stats`: print a summary table to stderr after the run.
    pub stats: bool,
    /// `--stats-json PATH`: write every counter and histogram to `PATH`
    /// as JSON.
    pub stats_json: Option<String>,
    /// `--trace PATH`: write the span trace to `PATH` in the Trace Event
    /// Format that `chrome://tracing` and Perfetto load.
    pub trace: Option<String>,
}

impl TelemetryArgs {
    /// Whether stats collection must be enabled for this run.
    pub fn wants_stats(&self) -> bool {
        self.stats || self.stats_json.is_some()
    }

    /// Whether any telemetry output was requested at all.
    pub fn any(&self) -> bool {
        self.wants_stats() || self.trace.is_some()
    }
}

/// Strips the global telemetry flags (`--stats`, `--stats-json PATH`,
/// `--trace PATH`, inline `=` values included) out of `argv` and returns
/// the remaining tokens plus the parsed [`TelemetryArgs`].
pub fn split_telemetry(argv: &[String]) -> Result<(Vec<String>, TelemetryArgs), CliError> {
    let mut rest: Vec<String> = Vec::with_capacity(argv.len());
    let mut tel = TelemetryArgs::default();
    let mut i = 0usize;
    while let Some(tok) = argv.get(i) {
        i += 1;
        let (name, inline) = split_inline(tok);
        let path_value = |inline: Option<&str>, i: &mut usize| -> Result<String, CliError> {
            if let Some(v) = inline {
                return Ok(v.to_string());
            }
            let v = argv
                .get(*i)
                .ok_or_else(|| usage(format!("flag {name} requires a value")))?;
            *i += 1;
            Ok(v.clone())
        };
        match name {
            "--stats" if inline.is_none() => tel.stats = true,
            "--stats-json" => tel.stats_json = Some(path_value(inline, &mut i)?),
            "--trace" => tel.trace = Some(path_value(inline, &mut i)?),
            _ => rest.push(tok.clone()),
        }
    }
    Ok((rest, tel))
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `szhi-cli encode …`
    Encode(EncodeArgs),
    /// `szhi-cli decode …`
    Decode(DecodeArgs),
    /// `szhi-cli inspect …`
    Inspect(InspectArgs),
    /// `szhi-cli bench …`
    Bench(BenchArgs),
}

fn usage(msg: String) -> CliError {
    CliError::Usage(msg)
}

/// Splits `argv` into `(positionals, flags)` where each flag is
/// `(name, Option<inline value>)` — `--flag=v` carries its value inline,
/// `--flag v` leaves it to the consumer to pull from the token stream.
struct Tokens<'a> {
    argv: &'a [String],
    next: usize,
}

impl<'a> Tokens<'a> {
    fn new(argv: &'a [String]) -> Self {
        Tokens { argv, next: 0 }
    }

    fn next(&mut self) -> Option<&'a str> {
        let tok = self.argv.get(self.next)?;
        self.next += 1;
        Some(tok.as_str())
    }

    /// The value of a flag: the inline `=value` part if present, else the
    /// next token.
    fn value(&mut self, flag: &str, inline: Option<&'a str>) -> Result<&'a str, CliError> {
        if let Some(v) = inline {
            return Ok(v);
        }
        self.next()
            .ok_or_else(|| usage(format!("flag {flag} requires a value")))
    }
}

fn split_inline(tok: &str) -> (&str, Option<&str>) {
    match tok.split_once('=') {
        Some((name, value)) => (name, Some(value)),
        None => (tok, None),
    }
}

fn parse_dims(flag: &str, s: &str) -> Result<Dims, CliError> {
    let parts: Vec<usize> = s
        .split(',')
        .map(|p| p.trim().parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|_| {
            usage(format!(
                "{flag} expects comma-separated integers, got '{s}'"
            ))
        })?;
    if parts.is_empty() || parts.len() > 3 || parts.contains(&0) {
        return Err(usage(format!(
            "{flag} expects 1-3 positive extents, got '{s}'"
        )));
    }
    Ok(Dims::from_slice(&parts))
}

fn parse_span(flag: &str, s: &str) -> Result<[usize; 3], CliError> {
    let d = parse_dims(flag, s)?;
    Ok([d.nz(), d.ny(), d.nx()])
}

fn parse_num<T: std::str::FromStr>(flag: &str, s: &str) -> Result<T, CliError> {
    s.parse::<T>()
        .map_err(|_| usage(format!("{flag} expects a number, got '{s}'")))
}

/// Parses a full command line (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, CliError> {
    let mut toks = Tokens::new(argv);
    let sub = toks
        .next()
        .ok_or_else(|| usage("missing subcommand".into()))?;
    match sub {
        "encode" => parse_encode(&mut toks),
        "decode" => parse_decode(&mut toks),
        "inspect" => parse_inspect(&mut toks),
        "bench" => parse_bench(&mut toks),
        "--help" | "-h" | "help" => Err(usage("help requested".into())),
        _ => Err(usage(format!("unknown subcommand '{sub}'"))),
    }
}

fn parse_encode(toks: &mut Tokens<'_>) -> Result<Command, CliError> {
    let mut positional: Vec<&str> = Vec::new();
    let mut dims = None;
    let mut eb = None;
    let mut rel = false;
    let mut chunk_span = SzhiConfig::DEFAULT_CHUNK_SPAN;
    let mut mode = ModeArg::Global;
    let mut tune_interp = false;
    let mut threads = None;
    while let Some(tok) = toks.next() {
        let (name, inline) = split_inline(tok);
        match name {
            "--dims" => dims = Some(parse_dims(name, toks.value(name, inline)?)?),
            "--eb" => eb = Some(parse_num::<f64>(name, toks.value(name, inline)?)?),
            "--rel" => rel = true,
            "--chunk-span" => chunk_span = parse_span(name, toks.value(name, inline)?)?,
            "--mode" => mode = ModeArg::parse(toks.value(name, inline)?)?,
            "--tune-interp" => tune_interp = true,
            "--threads" => threads = Some(parse_num::<usize>(name, toks.value(name, inline)?)?),
            _ if name.starts_with('-') && name != "-" => {
                return Err(usage(format!("unknown flag '{name}' for encode")))
            }
            _ => positional.push(tok),
        }
    }
    let [input, output] = two_positionals("encode", "<input> <output|->", &positional)?;
    if input == "-" {
        return Err(usage(
            "encode reads from a file, not stdin (--rel and the chunked reader need a real \
             file); use a temporary file"
                .into(),
        ));
    }
    Ok(Command::Encode(EncodeArgs {
        input,
        output,
        dims: dims.ok_or_else(|| usage("encode requires --dims Z,Y,X".into()))?,
        eb: eb.ok_or_else(|| usage("encode requires --eb F".into()))?,
        rel,
        chunk_span,
        mode,
        tune_interp,
        threads,
    }))
}

fn parse_decode(toks: &mut Tokens<'_>) -> Result<Command, CliError> {
    let mut positional: Vec<&str> = Vec::new();
    let mut chunk = None;
    while let Some(tok) = toks.next() {
        let (name, inline) = split_inline(tok);
        match name {
            "--chunk" => chunk = Some(parse_num::<usize>(name, toks.value(name, inline)?)?),
            _ if name.starts_with('-') && name != "-" => {
                return Err(usage(format!("unknown flag '{name}' for decode")))
            }
            _ => positional.push(tok),
        }
    }
    let [input, output] = two_positionals("decode", "<input|-> <output|->", &positional)?;
    Ok(Command::Decode(DecodeArgs {
        input,
        output,
        chunk,
    }))
}

fn parse_inspect(toks: &mut Tokens<'_>) -> Result<Command, CliError> {
    let mut positional: Vec<&str> = Vec::new();
    while let Some(tok) = toks.next() {
        if tok.starts_with('-') {
            return Err(usage(format!("unknown flag '{tok}' for inspect")));
        }
        positional.push(tok);
    }
    match positional.as_slice() {
        [input] => Ok(Command::Inspect(InspectArgs {
            input: (*input).into(),
        })),
        _ => Err(usage("inspect takes exactly one argument: <input>".into())),
    }
}

fn parse_bench(toks: &mut Tokens<'_>) -> Result<Command, CliError> {
    let mut a = BenchArgs {
        dims: Dims::d3(64, 64, 64),
        eb: 1e-3,
        dataset: DatasetKind::Rtm,
        seed: 1,
        chunk_span: [32, 32, 32],
        mode: ModeArg::Global,
        jobs: 1,
        threads: None,
    };
    while let Some(tok) = toks.next() {
        let (name, inline) = split_inline(tok);
        match name {
            "--dims" => a.dims = parse_dims(name, toks.value(name, inline)?)?,
            "--eb" => a.eb = parse_num::<f64>(name, toks.value(name, inline)?)?,
            "--dataset" => {
                let v = toks.value(name, inline)?;
                a.dataset = DatasetKind::from_name(v).ok_or_else(|| {
                    usage(format!(
                        "unknown --dataset '{v}' (expected one of cesm-atm, jhtdb, miranda, \
                         nyx, qmcpack, rtm)"
                    ))
                })?;
            }
            "--seed" => a.seed = parse_num::<u64>(name, toks.value(name, inline)?)?,
            "--chunk-span" => a.chunk_span = parse_span(name, toks.value(name, inline)?)?,
            "--mode" => a.mode = ModeArg::parse(toks.value(name, inline)?)?,
            "--jobs" => {
                a.jobs = parse_num::<usize>(name, toks.value(name, inline)?)?;
                if a.jobs == 0 {
                    return Err(usage("--jobs must be at least 1".into()));
                }
            }
            "--threads" => a.threads = Some(parse_num::<usize>(name, toks.value(name, inline)?)?),
            _ => return Err(usage(format!("unknown argument '{tok}' for bench"))),
        }
    }
    Ok(Command::Bench(a))
}

fn two_positionals(sub: &str, shape: &str, got: &[&str]) -> Result<[String; 2], CliError> {
    match got {
        [a, b] => Ok([(*a).into(), (*b).into()]),
        _ => Err(usage(format!(
            "{sub} takes exactly two positional arguments: {shape} (got {})",
            got.len()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn encode_parses_flags_in_both_styles() {
        let cmd = parse(&argv(
            "encode in.f32 out.szhi --dims 24,20,32 --eb=2e-3 --rel \
             --chunk-span 16,16,16 --mode per-chunk --tune-interp --threads 2",
        ))
        .unwrap();
        let Command::Encode(a) = cmd else {
            panic!("expected encode")
        };
        assert_eq!(a.dims, Dims::d3(24, 20, 32));
        assert_eq!(a.eb, 2e-3);
        assert!(a.rel && a.tune_interp);
        assert_eq!(a.chunk_span, [16, 16, 16]);
        assert_eq!(a.mode, ModeArg::PerChunk);
        assert_eq!(a.threads, Some(2));
    }

    #[test]
    fn missing_required_flags_are_usage_errors() {
        for bad in [
            "encode in.f32 out.szhi --eb 1e-3",
            "encode in.f32 out.szhi --dims 8,8,8",
            "encode only-one --dims 8,8,8 --eb 1e-3",
            "decode one-positional",
            "inspect",
            "frobnicate x",
            "",
            "bench --jobs 0",
            "encode in out --dims 0,8,8 --eb 1e-3",
            "encode in out --dims 8,8,8 --eb nope",
            "bench --dataset mars",
            "encode in out --dims 8,8,8 --eb 1e-3 --mode sometimes",
            "decode a b --what",
        ] {
            let args = argv(bad);
            let err = parse(&args).unwrap_err();
            assert!(
                matches!(err, CliError::Usage(_)),
                "'{bad}' should be a usage error, got {err:?}"
            );
            assert_eq!(err.exit_code(), 2);
        }
    }

    #[test]
    fn every_usage_error_message_is_pinned() {
        // One row per `usage(...)` site in this file: a command line that
        // triggers it and the message text it must carry. The static
        // analyzer's error-coverage lint checks that every usage-error
        // message literal is pinned here, so a reworded message fails this
        // test (or the lint) instead of silently changing the CLI contract.
        let cases: &[(&str, &str)] = &[
            (
                "encode in out --dims 8,8,8 --eb 1e-3 --mode sometimes",
                "unknown --mode 'sometimes' (expected global, per-chunk, exhaustive or estimated)",
            ),
            ("encode in out --dims", "flag --dims requires a value"),
            (
                "encode in out --dims 8;8 --eb 1e-3",
                "--dims expects comma-separated integers, got '8;8'",
            ),
            (
                "encode in out --dims 1,2,3,4 --eb 1e-3",
                "--dims expects 1-3 positive extents, got '1,2,3,4'",
            ),
            ("encode in out --dims 8,8,8 --eb nope", "--eb expects a number, got 'nope'"),
            ("", "missing subcommand"),
            ("--help", "help requested"),
            ("frobnicate", "unknown subcommand 'frobnicate'"),
            ("encode in out --wat", "unknown flag '--wat' for encode"),
            (
                "encode - out --dims 8,8,8 --eb 1e-3",
                "encode reads from a file, not stdin (--rel and the chunked reader need a real file); use a temporary file",
            ),
            ("encode in out --eb 1e-3", "encode requires --dims Z,Y,X"),
            ("encode in out --dims 8,8,8", "encode requires --eb F"),
            ("decode a b --what", "unknown flag '--what' for decode"),
            ("inspect --verbose", "unknown flag '--verbose' for inspect"),
            ("inspect a b", "inspect takes exactly one argument: <input>"),
            (
                "bench --dataset mars",
                "unknown --dataset 'mars' (expected one of cesm-atm, jhtdb, miranda, nyx, qmcpack, rtm)",
            ),
            ("bench --jobs 0", "--jobs must be at least 1"),
            ("bench positional", "unknown argument 'positional' for bench"),
            (
                "decode only-one",
                "decode takes exactly two positional arguments: <input|-> <output|-> (got 1)",
            ),
        ];
        for (cmdline, fragment) in cases {
            let args = argv(cmdline);
            let err = parse(&args).unwrap_err();
            let CliError::Usage(msg) = &err else {
                panic!("'{cmdline}' should be a usage error, got {err:?}")
            };
            assert_eq!(err.exit_code(), 2, "'{cmdline}'");
            assert!(
                msg.contains(fragment),
                "'{cmdline}' produced '{msg}', expected it to contain '{fragment}'"
            );
            // The front-end renders every failure in the stable stderr
            // shape documented in docs/CLI.md.
            let rendered = format!("szhi-cli: error: {}", err.message());
            assert!(rendered.starts_with("szhi-cli: error: "));
        }
    }

    #[test]
    fn telemetry_flags_split_off_for_every_subcommand() {
        let (rest, tel) = split_telemetry(&argv(
            "bench --stats --dims 16,16,16 --stats-json=stats.json --trace trace.json",
        ))
        .unwrap();
        assert_eq!(rest, argv("bench --dims 16,16,16"));
        assert!(tel.stats && tel.wants_stats() && tel.any());
        assert_eq!(tel.stats_json.as_deref(), Some("stats.json"));
        assert_eq!(tel.trace.as_deref(), Some("trace.json"));

        let (rest, tel) = split_telemetry(&argv("decode in.szhi out.f32")).unwrap();
        assert_eq!(rest, argv("decode in.szhi out.f32"));
        assert_eq!(tel, TelemetryArgs::default());
        assert!(!tel.any());

        let err = split_telemetry(&argv("inspect a.szhi --trace")).unwrap_err();
        assert!(
            matches!(&err, CliError::Usage(msg) if msg.contains("flag --trace requires a value")),
            "expected a usage error, got {err:?}"
        );
    }

    #[test]
    fn decode_accepts_stdin_and_chunk_flags() {
        let cmd = parse(&argv("decode - out.f32 --chunk 3")).unwrap();
        assert_eq!(
            cmd,
            Command::Decode(DecodeArgs {
                input: "-".into(),
                output: "out.f32".into(),
                chunk: Some(3),
            })
        );
    }

    #[test]
    fn bench_defaults_are_stable() {
        let Command::Bench(a) = parse(&argv("bench")).unwrap() else {
            panic!("expected bench")
        };
        assert_eq!(a.dims, Dims::d3(64, 64, 64));
        assert_eq!(a.jobs, 1);
        assert_eq!(a.dataset.name(), "rtm");
    }

    #[test]
    fn mode_arg_maps_to_tuning_policies() {
        assert_eq!(ModeArg::Global.tuning(), ModeTuning::Global);
        assert_eq!(ModeArg::PerChunk.tuning(), ModeTuning::PerChunk);
        assert!(matches!(
            ModeArg::Exhaustive.tuning(),
            ModeTuning::Exhaustive { .. }
        ));
        assert!(matches!(
            ModeArg::Estimated.tuning(),
            ModeTuning::Estimated { .. }
        ));
    }
}
