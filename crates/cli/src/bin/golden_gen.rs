//! Regenerates the golden-stream compatibility corpus under
//! `tests/golden/` at the workspace root (or a directory passed as the
//! only argument).
//!
//! Run after an **intentional** change to the current container's
//! encoder output, and commit the regenerated assets together with the
//! change:
//!
//! ```text
//! cargo run -p szhi-cli --bin golden-gen
//! ```

use std::path::PathBuf;
use szhi_cli::{golden, inspect, raw};

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
        });
    std::fs::create_dir_all(&dir).expect("cannot create the golden directory");

    let field = golden::golden_field();
    std::fs::write(dir.join("field.f32"), raw::to_bytes(field.as_slice()))
        .expect("cannot write field.f32");
    for v in golden::versions() {
        let bytes = golden::build(v, &field).expect("golden builder failed");
        std::fs::write(dir.join(format!("v{v}.szhi")), &bytes).expect("cannot write stream");
        let report = inspect::render(&bytes).expect("inspect failed on a golden stream");
        std::fs::write(dir.join(format!("v{v}.inspect.txt")), report)
            .expect("cannot write inspect rendering");
        println!(
            "wrote v{v}.szhi ({} bytes) and v{v}.inspect.txt",
            bytes.len()
        );
    }
    std::fs::write(dir.join("README.md"), README).expect("cannot write README.md");
    println!("golden corpus regenerated in {}", dir.display());
}

const README: &str = "# Golden-stream compatibility corpus

Pinned compressed streams for every container version the workspace has
ever shipped, all encoding the same deterministic field
(`szhi_datagen::mixed_smooth_noisy`, 24x20x32, chunk span 16x16x16,
absolute error bound 2e-3 — see `szhi_cli::golden`).

| file | contents |
|---|---|
| `field.f32` | the shared input field, raw little-endian f32 |
| `v1.szhi`..`v5.szhi` | one pinned stream per container version |
| `v1.inspect.txt`.. | the pinned `szhi-cli inspect` rendering of each |

`tests/golden_streams.rs` (workspace root) asserts that

1. the **current** version (v5) re-encodes `field.f32` byte-exactly —
   any unintentional change to the encoder's output fails the suite;
2. every **historical** version still decodes to the pinned field within
   the recorded bound, through `decompress`, `StreamSource` (seekable)
   and `ForwardSource` (forward-only) alike;
3. `szhi-cli inspect` renders every stream exactly as pinned, so the
   metadata surface (header, chunk table, trailer, histograms) cannot
   drift silently.

Regenerate **only** for an intentional format or encoder change, in the
same commit, with:

```
cargo run -p szhi-cli --bin golden-gen
```
";
