//! Raw little-endian f32 file I/O with bounded memory.
//!
//! `encode` and `decode` move whole scientific fields that may be larger
//! than RAM, so every helper here works region-by-region: reads and
//! writes touch one x-row at a time via seeks, and the `--rel` pre-scan
//! streams the file through a fixed buffer. Values are little-endian
//! f32, matching the flat binary layout of the SDRBench datasets the
//! paper evaluates on.

// szhi-analyzer: scope(no-panic-decode: all, capped-alloc: all)

use crate::CliError;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use szhi_codec::bitio::decode_capacity;
use szhi_ndgrid::{Dims, Grid, Region};

fn runtime(msg: String) -> CliError {
    CliError::Runtime(msg)
}

/// Decodes up to 4 little-endian bytes into an f32 without indexing
/// (missing bytes read as zero; every caller passes exact 4-byte chunks).
fn le_f32(b: &[u8]) -> f32 {
    let mut v = [0u8; 4];
    for (slot, &byte) in v.iter_mut().zip(b) {
        *slot = byte;
    }
    f32::from_le_bytes(v)
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> CliError {
    runtime(format!("{what} {}: {e}", path.display()))
}

/// Opens `path` for reading and checks its size is exactly the raw f32
/// footprint of `dims`, so shape mistakes fail before any compression
/// work starts.
pub fn open_field(path: &Path, dims: Dims) -> Result<File, CliError> {
    let file = File::open(path).map_err(|e| io_err("cannot open", path, e))?;
    let len = file
        .metadata()
        .map_err(|e| io_err("cannot stat", path, e))?
        .len();
    let expect = dims.nbytes_f32() as u64;
    if len != expect {
        return Err(runtime(format!(
            "{} is {len} bytes, but a {dims} f32 field needs exactly {expect}",
            path.display()
        )));
    }
    Ok(file)
}

/// Streams the file once through a fixed buffer and returns its
/// `(min, max)` with the same NaN convention as
/// [`Grid::min_max`] (`(0, 0)` when no finite value exists).
pub fn min_max(path: &Path, dims: Dims) -> Result<(f32, f32), CliError> {
    let mut file = open_field(path, dims)?;
    let mut buf = [0u8; 64 * 1024];
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    let mut pending = [0u8; 4];
    let mut pending_len = 0usize;
    loop {
        let n = file
            .read(&mut buf)
            .map_err(|e| io_err("cannot read", path, e))?;
        if n == 0 {
            break;
        }
        let (mut rest, _) = buf.split_at(n);
        // Stitch a value split across read boundaries.
        if pending_len > 0 {
            while pending_len < 4 {
                let Some((&b, tail)) = rest.split_first() else {
                    break;
                };
                if let Some(slot) = pending.get_mut(pending_len) {
                    *slot = b;
                }
                pending_len += 1;
                rest = tail;
            }
            if pending_len < 4 {
                // The read was too short to even complete the pending value.
                continue;
            }
            fold(f32::from_le_bytes(pending), &mut lo, &mut hi);
            // pending_len is reset by the tail-handling below.
        }
        let mut chunks = rest.chunks_exact(4);
        for chunk in &mut chunks {
            fold(le_f32(chunk), &mut lo, &mut hi);
        }
        let tail = chunks.remainder();
        for (slot, &b) in pending.iter_mut().zip(tail) {
            *slot = b;
        }
        pending_len = tail.len();
    }
    if lo.is_finite() && hi.is_finite() {
        Ok((lo, hi))
    } else {
        Ok((0.0, 0.0))
    }
}

fn fold(v: f32, lo: &mut f32, hi: &mut f32) {
    if v < *lo {
        *lo = v;
    }
    if v > *hi {
        *hi = v;
    }
}

/// Reads one region of a `dims`-shaped raw f32 file into a grid, one
/// x-row per read.
pub fn read_region(file: &mut File, dims: Dims, region: &Region) -> Result<Grid<f32>, CliError> {
    let mut values = Vec::with_capacity(decode_capacity(region.len()));
    let mut row = vec![0u8; region.nx() * 4];
    for z in region.z_range() {
        for y in region.y_range() {
            let offset = dims.index(z, y, region.x0()) as u64 * 4;
            file.seek(SeekFrom::Start(offset))
                .map_err(|e| runtime(format!("cannot seek input: {e}")))?;
            file.read_exact(&mut row)
                .map_err(|e| runtime(format!("cannot read input row: {e}")))?;
            values.extend(row.chunks_exact(4).map(le_f32));
        }
    }
    Ok(Grid::from_vec(region.dims(), values))
}

/// Writes one region's values (chunk-local row-major order) into a
/// `dims`-shaped raw f32 file, one x-row per write. The file must
/// already be sized (see [`presize`]).
pub fn write_region(
    file: &mut File,
    dims: Dims,
    region: &Region,
    values: &[f32],
) -> Result<(), CliError> {
    if values.len() != region.len() {
        return Err(runtime(format!(
            "region holds {} points but got {} values",
            region.len(),
            values.len()
        )));
    }
    let mut row = Vec::with_capacity(decode_capacity(region.nx() * 4));
    // `values` holds exactly `region.len()` points (checked above), so the
    // x-rows line up with chunk-local row-major order.
    let mut rows = values.chunks_exact(region.nx());
    for z in region.z_range() {
        for y in region.y_range() {
            let Some(vals) = rows.next() else { break };
            row.clear();
            for v in vals {
                row.extend_from_slice(&v.to_le_bytes());
            }
            let offset = dims.index(z, y, region.x0()) as u64 * 4;
            file.seek(SeekFrom::Start(offset))
                .map_err(|e| runtime(format!("cannot seek output: {e}")))?;
            file.write_all(&row)
                .map_err(|e| runtime(format!("cannot write output row: {e}")))?;
        }
    }
    Ok(())
}

/// Pre-sizes the output file to the full raw footprint so region writes
/// can land in any order.
pub fn presize(file: &File, dims: Dims) -> Result<(), CliError> {
    file.set_len(dims.nbytes_f32() as u64)
        .map_err(|e| runtime(format!("cannot size output file: {e}")))
}

/// Serializes a value slice to little-endian bytes.
pub fn to_bytes(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(decode_capacity(values.len() * 4));
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Parses a little-endian f32 file of exactly `dims` into a grid (whole
/// file in memory; used by tests and the golden generator, not the
/// streaming paths).
pub fn read_field(path: &Path, dims: Dims) -> Result<Grid<f32>, CliError> {
    let mut file = open_field(path, dims)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| io_err("cannot read", path, e))?;
    Ok(Grid::from_vec(
        dims,
        bytes.chunks_exact(4).map(le_f32).collect(),
    ))
}

/// Writes a full grid as a little-endian f32 stream.
pub fn write_all<W: Write>(mut out: W, values: &[f32]) -> Result<(), CliError> {
    out.write_all(&to_bytes(values))
        .map_err(|e| runtime(format!("cannot write output: {e}")))?;
    out.flush()
        .map_err(|e| runtime(format!("cannot flush output: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use szhi_ndgrid::ChunkPlan;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("szhi-cli-raw-{}-{tag}.bin", std::process::id()))
    }

    #[test]
    fn region_io_roundtrips_through_a_file() {
        let dims = Dims::d3(6, 5, 7);
        let field = Grid::from_fn(dims, |z, y, x| (z * 100 + y * 10 + x) as f32);
        let path = temp_path("region");
        std::fs::write(&path, to_bytes(field.as_slice())).unwrap();

        let mut file = open_field(&path, dims).unwrap();
        let plan = ChunkPlan::new(dims, [4, 4, 4]);
        let out_path = temp_path("region-out");
        let mut out = File::options()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&out_path)
            .unwrap();
        presize(&out, dims).unwrap();
        for i in 0..plan.len() {
            let region = plan.chunk_at(i);
            let sub = read_region(&mut file, dims, &region).unwrap();
            assert_eq!(sub.as_slice(), field.extract(&region).as_slice());
            write_region(&mut out, dims, &region, sub.as_slice()).unwrap();
        }
        let back = read_field(&out_path, dims).unwrap();
        assert_eq!(back.as_slice(), field.as_slice());
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&out_path).unwrap();
    }

    #[test]
    fn min_max_matches_grid_and_size_mismatch_is_reported() {
        let dims = Dims::d3(3, 4, 5);
        let field = Grid::from_fn(dims, |z, y, x| ((z + y) as f32).sin() - x as f32 * 0.25);
        let path = temp_path("minmax");
        std::fs::write(&path, to_bytes(field.as_slice())).unwrap();
        assert_eq!(min_max(&path, dims).unwrap(), field.min_max());

        let err = open_field(&path, Dims::d3(3, 4, 6)).unwrap_err();
        assert!(matches!(&err, CliError::Runtime(m) if m.contains("needs exactly")));
        std::fs::remove_file(&path).unwrap();
    }
}
