//! Stream inspection: a stable, human-readable dump of any container
//! version's metadata — header, chunk table, trailer, config dictionary
//! and the mode/config histograms — **without decoding a single payload
//! byte**. The output shape is pinned by the golden corpus
//! (`tests/golden/*.inspect.txt`), so keep every change here deliberate:
//! reformatting this report is a compatibility break the golden suite
//! will catch.

// szhi-analyzer: scope(no-panic-decode: all)

use std::fmt::Write;
use szhi_core::format::{self, ChunkTable, Header};
use szhi_core::{SzhiError, TRAILER_SIZE, VERSION};
use szhi_predictor::{LevelConfig, Scheme, Spline};

/// Renders the inspection report for a compressed stream. Fails with the
/// same typed errors the decoders produce (bad magic, truncated table,
/// checksum mismatch) and never panics on corrupt input — the byte-flip
/// harness in `tests/inspect_fuzz.rs` holds it to that.
pub fn render(bytes: &[u8]) -> Result<String, SzhiError> {
    let version = format::stream_version(bytes)?;
    let mut out = String::new();
    let _ = writeln!(out, "szhi stream: v{version} ({})", version_name(version));
    let _ = writeln!(out, "file size: {} bytes", bytes.len());
    if version == VERSION {
        let (header, anchors, outliers, payload) = format::read_stream(bytes)?;
        render_header(&mut out, &header);
        let _ = writeln!(out);
        let _ = writeln!(out, "sections:");
        let _ = writeln!(out, "  anchors:  {} values", anchors.len());
        let _ = writeln!(out, "  outliers: {} entries", outliers.len());
        let _ = writeln!(out, "  payload:  {} bytes", payload.len());
        return Ok(out);
    }
    let (header, table) = format::read_chunk_table(bytes)?;
    render_header(&mut out, &header);
    render_chunks(&mut out, &table);
    if version >= 4 {
        render_trailer(&mut out, bytes);
    }
    if !table.configs.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "config dictionary:");
        for (i, levels) in table.configs.iter().enumerate() {
            let _ = writeln!(out, "  {i}: {}", levels_str(levels));
        }
    }
    render_table(&mut out, &table);
    render_histograms(&mut out, &table);
    Ok(out)
}

fn version_name(version: u8) -> &'static str {
    match version {
        1 => "monolithic",
        2 => "chunked",
        3 => "streamed",
        4 => "trailered",
        5 => "tuned",
        _ => "unknown",
    }
}

fn render_header(out: &mut String, header: &Header) {
    let _ = writeln!(out);
    let _ = writeln!(out, "header:");
    let _ = writeln!(
        out,
        "  dims:     {} ({} points, {} bytes raw)",
        header.dims,
        header.dims.len(),
        header.dims.nbytes_f32()
    );
    let _ = writeln!(out, "  abs eb:   {:e}", header.abs_eb);
    let _ = writeln!(
        out,
        "  pipeline: {} (id {})",
        header.pipeline.name(),
        header.pipeline.id()
    );
    let _ = writeln!(
        out,
        "  reorder:  {}",
        if header.reorder { "on" } else { "off" }
    );
    let [bz, by, bx] = header.interp.block_span;
    let _ = writeln!(
        out,
        "  interp:   anchor stride {}, block span {bz}x{by}x{bx}",
        header.interp.anchor_stride,
    );
    let _ = writeln!(out, "  levels:   {}", levels_str(&header.interp.levels));
}

fn levels_str(levels: &[LevelConfig]) -> String {
    let parts: Vec<String> = levels
        .iter()
        .map(|lc| {
            let scheme = match lc.scheme {
                Scheme::DimSequence => "dimseq",
                Scheme::MultiDim => "multidim",
            };
            let spline = match lc.spline {
                Spline::Linear => "linear",
                Spline::Cubic => "cubic",
            };
            format!("{scheme}-{spline}")
        })
        .collect();
    parts.join(", ")
}

fn render_chunks(out: &mut String, table: &ChunkTable) {
    let data_bytes: usize = table.entries.iter().map(|e| e.len).sum();
    let _ = writeln!(out);
    let _ = writeln!(out, "chunks:");
    let [sz, sy, sx] = table.span;
    let _ = writeln!(out, "  span:        {sz}x{sy}x{sx}");
    let _ = writeln!(out, "  count:       {}", table.entries.len());
    let _ = writeln!(out, "  data start:  {}", table.data_start);
    let _ = writeln!(out, "  chunk bytes: {data_bytes}");
}

/// The fixed-size trailer, parsed by hand from the last
/// [`TRAILER_SIZE`] bytes: `table_offset u64 | n_chunks u64 |
/// table_crc32 u32 | magic`. `read_chunk_table` already validated it;
/// this only re-reads the fields for display, so a short stream simply
/// omits the section instead of failing.
fn render_trailer(out: &mut String, bytes: &[u8]) {
    let tail = match bytes
        .len()
        .checked_sub(TRAILER_SIZE)
        .and_then(|s| bytes.get(s..))
    {
        Some(tail) => tail,
        None => return,
    };
    let field = |range: std::ops::Range<usize>| -> u64 {
        let mut v = [0u8; 8];
        if let (Some(dst), Some(src)) = (v.get_mut(..range.len()), tail.get(range)) {
            dst.copy_from_slice(src);
        }
        u64::from_le_bytes(v)
    };
    let _ = writeln!(out);
    let _ = writeln!(out, "trailer:");
    let _ = writeln!(
        out,
        "  magic:        {}",
        String::from_utf8_lossy(tail.get(20..24).unwrap_or_default())
    );
    let _ = writeln!(out, "  table offset: {}", field(0..8));
    let _ = writeln!(out, "  n chunks:     {}", field(8..16));
    let _ = writeln!(out, "  table crc32:  {:#010x}", field(16..20) as u32);
}

fn render_table(out: &mut String, table: &ChunkTable) {
    let _ = writeln!(out);
    let _ = writeln!(out, "chunk table:");
    let _ = writeln!(
        out,
        "  {:>4}  {:>10}  {:>10}  {:<20}  {:>4}  {:<10}",
        "idx", "offset", "length", "pipeline", "cfg", "crc32"
    );
    for (i, e) in table.entries.iter().enumerate() {
        let cfg = match e.config {
            Some(id) => id.to_string(),
            None => "-".into(),
        };
        let crc = match e.checksum {
            Some(c) => format!("{c:#010x}"),
            None => "-".into(),
        };
        let _ = writeln!(
            out,
            "  {i:>4}  {:>10}  {:>10}  {:<20}  {cfg:>4}  {crc:<10}",
            e.offset,
            e.len,
            e.pipeline.name(),
        );
    }
}

/// The merged per-stream usage table: one row per (pipeline, config)
/// pair a chunk actually used, with the chunk count and the recorded
/// compressed bytes side by side, rendered through the shared telemetry
/// table renderer. Tuned (v5) streams show their config ids in the
/// `cfg` column; older versions show `-` there.
fn render_histograms(out: &mut String, table: &ChunkTable) {
    let mut groups: Vec<(u8, &str, Option<u16>, usize, usize)> = Vec::new();
    for e in &table.entries {
        match groups
            .iter_mut()
            .find(|(id, _, cfg, _, _)| *id == e.pipeline.id() && *cfg == e.config)
        {
            Some((_, _, _, n, bytes)) => {
                *n += 1;
                *bytes += e.len;
            }
            None => groups.push((e.pipeline.id(), e.pipeline.name(), e.config, 1, e.len)),
        }
    }
    groups.sort_by_key(|&(id, _, cfg, _, _)| (id, cfg));
    let rows: Vec<Vec<String>> = groups
        .iter()
        .map(|(id, name, cfg, n, bytes)| {
            vec![
                format!("{name} (id {id})"),
                match cfg {
                    Some(c) => c.to_string(),
                    None => "-".into(),
                },
                n.to_string(),
                bytes.to_string(),
            ]
        })
        .collect();
    let _ = writeln!(out);
    let _ = writeln!(out, "pipeline/config usage:");
    out.push_str(&szhi_telemetry::render_ascii_table(
        &["pipeline", "cfg", "chunks", "bytes"],
        &rows,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use szhi_core::{compress, ErrorBound, ModeTuning, SzhiConfig};
    use szhi_ndgrid::Dims;

    fn cfg() -> SzhiConfig {
        SzhiConfig::new(ErrorBound::Absolute(2e-3)).with_auto_tune(false)
    }

    #[test]
    fn renders_every_version_without_decoding_payloads() {
        let field = szhi_datagen::mixed_smooth_noisy(Dims::d3(24, 20, 32));
        let v1 = compress(&field, &cfg()).unwrap();
        let report = render(&v1).unwrap();
        assert!(report.contains("v1 (monolithic)"));
        assert!(report.contains("payload:"));
        assert!(report.contains("abs eb:   2e-3"));

        let v3 = compress(
            &field,
            &cfg()
                .with_chunk_span([16, 16, 16])
                .with_mode_tuning(ModeTuning::PerChunk),
        )
        .unwrap();
        let report = render(&v3).unwrap();
        assert!(report.contains("v3 (streamed)"));
        assert!(report.contains("pipeline/config usage:"));
        assert!(report.contains("chunk table:"));
        assert!(!report.contains("trailer:"), "v3 has no trailer");

        let v5 = compress(
            &field,
            &cfg()
                .with_chunk_span([16, 16, 16])
                .with_chunk_interp_tuning(true),
        )
        .unwrap();
        let report = render(&v5).unwrap();
        assert!(report.contains("v5 (tuned)"));
        assert!(report.contains("trailer:"));
        assert!(report.contains("magic:        SZT5"));
        assert!(report.contains("config dictionary:"));
        // The usage table carries the per-chunk config ids next to the
        // recorded compressed sizes — one table, not two histograms.
        assert!(report.contains("pipeline/config usage:"));
        assert!(report.contains("  pipeline"));
        assert!(report.contains("cfg"));
        assert!(report.contains("chunks"));
        assert!(report.contains("bytes"));
    }

    #[test]
    fn garbage_input_is_a_typed_error() {
        assert!(render(b"not a szhi stream at all").is_err());
        assert!(render(b"").is_err());
    }
}
