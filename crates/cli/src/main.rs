//! The `szhi-cli` binary: a thin shell around [`szhi_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(szhi_cli::run(&argv));
}
