//! The four subcommand implementations.
//!
//! Data flows through the bounded-memory engines: `encode` reads the
//! raw field region-by-region into a [`StreamSink`], `decode` writes
//! region-by-region from a [`StreamSource`] (or, for `-`, a
//! [`ForwardSource`] over stdin), so neither side ever holds a full
//! uncompressed field unless the data itself must leave on stdout.
//! Progress summaries go to stderr whenever stdout may carry data.

// szhi-analyzer: scope(no-panic-decode: all, capped-alloc: all)

use crate::args::{BenchArgs, Command, DecodeArgs, EncodeArgs, InspectArgs};
use crate::{inspect, raw, CliError};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;
use szhi_core::{
    decompress, ErrorBound, ForwardSource, JobService, StreamSink, StreamSource, SzhiConfig,
};
use szhi_ndgrid::Grid;

fn runtime(msg: String) -> CliError {
    CliError::Runtime(msg)
}

/// Runs one parsed command to completion.
pub fn dispatch(cmd: &Command) -> Result<(), CliError> {
    match cmd {
        Command::Encode(a) => encode(a),
        Command::Decode(a) => decode(a),
        Command::Inspect(a) => inspect_cmd(a),
        Command::Bench(a) => bench(a),
    }
}

/// The streaming-safe configuration an `encode` run resolves to: an
/// absolute bound (the `--rel` pre-scan happens here) with whole-field
/// auto-tuning off, as [`StreamSink`] requires.
pub fn encode_config(a: &EncodeArgs) -> Result<SzhiConfig, CliError> {
    let abs_eb = if a.rel {
        let (lo, hi) = raw::min_max(Path::new(&a.input), a.dims)?;
        ErrorBound::Relative(a.eb).absolute((hi - lo) as f64)
    } else {
        a.eb
    };
    Ok(SzhiConfig::new(ErrorBound::Absolute(abs_eb))
        .with_auto_tune(false)
        .with_chunk_span(a.chunk_span)
        .with_mode_tuning(a.mode.tuning())
        .with_chunk_interp_tuning(a.tune_interp))
}

fn encode(a: &EncodeArgs) -> Result<(), CliError> {
    if let Some(t) = a.threads {
        rayon::set_num_threads(t);
    }
    let cfg = encode_config(a)?;
    let mut input = raw::open_field(Path::new(&a.input), a.dims)?;
    let to_stdout = a.output == "-";
    let out: Box<dyn Write> = if to_stdout {
        Box::new(std::io::stdout())
    } else {
        let file = File::create(&a.output)
            .map_err(|e| runtime(format!("cannot create {}: {e}", a.output)))?;
        Box::new(BufWriter::new(file))
    };
    let mut sink = StreamSink::new(out, a.dims, &cfg)?;
    let n_chunks = sink.plan().len();
    while let Some(region) = sink.next_chunk_region() {
        let chunk = raw::read_region(&mut input, a.dims, &region)?;
        sink.push_chunk(&chunk)?;
    }
    let (mut out, stats) = sink.finish_with_stats()?;
    out.flush()
        .map_err(|e| runtime(format!("cannot flush output: {e}")))?;
    drop(out);
    let summary = format!(
        "encoded {} ({}) -> {}: {} -> {} bytes (ratio {:.2}) in {n_chunks} chunks, abs eb {:e}",
        a.input,
        a.dims,
        a.output,
        stats.original_bytes,
        stats.compressed_bytes,
        stats.compression_ratio,
        stats.abs_eb
    );
    if to_stdout {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
    Ok(())
}

fn decode(a: &DecodeArgs) -> Result<(), CliError> {
    if a.input == "-" {
        decode_pipe(a)
    } else {
        decode_file(a)
    }
}

/// Seekable decode path: random access through [`StreamSource`], with
/// bounded memory when the output is a file (pre-sized, one region
/// written per chunk).
fn decode_file(a: &DecodeArgs) -> Result<(), CliError> {
    let file =
        File::open(&a.input).map_err(|e| runtime(format!("cannot open {}: {e}", a.input)))?;
    let mut source = StreamSource::new(BufReader::new(file))?;
    let dims = source.dims();
    if let Some(want) = a.chunk {
        let count = source.chunk_count();
        if want >= count {
            return Err(runtime(format!(
                "chunk {want} is out of range: the stream has {count} chunks"
            )));
        }
        let (region, sub) = source.read_chunk(want)?;
        write_values(&a.output, sub.as_slice())?;
        eprintln!(
            "decoded chunk {want} of {}: region {}x{}x{} at ({}, {}, {})",
            a.input,
            region.nz(),
            region.ny(),
            region.nx(),
            region.z0(),
            region.y0(),
            region.x0()
        );
        return Ok(());
    }
    if a.output == "-" {
        let grid = source.read_all()?;
        raw::write_all(std::io::stdout(), grid.as_slice())?;
    } else {
        let mut out = create_sized(&a.output, dims)?;
        for i in 0..source.chunk_count() {
            let (region, sub) = source.read_chunk(i)?;
            raw::write_region(&mut out, dims, &region, sub.as_slice())?;
        }
    }
    eprintln!(
        "decoded {} -> {}: {dims} ({} points, {} chunks)",
        a.input,
        a.output,
        dims.len(),
        source.chunk_count()
    );
    Ok(())
}

/// Forward-only decode path for pipes: chunks stream off stdin in offset
/// order through [`ForwardSource`]; the table and trailer of a trailered
/// container are validated at end-of-stream.
fn decode_pipe(a: &DecodeArgs) -> Result<(), CliError> {
    let stdin = std::io::stdin();
    let mut source = ForwardSource::new(stdin.lock())?;
    let dims = source.dims();
    let count = source.chunk_count();
    if let Some(want) = a.chunk {
        if want >= count {
            return Err(runtime(format!(
                "chunk {want} is out of range: the stream has {count} chunks"
            )));
        }
        // No seeking on a pipe: decode forward and keep only the wanted
        // chunk.
        loop {
            let index = source.next_index();
            let (_region, sub) = source
                .next_chunk()
                .ok_or_else(|| runtime(format!("the stream ended before chunk {want}")))??;
            if index == want {
                write_values(&a.output, sub.as_slice())?;
                eprintln!("decoded chunk {want} from stdin");
                return Ok(());
            }
        }
    }
    if a.output == "-" {
        let grid = source.read_all()?;
        raw::write_all(std::io::stdout(), grid.as_slice())?;
    } else {
        let mut out = create_sized(&a.output, dims)?;
        while let Some(chunk) = source.next_chunk() {
            let (region, sub) = chunk?;
            raw::write_region(&mut out, dims, &region, sub.as_slice())?;
        }
    }
    eprintln!(
        "decoded stdin -> {}: {dims} ({} points, {count} chunks)",
        a.output,
        dims.len()
    );
    Ok(())
}

fn create_sized(path: &str, dims: szhi_ndgrid::Dims) -> Result<File, CliError> {
    let out = File::options()
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)
        .map_err(|e| runtime(format!("cannot create {path}: {e}")))?;
    raw::presize(&out, dims)?;
    Ok(out)
}

fn write_values(output: &str, values: &[f32]) -> Result<(), CliError> {
    if output == "-" {
        raw::write_all(std::io::stdout(), values)
    } else {
        let file =
            File::create(output).map_err(|e| runtime(format!("cannot create {output}: {e}")))?;
        raw::write_all(BufWriter::new(file), values)
    }
}

fn inspect_cmd(a: &InspectArgs) -> Result<(), CliError> {
    let bytes =
        std::fs::read(&a.input).map_err(|e| runtime(format!("cannot read {}: {e}", a.input)))?;
    let report = inspect::render(&bytes)?;
    print!("{report}");
    Ok(())
}

/// Compresses a field through a [`StreamSink`] into memory — the serial
/// reference the `--jobs` check compares against, and the timed body of
/// the single-job bench.
fn sink_bytes(field: &Grid<f32>, cfg: &SzhiConfig) -> Result<Vec<u8>, CliError> {
    let mut sink = StreamSink::new(Vec::new(), field.dims(), cfg)?;
    while let Some(region) = sink.next_chunk_region() {
        let chunk = Grid::from_vec(region.dims(), field.extract(&region));
        sink.push_chunk(&chunk)?;
    }
    Ok(sink.finish()?)
}

/// The timed region of the bench encode body.
static BENCH_ENCODE: szhi_telemetry::Span = szhi_telemetry::Span::new("bench.encode");
/// The timed region of the bench decode body.
static BENCH_DECODE: szhi_telemetry::Span = szhi_telemetry::Span::new("bench.decode");

/// The recorded wall time of one span in a snapshot, in seconds.
fn span_secs(snap: &szhi_telemetry::Snapshot, name: &str) -> f64 {
    snap.histogram(name).map_or(0.0, |h| h.sum as f64 / 1e9)
}

fn bench(a: &BenchArgs) -> Result<(), CliError> {
    if let Some(t) = a.threads {
        rayon::set_num_threads(t);
    }
    let field = a.dataset.generate(a.dims, a.seed);
    let abs_eb = ErrorBound::Relative(a.eb).absolute(field.value_range() as f64);
    let cfg = SzhiConfig::new(ErrorBound::Absolute(abs_eb))
        .with_auto_tune(false)
        .with_chunk_span(a.chunk_span)
        .with_mode_tuning(a.mode.tuning());

    // The stopwatch is the telemetry stack itself: spans time the encode
    // and decode bodies and the report reads the durations back out of a
    // snapshot delta — the same numbers `--stats` and `--trace` carry.
    szhi_telemetry::set_stats_enabled(true);
    let before = szhi_telemetry::Snapshot::capture();
    let bytes = {
        let _span = BENCH_ENCODE.enter();
        sink_bytes(&field, &cfg)?
    };
    let restored = {
        let _span = BENCH_DECODE.enter();
        decompress(&bytes)?
    };
    let delta = szhi_telemetry::Snapshot::capture().delta(&before);
    let enc_secs = span_secs(&delta, "bench.encode");
    let dec_secs = span_secs(&delta, "bench.decode");

    let mut max_err = 0.0f64;
    for (x, y) in field.as_slice().iter().zip(restored.as_slice()) {
        max_err = max_err.max(((*x as f64) - (*y as f64)).abs());
    }
    if max_err > abs_eb {
        return Err(runtime(format!(
            "error bound violated: max |err| {max_err:e} exceeds {abs_eb:e}"
        )));
    }
    let mib = field.dims().nbytes_f32() as f64 / (1024.0 * 1024.0);
    println!(
        "bench {} {} seed {}: {} -> {} bytes (ratio {:.2})",
        a.dataset.name(),
        a.dims,
        a.seed,
        field.dims().nbytes_f32(),
        bytes.len(),
        field.dims().nbytes_f32() as f64 / bytes.len() as f64
    );
    println!(
        "  encode {enc_secs:.3} s ({:.1} MiB/s), decode {dec_secs:.3} s ({:.1} MiB/s), \
         max |err| {max_err:.3e} within bound {abs_eb:.3e}",
        mib / enc_secs.max(1e-9),
        mib / dec_secs.max(1e-9)
    );
    if a.jobs > 1 {
        bench_jobs(a, &cfg)?;
    }
    Ok(())
}

/// Runs `--jobs N` concurrent compress jobs through the [`JobService`]
/// (each on its own seed) and verifies every job's archive is
/// byte-identical to a serial [`StreamSink`] run of the same field.
fn bench_jobs(a: &BenchArgs, cfg: &SzhiConfig) -> Result<(), CliError> {
    let service = JobService::new();
    let mut jobs = Vec::with_capacity(szhi_codec::bitio::decode_capacity(a.jobs));
    for j in 0..a.jobs {
        let seed = a.seed + j as u64;
        let field = a.dataset.generate(a.dims, seed);
        let handle = service.compress(field.clone(), cfg, Vec::new())?;
        jobs.push((seed, field, handle));
    }
    for (seed, field, handle) in jobs {
        // Wait on the progress API rather than blocking in `join`
        // directly, so a `--jobs` run exercises the same reporting a
        // long-lived service would poll.
        while !handle.is_finished() {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let progress = handle.progress();
        let (bytes, stats) = handle.join()?;
        let serial = sink_bytes(&field, cfg)?;
        if bytes != serial {
            return Err(runtime(format!(
                "job for seed {seed} produced {} bytes that diverge from the serial run \
                 ({} bytes)",
                bytes.len(),
                serial.len()
            )));
        }
        println!(
            "  job seed {seed}: {}/{} chunks, {} bytes (ratio {:.2}), byte-identical to serial",
            progress.done,
            progress.total,
            bytes.len(),
            stats.compression_ratio
        );
    }
    println!(
        "jobs: {} concurrent jobs, every archive byte-identical to its serial run",
        a.jobs
    );
    Ok(())
}
