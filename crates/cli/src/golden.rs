//! Golden-stream compatibility corpus builders.
//!
//! One shared deterministic field is compressed into every container
//! version the workspace has ever shipped (v1 monolithic through v5
//! tuned). The `golden-gen` binary pins the resulting bytes (plus the
//! field and each stream's `inspect` rendering) under `tests/golden/`,
//! and the root `tests/golden_streams.rs` suite holds the codebase to
//! them: the **current** version must re-encode byte-exactly, and every
//! **historical** version must keep decoding to the pinned field within
//! the recorded bound. Builders must therefore stay deterministic —
//! fixed field, fixed span, absolute bound, no whole-field auto-tuning —
//! and any intentional change to the current encoder's output is made
//! visible by regenerating the corpus in the same commit.

use szhi_core::format;
use szhi_core::{compress, ErrorBound, ModeTuning, StreamSink, SzhiConfig, SzhiError};
use szhi_ndgrid::{Dims, Grid};

/// Absolute error bound every golden stream is encoded under (recorded
/// in `tests/golden/README.md` and asserted by the decode checks).
pub const GOLDEN_ABS_EB: f64 = 2e-3;

/// Chunk span of the chunked golden streams: 16³ turns the golden field
/// into a 2×2×2 plan whose low-x chunks are smooth and high-x chunks
/// noisy, so per-chunk tuning exercises both production pipelines.
pub const GOLDEN_SPAN: [usize; 3] = [16, 16, 16];

/// Shape of the golden field.
pub fn golden_dims() -> Dims {
    Dims::d3(24, 20, 32)
}

/// The shared corpus field: deterministic in its dims alone (half
/// smooth ramp, half hash noise — see
/// [`szhi_datagen::mixed_smooth_noisy`]).
pub fn golden_field() -> Grid<f32> {
    szhi_datagen::mixed_smooth_noisy(golden_dims())
}

/// Every container version with a pinned golden stream, oldest first.
pub fn versions() -> [u8; 5] {
    [1, 2, 3, 4, 5]
}

fn base() -> SzhiConfig {
    SzhiConfig::new(ErrorBound::Absolute(GOLDEN_ABS_EB)).with_auto_tune(false)
}

/// Builds the golden stream for one container version from `field`.
///
/// Each version is produced the way it was produced when it shipped:
/// v1 by the monolithic engine, v2 by re-containerizing a global-mode
/// v3 stream (v2 predates per-chunk mode bytes, so its ancestor must
/// use one global pipeline), v3 by the chunked engine with per-chunk
/// CR/TP selection, v4 by a [`StreamSink`] with estimator-guided mode
/// tuning, and v5 by the same sink with per-chunk interpolation tuning
/// on top.
pub fn build(version: u8, field: &Grid<f32>) -> Result<Vec<u8>, SzhiError> {
    match version {
        1 => compress(field, &base()),
        2 => {
            let v3 = compress(field, &base().with_chunk_span(GOLDEN_SPAN))?;
            let (header, table) = format::read_stream_chunked(&v3)?;
            let bodies: Vec<Vec<u8>> = (0..table.entries.len())
                .map(|i| table.chunk_slice(&v3, i).to_vec())
                .collect();
            Ok(format::write_stream_v2(&header, table.span, &bodies))
        }
        3 => compress(
            field,
            &base()
                .with_chunk_span(GOLDEN_SPAN)
                .with_mode_tuning(ModeTuning::PerChunk),
        ),
        4 => sink_stream(
            field,
            &base()
                .with_chunk_span(GOLDEN_SPAN)
                .with_mode_tuning(ModeTuning::estimated()),
        ),
        5 => sink_stream(
            field,
            &base()
                .with_chunk_span(GOLDEN_SPAN)
                .with_mode_tuning(ModeTuning::estimated())
                .with_chunk_interp_tuning(true),
        ),
        v => Err(SzhiError::InvalidInput(format!(
            "no golden builder for container version {v}"
        ))),
    }
}

fn sink_stream(field: &Grid<f32>, cfg: &SzhiConfig) -> Result<Vec<u8>, SzhiError> {
    let mut sink = StreamSink::new(Vec::new(), field.dims(), cfg)?;
    while let Some(region) = sink.next_chunk_region() {
        let chunk = Grid::from_vec(region.dims(), field.extract(&region));
        sink.push_chunk(&chunk)?;
    }
    sink.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use szhi_core::{decompress, stream_version};

    #[test]
    fn builders_are_deterministic_and_version_correct() {
        let field = golden_field();
        for v in versions() {
            let a = build(v, &field).unwrap();
            let b = build(v, &field).unwrap();
            assert_eq!(a, b, "v{v} builder must be deterministic");
            assert_eq!(stream_version(&a).unwrap(), v, "v{v} builder version");
        }
        assert!(build(6, &field).is_err());
    }

    #[test]
    fn every_golden_version_decodes_within_the_recorded_bound() {
        let field = golden_field();
        for v in versions() {
            let bytes = build(v, &field).unwrap();
            let restored = decompress(&bytes).unwrap();
            assert_eq!(restored.dims(), field.dims());
            for (a, b) in field.as_slice().iter().zip(restored.as_slice()) {
                assert!(
                    ((*a as f64) - (*b as f64)).abs() <= GOLDEN_ABS_EB,
                    "v{v} violates the golden bound"
                );
            }
        }
    }
}
