//! Corrupt-input fuzz of the `inspect` renderer, mirroring the 3-mask
//! byte-flip harness the core decoders are held to: flipping any single
//! byte with each mask (0x01, 0x80, 0xFF), and truncating at any prefix
//! length, must yield a typed error or a (possibly nonsensical) report —
//! never a panic and never an allocation blowup, because `render` only
//! walks metadata the format layer has already validated.

use szhi_cli::{golden, inspect};

const MASKS: [u8; 3] = [0x01, 0x80, 0xFF];

fn assert_never_panics(tag: &str, bytes: &[u8]) {
    for pos in 0..bytes.len() {
        for mask in MASKS {
            let mut corrupt = bytes.to_vec();
            corrupt[pos] ^= mask;
            let result = std::panic::catch_unwind(|| {
                let _ = inspect::render(&corrupt);
            });
            assert!(
                result.is_ok(),
                "{tag}: inspect panicked with byte {pos} flipped by {mask:#04x}"
            );
        }
    }
    let step = (bytes.len() / 97).max(1);
    for cut in (0..bytes.len()).step_by(step) {
        let prefix = &bytes[..cut];
        let result = std::panic::catch_unwind(|| {
            let _ = inspect::render(prefix);
        });
        assert!(result.is_ok(), "{tag}: inspect panicked truncated at {cut}");
    }
}

#[test]
fn inspect_survives_byte_flips_and_truncation_on_every_version() {
    let field = golden::golden_field();
    for version in golden::versions() {
        let bytes = golden::build(version, &field).unwrap();
        assert_never_panics(&format!("v{version}"), &bytes);
    }
}
