//! End-to-end tests of the `szhi-cli` binary: real files, real pipes,
//! real exit codes. Every test drives the compiled binary through
//! `std::process::Command` (`CARGO_BIN_EXE_szhi-cli`), so the argument
//! surface, the stream layouts on disk and the stderr/exit-code contract
//! are all exercised exactly as a shell user sees them.

use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use szhi_core::{decompress, stream_version};
use szhi_ndgrid::{Dims, Grid};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_szhi-cli"))
}

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("szhi-cli-e2e-{}-{tag}", std::process::id()))
}

fn field() -> Grid<f32> {
    szhi_datagen::mixed_smooth_noisy(Dims::d3(24, 20, 32))
}

fn to_bytes(values: &[f32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn to_f32(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect()
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("cannot run szhi-cli")
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed: status {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// encode → inspect → decode over real files, bit-compared against the
/// in-memory engine.
#[test]
fn encode_inspect_decode_roundtrip_on_files() {
    let input = temp("rt-in.f32");
    let archive = temp("rt.szhi");
    let output = temp("rt-out.f32");
    let f = field();
    std::fs::write(&input, to_bytes(f.as_slice())).unwrap();

    let out = run(&[
        "encode",
        input.to_str().unwrap(),
        archive.to_str().unwrap(),
        "--dims",
        "24,20,32",
        "--eb",
        "2e-3",
        "--chunk-span",
        "16,16,16",
        "--mode",
        "per-chunk",
    ]);
    assert_ok(&out, "encode");
    assert!(String::from_utf8_lossy(&out.stdout).contains("encoded"));

    // The archive is a well-formed trailered stream the library decodes.
    let bytes = std::fs::read(&archive).unwrap();
    assert_eq!(stream_version(&bytes).unwrap(), 4);
    let restored = decompress(&bytes).unwrap();

    let out = run(&["inspect", archive.to_str().unwrap()]);
    assert_ok(&out, "inspect");
    let report = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(report.contains("v4 (trailered)"));
    assert!(report.contains("pipeline/config usage:"));

    let out = run(&[
        "decode",
        archive.to_str().unwrap(),
        output.to_str().unwrap(),
    ]);
    assert_ok(&out, "decode");
    // Bit-identical to the in-memory decompression of the same archive…
    let decoded = to_f32(&std::fs::read(&output).unwrap());
    assert_eq!(decoded, restored.as_slice());
    // …and within the bound of the original field.
    for (a, b) in f.as_slice().iter().zip(&decoded) {
        assert!(((*a as f64) - (*b as f64)).abs() <= 2e-3);
    }

    for p in [&input, &archive, &output] {
        std::fs::remove_file(p).unwrap();
    }
}

/// `decode - out` reads the archive from a non-seekable stdin pipe
/// through the forward-only source.
#[test]
fn decode_reads_from_a_stdin_pipe() {
    let input = temp("pipe-in.f32");
    let archive = temp("pipe.szhi");
    let output = temp("pipe-out.f32");
    let f = field();
    std::fs::write(&input, to_bytes(f.as_slice())).unwrap();
    assert_ok(
        &run(&[
            "encode",
            input.to_str().unwrap(),
            archive.to_str().unwrap(),
            "--dims",
            "24,20,32",
            "--eb",
            "2e-3",
            "--chunk-span",
            "16,16,16",
            "--tune-interp",
        ]),
        "encode",
    );
    let bytes = std::fs::read(&archive).unwrap();
    assert_eq!(stream_version(&bytes).unwrap(), 5, "tuned container");

    let mut child = bin()
        .args(["decode", "-", output.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    use std::io::Write as _;
    child.stdin.take().unwrap().write_all(&bytes).unwrap();
    let out = child.wait_with_output().unwrap();
    assert_ok(&out, "decode from stdin");

    let decoded = to_f32(&std::fs::read(&output).unwrap());
    assert_eq!(decoded, decompress(&bytes).unwrap().as_slice());

    for p in [&input, &archive, &output] {
        std::fs::remove_file(p).unwrap();
    }
}

/// `--chunk i` extracts one chunk via random access, matching the
/// library's `decompress_chunk`.
#[test]
fn decode_single_chunk_matches_random_access() {
    let input = temp("chunk-in.f32");
    let archive = temp("chunk.szhi");
    let output = temp("chunk-out.f32");
    let f = field();
    std::fs::write(&input, to_bytes(f.as_slice())).unwrap();
    assert_ok(
        &run(&[
            "encode",
            input.to_str().unwrap(),
            archive.to_str().unwrap(),
            "--dims",
            "24,20,32",
            "--eb",
            "2e-3",
            "--chunk-span",
            "16,16,16",
        ]),
        "encode",
    );
    let bytes = std::fs::read(&archive).unwrap();
    let (_, want) = szhi_core::decompress_chunk(&bytes, 3).unwrap();

    assert_ok(
        &run(&[
            "decode",
            archive.to_str().unwrap(),
            output.to_str().unwrap(),
            "--chunk",
            "3",
        ]),
        "decode --chunk",
    );
    assert_eq!(to_f32(&std::fs::read(&output).unwrap()), want.as_slice());

    // Out-of-range chunk indices are runtime errors, not panics.
    let out = run(&[
        "decode",
        archive.to_str().unwrap(),
        output.to_str().unwrap(),
        "--chunk",
        "99",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));

    for p in [&input, &archive, &output] {
        std::fs::remove_file(p).unwrap();
    }
}

/// Bad command lines exit 2 with the usage text; runtime failures exit 1
/// with the stable error prefix.
#[test]
fn exit_codes_and_stderr_shape() {
    for bad in [
        vec!["frobnicate"],
        vec!["encode", "in", "out"],
        vec!["encode", "in", "out", "--dims", "8,8,8", "--eb", "nope"],
        vec!["decode", "only-one"],
        vec!["inspect"],
        vec![],
    ] {
        let out = run(&bad);
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("szhi-cli: error:"), "args {bad:?}");
        assert!(stderr.contains("usage:"), "args {bad:?}");
    }

    // Missing input file: well-formed command, runtime failure.
    let out = run(&[
        "encode",
        "/nonexistent/input.f32",
        "/tmp/out.szhi",
        "--dims",
        "8,8,8",
        "--eb",
        "1e-3",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("szhi-cli: error:"));

    // Corrupt archive: typed decode error, not a panic.
    let garbage = temp("garbage.szhi");
    std::fs::write(&garbage, b"definitely not a szhi stream").unwrap();
    for sub in ["decode", "inspect"] {
        let mut args = vec![sub, garbage.to_str().unwrap()];
        if sub == "decode" {
            args.push("/tmp/never-written.f32");
        }
        let out = run(&args);
        assert_eq!(out.status.code(), Some(1), "{sub} on garbage");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("szhi-cli: error:"), "{sub}: {stderr}");
    }
    std::fs::remove_file(&garbage).unwrap();
}

/// `encode … -` writes the archive to stdout so a shell pipeline can
/// feed it straight into `decode -`.
#[test]
fn encode_to_stdout_pipes_into_decode() {
    let input = temp("pipeline-in.f32");
    let f = field();
    std::fs::write(&input, to_bytes(f.as_slice())).unwrap();

    let out = run(&[
        "encode",
        input.to_str().unwrap(),
        "-",
        "--dims",
        "24,20,32",
        "--eb",
        "2e-3",
        "--chunk-span",
        "16,16,16",
    ]);
    assert_ok(&out, "encode to stdout");
    let archive = out.stdout;
    assert_eq!(stream_version(&archive).unwrap(), 4);

    let mut child = bin()
        .args(["decode", "-", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    use std::io::Write as _;
    child.stdin.take().unwrap().write_all(&archive).unwrap();
    let out = child.wait_with_output().unwrap();
    assert_ok(&out, "decode from stdin to stdout");
    assert_eq!(
        to_f32(&out.stdout),
        decompress(&archive).unwrap().as_slice()
    );

    std::fs::remove_file(&input).unwrap();
}

/// `bench --jobs N` drives concurrent jobs through the job service and
/// reports the byte-identity check.
#[test]
fn bench_runs_concurrent_jobs() {
    let out = run(&[
        "bench",
        "--dims",
        "32,32,32",
        "--eb",
        "1e-3",
        "--dataset",
        "miranda",
        "--chunk-span",
        "16,16,16",
        "--jobs",
        "3",
    ]);
    assert_ok(&out, "bench --jobs 3");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("within bound"));
    assert!(stdout.contains("3 concurrent jobs"));
    assert_eq!(stdout.matches("byte-identical to serial").count(), 3);
}

/// The three global telemetry flags on a real encode + decode: the stats
/// summary lands on stderr, the JSON dump and the trace land on disk with
/// the per-chunk stage spans, pool counters and tuner records the
/// observability contract promises — and the archive is byte-identical
/// to one produced with telemetry off.
#[test]
fn telemetry_flags_emit_stats_json_and_trace() {
    let input = temp("tel-in.f32");
    let quiet = temp("tel-quiet.szhi");
    let archive = temp("tel.szhi");
    let output = temp("tel-out.f32");
    let stats_json = temp("tel-stats.json");
    let trace = temp("tel-trace.json");
    std::fs::write(&input, to_bytes(field().as_slice())).unwrap();

    let base = [
        "encode",
        input.to_str().unwrap(),
        quiet.to_str().unwrap(),
        "--dims",
        "24,20,32",
        "--eb",
        "2e-3",
        "--chunk-span",
        "16,16,16",
        "--mode",
        "estimated",
    ];
    assert_ok(&run(&base), "plain encode");

    // `--threads 4` forces real pool workers even on a single-core
    // runner (output is byte-identical at every thread count, so the
    // comparison against the default-threads encode still holds).
    let mut instrumented = base.to_vec();
    instrumented[2] = archive.to_str().unwrap();
    instrumented.extend([
        "--threads",
        "4",
        "--stats",
        "--stats-json",
        stats_json.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]);
    let out = run(&instrumented);
    assert_ok(&out, "instrumented encode");
    assert_eq!(
        std::fs::read(&quiet).unwrap(),
        std::fs::read(&archive).unwrap(),
        "telemetry must not change the emitted bytes"
    );

    // The human summary goes to stderr, after the subcommand's output.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("telemetry stats:"));
    assert!(stderr.contains("io.sink.bytes"));
    assert!(stderr.contains("encode.chunk"));

    // The JSON dump carries the per-chunk stage spans, the pool counters
    // and the tuner estimated-vs-actual histograms.
    let json = std::fs::read_to_string(&stats_json).unwrap();
    for name in [
        "encode.chunk",
        "encode.predict",
        "encode.entropy",
        "encode.crc",
        "pool.tasks",
        "tuner.estimated_bytes",
        "tuner.actual_bytes",
    ] {
        assert!(json.contains(name), "stats JSON is missing {name}");
    }

    // The trace is Trace Event Format: an event array with complete
    // spans, worker thread names and tuner selection instants.
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    assert!(trace_text.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
    assert!(trace_text.contains("\"ph\":\"X\""));
    assert!(trace_text.contains("\"name\":\"encode.chunk\""));
    assert!(trace_text.contains("\"name\":\"tuner.select\""));
    assert!(trace_text.contains("szhi-pool-"));

    // Decode with telemetry picks up the decode-side spans too.
    let out = run(&[
        "decode",
        archive.to_str().unwrap(),
        output.to_str().unwrap(),
        "--stats",
    ]);
    assert_ok(&out, "instrumented decode");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("decode.chunk"));
    assert!(stderr.contains("io.source.bytes"));

    for p in [&input, &quiet, &archive, &output, &stats_json, &trace] {
        std::fs::remove_file(p).unwrap();
    }
}
