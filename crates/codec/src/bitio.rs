//! Bit-level I/O and small integer serialisation helpers.
//!
//! The Huffman coder, the fixed-length packers and several LC-style
//! components all need to emit values that are not byte aligned. The
//! [`BitWriter`]/[`BitReader`] pair implements MSB-first bit streams backed by
//! a `Vec<u8>`, and the `put_*`/`get_*` helpers implement the little-endian
//! integer fields used by every header in the workspace.

use crate::CodecError;

/// MSB-first bit stream writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits currently staged in `acc` (0..=63).
    nbits: u32,
    acc: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with capacity for roughly `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> Self {
        BitWriter {
            buf: Vec::with_capacity(bits / 8 + 8),
            nbits: 0,
            acc: 0,
        }
    }

    /// Appends the lowest `n` bits of `value` (MSB of the field first).
    /// `n` must be at most 57 so the staging accumulator never overflows.
    #[inline]
    pub fn put_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 57, "put_bits supports at most 57 bits per call");
        if n == 0 {
            return;
        }
        let mask = u64::MAX >> (64 - n);
        self.acc = (self.acc << n) | (value & mask);
        self.nbits += n;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.buf.push((self.acc >> self.nbits) as u8);
        }
    }

    /// Appends a single bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        self.put_bits(bit as u64, 1);
    }

    /// Number of complete bytes written so far (excluding staged bits).
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Flushes any staged bits (padding the final byte with zeros) and
    /// returns the byte buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.acc <<= pad;
            self.buf.push(self.acc as u8);
            self.nbits = 0;
        }
        self.buf
    }
}

/// MSB-first bit writer specialised for hot encode loops: bits accumulate
/// in a `u64` word and are flushed to the output 32 bits at a time, so the
/// per-symbol cost is one shift-or plus a single branch instead of
/// [`BitWriter`]'s byte-at-a-time drain loop. Fields are limited to 32 bits
/// per call (enough for every entropy-coder code in this workspace); the
/// emitted byte stream is bit-for-bit identical to writing the same fields
/// through [`BitWriter::put_bits`].
#[derive(Debug, Default, Clone)]
pub struct WordWriter {
    buf: Vec<u8>,
    /// Staged bits: the low `nbits` bits of `acc` are pending output
    /// (higher bits are stale and ignored); `nbits` stays below 32 between
    /// calls, so a 32-bit push never overflows the 64-bit accumulator.
    acc: u64,
    nbits: u32,
}

impl WordWriter {
    /// Creates an empty writer with capacity for roughly `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> Self {
        WordWriter {
            buf: Vec::with_capacity(bits / 8 + 8),
            acc: 0,
            nbits: 0,
        }
    }

    /// Appends the lowest `n` bits of `value` (MSB of the field first).
    /// `n` must be at most 32 and `value` must not carry bits above `n`.
    #[inline]
    pub fn put(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 32, "WordWriter fields are at most 32 bits");
        debug_assert!(n == 32 || value >> n == 0, "value has bits above n");
        self.acc = (self.acc << n) | value as u64;
        self.nbits += n;
        if self.nbits >= 32 {
            self.nbits -= 32;
            let word = (self.acc >> self.nbits) as u32;
            self.buf.extend_from_slice(&word.to_be_bytes());
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Flushes any staged bits (padding the final byte with zeros) and
    /// returns the byte buffer.
    pub fn finish(mut self) -> Vec<u8> {
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.buf.push((self.acc >> self.nbits) as u8);
        }
        if self.nbits > 0 {
            self.buf.push(((self.acc << (8 - self.nbits)) & 0xFF) as u8);
        }
        self.buf
    }
}

/// MSB-first bit stream reader.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Next byte to load.
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader {
            buf,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    /// Total number of bits available in the underlying buffer.
    pub fn total_bits(&self) -> usize {
        self.buf.len() * 8
    }

    /// Number of bits consumed so far.
    pub fn bits_consumed(&self) -> usize {
        self.pos * 8 - self.nbits as usize
    }

    #[inline]
    fn refill(&mut self) {
        while self.nbits <= 56 {
            let Some(&byte) = self.buf.get(self.pos) else {
                break;
            };
            self.acc = (self.acc << 8) | byte as u64;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Reads `n` bits (MSB first). Returns an error if the stream is
    /// exhausted. Reading the zero-padding of the final byte is allowed.
    #[inline]
    pub fn get_bits(&mut self, n: u32) -> Result<u64, CodecError> {
        debug_assert!(n <= 57);
        if n == 0 {
            return Ok(0);
        }
        self.refill();
        if self.nbits < n {
            return Err(CodecError::eof("bitreader"));
        }
        self.nbits -= n;
        let v = (self.acc >> self.nbits) & (u64::MAX >> (64 - n));
        Ok(v)
    }

    /// Reads a single bit.
    #[inline]
    pub fn get_bit(&mut self) -> Result<bool, CodecError> {
        Ok(self.get_bits(1)? != 0)
    }

    /// Peeks at most `n` bits without consuming them. If fewer than `n` bits
    /// remain, the missing low bits are zero.
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 57);
        self.refill();
        if self.nbits >= n {
            (self.acc >> (self.nbits - n)) & (u64::MAX >> (64 - n.max(1)))
        } else {
            let avail = self.nbits;
            let v = if avail == 0 {
                0
            } else {
                self.acc & (u64::MAX >> (64 - avail))
            };
            v << (n - avail)
        }
    }

    /// Consumes `n` bits previously inspected with [`BitReader::peek_bits`].
    /// Consuming past the end of the buffer (into the implicit zero padding)
    /// is permitted, which simplifies table-driven Huffman decoding.
    #[inline]
    pub fn consume(&mut self, n: u32) {
        if self.nbits >= n {
            self.nbits -= n;
        } else {
            self.nbits = 0;
        }
    }
}

// --- little-endian integer fields used by headers ---------------------------

/// Appends a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a little-endian `u16`.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `f32`.
pub fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `f64`.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A cursor over a byte slice for reading header fields.
#[derive(Debug, Clone)]
pub struct ByteCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteCursor<'a> {
    /// Creates a cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteCursor { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns the next `n` bytes and advances.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| CodecError::eof("bytecursor"))?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| CodecError::eof("bytecursor"))?;
        self.pos = end;
        Ok(s)
    }

    /// Returns the next `N` bytes as a fixed-size array and advances.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        self.take(N)?
            .first_chunk::<N>()
            .copied()
            .ok_or_else(|| CodecError::eof("bytecursor"))
    }

    /// Returns every remaining byte and advances to the end.
    pub fn take_rest(&mut self) -> &'a [u8] {
        let s = self.buf.get(self.pos..).unwrap_or(&[]);
        self.pos = self.buf.len();
        s
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        let [b] = self.take_array::<1>()?;
        Ok(b)
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `f32`.
    pub fn get_f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `f64`.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }
}

/// Caps a `Vec` pre-allocation hint derived from an untrusted length field.
///
/// Decoders read the claimed output length before decoding; trusting it for
/// `with_capacity` would let a single corrupted length byte demand a
/// multi-gigabyte allocation up front — an uncatchable abort, not a typed
/// error. Capping affects only the hint: the vector still grows to the true
/// decoded length, and truncated input fails with a typed error first.
pub fn decode_capacity(claimed: usize) -> usize {
    const MAX_PREALLOC: usize = 1 << 24; // 16 MiB
    claimed.min(MAX_PREALLOC)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.put_bits(0xfeed, 16);
        w.put_bit(true);
        w.put_bits(0, 0);
        w.put_bits(0x1_2345_6789, 33);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(3).unwrap(), 0b101);
        assert_eq!(r.get_bits(16).unwrap(), 0xfeed);
        assert!(r.get_bit().unwrap());
        assert_eq!(r.get_bits(33).unwrap(), 0x1_2345_6789);
    }

    #[test]
    fn reader_detects_eof() {
        let mut w = BitWriter::new();
        w.put_bits(0xab, 8);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(8).unwrap(), 0xab);
        assert!(r.get_bits(8).is_err());
    }

    #[test]
    fn peek_and_consume_match_get() {
        let mut w = BitWriter::new();
        for i in 0..32u64 {
            w.put_bits(i, 5);
        }
        let bytes = w.finish();
        let mut r1 = BitReader::new(&bytes);
        let mut r2 = BitReader::new(&bytes);
        for _ in 0..32 {
            let p = r1.peek_bits(5);
            r1.consume(5);
            assert_eq!(p, r2.get_bits(5).unwrap());
        }
    }

    #[test]
    fn peek_past_end_pads_with_zeros() {
        let bytes = [0b1010_0000u8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(16), 0b1010_0000_0000_0000);
    }

    #[test]
    fn header_fields_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 0x1234);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, 0x0102_0304_0506_0708);
        put_f32(&mut buf, 1.5);
        put_f64(&mut buf, -2.25);
        let mut c = ByteCursor::new(&buf);
        assert_eq!(c.get_u8().unwrap(), 7);
        assert_eq!(c.get_u16().unwrap(), 0x1234);
        assert_eq!(c.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(c.get_u64().unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(c.get_f32().unwrap(), 1.5);
        assert_eq!(c.get_f64().unwrap(), -2.25);
        assert_eq!(c.remaining(), 0);
        assert!(c.get_u8().is_err());
    }

    #[test]
    fn word_writer_matches_bit_writer_byte_for_byte() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        for len in [0usize, 1, 2, 3, 7, 100, 1000] {
            let fields: Vec<(u32, u32)> = (0..len)
                .map(|_| {
                    let n = rng.gen_range(0..=32u32);
                    let v = if n == 0 {
                        0
                    } else if n == 32 {
                        rng.gen::<u32>()
                    } else {
                        rng.gen::<u32>() & ((1u32 << n) - 1)
                    };
                    (v, n)
                })
                .collect();
            let mut bw = BitWriter::new();
            let mut ww = WordWriter::with_capacity_bits(len * 16);
            for &(v, n) in &fields {
                bw.put_bits(v as u64, n);
                ww.put(v, n);
            }
            assert_eq!(ww.bit_len(), bw.bit_len());
            assert_eq!(ww.finish(), bw.finish(), "diverged at {len} fields");
        }
    }

    #[test]
    fn bit_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        w.put_bits(0b11, 2);
        assert_eq!(w.bit_len(), 2);
        assert_eq!(w.byte_len(), 0);
        w.put_bits(0xff, 8);
        assert_eq!(w.bit_len(), 10);
        assert_eq!(w.byte_len(), 1);
    }
}
