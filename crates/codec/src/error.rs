//! Error type shared by every decoder in the codec crate.

/// Errors produced when decoding a corrupted or truncated stream, or when an
/// encode-side request is unsatisfiable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the decoder finished.
    UnexpectedEof {
        /// Which decoder detected the truncation.
        context: &'static str,
    },
    /// A header field contained an invalid value.
    InvalidHeader {
        /// Which decoder rejected the header.
        context: &'static str,
        /// Human-readable description of the problem.
        detail: String,
    },
    /// The decoded payload does not satisfy an internal consistency check.
    Corrupt {
        /// Which decoder detected the corruption.
        context: &'static str,
        /// Human-readable description of the problem.
        detail: String,
    },
    /// An encode-side request was invalid (e.g. an empty candidate set
    /// offered to `PipelineSpec::try_encode_select`).
    InvalidRequest {
        /// Which encoder rejected the request.
        context: &'static str,
        /// Human-readable description of the problem.
        detail: String,
    },
}

impl CodecError {
    /// Shorthand for an [`CodecError::UnexpectedEof`].
    pub fn eof(context: &'static str) -> Self {
        CodecError::UnexpectedEof { context }
    }

    /// Shorthand for an [`CodecError::InvalidHeader`].
    pub fn header(context: &'static str, detail: impl Into<String>) -> Self {
        CodecError::InvalidHeader {
            context,
            detail: detail.into(),
        }
    }

    /// Shorthand for a [`CodecError::Corrupt`].
    pub fn corrupt(context: &'static str, detail: impl Into<String>) -> Self {
        CodecError::Corrupt {
            context,
            detail: detail.into(),
        }
    }

    /// Shorthand for a [`CodecError::InvalidRequest`].
    pub fn request(context: &'static str, detail: impl Into<String>) -> Self {
        CodecError::InvalidRequest {
            context,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof { context } => {
                write!(f, "unexpected end of stream in {context}")
            }
            CodecError::InvalidHeader { context, detail } => {
                write!(f, "invalid header in {context}: {detail}")
            }
            CodecError::Corrupt { context, detail } => {
                write!(f, "corrupt stream in {context}: {detail}")
            }
            CodecError::InvalidRequest { context, detail } => {
                write!(f, "invalid request to {context}: {detail}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CodecError::header("huffman", "bad symbol count");
        assert!(e.to_string().contains("huffman"));
        assert!(e.to_string().contains("bad symbol count"));
        let e = CodecError::eof("rre");
        assert!(e.to_string().contains("rre"));
    }
}
