//! BIT — bit shuffle.
//!
//! Transposes blocks of symbols into bit planes: after the shuffle, bit `k`
//! of every symbol in a block is stored contiguously. Combined with the TCMS
//! magnitude-sign transform this concentrates the information of
//! near-zero quantization codes into a few dense planes and leaves the
//! remaining planes as long runs, which the following RRE stage collapses
//! (the TP-mode pipeline of Figure 7).
//!
//! BIT is a pure transformer: length-preserving and headerless. Blocks of
//! `64` symbols are transposed; a partial tail block is passed through
//! unchanged.

use crate::CodecError;

/// Number of symbols per transposed block.
pub const BLOCK_SYMBOLS: usize = 64;

/// The bit-shuffle transformer at a given symbol width.
#[derive(Debug, Clone, Copy)]
pub struct Bit {
    width: usize,
}

impl Bit {
    /// Creates a bit-shuffle component for `width`-byte symbols.
    pub fn new(width: usize) -> Self {
        assert!(
            matches!(width, 1 | 2 | 4 | 8),
            "unsupported BIT symbol width {width}"
        );
        Bit { width }
    }

    /// Symbol width in bytes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Applies the forward shuffle.
    pub fn encode_bytes(&self, input: &[u8]) -> Vec<u8> {
        let block_bytes = BLOCK_SYMBOLS * self.width;
        let bits = self.width * 8;
        let mut out = Vec::with_capacity(input.len());
        let mut pos = 0;
        while pos + block_bytes <= input.len() {
            let block = &input[pos..pos + block_bytes];
            // plane-major output: for every bit position, 64 bits = 8 bytes.
            for bit in 0..bits {
                let mut plane = 0u64;
                for (s, chunk) in block.chunks_exact(self.width).enumerate() {
                    let byte = chunk[bit / 8];
                    let b = (byte >> (bit % 8)) & 1;
                    plane |= (b as u64) << s;
                }
                out.extend_from_slice(&plane.to_le_bytes());
            }
            pos += block_bytes;
        }
        out.extend_from_slice(&input[pos..]);
        out
    }

    /// Reverses the shuffle.
    pub fn decode_bytes(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let block_bytes = BLOCK_SYMBOLS * self.width;
        // szhi-analyzer: allow(capped-alloc) -- capacity mirrors the bytes actually held, not an untrusted claim
        let mut out = Vec::with_capacity(input.len());
        let mut blocks = input.chunks_exact(block_bytes);
        for block in blocks.by_ref() {
            let mut symbols = vec![0u8; block_bytes];
            // A block holds width*8 planes of 8 bytes each.
            for (bit, plane_bytes) in block.chunks_exact(8).enumerate() {
                let plane = u64::from_le_bytes(
                    *plane_bytes
                        .first_chunk::<8>()
                        .ok_or_else(|| CodecError::corrupt("bitshuf", "short bit plane"))?,
                );
                for (s, sym) in symbols.chunks_exact_mut(self.width).enumerate() {
                    let Some(byte) = sym.get_mut(bit / 8) else {
                        continue;
                    };
                    if (plane >> s) & 1 == 1 {
                        *byte |= 1 << (bit % 8);
                    }
                }
            }
            out.extend_from_slice(&symbols);
        }
        out.extend_from_slice(blocks.remainder());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn roundtrip(width: usize, data: &[u8]) {
        let b = Bit::new(width);
        let enc = b.encode_bytes(data);
        assert_eq!(enc.len(), data.len(), "BIT must be length-preserving");
        assert_eq!(b.decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn roundtrip_various_lengths() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for w in [1, 2, 4, 8] {
            for len in [0usize, 1, 63, 64, 65, 128, 1000, 4096] {
                let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
                roundtrip(w, &data);
            }
        }
    }

    #[test]
    fn identical_symbols_produce_constant_planes() {
        // 64 copies of 0b0000_0011 → plane 0 and plane 1 all-ones, others zero.
        let data = vec![0b0000_0011u8; 64];
        let enc = Bit::new(1).encode_bytes(&data);
        assert_eq!(&enc[0..8], &[0xffu8; 8]);
        assert_eq!(&enc[8..16], &[0xffu8; 8]);
        assert!(enc[16..].iter().all(|&b| b == 0));
    }

    #[test]
    fn small_magnitudes_leave_high_planes_empty() {
        // Values < 16: planes 4..8 are all zero after shuffling → long zero
        // runs for the downstream RRE/RZE stage.
        let data: Vec<u8> = (0..640).map(|i| (i % 16) as u8).collect();
        let enc = Bit::new(1).encode_bytes(&data);
        for block in enc.chunks_exact(64) {
            assert!(
                block[32..].iter().all(|&b| b == 0),
                "high planes must be empty"
            );
        }
    }

    #[test]
    fn tail_is_passthrough() {
        let data: Vec<u8> = (0..70).map(|i| i as u8).collect();
        let enc = Bit::new(1).encode_bytes(&data);
        assert_eq!(&enc[64..], &data[64..]);
    }
}
