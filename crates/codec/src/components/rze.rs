//! RZE — Run of Zeros Elimination.
//!
//! Identical in structure to [`super::rre::Rre`] but the bitmap marks symbols
//! equal to **zero** (which are dropped) rather than symbols equal to their
//! predecessor. In the CR pipeline this is the final reducer: after Huffman
//! coding and the magnitude-sign transform, the stream contains substantial
//! clusters of zero bytes which RZE removes.

use super::{read_symbol, symbol_count, write_symbol};
use crate::bitio::{decode_capacity, put_u64, ByteCursor};
use crate::CodecError;

fn rze_pass(input: &[u8], width: usize) -> (Vec<u8>, Vec<u8>) {
    let n_sym = symbol_count(input.len(), width);
    let mut bitmap = vec![0u8; n_sym.div_ceil(8)];
    let mut kept = Vec::with_capacity(input.len() / 2);
    for i in 0..n_sym {
        let sym = read_symbol(input, i, width);
        if sym != 0 {
            bitmap[i / 8] |= 1 << (i % 8);
            for k in 0..width {
                kept.push((sym >> (8 * k)) as u8);
            }
        }
    }
    (bitmap, kept)
}

fn rze_unpass(
    bitmap: &[u8],
    kept: &[u8],
    width: usize,
    orig_len: usize,
) -> Result<Vec<u8>, CodecError> {
    let n_sym = symbol_count(orig_len, width);
    let mut out = Vec::with_capacity(decode_capacity(orig_len));
    let mut kept_pos = 0usize;
    for i in 0..n_sym {
        let byte = *bitmap
            .get(i / 8)
            .ok_or_else(|| CodecError::eof("rze bitmap"))?;
        let nonzero = byte >> (i % 8) & 1 == 1;
        let sym = if nonzero {
            if kept_pos + width > kept.len() {
                return Err(CodecError::eof("rze payload"));
            }
            let v = read_symbol(kept, kept_pos / width, width);
            kept_pos += width;
            v
        } else {
            0
        };
        let remaining = orig_len - i * width;
        write_symbol(&mut out, sym, width, remaining);
    }
    Ok(out)
}

/// The RZE reducer at a given symbol width.
#[derive(Debug, Clone, Copy)]
pub struct Rze {
    width: usize,
}

impl Rze {
    /// Creates an RZE component for `width`-byte symbols (1, 2, 4 or 8).
    pub fn new(width: usize) -> Self {
        assert!(
            matches!(width, 1 | 2 | 4 | 8),
            "unsupported RZE symbol width {width}"
        );
        Rze { width }
    }

    /// Symbol width in bytes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Encodes `input`. Layout mirrors [`super::rre::Rre::encode_bytes`],
    /// with the bitmap itself compressed by a byte-granular zero-elimination
    /// pass (runs of zero symbols produce zero bitmap bytes).
    pub fn encode_bytes(&self, input: &[u8]) -> Vec<u8> {
        let (bitmap, kept) = rze_pass(input, self.width);
        let (bm_bitmap, bm_kept) = rze_pass(&bitmap, 1);
        let mut out = Vec::with_capacity(kept.len() + bm_kept.len() + 48);
        put_u64(&mut out, input.len() as u64);
        put_u64(&mut out, bitmap.len() as u64);
        put_u64(&mut out, bm_bitmap.len() as u64);
        put_u64(&mut out, bm_kept.len() as u64);
        put_u64(&mut out, kept.len() as u64);
        out.extend_from_slice(&bm_bitmap);
        out.extend_from_slice(&bm_kept);
        out.extend_from_slice(&kept);
        out
    }

    /// Decodes a stream produced by [`Rze::encode_bytes`].
    pub fn decode_bytes(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut cur = ByteCursor::new(input);
        let orig_len = cur.get_u64()? as usize;
        let bitmap_len = cur.get_u64()? as usize;
        let bm_bitmap_len = cur.get_u64()? as usize;
        let bm_kept_len = cur.get_u64()? as usize;
        let kept_len = cur.get_u64()? as usize;
        let bm_bitmap = cur.take(bm_bitmap_len)?;
        let bm_kept = cur.take(bm_kept_len)?;
        let kept = cur.take(kept_len)?;
        let bitmap = rze_unpass(bm_bitmap, bm_kept, 1, bitmap_len)?;
        rze_unpass(&bitmap, kept, self.width, orig_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn roundtrip(width: usize, data: &[u8]) -> usize {
        let rze = Rze::new(width);
        let enc = rze.encode_bytes(data);
        let dec = rze.decode_bytes(&enc).expect("decode");
        assert_eq!(dec, data, "width {width} length {}", data.len());
        enc.len()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for w in [1, 2, 4, 8] {
            roundtrip(w, &[]);
            roundtrip(w, &[0]);
            roundtrip(w, &[9]);
            roundtrip(w, &[0, 0, 1]);
        }
    }

    #[test]
    fn mostly_zero_data_collapses() {
        let mut data = vec![0u8; 100_000];
        for i in (0..data.len()).step_by(997) {
            data[i] = (i % 255) as u8 + 1;
        }
        let size = roundtrip(1, &data);
        // ~100 nonzero bytes + double-compressed bitmap: far below 5 % of input.
        assert!(
            size < data.len() / 20,
            "mostly-zero data should collapse, got {size}"
        );
    }

    #[test]
    fn dense_data_keeps_everything() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let data: Vec<u8> = (0..10_000).map(|_| rng.gen_range(1..=255u8)).collect();
        let size = roundtrip(1, &data);
        assert!(
            size >= data.len(),
            "no zero symbols — nothing can be dropped"
        );
        assert!(size <= data.len() + data.len() / 8 + 256);
    }

    #[test]
    fn non_multiple_lengths() {
        for w in [2, 4, 8] {
            for len in [1usize, 3, 7, 9, 17, 1001] {
                let data: Vec<u8> = (0..len)
                    .map(|i| if i % 3 == 0 { 0 } else { (i % 200) as u8 })
                    .collect();
                roundtrip(w, &data);
            }
        }
    }

    #[test]
    fn zero_symbol_detection_respects_width() {
        // [0,1] as a 2-byte symbol is nonzero even though it contains a zero byte.
        let data = vec![0u8, 1, 0, 0, 0, 1];
        let rze = Rze::new(2);
        let enc = rze.encode_bytes(&data);
        assert_eq!(rze.decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn truncated_stream_is_detected() {
        let rze = Rze::new(1);
        let enc = rze.encode_bytes(&[1u8, 0, 3, 0, 5]);
        assert!(rze.decode_bytes(&enc[..12]).is_err());
    }
}
