//! LC-framework-style lossless components.
//!
//! The paper builds its lossless pipelines out of fine-grained, composable
//! components taken from the LC framework (Azami et al., ASPLOS'25): symbol
//! *transformers* (TCMS, BIT, DIFFMS, TUPL) that expose redundancy, and
//! *reducers* (RRE, RZE, CLOG) that actually shrink the stream. The numeric
//! suffix of a component name is the width in bytes of the symbols it
//! processes (`RRE4` works on 4-byte symbols, `TCMS1` on single bytes, …).
//!
//! Every component is strictly lossless. Reducers embed a small
//! self-describing header; transformers are length-preserving and headerless.

pub mod bitshuf;
pub mod clog;
pub mod diffms;
pub mod rre;
pub mod rze;
pub mod tcms;
pub mod tupl;

pub use bitshuf::Bit;
pub use clog::Clog;
pub use diffms::DiffMs;
pub use rre::Rre;
pub use rze::Rze;
pub use tcms::Tcms;
pub use tupl::{TuplD, TuplQ};

/// Splits a byte stream into `n_sym` symbols of `width` bytes, zero-padding
/// the final symbol if the input length is not a multiple of the width.
pub(crate) fn symbol_count(len: usize, width: usize) -> usize {
    len.div_ceil(width)
}

/// Reads the symbol at index `i` (little-endian, zero-padded) as a `u64`.
#[inline]
pub(crate) fn read_symbol(input: &[u8], i: usize, width: usize) -> u64 {
    let start = i * width;
    let end = (start + width).min(input.len());
    let mut v = 0u64;
    for (k, &b) in input.get(start..end).unwrap_or(&[]).iter().enumerate() {
        v |= (b as u64) << (8 * k);
    }
    v
}

/// Appends the low `width` bytes of `v` (little-endian) to `out`, truncating
/// the final symbol to `remaining` bytes when it was zero-padded.
#[inline]
pub(crate) fn write_symbol(out: &mut Vec<u8>, v: u64, width: usize, remaining: usize) {
    let n = width.min(remaining);
    for k in 0..n {
        out.push((v >> (8 * k)) as u8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_count_rounds_up() {
        assert_eq!(symbol_count(0, 4), 0);
        assert_eq!(symbol_count(3, 4), 1);
        assert_eq!(symbol_count(4, 4), 1);
        assert_eq!(symbol_count(5, 4), 2);
    }

    #[test]
    fn read_symbol_pads_with_zero() {
        let data = [0x01u8, 0x02, 0x03];
        assert_eq!(read_symbol(&data, 0, 2), 0x0201);
        assert_eq!(read_symbol(&data, 1, 2), 0x0003);
    }

    #[test]
    fn write_symbol_truncates_tail() {
        let mut out = Vec::new();
        write_symbol(&mut out, 0x0403_0201, 4, 4);
        write_symbol(&mut out, 0x0000_0605, 4, 2);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
    }
}
