//! TUPL — tuple/lane splitting transformers.
//!
//! These components regroup the byte stream so that bytes playing the same
//! structural role become contiguous, exposing redundancy to the following
//! reducer:
//!
//! * [`TuplQ`] (quad split): splits single-byte symbols into four lanes by
//!   index modulo 4 — effective when the stream has a period-4 structure
//!   (e.g. 32-bit records).
//! * [`TuplD`] (dual split): treats the stream as 2-byte symbols and splits
//!   it into a low-byte lane and a high-byte lane (structure-of-arrays
//!   layout) — high bytes of small values form long zero runs.
//!
//! Both are length-preserving apart from an 8-byte length header (needed to
//! undo the split for lengths that are not lane-aligned).

use crate::bitio::{put_u64, ByteCursor};
use crate::CodecError;

/// Quad lane split of single-byte symbols.
#[derive(Debug, Clone, Copy, Default)]
pub struct TuplQ;

impl TuplQ {
    /// Creates the quad-split component.
    pub fn new() -> Self {
        TuplQ
    }

    /// Splits `input` into four lanes (`i % 4`), concatenated in lane order.
    pub fn encode_bytes(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() + 8);
        put_u64(&mut out, input.len() as u64);
        for lane in 0..4 {
            out.extend(input.iter().skip(lane).step_by(4));
        }
        out
    }

    /// Reverses the quad split.
    pub fn decode_bytes(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut cur = ByteCursor::new(input);
        let orig_len = cur.get_u64()? as usize;
        let body = cur.take_rest();
        if body.len() != orig_len {
            return Err(CodecError::corrupt(
                "tuplq",
                format!("expected {orig_len} bytes, got {}", body.len()),
            ));
        }
        let mut out = vec![0u8; orig_len];
        let mut rest = body;
        for lane in 0..4 {
            let lane_len = (orig_len + 3 - lane) / 4;
            let (lane_bytes, tail) = rest
                .split_at_checked(lane_len)
                .ok_or_else(|| CodecError::corrupt("tuplq", "lane extends past the body"))?;
            rest = tail;
            for (slot, &b) in out.iter_mut().skip(lane).step_by(4).zip(lane_bytes) {
                *slot = b;
            }
        }
        Ok(out)
    }
}

/// Dual byte-lane split of 2-byte symbols.
#[derive(Debug, Clone, Copy, Default)]
pub struct TuplD;

impl TuplD {
    /// Creates the dual-split component.
    pub fn new() -> Self {
        TuplD
    }

    /// Splits `input` into a low-byte lane and a high-byte lane; a trailing
    /// odd byte is appended after the lanes.
    pub fn encode_bytes(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() + 8);
        put_u64(&mut out, input.len() as u64);
        out.extend(input.iter().step_by(2));
        out.extend(input.iter().skip(1).step_by(2));
        out
    }

    /// Reverses the dual split.
    pub fn decode_bytes(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut cur = ByteCursor::new(input);
        let orig_len = cur.get_u64()? as usize;
        let body = cur.take_rest();
        if body.len() != orig_len {
            return Err(CodecError::corrupt(
                "tupld",
                format!("expected {orig_len} bytes, got {}", body.len()),
            ));
        }
        let low_len = orig_len.div_ceil(2);
        let (low, high) = body
            .split_at_checked(low_len)
            .ok_or_else(|| CodecError::corrupt("tupld", "low lane extends past the body"))?;
        let mut out = vec![0u8; orig_len];
        for (slot, &b) in out.iter_mut().step_by(2).zip(low) {
            *slot = b;
        }
        for (slot, &b) in out.iter_mut().skip(1).step_by(2).zip(high) {
            *slot = b;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn quad_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 1023, 4096] {
            let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let t = TuplQ::new();
            assert_eq!(
                t.decode_bytes(&t.encode_bytes(&data)).unwrap(),
                data,
                "len {len}"
            );
        }
    }

    #[test]
    fn dual_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(37);
        for len in [0usize, 1, 2, 3, 5, 8, 1023, 4096] {
            let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let t = TuplD::new();
            assert_eq!(
                t.decode_bytes(&t.encode_bytes(&data)).unwrap(),
                data,
                "len {len}"
            );
        }
    }

    #[test]
    fn quad_groups_period_four_structure() {
        // Records of [id, 0, 0, 0]: lanes 1..3 become all-zero runs.
        let mut data = Vec::new();
        for i in 0..100u8 {
            data.extend_from_slice(&[i, 0, 0, 0]);
        }
        let enc = TuplQ::new().encode_bytes(&data);
        let body = &enc[8..];
        assert!(
            body[100..].iter().all(|&b| b == 0),
            "lanes 1..3 must be zero"
        );
    }

    #[test]
    fn dual_separates_low_and_high_bytes() {
        // u16 values < 256: the high-byte lane is all zeros.
        let mut data = Vec::new();
        for i in 0..100u16 {
            data.extend_from_slice(&i.to_le_bytes());
        }
        let enc = TuplD::new().encode_bytes(&data);
        let body = &enc[8..];
        assert!(
            body[100..].iter().all(|&b| b == 0),
            "high-byte lane must be zero"
        );
    }

    #[test]
    fn corrupt_length_is_detected() {
        let enc = TuplQ::new().encode_bytes(&[1, 2, 3, 4, 5]);
        assert!(TuplQ::new().decode_bytes(&enc[..enc.len() - 1]).is_err());
        let enc = TuplD::new().encode_bytes(&[1, 2, 3, 4, 5]);
        assert!(TuplD::new().decode_bytes(&enc[..enc.len() - 1]).is_err());
    }
}
