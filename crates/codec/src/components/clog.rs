//! CLOG — per-block ceiling-log₂ fixed-length packing.
//!
//! Splits the symbol stream into blocks of [`BLOCK_SYMBOLS`] symbols, finds
//! the number of significant bits of the largest symbol in each block, and
//! stores every symbol of the block with exactly that many bits. Streams of
//! small magnitudes (after DIFFMS / TCMS) shrink to a fraction of their
//! original width; blocks containing one large value pay for it only locally.

use super::{read_symbol, symbol_count, write_symbol};
use crate::bitio::{decode_capacity, put_u64, BitReader, BitWriter, ByteCursor};
use crate::CodecError;

/// Symbols per fixed-length block.
pub const BLOCK_SYMBOLS: usize = 256;

/// The CLOG reducer at a given symbol width.
#[derive(Debug, Clone, Copy)]
pub struct Clog {
    width: usize,
}

impl Clog {
    /// Creates a CLOG component for `width`-byte symbols.
    pub fn new(width: usize) -> Self {
        assert!(
            matches!(width, 1 | 2 | 4),
            "unsupported CLOG symbol width {width}"
        );
        Clog { width }
    }

    /// Symbol width in bytes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Encodes `input`.
    ///
    /// Layout: `orig_len u64 | bit stream`, where the bit stream is a
    /// sequence of blocks `[6-bit width | width × count bits]`.
    pub fn encode_bytes(&self, input: &[u8]) -> Vec<u8> {
        let width = self.width;
        let n_sym = symbol_count(input.len(), width);
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        put_u64(&mut out, input.len() as u64);
        let mut bw = BitWriter::with_capacity_bits(input.len() * 4);
        let mut i = 0usize;
        while i < n_sym {
            let count = BLOCK_SYMBOLS.min(n_sym - i);
            let mut max = 0u64;
            for k in 0..count {
                max = max.max(read_symbol(input, i + k, width));
            }
            let bits = if max == 0 {
                0
            } else {
                64 - max.leading_zeros()
            };
            bw.put_bits(bits as u64, 6);
            if bits > 0 {
                for k in 0..count {
                    bw.put_bits(read_symbol(input, i + k, width), bits);
                }
            }
            i += count;
        }
        out.extend_from_slice(&bw.finish());
        out
    }

    /// Decodes a stream produced by [`Clog::encode_bytes`].
    pub fn decode_bytes(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let width = self.width;
        let mut cur = ByteCursor::new(input);
        let orig_len = cur.get_u64()? as usize;
        let n_sym = symbol_count(orig_len, width);
        let mut br = BitReader::new(cur.take_rest());
        let mut out = Vec::with_capacity(decode_capacity(orig_len));
        let mut i = 0usize;
        while i < n_sym {
            let count = BLOCK_SYMBOLS.min(n_sym - i);
            let bits = br.get_bits(6)? as u32;
            if bits > 64 {
                return Err(CodecError::corrupt(
                    "clog",
                    format!("invalid block width {bits}"),
                ));
            }
            for k in 0..count {
                let v = if bits == 0 { 0 } else { br.get_bits(bits)? };
                let remaining = orig_len - (i + k) * width;
                write_symbol(&mut out, v, width, remaining);
            }
            i += count;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn roundtrip(width: usize, data: &[u8]) -> usize {
        let c = Clog::new(width);
        let enc = c.encode_bytes(data);
        assert_eq!(c.decode_bytes(&enc).unwrap(), data, "width {width}");
        enc.len()
    }

    #[test]
    fn roundtrip_various() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for w in [1, 2, 4] {
            for len in [0usize, 1, 5, 255, 256, 257, 5000] {
                let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
                roundtrip(w, &data);
            }
        }
    }

    #[test]
    fn small_values_pack_tightly() {
        let data: Vec<u8> = (0..100_000).map(|i| (i % 4) as u8).collect();
        let size = roundtrip(1, &data);
        // 2 bits per symbol plus headers → about a quarter of the input.
        assert!(
            size < data.len() / 3,
            "2-bit values should pack to ~25%, got {size}"
        );
    }

    #[test]
    fn all_zero_blocks_cost_almost_nothing() {
        let data = vec![0u8; 65_536];
        let size = roundtrip(1, &data);
        assert!(
            size < 300,
            "zero blocks should cost only the per-block widths, got {size}"
        );
    }

    #[test]
    fn outlier_only_hurts_its_own_block() {
        let mut data = vec![1u8; 4096];
        data[100] = 255;
        let size_with = roundtrip(1, &data);
        let size_without = roundtrip(1, &vec![1u8; 4096]);
        assert!(
            size_with < size_without + 300,
            "an outlier must only widen its own block"
        );
    }

    #[test]
    fn truncated_stream_is_detected() {
        let c = Clog::new(1);
        let enc = c.encode_bytes(&[200u8; 1000]);
        assert!(c.decode_bytes(&enc[..enc.len() / 2]).is_err());
    }
}
