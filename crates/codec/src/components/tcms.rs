//! TCMS — Two's Complement to Magnitude-Sign transform.
//!
//! The reversible per-symbol bit trick of §5.2.3:
//! `(word << 1) ^ (word >> (bits − 1))` with an arithmetic right shift —
//! i.e. the zig-zag transform. Values close to zero (positive or negative)
//! map to small magnitudes, which concentrates ones in the low bits and makes
//! the downstream bit-shuffle / zero-elimination stages effective.
//!
//! TCMS is a pure transformer: length-preserving and headerless.

use super::{read_symbol, symbol_count, write_symbol};
use crate::CodecError;

/// The TCMS transformer at a given symbol width.
#[derive(Debug, Clone, Copy)]
pub struct Tcms {
    width: usize,
}

impl Tcms {
    /// Creates a TCMS component for `width`-byte symbols (1, 2, 4 or 8).
    pub fn new(width: usize) -> Self {
        assert!(
            matches!(width, 1 | 2 | 4 | 8),
            "unsupported TCMS symbol width {width}"
        );
        Tcms { width }
    }

    /// Symbol width in bytes.
    pub fn width(&self) -> usize {
        self.width
    }

    #[inline]
    fn forward(v: u64, bits: u32) -> u64 {
        ((v << 1) ^ (((v as i64) << (64 - bits)) >> 63) as u64) & mask(bits)
    }

    #[inline]
    fn inverse(v: u64, bits: u32) -> u64 {
        ((v >> 1) ^ (v & 1).wrapping_neg()) & mask(bits)
    }

    /// Applies the forward transform.
    pub fn encode_bytes(&self, input: &[u8]) -> Vec<u8> {
        self.map(input, Self::forward)
    }

    /// Applies the inverse transform.
    pub fn decode_bytes(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        Ok(self.map(input, Self::inverse))
    }

    fn map(&self, input: &[u8], f: impl Fn(u64, u32) -> u64) -> Vec<u8> {
        let width = self.width;
        let bits = (width * 8) as u32;
        let n_sym = symbol_count(input.len(), width);
        // szhi-analyzer: allow(steady-alloc) -- the output vector is the stage's product, returned through the boxed-stage API and kept by the selector as the chunk payload; the runtime allocator gate (tests/steady_state_alloc.rs) budgets payload-only allocation on the warm path
        let mut out = Vec::with_capacity(input.len());
        for i in 0..n_sym {
            let sym = read_symbol(input, i, width);
            let remaining = input.len() - i * width;
            // The (possibly zero-padded) tail symbol is passed through
            // untouched so the transform stays exactly invertible on inputs
            // whose length is not a multiple of the width.
            let mapped = if remaining >= width {
                f(sym, bits)
            } else {
                sym
            };
            write_symbol(&mut out, mapped, width, remaining);
        }
        out
    }
}

#[inline]
fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn roundtrip(width: usize, data: &[u8]) {
        let t = Tcms::new(width);
        let enc = t.encode_bytes(data);
        assert_eq!(enc.len(), data.len(), "TCMS must be length-preserving");
        let dec = t.decode_bytes(&enc).unwrap();
        assert_eq!(dec, data);
    }

    #[test]
    fn small_signed_values_map_to_small_magnitudes() {
        let t = Tcms::new(1);
        // -1 (0xff) → 1, 1 → 2, -2 → 3, 2 → 4 …
        assert_eq!(t.encode_bytes(&[0x00]), vec![0x00]);
        assert_eq!(t.encode_bytes(&[0xff]), vec![0x01]);
        assert_eq!(t.encode_bytes(&[0x01]), vec![0x02]);
        assert_eq!(t.encode_bytes(&[0xfe]), vec![0x03]);
        assert_eq!(t.encode_bytes(&[0x02]), vec![0x04]);
    }

    #[test]
    fn paper_formula_for_8_byte_words() {
        // §5.2.3: (word << 1) ^ (word >> 63) on 64-bit words.
        let t = Tcms::new(8);
        let word: i64 = -123_456_789;
        let expected = ((word << 1) ^ (word >> 63)) as u64;
        let enc = t.encode_bytes(&(word as u64).to_le_bytes());
        assert_eq!(u64::from_le_bytes(enc.try_into().unwrap()), expected);
    }

    #[test]
    fn roundtrip_all_widths_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for w in [1, 2, 4, 8] {
            for len in [0usize, 1, 5, 8, 13, 1024, 4097] {
                let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
                roundtrip(w, &data);
            }
        }
    }

    #[test]
    fn roundtrip_exhaustive_single_byte() {
        let t = Tcms::new(1);
        for b in 0..=255u8 {
            let enc = t.encode_bytes(&[b]);
            assert_eq!(t.decode_bytes(&enc).unwrap(), vec![b]);
        }
        // The transform is a permutation of the byte alphabet.
        let mut seen = [false; 256];
        for b in 0..=255u8 {
            let e = t.encode_bytes(&[b])[0];
            assert!(!seen[e as usize], "transform is not injective at {b}");
            seen[e as usize] = true;
        }
    }

    #[test]
    fn quant_code_cluster_maps_near_zero() {
        // Codes centred at 128 (the top-1 symbol of the paper's §5.2.3) are
        // first re-biased by the caller; TCMS itself maps values near 0 and
        // near 255 (i.e. ±small) to small magnitudes.
        let t = Tcms::new(1);
        for delta in 0u8..8 {
            assert!(t.encode_bytes(&[delta])[0] < 16);
            assert!(t.encode_bytes(&[0u8.wrapping_sub(delta)])[0] < 16);
        }
    }
}
