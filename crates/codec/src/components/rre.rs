//! RRE — Run of Repeats Elimination.
//!
//! For a stream of `width`-byte symbols, RRE emits a bitmap with one bit per
//! symbol: `1` when the symbol differs from its predecessor (the symbol is
//! kept in the payload), `0` when it is identical (the symbol is dropped and
//! reconstructed from its predecessor). The bitmap itself is compressed with
//! a second, byte-granular repeat-elimination pass — the "recursive bitmap
//! compression" of §5.2.3.

use super::{read_symbol, symbol_count, write_symbol};
use crate::bitio::{decode_capacity, put_u64, ByteCursor};
use crate::CodecError;

/// Produces `(bitmap, kept)` for a single repeat-elimination pass: bit `i` of
/// the bitmap (LSB-first within each byte) is 1 when symbol `i` differs from
/// symbol `i-1` (symbol 0 is always kept).
fn rre_pass(input: &[u8], width: usize) -> (Vec<u8>, Vec<u8>) {
    let n_sym = symbol_count(input.len(), width);
    let mut bitmap = vec![0u8; n_sym.div_ceil(8)];
    let mut kept = Vec::with_capacity(input.len() / 2);
    let mut prev: Option<u64> = None;
    for i in 0..n_sym {
        let sym = read_symbol(input, i, width);
        let keep = prev != Some(sym);
        if keep {
            bitmap[i / 8] |= 1 << (i % 8);
            let remaining = input.len() - i * width;
            // Kept symbols are stored at full width; the true tail length is
            // recovered from the original length in the header.
            let _ = remaining;
            for k in 0..width {
                kept.push((sym >> (8 * k)) as u8);
            }
        }
        prev = Some(sym);
    }
    (bitmap, kept)
}

/// Reverses a single repeat-elimination pass.
fn rre_unpass(
    bitmap: &[u8],
    kept: &[u8],
    width: usize,
    orig_len: usize,
) -> Result<Vec<u8>, CodecError> {
    let n_sym = symbol_count(orig_len, width);
    let mut out = Vec::with_capacity(decode_capacity(orig_len));
    let mut kept_pos = 0usize;
    let mut prev = 0u64;
    for i in 0..n_sym {
        let byte = *bitmap
            .get(i / 8)
            .ok_or_else(|| CodecError::eof("rre bitmap"))?;
        let keep = byte >> (i % 8) & 1 == 1;
        let sym = if keep {
            if kept_pos + width > kept.len() {
                return Err(CodecError::eof("rre payload"));
            }
            let v = read_symbol(kept, kept_pos / width, width);
            kept_pos += width;
            v
        } else {
            if i == 0 {
                return Err(CodecError::corrupt("rre", "first symbol marked as repeat"));
            }
            prev
        };
        let remaining = orig_len - i * width;
        write_symbol(&mut out, sym, width, remaining);
        prev = sym;
    }
    Ok(out)
}

/// The RRE reducer at a given symbol width.
#[derive(Debug, Clone, Copy)]
pub struct Rre {
    width: usize,
}

impl Rre {
    /// Creates an RRE component for `width`-byte symbols (1, 2, 4 or 8).
    pub fn new(width: usize) -> Self {
        assert!(
            matches!(width, 1 | 2 | 4 | 8),
            "unsupported RRE symbol width {width}"
        );
        Rre { width }
    }

    /// Symbol width in bytes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Encodes `input`.
    ///
    /// Layout: `orig_len u64 | bitmap_len u64 | bm_bitmap_len u64 |
    /// bm_kept_len u64 | kept_len u64 | bm_bitmap | bm_kept | kept`.
    pub fn encode_bytes(&self, input: &[u8]) -> Vec<u8> {
        let (bitmap, kept) = rre_pass(input, self.width);
        // Recursive pass over the bitmap at byte granularity: long runs of
        // kept (0xff) or dropped (0x00) symbols collapse well.
        let (bm_bitmap, bm_kept) = rre_pass(&bitmap, 1);
        let mut out = Vec::with_capacity(kept.len() + bm_kept.len() + 48);
        put_u64(&mut out, input.len() as u64);
        put_u64(&mut out, bitmap.len() as u64);
        put_u64(&mut out, bm_bitmap.len() as u64);
        put_u64(&mut out, bm_kept.len() as u64);
        put_u64(&mut out, kept.len() as u64);
        out.extend_from_slice(&bm_bitmap);
        out.extend_from_slice(&bm_kept);
        out.extend_from_slice(&kept);
        out
    }

    /// Decodes a stream produced by [`Rre::encode_bytes`].
    pub fn decode_bytes(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut cur = ByteCursor::new(input);
        let orig_len = cur.get_u64()? as usize;
        let bitmap_len = cur.get_u64()? as usize;
        let bm_bitmap_len = cur.get_u64()? as usize;
        let bm_kept_len = cur.get_u64()? as usize;
        let kept_len = cur.get_u64()? as usize;
        let bm_bitmap = cur.take(bm_bitmap_len)?;
        let bm_kept = cur.take(bm_kept_len)?;
        let kept = cur.take(kept_len)?;
        let bitmap = rre_unpass(bm_bitmap, bm_kept, 1, bitmap_len)?;
        rre_unpass(&bitmap, kept, self.width, orig_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn roundtrip(width: usize, data: &[u8]) -> usize {
        let rre = Rre::new(width);
        let enc = rre.encode_bytes(data);
        let dec = rre.decode_bytes(&enc).expect("decode");
        assert_eq!(dec, data, "width {width} length {}", data.len());
        enc.len()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for w in [1, 2, 4, 8] {
            roundtrip(w, &[]);
            roundtrip(w, &[5]);
            roundtrip(w, &[5, 5]);
            roundtrip(w, &[1, 2, 3]);
        }
    }

    #[test]
    fn long_runs_collapse() {
        let mut data = vec![7u8; 4096];
        data.extend_from_slice(&[9u8; 4096]);
        let size = roundtrip(4, &data);
        assert!(
            size < data.len() / 8,
            "runs should collapse, got {size} bytes for {}",
            data.len()
        );
    }

    #[test]
    fn incompressible_data_survives() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let data: Vec<u8> = (0..10_000).map(|_| rng.gen()).collect();
        for w in [1, 4, 8] {
            let size = roundtrip(w, &data);
            // Random data cannot shrink but the overhead must stay bounded
            // (bitmap ≈ n/8/width plus headers).
            assert!(size <= data.len() + data.len() / (8 * w) + 128);
        }
    }

    #[test]
    fn width_ties_to_symbol_alignment() {
        // Alternating 4-byte symbols: no repeats at width 4, full repeats at
        // width 8 never — use data with repeats only visible at width 4.
        let mut data = Vec::new();
        for _ in 0..1000 {
            data.extend_from_slice(&[1, 2, 3, 4]);
        }
        let size4 = roundtrip(4, &data);
        let size1 = roundtrip(1, &data);
        assert!(
            size4 < size1,
            "width-4 RRE should beat width-1 on repeated 4-byte patterns"
        );
        assert!(size4 < 200);
    }

    #[test]
    fn non_multiple_lengths() {
        for w in [2, 4, 8] {
            for len in [1usize, 3, 7, 9, 17, 1001] {
                let data: Vec<u8> = (0..len).map(|i| (i % 5) as u8).collect();
                roundtrip(w, &data);
            }
        }
    }

    #[test]
    fn truncated_stream_is_detected() {
        let rre = Rre::new(4);
        let enc = rre.encode_bytes(&[1u8, 2, 3, 4, 5, 6, 7, 8]);
        assert!(rre.decode_bytes(&enc[..10]).is_err());
    }

    #[test]
    #[should_panic]
    fn invalid_width_rejected() {
        let _ = Rre::new(3);
    }
}
