//! DIFFMS — symbol-wise difference followed by the magnitude-sign transform.
//!
//! Each symbol is replaced by the zig-zag-coded difference to its
//! predecessor (the first symbol is differenced against zero). Smoothly
//! varying symbol streams — such as Huffman-coded lengths or reordered
//! quantization codes — become streams of small magnitudes that the CLOG or
//! RZE reducers can shrink.
//!
//! DIFFMS is a pure transformer: length-preserving and headerless.

use super::{read_symbol, symbol_count, write_symbol};
use crate::CodecError;

/// The DIFFMS transformer at a given symbol width.
#[derive(Debug, Clone, Copy)]
pub struct DiffMs {
    width: usize,
}

impl DiffMs {
    /// Creates a DIFFMS component for `width`-byte symbols.
    pub fn new(width: usize) -> Self {
        assert!(
            matches!(width, 1 | 2 | 4 | 8),
            "unsupported DIFFMS symbol width {width}"
        );
        DiffMs { width }
    }

    /// Symbol width in bytes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Applies delta + zig-zag.
    pub fn encode_bytes(&self, input: &[u8]) -> Vec<u8> {
        let width = self.width;
        let bits = (width * 8) as u32;
        let n_sym = symbol_count(input.len(), width);
        let mut out = Vec::with_capacity(input.len());
        let mut prev = 0u64;
        for i in 0..n_sym {
            let sym = read_symbol(input, i, width);
            let remaining = input.len() - i * width;
            if remaining >= width {
                let diff = sym.wrapping_sub(prev) & mask(bits);
                let zz = zigzag(diff, bits);
                write_symbol(&mut out, zz, width, remaining);
                prev = sym;
            } else {
                // Tail bytes are passed through untouched.
                write_symbol(&mut out, sym, width, remaining);
            }
        }
        out
    }

    /// Reverses delta + zig-zag.
    pub fn decode_bytes(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let width = self.width;
        let bits = (width * 8) as u32;
        let n_sym = symbol_count(input.len(), width);
        // szhi-analyzer: allow(capped-alloc) -- capacity mirrors the bytes actually held, not an untrusted claim
        let mut out = Vec::with_capacity(input.len());
        let mut prev = 0u64;
        for i in 0..n_sym {
            let sym = read_symbol(input, i, width);
            let remaining = input.len() - i * width;
            if remaining >= width {
                let diff = unzigzag(sym, bits);
                let v = prev.wrapping_add(diff) & mask(bits);
                write_symbol(&mut out, v, width, remaining);
                prev = v;
            } else {
                write_symbol(&mut out, sym, width, remaining);
            }
        }
        Ok(out)
    }
}

#[inline]
fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[inline]
fn zigzag(v: u64, bits: u32) -> u64 {
    let sign = ((v as i64) << (64 - bits)) >> 63;
    ((v << 1) ^ sign as u64) & mask(bits)
}

#[inline]
fn unzigzag(v: u64, bits: u32) -> u64 {
    ((v >> 1) ^ (v & 1).wrapping_neg()) & mask(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn roundtrip(width: usize, data: &[u8]) {
        let d = DiffMs::new(width);
        let enc = d.encode_bytes(data);
        assert_eq!(enc.len(), data.len());
        assert_eq!(d.decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn roundtrip_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for w in [1, 2, 4, 8] {
            for len in [0usize, 1, 7, 8, 9, 255, 4096, 4099] {
                let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
                roundtrip(w, &data);
            }
        }
    }

    #[test]
    fn slowly_varying_stream_becomes_small() {
        // A ramp: consecutive differences are 1 → zig-zag value 2 everywhere.
        let data: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        let enc = DiffMs::new(1).encode_bytes(&data);
        assert!(
            enc[1..].iter().all(|&b| b == 2),
            "ramp should become constant 2s"
        );
    }

    #[test]
    fn constant_stream_becomes_zeros_after_first() {
        let data = vec![200u8; 100];
        let enc = DiffMs::new(1).encode_bytes(&data);
        assert!(enc[1..].iter().all(|&b| b == 0));
    }

    #[test]
    fn wide_symbols_diff_across_words() {
        let mut data = Vec::new();
        for v in [1000u32, 1004, 1002, 1010] {
            data.extend_from_slice(&v.to_le_bytes());
        }
        roundtrip(4, &data);
        let enc = DiffMs::new(4).encode_bytes(&data);
        let first = u32::from_le_bytes(enc[0..4].try_into().unwrap());
        assert_eq!(first, 2000); // zigzag(1000)
        let second = u32::from_le_bytes(enc[4..8].try_into().unwrap());
        assert_eq!(second, 8); // zigzag(+4)
    }
}
