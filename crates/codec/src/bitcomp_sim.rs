//! An open-source stand-in for NVIDIA Bitcomp.
//!
//! NVIDIA Bitcomp is the proprietary lossless codec cuSZ-I attaches to its
//! pipeline (`cuSZ-IB` in the paper) and the probe the paper uses in Table 1
//! to measure how much redundancy other compressors leave in their output.
//! Bitcomp itself is closed source; what the paper relies on is only its
//! qualitative behaviour: a *fast, bit-packing style lossless codec* that
//! removes residual byte-level smoothness and zero-runs.
//!
//! This module implements that behaviour with components already in this
//! crate: byte-wise delta + zig-zag (exposing smoothness as small
//! magnitudes), followed by per-block ceiling-log₂ bit packing, with a
//! per-block escape to verbatim storage so incompressible blocks never
//! expand by more than the per-block header. The substitution is documented
//! in `DESIGN.md`.

use crate::bitio::{decode_capacity, put_u64, BitReader, BitWriter, ByteCursor};
use crate::CodecError;

/// Bytes per packing block.
const BLOCK: usize = 4096;

/// Compresses `input` losslessly.
///
/// Layout: `orig_len u64 | bit stream of blocks`, each block being
/// `[1-bit verbatim flag][4-bit width | packed deltas …]` or
/// `[1][raw bytes]`.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    put_u64(&mut out, input.len() as u64);
    let mut bw = BitWriter::with_capacity_bits(input.len() * 8 / 2);
    let mut prev_last = 0u8;
    for block in input.chunks(BLOCK) {
        // Delta + zig-zag within the block (seeded by the previous block's
        // last byte so long smooth runs spanning blocks stay small).
        let mut deltas = Vec::with_capacity(block.len());
        let mut prev = prev_last;
        let mut max = 0u8;
        for &b in block {
            let d = b.wrapping_sub(prev) as i8;
            let zz = ((d << 1) ^ (d >> 7)) as u8;
            max = max.max(zz);
            deltas.push(zz);
            prev = b;
        }
        prev_last = prev;
        let bits = if max == 0 { 0 } else { 8 - max.leading_zeros() };
        // A packed block costs 5 + bits·len bits; verbatim costs 1 + 8·len.
        if (bits as usize) < 8 {
            bw.put_bit(false);
            bw.put_bits(bits as u64, 4);
            if bits > 0 {
                for &zz in &deltas {
                    bw.put_bits(zz as u64, bits);
                }
            }
        } else {
            bw.put_bit(true);
            for &b in block {
                bw.put_bits(b as u64, 8);
            }
        }
    }
    out.extend_from_slice(&bw.finish());
    out
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, CodecError> {
    decompress_limited(input, usize::MAX)
}

/// Like [`decompress`], but rejects streams whose claimed output length
/// exceeds `max_out` before any decoding work, for use on untrusted input.
pub fn decompress_limited(input: &[u8], max_out: usize) -> Result<Vec<u8>, CodecError> {
    let mut cur = ByteCursor::new(input);
    let orig_len = cur.get_u64()? as usize;
    if orig_len > max_out {
        return Err(CodecError::corrupt(
            "bitcomp",
            format!("claimed {orig_len} bytes, limit {max_out}"),
        ));
    }
    let mut br = BitReader::new(cur.take_rest());
    let mut out = Vec::with_capacity(decode_capacity(orig_len));
    let mut prev_last = 0u8;
    let mut remaining = orig_len;
    while remaining > 0 {
        let n = BLOCK.min(remaining);
        let verbatim = br.get_bit()?;
        if verbatim {
            let mut last = prev_last;
            for _ in 0..n {
                let b = br.get_bits(8)? as u8;
                out.push(b);
                last = b;
            }
            prev_last = last;
        } else {
            let bits = br.get_bits(4)? as u32;
            if bits > 8 {
                return Err(CodecError::corrupt(
                    "bitcomp_sim",
                    format!("invalid width {bits}"),
                ));
            }
            let mut prev = prev_last;
            for _ in 0..n {
                let zz = if bits == 0 {
                    0
                } else {
                    br.get_bits(bits)? as u8
                };
                let d = ((zz >> 1) ^ (zz & 1).wrapping_neg()) as i8;
                let b = prev.wrapping_add(d as u8);
                out.push(b);
                prev = b;
            }
            prev_last = prev;
        }
        remaining -= n;
    }
    Ok(out)
}

/// The compression ratio Bitcomp-sim achieves on `input` — the probe used by
/// the Table 1 experiment ("how much redundancy does a compressor's output
/// still contain?").
pub fn residual_ratio(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    input.len() as f64 / compress(input).len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn roundtrip(data: &[u8]) -> usize {
        let enc = compress(data);
        assert_eq!(decompress(&enc).unwrap(), data);
        enc.len()
    }

    #[test]
    fn roundtrip_various() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        for len in [0usize, 1, 2, 4095, 4096, 4097, 100_000] {
            let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn smooth_data_compresses_well() {
        let data: Vec<u8> = (0..100_000u32).map(|i| ((i / 37) % 256) as u8).collect();
        let size = roundtrip(&data);
        assert!(
            size < data.len() / 3,
            "smooth ramps must compress ≥3x, got {size}"
        );
    }

    #[test]
    fn zero_data_nearly_disappears() {
        let size = roundtrip(&vec![0u8; 1 << 20]);
        assert!(size < 2048, "zero input should collapse, got {size}");
    }

    #[test]
    fn random_data_does_not_expand_much() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(47);
        let data: Vec<u8> = (0..(1usize << 20)).map(|_| rng.gen()).collect();
        let size = roundtrip(&data);
        assert!(
            size <= data.len() + data.len() / 1000 + 64,
            "incompressible data expanded to {size}"
        );
    }

    #[test]
    fn residual_ratio_separates_smooth_from_random() {
        let smooth: Vec<u8> = (0..65_536u32).map(|i| ((i / 64) % 200) as u8).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(53);
        let random: Vec<u8> = (0..65_536).map(|_| rng.gen()).collect();
        assert!(residual_ratio(&smooth) > 2.0);
        assert!(residual_ratio(&random) < 1.1);
    }

    #[test]
    fn truncation_is_detected() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let enc = compress(&data);
        assert!(decompress(&enc[..enc.len() / 2]).is_err());
    }
}
