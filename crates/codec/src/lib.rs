//! Lossless encoding substrate for the `szhi` workspace.
//!
//! The cuSZ-Hi paper's second contribution is a pair of multi-stage lossless
//! pipelines for the quantization codes produced by its interpolation
//! predictor (§5.2, Figures 6 and 7):
//!
//! * **CR mode** — `HF → RRE4 → TCMS8 → RZE1` (Huffman entropy coding
//!   followed by repeat-elimination, magnitude-sign transform and
//!   zero-elimination), maximising compression ratio;
//! * **TP mode** — `TCMS1 → BIT1 → RRE1` (magnitude-sign transform, bit
//!   shuffle, repeat-elimination), a Huffman-free pipeline maximising
//!   throughput.
//!
//! This crate implements every building block those pipelines need, plus the
//! additional encoders the paper benchmarks in Figure 6 and uses in its
//! baselines:
//!
//! * [`bitio`] — bit-level writers/readers and integer packing.
//! * [`huffman`] — canonical Huffman coding over byte symbols.
//! * [`components`] — the LC-framework-style composable stages
//!   (`RRE`/`RZE`/`TCMS`/`BIT`/`DIFFMS`/`CLOG`/`TUPL`).
//! * [`pipeline`] — stage composition and the named pipeline catalogue.
//! * [`bitcomp_sim`] — an open-source stand-in for NVIDIA Bitcomp
//!   (see `DESIGN.md` for the substitution rationale).
//! * [`ans`] — a static range coder standing in for nvCOMP's ANS.
//! * [`lz`] — an LZSS-style dictionary coder standing in for
//!   GPULZ / nvCOMP LZ4.
//! * [`fixedlen`] — per-block fixed-length bit packing (used by the cuSZp2
//!   and FZ-GPU baselines).
//! * [`checksum`] — CRC32 (IEEE) integrity checksums for the chunked
//!   stream containers.
//!
//! Every encoder in this crate is strictly lossless and exposes an
//! `encode`/`decode` pair; round-trip behaviour is covered by unit tests and
//! property tests.
#![forbid(unsafe_code)]

pub mod ans;
pub mod bitcomp_sim;
pub mod bitio;
pub mod checksum;
pub mod components;
pub mod error;
pub mod fixedlen;
pub mod huffman;
pub mod lz;
pub mod pipeline;

pub use error::CodecError;
pub use pipeline::{Pipeline, PipelineSpec, Stage, StageSpec};
