//! CRC32 (IEEE 802.3) integrity checksums.
//!
//! The chunked stream containers attach a CRC32 to every chunk body so that
//! corruption in the data area is caught *before* any lossless decoder sees
//! the bytes. CRC32 is the standard gzip/zlib/PNG polynomial (`0xEDB88320`
//! reflected), computed slice-by-8: the hot loop reads eight input bytes at
//! a time as one little-endian `u64` and folds them through eight 256-entry
//! tables built at compile time, so the per-byte cost is one table lookup
//! and the loop-carried dependency is a single XOR tree per eight bytes —
//! fast enough to be invisible next to the entropy coders, and a fixed
//! 4-byte cost per chunk. [`update_bytewise`] keeps the classic one-table
//! byte-at-a-time formulation as the reference the fast path is verified
//! against (and handles the unaligned tail).
//!
//! ```
//! use szhi_codec::checksum::crc32;
//!
//! assert_eq!(crc32(b"123456789"), 0xCBF4_3926); // the classic check value
//! assert_ne!(crc32(b"hello"), crc32(b"hellp"));
//! ```

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The slice-by-8 tables, built at compile time. `TABLES[0]` is the classic
/// byte-at-a-time table; `TABLES[k][b]` is the CRC contribution of byte `b`
/// seen `k` positions before the end of an 8-byte group
/// (`TABLES[k][b] = (TABLES[k-1][b] >> 8) ^ TABLES[0][TABLES[k-1][b] & 0xFF]`).
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// The CRC32 (IEEE) of `bytes`: initial value `0xFFFF_FFFF`, reflected
/// polynomial `0xEDB88320`, final XOR `0xFFFF_FFFF` — the same convention as
/// gzip, zlib and PNG.
pub fn crc32(bytes: &[u8]) -> u32 {
    // szhi-analyzer: allow(panic-reachability) -- every table index in `update` is masked `& 0xFF` into a 256-entry table and the 8-byte `try_into` is infallible on `chunks_exact(8)`; proptest checks the kernel against the bytewise reference
    update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Feeds `bytes` into a running (pre-inverted) CRC state. Exposed so callers
/// can checksum data that arrives in pieces:
/// `crc32(ab) == finalize(update(update(init(), a), b))` with
/// `init() = 0xFFFF_FFFF` and `finalize(s) = s ^ 0xFFFF_FFFF`.
///
/// Slice-by-8: eight bytes are consumed per iteration via a `u64` read; the
/// sub-8-byte tail goes through the bytewise reference path.
pub fn update(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let v =
            u64::from_le_bytes(chunk.try_into().expect("chunks_exact yields 8 bytes")) ^ crc as u64;
        crc = TABLES[7][(v & 0xFF) as usize]
            ^ TABLES[6][((v >> 8) & 0xFF) as usize]
            ^ TABLES[5][((v >> 16) & 0xFF) as usize]
            ^ TABLES[4][((v >> 24) & 0xFF) as usize]
            ^ TABLES[3][((v >> 32) & 0xFF) as usize]
            ^ TABLES[2][((v >> 40) & 0xFF) as usize]
            ^ TABLES[1][((v >> 48) & 0xFF) as usize]
            ^ TABLES[0][((v >> 56) & 0xFF) as usize];
    }
    // szhi-analyzer: allow(panic-reachability) -- the reference loop indexes `TABLES[0]` with a value masked `& 0xFF`, in bounds by construction
    update_bytewise(crc, chunks.remainder())
}

/// The byte-at-a-time reference formulation: one table lookup per input
/// byte. This is the path the slice-by-8 kernel is property-tested against,
/// and the tail handler for inputs that are not a multiple of eight bytes.
pub fn update_bytewise(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Bytewise-reference counterpart of [`crc32`], used by the differential
/// tests and the before/after kernel benchmarks.
pub fn crc32_bytewise(bytes: &[u8]) -> u32 {
    update_bytewise(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // Check values from the CRC catalogue (CRC-32/ISO-HDLC), against
        // both the slice-by-8 path and the bytewise reference.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_bytewise(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(
            crc32_bytewise(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_update_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 131 % 251) as u8).collect();
        for split in [0, 1, 13, 500, 999, 1000] {
            let state = update(0xFFFF_FFFF, &data[..split]);
            let state = update(state, &data[split..]);
            assert_eq!(state ^ 0xFFFF_FFFF, crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        let reference = crc32(&data);
        for pos in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[pos] ^= 1 << bit;
                assert_ne!(
                    crc32(&corrupt),
                    reference,
                    "flip of byte {pos} bit {bit} not detected"
                );
            }
        }
    }

    proptest! {
        /// Slice-by-8 must equal the bytewise reference for arbitrary
        /// inputs, and incremental updates split at an arbitrary point
        /// (exercising every prefix alignment of the 8-byte fast loop)
        /// must agree with the one-shot value.
        #[test]
        fn slice_by_8_matches_bytewise_reference(
            data in proptest::collection::vec(any::<u8>(), 0..512),
            split in 0usize..512,
        ) {
            prop_assert_eq!(crc32(&data), crc32_bytewise(&data));
            let split = split.min(data.len());
            let state = update(0xFFFF_FFFF, &data[..split]);
            let state = update(state, &data[split..]);
            prop_assert_eq!(state ^ 0xFFFF_FFFF, crc32_bytewise(&data));
        }
    }
}
