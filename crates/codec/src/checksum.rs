//! CRC32 (IEEE 802.3) integrity checksums.
//!
//! The chunked stream containers attach a CRC32 to every chunk body so that
//! corruption in the data area is caught *before* any lossless decoder sees
//! the bytes. CRC32 is the standard gzip/zlib/PNG polynomial (`0xEDB88320`
//! reflected), table-driven, processing one byte per step — fast enough to
//! be invisible next to the entropy coders, and a fixed 4-byte cost per
//! chunk.
//!
//! ```
//! use szhi_codec::checksum::crc32;
//!
//! assert_eq!(crc32(b"123456789"), 0xCBF4_3926); // the classic check value
//! assert_ne!(crc32(b"hello"), crc32(b"hellp"));
//! ```

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry CRC table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC32 (IEEE) of `bytes`: initial value `0xFFFF_FFFF`, reflected
/// polynomial `0xEDB88320`, final XOR `0xFFFF_FFFF` — the same convention as
/// gzip, zlib and PNG.
pub fn crc32(bytes: &[u8]) -> u32 {
    update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Feeds `bytes` into a running (pre-inverted) CRC state. Exposed so callers
/// can checksum data that arrives in pieces:
/// `crc32(ab) == finalize(update(update(init(), a), b))` with
/// `init() = 0xFFFF_FFFF` and `finalize(s) = s ^ 0xFFFF_FFFF`.
pub fn update(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Check values from the CRC catalogue (CRC-32/ISO-HDLC).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_update_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 131 % 251) as u8).collect();
        for split in [0, 1, 13, 500, 999, 1000] {
            let state = update(0xFFFF_FFFF, &data[..split]);
            let state = update(state, &data[split..]);
            assert_eq!(state ^ 0xFFFF_FFFF, crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        let reference = crc32(&data);
        for pos in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[pos] ^= 1 << bit;
                assert_ne!(
                    crc32(&corrupt),
                    reference,
                    "flip of byte {pos} bit {bit} not detected"
                );
            }
        }
    }
}
