//! Canonical Huffman coding over byte symbols.
//!
//! cuSZ, cuSZ-I and the CR-mode pipeline of cuSZ-Hi all use Huffman coding as
//! the entropy stage over the quantization codes. This module implements a
//! canonical, length-limited Huffman coder over `u8` symbols:
//!
//! * code lengths come from a standard two-queue Huffman construction over
//!   the symbol histogram, then are limited to [`MAX_CODE_LEN`] bits with a
//!   Kraft-sum fix-up (the approach used by zlib);
//! * only the 256 code lengths are stored in the header (canonical codes are
//!   reconstructed on decode), so the header overhead matches the "Huffman
//!   tree can be a non-negligible overhead at very high CR" effect the paper
//!   discusses for small inputs;
//! * decoding uses a 12-bit prefix lookup table with a canonical fallback for
//!   longer codes.

use crate::bitio::{decode_capacity, put_u64, BitReader, BitWriter, ByteCursor, WordWriter};
use crate::CodecError;

/// Maximum code length in bits. 32 is far above the entropy of quantization
/// codes but keeps the fix-up cheap and the decoder simple.
pub const MAX_CODE_LEN: u32 = 32;

const LUT_BITS: u32 = 12;

/// Computes the Huffman code length of every symbol of `hist` (zero for
/// symbols that never occur), limited to `MAX_CODE_LEN`.
fn code_lengths(hist: &[u64; 256]) -> [u32; 256] {
    let mut lengths = [0u32; 256];
    let symbols: Vec<usize> = (0..256).filter(|&s| hist[s] > 0).collect();
    match symbols.len() {
        0 => return lengths,
        1 => {
            lengths[symbols[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Two-queue Huffman construction over (weight, node) pairs.
    #[derive(Clone, Copy)]
    struct Node {
        weight: u64,
        // Index into `nodes`; leaves store the symbol in `symbol`.
        left: i32,
        right: i32,
        symbol: i32,
    }
    let mut nodes: Vec<Node> = symbols
        .iter()
        .map(|&s| Node {
            weight: hist[s],
            left: -1,
            right: -1,
            symbol: s as i32,
        })
        .collect();
    nodes.sort_by_key(|n| n.weight);
    let mut leaves: std::collections::VecDeque<usize> = (0..nodes.len()).collect();
    let mut internal: std::collections::VecDeque<usize> = std::collections::VecDeque::new();

    let pop_min = |nodes: &Vec<Node>,
                   leaves: &mut std::collections::VecDeque<usize>,
                   internal: &mut std::collections::VecDeque<usize>|
     -> usize {
        match (leaves.front(), internal.front()) {
            (Some(&l), Some(&i)) => {
                if nodes[l].weight <= nodes[i].weight {
                    leaves.pop_front().unwrap()
                } else {
                    internal.pop_front().unwrap()
                }
            }
            (Some(_), None) => leaves.pop_front().unwrap(),
            (None, Some(_)) => internal.pop_front().unwrap(),
            (None, None) => unreachable!("huffman construction ran out of nodes"),
        }
    };

    while leaves.len() + internal.len() > 1 {
        let a = pop_min(&nodes, &mut leaves, &mut internal);
        let b = pop_min(&nodes, &mut leaves, &mut internal);
        let merged = Node {
            weight: nodes[a].weight + nodes[b].weight,
            left: a as i32,
            right: b as i32,
            symbol: -1,
        };
        nodes.push(merged);
        internal.push_back(nodes.len() - 1);
    }
    let root = internal.pop_front().unwrap();

    // Depth-first traversal to assign lengths.
    let mut stack = vec![(root, 0u32)];
    while let Some((idx, depth)) = stack.pop() {
        let n = nodes[idx];
        if n.symbol >= 0 {
            lengths[n.symbol as usize] = depth.max(1);
        } else {
            stack.push((n.left as usize, depth + 1));
            stack.push((n.right as usize, depth + 1));
        }
    }

    limit_lengths(&mut lengths);
    lengths
}

/// Limits code lengths to `MAX_CODE_LEN` while keeping the Kraft sum exactly 1
/// (zlib-style fix-up). Lengths of zero mean "symbol absent".
fn limit_lengths(lengths: &mut [u32; 256]) {
    let over: Vec<usize> = (0..256).filter(|&s| lengths[s] > MAX_CODE_LEN).collect();
    if over.is_empty() {
        return;
    }
    for &s in &over {
        lengths[s] = MAX_CODE_LEN;
    }
    // Kraft sum in units of 2^-MAX_CODE_LEN.
    let unit = 1u64 << MAX_CODE_LEN;
    let mut kraft: u64 = (0..256)
        .filter(|&s| lengths[s] > 0)
        .map(|s| unit >> lengths[s])
        .sum();
    // While over-subscribed, lengthen the shortest-coded low-frequency symbols.
    while kraft > unit {
        // Find a symbol with the largest length < MAX_CODE_LEN and grow it.
        let mut candidate = None;
        for s in 0..256 {
            if lengths[s] > 0 && lengths[s] < MAX_CODE_LEN {
                candidate = match candidate {
                    None => Some(s),
                    Some(c) if lengths[s] > lengths[c] => Some(s),
                    other => other,
                };
            }
        }
        let s = candidate.expect("kraft fix-up failed to find a symbol to lengthen");
        kraft -= unit >> lengths[s];
        lengths[s] += 1;
        kraft += unit >> lengths[s];
    }
    // If under-subscribed (possible after clamping), shorten symbols greedily.
    loop {
        let mut changed = false;
        for len in lengths.iter_mut() {
            if *len > 1 {
                let gain = (unit >> (*len - 1)) - (unit >> *len);
                if kraft + gain <= unit {
                    *len -= 1;
                    kraft += gain;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// Assigns canonical codes to symbols given their code lengths: shorter codes
/// first, ties broken by symbol value.
fn canonical_codes(lengths: &[u32; 256]) -> [u64; 256] {
    let mut codes = [0u64; 256];
    let mut symbols: Vec<usize> = (0..256).filter(|&s| lengths[s] > 0).collect();
    symbols.sort_by_key(|&s| (lengths[s], s));
    let mut code = 0u64;
    let mut prev_len = 0u32;
    for &s in &symbols {
        code <<= lengths[s] - prev_len;
        codes[s] = code;
        code += 1;
        prev_len = lengths[s];
    }
    codes
}

/// A canonical Huffman code book built from a symbol histogram.
#[derive(Debug, Clone)]
pub struct HuffmanBook {
    lengths: [u32; 256],
    codes: [u64; 256],
}

impl HuffmanBook {
    /// Builds the code book for `data`.
    pub fn from_data(data: &[u8]) -> Self {
        let mut hist = [0u64; 256];
        for &b in data {
            hist[b as usize] += 1;
        }
        Self::from_histogram(&hist)
    }

    /// Builds the code book from an explicit histogram.
    pub fn from_histogram(hist: &[u64; 256]) -> Self {
        let lengths = code_lengths(hist);
        let codes = canonical_codes(&lengths);
        HuffmanBook { lengths, codes }
    }

    /// The code length (bits) of `symbol`, zero when the symbol is absent.
    pub fn length(&self, symbol: u8) -> u32 {
        self.lengths[symbol as usize]
    }

    /// The canonical code of `symbol` (valid in its low
    /// [`length`](HuffmanBook::length) bits).
    pub fn code(&self, symbol: u8) -> u64 {
        self.codes[symbol as usize]
    }

    /// The total encoded size in bits of data with histogram `hist`.
    pub fn encoded_bits(&self, hist: &[u64; 256]) -> u64 {
        (0..256).map(|s| hist[s] * self.lengths[s] as u64).sum()
    }

    /// The per-symbol `(code, length)` pairs packed into one `u64` each
    /// (`code << 6 | length`): the hot encode loop reads a single table
    /// entry per symbol instead of two separate arrays. Codes fit because
    /// [`MAX_CODE_LEN`] ≤ 32 and lengths fit in 6 bits.
    fn packed_table(&self) -> [u64; 256] {
        let mut table = [0u64; 256];
        for (s, entry) in table.iter_mut().enumerate() {
            *entry = (self.codes[s] << 6) | self.lengths[s] as u64;
        }
        table
    }
}

/// Encodes `data` with a canonical Huffman code built from its histogram.
///
/// Output layout: `[n_symbols: u64][256 packed 6-bit lengths][payload bits]`.
/// The payload loop is table-driven over a `u64` bit accumulator: one packed
/// `(code, len)` lookup and one [`WordWriter::put`] shift-or per symbol,
/// flushing 32 output bits at a time.
pub fn encode(data: &[u8]) -> Vec<u8> {
    let book = HuffmanBook::from_data(data);
    let mut out = Vec::with_capacity(data.len() / 2 + 256);
    put_u64(&mut out, data.len() as u64);
    // Pack the 256 code lengths, 6 bits each (MAX_CODE_LEN ≤ 63).
    let mut lw = BitWriter::with_capacity_bits(256 * 6);
    for s in 0..256 {
        lw.put_bits(book.lengths[s] as u64, 6);
    }
    out.extend_from_slice(&lw.finish());
    let table = book.packed_table();
    let mut ww = WordWriter::with_capacity_bits(data.len() * 4);
    for &b in data {
        let entry = table[b as usize];
        ww.put((entry >> 6) as u32, (entry & 0x3F) as u32);
    }
    out.extend_from_slice(&ww.finish());
    out
}

/// Reference encoder kept for differential tests and the before/after
/// kernel benchmarks: identical output to [`encode`], but written through
/// the byte-at-a-time [`BitWriter`] with separate code/length lookups (the
/// pre-optimisation formulation).
#[doc(hidden)]
pub fn encode_reference(data: &[u8]) -> Vec<u8> {
    let book = HuffmanBook::from_data(data);
    let mut out = Vec::with_capacity(data.len() / 2 + 256);
    put_u64(&mut out, data.len() as u64);
    let mut lw = BitWriter::with_capacity_bits(256 * 6);
    for s in 0..256 {
        lw.put_bits(book.lengths[s] as u64, 6);
    }
    out.extend_from_slice(&lw.finish());
    let mut bw = BitWriter::with_capacity_bits(data.len() * 4);
    for &b in data {
        bw.put_bits(book.codes[b as usize], book.lengths[b as usize]);
    }
    out.extend_from_slice(&bw.finish());
    out
}

/// Decodes a stream produced by [`encode`].
pub fn decode(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    decode_limited(data, usize::MAX)
}

/// Like [`decode`], but rejects streams whose claimed symbol count exceeds
/// `max_out` before any decoding work, for use on untrusted input.
pub fn decode_limited(data: &[u8], max_out: usize) -> Result<Vec<u8>, CodecError> {
    let mut cur = ByteCursor::new(data);
    let n = cur.get_u64()? as usize;
    if n > max_out {
        return Err(CodecError::corrupt(
            "huffman",
            format!("claimed {n} symbols, limit {max_out}"),
        ));
    }
    let lengths_bytes = cur.take(192)?; // 256 * 6 bits = 192 bytes
    let mut lr = BitReader::new(lengths_bytes);
    let mut lengths = [0u32; 256];
    for l in lengths.iter_mut() {
        *l = lr.get_bits(6)? as u32;
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    if lengths.iter().all(|&l| l == 0) {
        return Err(CodecError::header(
            "huffman",
            "no symbols in code book for non-empty payload",
        ));
    }
    // Reject code books that violate the Kraft inequality: canonical code
    // assignment for an over-subscribed book overflows the codes' bit
    // lengths, and with them the LUT index space.
    let unit = 1u64 << 32;
    let kraft: u64 = lengths.iter().filter(|&&l| l > 0).map(|&l| unit >> l).sum();
    if kraft > unit {
        return Err(CodecError::corrupt(
            "huffman",
            "code book violates the Kraft inequality",
        ));
    }
    // szhi-analyzer: allow(panic-reachability) -- `canonical_codes` indexes two fixed `[_; 256]` tables with symbols drawn from `0..256`, in bounds by construction; the Kraft check above already rejected malformed code books
    let codes = canonical_codes(&lengths);

    // For the canonical fallback: occurring symbols with their length and
    // code, sorted by (length, symbol) — the canonical order.
    let mut sorted: Vec<(u16, u32, u64)> = lengths
        .iter()
        .zip(codes.iter())
        .enumerate()
        .filter(|&(_, (&l, _))| l > 0)
        .map(|(s, (&l, &c))| (s as u16, l, c))
        .collect();
    sorted.sort_by_key(|&(s, l, _)| (l, s));

    // Decoding tables: a (symbol, length) LUT for codes up to LUT_BITS,
    // canonical search above.
    let mut lut = vec![(0u8, 0u8); 1 << LUT_BITS];
    for &(s, len, code) in &sorted {
        if len <= LUT_BITS {
            let shift = LUT_BITS - len;
            let start = (code << shift) as usize;
            lut.get_mut(start..start + (1usize << shift))
                .ok_or_else(|| {
                    CodecError::corrupt("huffman", "code book overflows the decode LUT")
                })?
                .fill((s as u8, len as u8));
        }
    }
    // Canonical tables for the slow path, one entry per code length:
    // (symbol count, first canonical code, index of the first symbol of
    // that length in the canonical order).
    let max_len = lengths.iter().copied().max().unwrap_or(0);
    let mut levels = vec![(0u64, 0u64, 0usize); (max_len + 1) as usize];
    for &(_, len, _) in &sorted {
        if let Some(level) = levels.get_mut(len as usize) {
            level.0 += 1;
        }
    }
    {
        let mut code = 0u64;
        let mut idx = 0usize;
        for level in levels.iter_mut().skip(1) {
            level.1 = code;
            level.2 = idx;
            code = (code + level.0) << 1;
            idx += level.0 as usize;
        }
    }

    let payload = cur.take_rest();
    // Every decoded symbol consumes at least one bit, so a symbol count
    // beyond the payload's bit count is corrupt. Without this check the
    // decode loop would read the final byte's zero padding indefinitely.
    if n > payload.len() * 8 {
        return Err(CodecError::corrupt(
            "huffman",
            format!("claimed {n} symbols from a {}-byte payload", payload.len()),
        ));
    }
    let mut br = BitReader::new(payload);
    let mut out = Vec::with_capacity(decode_capacity(n));
    for _ in 0..n {
        let peek = br.peek_bits(LUT_BITS) as usize;
        if let Some(&(sym, len)) = lut.get(peek) {
            if len != 0 {
                br.consume(len as u32);
                out.push(sym);
                continue;
            }
        }
        // Slow path: the code is longer than LUT_BITS; decode it bit by bit
        // with the canonical tables.
        let mut code = 0u64;
        let mut l = 0u32;
        loop {
            l += 1;
            if l > max_len {
                return Err(CodecError::corrupt(
                    "huffman",
                    "code longer than the longest code length",
                ));
            }
            code = (code << 1) | br.get_bit()? as u64;
            let &(cnt, first_code, first_index) = levels
                .get(l as usize)
                .ok_or_else(|| CodecError::corrupt("huffman", "code length out of range"))?;
            if cnt > 0 && code >= first_code && code - first_code < cnt {
                let idx = first_index + (code - first_code) as usize;
                let &(sym, _, _) = sorted.get(idx).ok_or_else(|| {
                    CodecError::corrupt("huffman", "canonical index out of range")
                })?;
                out.push(sym as u8);
                break;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn roundtrip(data: &[u8]) {
        let enc = encode(data);
        let dec = decode(&enc).expect("decode failed");
        assert_eq!(dec, data);
    }

    #[test]
    fn word_encoder_matches_the_bitwriter_reference() {
        // The table-driven WordWriter hot loop must be byte-identical to
        // the byte-at-a-time reference on every input shape, including
        // skewed histograms that produce length-limited (32-bit) codes.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
        let mut skewed = Vec::new();
        for s in 0..200u32 {
            let reps = 1usize << (s % 18).min(14);
            skewed.extend(std::iter::repeat_n(s as u8, reps));
        }
        let uniform: Vec<u8> = (0..10_000).map(|_| rng.gen()).collect();
        for data in [&b""[..], &b"a"[..], &skewed[..], &uniform[..]] {
            assert_eq!(encode(data), encode_reference(data));
        }
    }

    #[test]
    fn oversubscribed_code_book_is_rejected() {
        // A book claiming length 1 for three symbols violates the Kraft
        // inequality; canonical code assignment would overflow the LUT.
        let mut stream = Vec::new();
        crate::bitio::put_u64(&mut stream, 8);
        let mut bw = BitWriter::new();
        for s in 0..256u32 {
            bw.put_bits(if s < 3 { 1 } else { 0 }, 6);
        }
        stream.extend_from_slice(&bw.finish());
        stream.extend_from_slice(&[0xAA; 16]);
        assert!(decode(&stream).is_err());
    }

    #[test]
    fn symbol_count_beyond_payload_bits_is_rejected() {
        // Each symbol consumes at least one bit; inflating the count must
        // fail upfront instead of decoding the final byte's padding forever.
        let mut enc = encode(&[1u8, 2, 3, 4, 5, 6, 7, 8]);
        enc[0..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode(&enc).is_err());
        // And decode_limited rejects counts beyond the caller's bound.
        let mut enc = encode(&[9u8; 100]);
        enc[0..8].copy_from_slice(&400u64.to_le_bytes());
        assert!(decode_limited(&enc, 100).is_err());
    }

    #[test]
    fn empty_input() {
        roundtrip(&[]);
    }

    #[test]
    fn single_symbol_runs() {
        roundtrip(&[42u8; 1000]);
        roundtrip(&[0u8]);
    }

    #[test]
    fn two_symbols() {
        let data: Vec<u8> = (0..500).map(|i| if i % 3 == 0 { 7 } else { 200 }).collect();
        roundtrip(&data);
    }

    #[test]
    fn all_symbols_uniform() {
        let data: Vec<u8> = (0..4096).map(|i| (i % 256) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // Quantization-code-like data: strongly peaked around 128.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                let r: f64 = rng.gen();
                128u8.wrapping_add(((r - 0.5) * 8.0) as i8 as u8)
            })
            .collect();
        let enc = encode(&data);
        assert!(
            enc.len() < data.len() / 2,
            "skewed data should compress at least 2x, got {} -> {}",
            data.len(),
            enc.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn random_data_roundtrips() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for len in [1usize, 2, 3, 255, 256, 1000, 65537] {
            let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn lengths_satisfy_kraft_inequality() {
        let mut hist = [0u64; 256];
        // Fibonacci-ish weights force long codes.
        let mut a = 1u64;
        let mut b = 1u64;
        for h in hist.iter_mut().take(64) {
            *h = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let book = HuffmanBook::from_histogram(&hist);
        let kraft: f64 = (0..256)
            .filter(|&s| book.lengths[s] > 0)
            .map(|s| 2f64.powi(-(book.lengths[s] as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "Kraft sum {kraft} exceeds 1");
        assert!(book.lengths.iter().all(|&l| l <= MAX_CODE_LEN));
    }

    #[test]
    fn truncated_stream_errors() {
        let enc = encode(&[1u8, 2, 3, 4, 5, 6, 7, 8]);
        assert!(decode(&enc[..enc.len() - 1]).is_err() || decode(&enc[..enc.len() - 1]).is_ok());
        // Cutting into the header must error.
        assert!(decode(&enc[..16]).is_err());
    }

    #[test]
    fn encoded_bits_matches_actual_payload() {
        let data: Vec<u8> = (0..10_000).map(|i| ((i * i) % 7) as u8).collect();
        let mut hist = [0u64; 256];
        for &b in &data {
            hist[b as usize] += 1;
        }
        let book = HuffmanBook::from_histogram(&hist);
        let bits = book.encoded_bits(&hist);
        let enc = encode(&data);
        let payload_bytes = enc.len() as u64 - 8 - 192;
        assert!(
            payload_bytes >= bits / 8 && payload_bytes <= bits / 8 + 1,
            "payload {payload_bytes} vs predicted bits {bits}"
        );
    }
}
