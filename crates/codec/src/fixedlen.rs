//! Per-block fixed-length bit packing of integer values.
//!
//! This is the encoding style used by the throughput-oriented baselines the
//! paper compares against: cuSZp2 packs the prediction offsets of each
//! 32-element block with the block's maximum significant bit count, and
//! FZ-GPU packs bit-shuffled quantization codes the same way. The packer
//! works on `u32` values (the baselines' quantization codes are re-biased
//! into unsigned space first).

use crate::bitio::{decode_capacity, put_u32, put_u64, BitReader, BitWriter, ByteCursor};
use crate::CodecError;

/// Packs `values` in blocks of `block_len` values: each block stores a 6-bit
/// width followed by its values at that width.
///
/// Layout: `count u64 | block_len u32 | bit stream`.
pub fn pack_u32(values: &[u32], block_len: usize) -> Vec<u8> {
    assert!(block_len > 0, "block length must be non-zero");
    let mut out = Vec::with_capacity(values.len() / 2 + 16);
    put_u64(&mut out, values.len() as u64);
    put_u32(&mut out, block_len as u32);
    let mut bw = BitWriter::with_capacity_bits(values.len() * 8);
    for block in values.chunks(block_len) {
        let max = block.iter().copied().max().unwrap_or(0);
        let bits = if max == 0 {
            0
        } else {
            32 - max.leading_zeros()
        };
        bw.put_bits(bits as u64, 6);
        if bits > 0 {
            for &v in block {
                bw.put_bits(v as u64, bits);
            }
        }
    }
    out.extend_from_slice(&bw.finish());
    out
}

/// Reverses [`pack_u32`].
pub fn unpack_u32(data: &[u8]) -> Result<Vec<u32>, CodecError> {
    let mut cur = ByteCursor::new(data);
    let count = cur.get_u64()? as usize;
    let block_len = cur.get_u32()? as usize;
    if block_len == 0 {
        return Err(CodecError::header("fixedlen", "zero block length"));
    }
    let mut br = BitReader::new(cur.take_rest());
    let mut out = Vec::with_capacity(decode_capacity(count));
    let mut remaining = count;
    while remaining > 0 {
        let n = block_len.min(remaining);
        let bits = br.get_bits(6)? as u32;
        if bits > 32 {
            return Err(CodecError::corrupt(
                "fixedlen",
                format!("invalid block width {bits}"),
            ));
        }
        for _ in 0..n {
            let v = if bits == 0 {
                0
            } else {
                br.get_bits(bits)? as u32
            };
            out.push(v);
        }
        remaining -= n;
    }
    Ok(out)
}

/// Interleaved sign/magnitude helper: maps a signed value to an unsigned one
/// (zig-zag), so small positive and negative prediction errors both pack into
/// few bits.
#[inline]
pub fn zigzag_i32(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

/// Inverse of [`zigzag_i32`].
#[inline]
pub fn unzigzag_u32(v: u32) -> i32 {
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_various_blocks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for block in [1usize, 7, 32, 256] {
            for len in [0usize, 1, 31, 32, 33, 1000] {
                let values: Vec<u32> = (0..len).map(|_| rng.gen_range(0..1_000_000)).collect();
                let packed = pack_u32(&values, block);
                assert_eq!(
                    unpack_u32(&packed).unwrap(),
                    values,
                    "block {block} len {len}"
                );
            }
        }
    }

    #[test]
    fn small_values_pack_small() {
        let values: Vec<u32> = (0..10_000).map(|i| (i % 3) as u32).collect();
        let packed = pack_u32(&values, 32);
        // 2 bits per value + 6 bits per 32-value block ≈ 0.28 bytes/value.
        assert!(
            packed.len() < 3200,
            "packed size {} too large",
            packed.len()
        );
    }

    #[test]
    fn zero_blocks_store_only_widths() {
        let values = vec![0u32; 4096];
        let packed = pack_u32(&values, 32);
        assert!(
            packed.len() < 32 + 4096 / 32,
            "zero blocks must cost ≤1 byte each"
        );
    }

    #[test]
    fn zigzag_roundtrip_and_ordering() {
        for v in [-5i32, -1, 0, 1, 5, i32::MIN / 2, i32::MAX / 2] {
            assert_eq!(unzigzag_u32(zigzag_i32(v)), v);
        }
        assert!(zigzag_i32(0) < zigzag_i32(-1));
        assert!(zigzag_i32(-1) < zigzag_i32(1));
        assert!(zigzag_i32(1) < zigzag_i32(-2));
    }

    #[test]
    fn truncation_is_detected() {
        let values: Vec<u32> = (0..1000).map(|i| i as u32 * 13).collect();
        let packed = pack_u32(&values, 32);
        assert!(unpack_u32(&packed[..packed.len() / 2]).is_err());
    }
}
