//! Lossless stage composition and the named pipeline catalogue.
//!
//! A [`Stage`] is one lossless bytes→bytes encoder; a [`Pipeline`] is an
//! ordered list of stages applied left to right on encode and right to left
//! on decode. The [`PipelineSpec`] enum names every pipeline the paper uses
//! or benchmarks: the two cuSZ-Hi modes of Figure 7, the LC-style
//! combinations and the third-party codecs of Figure 6.

use crate::components::{Bit, Clog, DiffMs, Rre, Rze, Tcms, TuplD, TuplQ};
use crate::{ans, bitcomp_sim, huffman, lz, CodecError};

/// One lossless encoding stage.
pub trait Stage: Send + Sync {
    /// Short name used in benchmark output (e.g. `"RRE4"`).
    fn name(&self) -> &'static str;
    /// Encodes `input` into a self-describing byte stream.
    fn encode(&self, input: &[u8]) -> Vec<u8>;
    /// Decodes a stream produced by [`Stage::encode`].
    fn decode(&self, input: &[u8]) -> Result<Vec<u8>, CodecError>;
    /// Decodes with an output-size bound for untrusted streams. The default
    /// checks the produced length after the fact, which is enough for the
    /// input-bounded component transforms; stages whose decoders trust a
    /// claimed output count (entropy coders, LZ, Bitcomp) override this to
    /// reject the count before doing any work.
    fn decode_limited(&self, input: &[u8], max_out: usize) -> Result<Vec<u8>, CodecError> {
        let out = self.decode(input)?;
        if out.len() > max_out {
            return Err(CodecError::corrupt(
                self.name(),
                format!("decoded {} bytes, limit {max_out}", out.len()),
            ));
        }
        Ok(out)
    }
}

macro_rules! component_stage {
    ($wrapper:ident, $inner:ty, $name:expr, $ctor:expr) => {
        /// Stage adapter for the corresponding codec component.
        #[derive(Debug, Clone, Copy)]
        pub struct $wrapper($inner);

        impl $wrapper {
            /// Creates the stage.
            pub fn new() -> Self {
                $wrapper($ctor)
            }
        }

        impl Default for $wrapper {
            fn default() -> Self {
                Self::new()
            }
        }

        impl Stage for $wrapper {
            fn name(&self) -> &'static str {
                $name
            }
            fn encode(&self, input: &[u8]) -> Vec<u8> {
                self.0.encode_bytes(input)
            }
            fn decode(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
                self.0.decode_bytes(input)
            }
        }
    };
}

component_stage!(Rre1Stage, Rre, "RRE1", Rre::new(1));
component_stage!(Rre2Stage, Rre, "RRE2", Rre::new(2));
component_stage!(Rre4Stage, Rre, "RRE4", Rre::new(4));
component_stage!(Rze1Stage, Rze, "RZE1", Rze::new(1));
component_stage!(Tcms1Stage, Tcms, "TCMS1", Tcms::new(1));
component_stage!(Tcms8Stage, Tcms, "TCMS8", Tcms::new(8));
component_stage!(Bit1Stage, Bit, "BIT1", Bit::new(1));
component_stage!(DiffMs1Stage, DiffMs, "DIFFMS1", DiffMs::new(1));
component_stage!(Clog1Stage, Clog, "CLOG1", Clog::new(1));
component_stage!(TuplQ1Stage, TuplQ, "TUPLQ1", TuplQ::new());
component_stage!(TuplD2Stage, TuplD, "TUPLD2", TuplD::new());

/// Canonical Huffman entropy coding stage (`HF` in the paper's figures).
#[derive(Debug, Clone, Copy, Default)]
pub struct HuffmanStage;

impl Stage for HuffmanStage {
    fn name(&self) -> &'static str {
        "HF"
    }
    fn encode(&self, input: &[u8]) -> Vec<u8> {
        huffman::encode(input)
    }
    fn decode(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        huffman::decode(input)
    }
    fn decode_limited(&self, input: &[u8], max_out: usize) -> Result<Vec<u8>, CodecError> {
        huffman::decode_limited(input, max_out)
    }
}

/// Static rANS entropy coding stage (stand-in for nvCOMP ANS).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnsStage;

impl Stage for AnsStage {
    fn name(&self) -> &'static str {
        "ANS"
    }
    fn encode(&self, input: &[u8]) -> Vec<u8> {
        ans::encode(input)
    }
    fn decode(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        ans::decode(input)
    }
    fn decode_limited(&self, input: &[u8], max_out: usize) -> Result<Vec<u8>, CodecError> {
        ans::decode_limited(input, max_out)
    }
}

/// Bitcomp-simulator stage (stand-in for NVIDIA Bitcomp).
#[derive(Debug, Clone, Copy, Default)]
pub struct BitcompStage;

impl Stage for BitcompStage {
    fn name(&self) -> &'static str {
        "BITCOMP"
    }
    fn encode(&self, input: &[u8]) -> Vec<u8> {
        bitcomp_sim::compress(input)
    }
    fn decode(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        bitcomp_sim::decompress(input)
    }
    fn decode_limited(&self, input: &[u8], max_out: usize) -> Result<Vec<u8>, CodecError> {
        bitcomp_sim::decompress_limited(input, max_out)
    }
}

/// Fast LZ stage (stand-in for GPULZ / nvCOMP LZ4).
#[derive(Debug, Clone, Copy, Default)]
pub struct LzFastStage;

impl Stage for LzFastStage {
    fn name(&self) -> &'static str {
        "LZ-FAST"
    }
    fn encode(&self, input: &[u8]) -> Vec<u8> {
        lz::compress(input, lz::Effort::Fast)
    }
    fn decode(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        lz::decompress(input)
    }
    fn decode_limited(&self, input: &[u8], max_out: usize) -> Result<Vec<u8>, CodecError> {
        lz::decompress_limited(input, max_out)
    }
}

/// Thorough LZ stage (stand-in for nvCOMP GDeflate / Zstd match finding).
#[derive(Debug, Clone, Copy, Default)]
pub struct LzThoroughStage;

impl Stage for LzThoroughStage {
    fn name(&self) -> &'static str {
        "LZ-THOROUGH"
    }
    fn encode(&self, input: &[u8]) -> Vec<u8> {
        lz::compress(input, lz::Effort::Thorough)
    }
    fn decode(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        lz::decompress(input)
    }
    fn decode_limited(&self, input: &[u8], max_out: usize) -> Result<Vec<u8>, CodecError> {
        lz::decompress_limited(input, max_out)
    }
}

/// An ordered composition of lossless stages.
pub struct Pipeline {
    name: String,
    stages: Vec<Box<dyn Stage>>,
}

impl Pipeline {
    /// Builds a pipeline from stages applied left to right on encode.
    pub fn new(name: impl Into<String>, stages: Vec<Box<dyn Stage>>) -> Self {
        Pipeline {
            name: name.into(),
            stages,
        }
    }

    /// The pipeline's display name, e.g. `"HF-RRE4-TCMS8-RZE1"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline has no stages (an identity pipeline).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Applies every stage in order.
    pub fn encode(&self, input: &[u8]) -> Vec<u8> {
        let mut data = input.to_vec();
        for stage in &self.stages {
            data = stage.encode(&data);
        }
        data
    }

    /// Reverses every stage in reverse order.
    pub fn decode(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut data = input.to_vec();
        for stage in self.stages.iter().rev() {
            data = stage.decode(&data)?;
        }
        Ok(data)
    }

    /// Decodes an **untrusted** stream whose final decoded size is known to
    /// be `expected_len`. Every intermediate stage output is bounded by
    /// `2 * expected_len + 4096` — generous for any stream this pipeline's
    /// own encoder can produce (stages grow their input by at most ~9/8
    /// plus a constant header) — so a corrupted length field inside a stage
    /// fails with a typed error instead of decoding gigabytes.
    pub fn decode_bounded(&self, input: &[u8], expected_len: usize) -> Result<Vec<u8>, CodecError> {
        let max_interm = expected_len.saturating_mul(2).saturating_add(4096);
        let mut data = input.to_vec();
        for stage in self.stages.iter().rev() {
            data = stage.decode_limited(&data, max_interm)?;
        }
        Ok(data)
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Pipeline({})", self.name)
    }
}

/// One stage of a named pipeline, as introspectable data.
///
/// [`PipelineSpec::stages`] exposes every named pipeline as a list of
/// `StageSpec`s, and [`PipelineSpec::build`] materialises the runnable
/// [`Pipeline`] from the same list — so a cost model (such as the
/// `szhi-tuner` size estimator) that walks `stages()` can never drift from
/// what the encoder actually runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageSpec {
    /// Canonical Huffman entropy coding (`HF`).
    Huffman,
    /// Static rANS entropy coding (`ANS`).
    Ans,
    /// The Bitcomp simulator (`BITCOMP`).
    Bitcomp,
    /// Fast LZSS (`LZ-FAST`).
    LzFast,
    /// Thorough LZSS (`LZ-THOROUGH`).
    LzThorough,
    /// Run-of-repeats elimination at the given symbol width (`RRE{w}`).
    Rre(usize),
    /// Run-of-zeros elimination at the given symbol width (`RZE{w}`).
    Rze(usize),
    /// Two's-complement → magnitude-sign transform at the given symbol
    /// width (`TCMS{w}`).
    Tcms(usize),
    /// Bit shuffle at the given symbol width (`BIT{w}`).
    Bit(usize),
    /// Difference + magnitude-sign transform (`DIFFMS{w}`).
    DiffMs(usize),
    /// Conditional-logarithm transform (`CLOG{w}`).
    Clog(usize),
    /// Quad-tuple interleave (`TUPLQ1`).
    TuplQ,
    /// Duo-tuple de-interleave (`TUPLD2`).
    TuplD,
}

impl StageSpec {
    /// Whether this stage is an entropy coder (Huffman or ANS), whose
    /// output size a histogram entropy bound models well and whose output
    /// bytes are near-incompressible for the downstream stages.
    pub fn is_entropy_coder(&self) -> bool {
        matches!(self, StageSpec::Huffman | StageSpec::Ans)
    }

    /// Whether this stage is a pure length-preserving transform (no
    /// headers, no size change): TCMS, BIT, DIFFMS, CLOG, TUPL.
    pub fn is_transform(&self) -> bool {
        matches!(
            self,
            StageSpec::Tcms(_)
                | StageSpec::Bit(_)
                | StageSpec::DiffMs(_)
                | StageSpec::Clog(_)
                | StageSpec::TuplQ
                | StageSpec::TuplD
        )
    }

    /// Materialises the runnable stage.
    ///
    /// # Panics
    ///
    /// Panics on a symbol width no named pipeline uses (the catalogue only
    /// instantiates RRE at widths 1/2/4, RZE/BIT/DIFFMS/CLOG at width 1 and
    /// TCMS at widths 1/8).
    pub fn build(&self) -> Box<dyn Stage> {
        match *self {
            StageSpec::Huffman => Box::new(HuffmanStage),
            StageSpec::Ans => Box::new(AnsStage),
            StageSpec::Bitcomp => Box::new(BitcompStage),
            StageSpec::LzFast => Box::new(LzFastStage),
            StageSpec::LzThorough => Box::new(LzThoroughStage),
            StageSpec::Rre(1) => Box::new(Rre1Stage::new()),
            StageSpec::Rre(2) => Box::new(Rre2Stage::new()),
            StageSpec::Rre(4) => Box::new(Rre4Stage::new()),
            StageSpec::Rze(1) => Box::new(Rze1Stage::new()),
            StageSpec::Tcms(1) => Box::new(Tcms1Stage::new()),
            StageSpec::Tcms(8) => Box::new(Tcms8Stage::new()),
            StageSpec::Bit(1) => Box::new(Bit1Stage::new()),
            StageSpec::DiffMs(1) => Box::new(DiffMs1Stage::new()),
            StageSpec::Clog(1) => Box::new(Clog1Stage::new()),
            StageSpec::TuplQ => Box::new(TuplQ1Stage::new()),
            StageSpec::TuplD => Box::new(TuplD2Stage::new()),
            StageSpec::Rre(w) | StageSpec::Rze(w) | StageSpec::Tcms(w) => {
                panic!("no named pipeline uses this stage at width {w}")
            }
            StageSpec::Bit(w) | StageSpec::DiffMs(w) | StageSpec::Clog(w) => {
                panic!("no named pipeline uses this stage at width {w}")
            }
        }
    }
}

/// Every named lossless pipeline used in the paper.
///
/// The first two variants are the production pipelines of cuSZ-Hi
/// (Figure 7); the remainder are the Figure 6 benchmark entries. Proprietary
/// codecs are represented by the open-source stand-ins documented in
/// `DESIGN.md` (`ANS` → rANS, `Bitcomp` → bitcomp-sim, `LZ4`/`GPULZ` → fast
/// LZSS, `GDeflate`/`Zstd` → thorough LZSS, `Zstd` additionally entropy-coded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineSpec {
    /// `HF → RRE4 → TCMS8 → RZE1`: the CR-mode pipeline of cuSZ-Hi.
    HfRre4Tcms8Rze1,
    /// `TCMS1 → BIT1 → RRE1`: the TP-mode pipeline of cuSZ-Hi.
    Tcms1Bit1Rre1,
    /// Huffman alone (the cuSZ / cuSZ-I lossless stage).
    Hf,
    /// `HF → RRE1`.
    HfRre1,
    /// `HF → TUPLQ1 → RRE1`.
    HfTuplq1Rre1,
    /// `HF → TUPLD2 → RRE2 → TUPLQ1 → RRE1`.
    HfTupld2Rre2Tuplq1Rre1,
    /// `HF → ANS` (Huffman then the nvCOMP-ANS stand-in).
    HfAns,
    /// `HF → Bitcomp-sim` (the cuSZ-IB lossless stack).
    HfBitcomp,
    /// `HF → fast LZ` (Huffman then a GPULZ/LZ4 stand-in).
    HfLz,
    /// `RRE1` alone.
    Rre1,
    /// `RRE1 → RRE2`.
    Rre1Rre2,
    /// `RRE1 → RZE1 → DIFFMS1 → CLOG1`.
    Rre1Rze1Diffms1Clog1,
    /// rANS alone (nvCOMP ANS stand-in).
    Ans,
    /// Bitcomp-sim alone.
    Bitcomp,
    /// Fast LZSS (GPULZ / nvCOMP LZ4 stand-in).
    Lz4,
    /// Thorough LZSS (nvCOMP GDeflate stand-in).
    Gdeflate,
    /// Thorough LZSS followed by rANS (nvCOMP Zstd stand-in).
    Zstd,
    /// `DIFFMS1 → BIT1 → RZE1` (ndzip-style transform + residual coder).
    Ndzip,
}

impl PipelineSpec {
    /// The CR-preferred production pipeline.
    pub const CR: PipelineSpec = PipelineSpec::HfRre4Tcms8Rze1;
    /// The TP-preferred production pipeline.
    pub const TP: PipelineSpec = PipelineSpec::Tcms1Bit1Rre1;

    /// Display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            PipelineSpec::HfRre4Tcms8Rze1 => "HF-RRE4-TCMS8-RZE1",
            PipelineSpec::Tcms1Bit1Rre1 => "TCMS1-BIT1-RRE1",
            PipelineSpec::Hf => "HF",
            PipelineSpec::HfRre1 => "HF+RRE1",
            PipelineSpec::HfTuplq1Rre1 => "HF+TUPLQ1-RRE1",
            PipelineSpec::HfTupld2Rre2Tuplq1Rre1 => "HF+TUPLD2-RRE2-TUPLQ1-RRE1",
            PipelineSpec::HfAns => "HF+ANS",
            PipelineSpec::HfBitcomp => "HF+Bitcomp",
            PipelineSpec::HfLz => "HF+GPULZ",
            PipelineSpec::Rre1 => "RRE1",
            PipelineSpec::Rre1Rre2 => "RRE1-RRE2",
            PipelineSpec::Rre1Rze1Diffms1Clog1 => "RRE1-RZE1-DIFFMS1-CLOG1",
            PipelineSpec::Ans => "ANS",
            PipelineSpec::Bitcomp => "Bitcomp",
            PipelineSpec::Lz4 => "LZ4/GPULZ",
            PipelineSpec::Gdeflate => "GDeflate",
            PipelineSpec::Zstd => "Zstd",
            PipelineSpec::Ndzip => "ndzip",
        }
    }

    /// Stable identifier stored in compressed-stream headers.
    pub fn id(&self) -> u8 {
        match self {
            PipelineSpec::HfRre4Tcms8Rze1 => 0,
            PipelineSpec::Tcms1Bit1Rre1 => 1,
            PipelineSpec::Hf => 2,
            PipelineSpec::HfRre1 => 3,
            PipelineSpec::HfTuplq1Rre1 => 4,
            PipelineSpec::HfTupld2Rre2Tuplq1Rre1 => 5,
            PipelineSpec::HfAns => 6,
            PipelineSpec::HfBitcomp => 7,
            PipelineSpec::HfLz => 8,
            PipelineSpec::Rre1 => 9,
            PipelineSpec::Rre1Rre2 => 10,
            PipelineSpec::Rre1Rze1Diffms1Clog1 => 11,
            PipelineSpec::Ans => 12,
            PipelineSpec::Bitcomp => 13,
            PipelineSpec::Lz4 => 14,
            PipelineSpec::Gdeflate => 15,
            PipelineSpec::Zstd => 16,
            PipelineSpec::Ndzip => 17,
        }
    }

    /// Inverse of [`PipelineSpec::id`].
    pub fn from_id(id: u8) -> Option<PipelineSpec> {
        PipelineSpec::all().into_iter().find(|p| p.id() == id)
    }

    /// Every named pipeline.
    pub fn all() -> Vec<PipelineSpec> {
        vec![
            PipelineSpec::HfRre4Tcms8Rze1,
            PipelineSpec::Tcms1Bit1Rre1,
            PipelineSpec::Hf,
            PipelineSpec::HfRre1,
            PipelineSpec::HfTuplq1Rre1,
            PipelineSpec::HfTupld2Rre2Tuplq1Rre1,
            PipelineSpec::HfAns,
            PipelineSpec::HfBitcomp,
            PipelineSpec::HfLz,
            PipelineSpec::Rre1,
            PipelineSpec::Rre1Rre2,
            PipelineSpec::Rre1Rze1Diffms1Clog1,
            PipelineSpec::Ans,
            PipelineSpec::Bitcomp,
            PipelineSpec::Lz4,
            PipelineSpec::Gdeflate,
            PipelineSpec::Zstd,
            PipelineSpec::Ndzip,
        ]
    }

    /// The pipelines swept in the Figure 6 lossless-encoder benchmark.
    pub fn fig6_set() -> Vec<PipelineSpec> {
        Self::all()
    }

    /// Per-invocation pipeline selection: encodes `input` with every
    /// candidate and returns the winner — the `(spec, payload)` pair with
    /// the smallest payload. Ties break toward the earlier candidate, so
    /// putting a preferred default first makes the choice deterministic.
    ///
    /// This is the primitive behind per-chunk mode selection in the chunked
    /// stream containers: each chunk's quantization codes are offered to a
    /// small candidate set and the stream records the chosen pipeline id per
    /// chunk, so smooth and noisy regions of one field can use different
    /// lossless pipelines.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty. Long-running callers that cannot
    /// afford an abort should use the fallible
    /// [`PipelineSpec::try_encode_select`] instead.
    ///
    /// ```
    /// use szhi_codec::PipelineSpec;
    ///
    /// let codes = vec![128u8; 4096];
    /// let (spec, payload) = PipelineSpec::encode_select(
    ///     &[PipelineSpec::CR, PipelineSpec::TP],
    ///     &codes,
    /// );
    /// // The winner's payload decodes back to the input.
    /// assert_eq!(spec.build().decode(&payload).unwrap(), codes);
    /// ```
    pub fn encode_select(candidates: &[PipelineSpec], input: &[u8]) -> (PipelineSpec, Vec<u8>) {
        Self::try_encode_select(candidates, input)
            .expect("encode_select requires at least one candidate pipeline")
    }

    /// Fallible sibling of [`PipelineSpec::encode_select`]: an empty
    /// candidate set is reported as a typed [`CodecError::InvalidRequest`]
    /// instead of a panic, so a misconfigured per-chunk mode tuner can
    /// never abort a long-running stream.
    ///
    /// The selection contract is identical to `encode_select`: the winner
    /// is the smallest payload, and **ties break toward the earliest
    /// candidate** — putting a preferred default first makes the choice
    /// deterministic. Repeated candidates are deduplicated (first
    /// occurrence wins) before any trial encoding, so a sloppily assembled
    /// candidate list costs no duplicate encode work and cannot perturb
    /// the tie-break.
    ///
    /// ```
    /// use szhi_codec::{CodecError, PipelineSpec};
    ///
    /// let err = PipelineSpec::try_encode_select(&[], &[1, 2, 3]).unwrap_err();
    /// assert!(matches!(err, CodecError::InvalidRequest { .. }));
    /// ```
    pub fn try_encode_select(
        candidates: &[PipelineSpec],
        input: &[u8],
    ) -> Result<(PipelineSpec, Vec<u8>), CodecError> {
        let mut seen: Vec<PipelineSpec> = Vec::with_capacity(candidates.len());
        let mut best: Option<(PipelineSpec, Vec<u8>)> = None;
        for &spec in candidates {
            // Deduplicate before encoding: a repeated candidate can only
            // ever tie with its first occurrence, which already won.
            if seen.contains(&spec) {
                continue;
            }
            seen.push(spec);
            let payload = spec.build().encode(input);
            // Strictly smaller only: on ties the earliest candidate wins.
            if best.as_ref().is_none_or(|(_, b)| payload.len() < b.len()) {
                best = Some((spec, payload));
            }
        }
        best.ok_or_else(|| {
            CodecError::request("encode_select", "empty candidate pipeline set".to_string())
        })
    }

    /// The ordered stage list of the pipeline, as introspectable data.
    ///
    /// This is the single source of truth [`PipelineSpec::build`]
    /// materialises from, so size estimators walking the stage list (the
    /// `szhi-tuner` cost model) can never disagree with the encoder.
    pub fn stages(&self) -> Vec<StageSpec> {
        use StageSpec::*;
        match self {
            PipelineSpec::HfRre4Tcms8Rze1 => vec![Huffman, Rre(4), Tcms(8), Rze(1)],
            PipelineSpec::Tcms1Bit1Rre1 => vec![Tcms(1), Bit(1), Rre(1)],
            PipelineSpec::Hf => vec![Huffman],
            PipelineSpec::HfRre1 => vec![Huffman, Rre(1)],
            PipelineSpec::HfTuplq1Rre1 => vec![Huffman, TuplQ, Rre(1)],
            PipelineSpec::HfTupld2Rre2Tuplq1Rre1 => {
                vec![Huffman, TuplD, Rre(2), TuplQ, Rre(1)]
            }
            PipelineSpec::HfAns => vec![Huffman, Ans],
            PipelineSpec::HfBitcomp => vec![Huffman, Bitcomp],
            PipelineSpec::HfLz => vec![Huffman, LzFast],
            PipelineSpec::Rre1 => vec![Rre(1)],
            PipelineSpec::Rre1Rre2 => vec![Rre(1), Rre(2)],
            PipelineSpec::Rre1Rze1Diffms1Clog1 => vec![Rre(1), Rze(1), DiffMs(1), Clog(1)],
            PipelineSpec::Ans => vec![Ans],
            PipelineSpec::Bitcomp => vec![Bitcomp],
            PipelineSpec::Lz4 => vec![LzFast],
            PipelineSpec::Gdeflate => vec![LzThorough],
            PipelineSpec::Zstd => vec![LzThorough, Ans],
            PipelineSpec::Ndzip => vec![DiffMs(1), Bit(1), Rze(1)],
        }
    }

    /// Materialises the pipeline.
    pub fn build(&self) -> Pipeline {
        Pipeline::new(
            self.name(),
            self.stages().iter().map(StageSpec::build).collect(),
        )
    }
}

impl std::fmt::Display for PipelineSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// Quantization-code-like test data: values clustered tightly around 128
    /// with occasional excursions — the input every pipeline is designed for.
    fn quant_like(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let r: f64 = rng.gen();
                if r < 0.995 {
                    let d: f64 = rng.gen::<f64>() * rng.gen::<f64>() * 3.0;
                    128u8.wrapping_add((d as i8 * if rng.gen() { 1 } else { -1 }) as u8)
                } else {
                    rng.gen()
                }
            })
            .collect()
    }

    #[test]
    fn every_named_pipeline_roundtrips() {
        let data = quant_like(40_000, 73);
        for spec in PipelineSpec::all() {
            let p = spec.build();
            let enc = p.encode(&data);
            let dec = p
                .decode(&enc)
                .unwrap_or_else(|e| panic!("{spec} failed to decode: {e}"));
            assert_eq!(dec, data, "{spec} round-trip mismatch");
        }
    }

    #[test]
    fn every_named_pipeline_roundtrips_tiny_inputs() {
        for spec in PipelineSpec::all() {
            let p = spec.build();
            for data in [
                vec![],
                vec![128u8],
                vec![0u8; 7],
                (0..64u8).collect::<Vec<_>>(),
            ] {
                let enc = p.encode(&data);
                assert_eq!(
                    p.decode(&enc).unwrap(),
                    data,
                    "{spec} on {} bytes",
                    data.len()
                );
            }
        }
    }

    #[test]
    fn production_pipelines_compress_quant_codes() {
        let data = quant_like(200_000, 79);
        for spec in [PipelineSpec::CR, PipelineSpec::TP] {
            let p = spec.build();
            let enc = p.encode(&data);
            let ratio = data.len() as f64 / enc.len() as f64;
            assert!(
                ratio > 2.5,
                "{spec} achieved only {ratio:.2}x on quant-code-like data"
            );
        }
    }

    #[test]
    fn cr_mode_beats_tp_mode_on_ratio() {
        let data = quant_like(400_000, 83);
        let cr = PipelineSpec::CR.build().encode(&data).len();
        let tp = PipelineSpec::TP.build().encode(&data).len();
        assert!(
            cr < tp,
            "CR pipeline ({cr} bytes) must beat TP pipeline ({tp} bytes) on ratio"
        );
    }

    #[test]
    fn ids_are_unique_and_roundtrip() {
        let all = PipelineSpec::all();
        let mut seen = std::collections::HashSet::new();
        for spec in &all {
            assert!(seen.insert(spec.id()), "duplicate id for {spec}");
            assert_eq!(PipelineSpec::from_id(spec.id()), Some(*spec));
        }
        assert_eq!(PipelineSpec::from_id(200), None);
    }

    #[test]
    fn encode_select_picks_the_smallest_payload() {
        let data = quant_like(100_000, 91);
        let (spec, payload) =
            PipelineSpec::encode_select(&[PipelineSpec::CR, PipelineSpec::TP], &data);
        let cr = PipelineSpec::CR.build().encode(&data).len();
        let tp = PipelineSpec::TP.build().encode(&data).len();
        assert_eq!(payload.len(), cr.min(tp));
        let expected = if cr <= tp {
            PipelineSpec::CR
        } else {
            PipelineSpec::TP
        };
        assert_eq!(spec, expected);
        assert_eq!(spec.build().decode(&payload).unwrap(), data);
    }

    #[test]
    fn encode_select_breaks_ties_toward_the_first_candidate() {
        // Two copies of the same spec always tie; the first must win.
        let data = quant_like(5_000, 97);
        let (spec, _) = PipelineSpec::encode_select(&[PipelineSpec::TP, PipelineSpec::TP], &data);
        assert_eq!(spec, PipelineSpec::TP);
        let (spec, payload) = PipelineSpec::encode_select(&[PipelineSpec::Hf], &data);
        assert_eq!(spec, PipelineSpec::Hf);
        assert_eq!(spec.build().decode(&payload).unwrap(), data);
    }

    #[test]
    fn try_encode_select_rejects_an_empty_candidate_set_without_panicking() {
        // Regression: `encode_select` used to be the only entry point and
        // aborted on an empty slice. The fallible sibling must surface the
        // misconfiguration as a typed error so a long-running stream writer
        // can report it instead of dying.
        let result = std::panic::catch_unwind(|| PipelineSpec::try_encode_select(&[], &[1, 2, 3]));
        let inner = result.expect("try_encode_select must not panic");
        assert!(matches!(
            inner,
            Err(CodecError::InvalidRequest { context, .. }) if context == "encode_select"
        ));
        // The non-empty path agrees with the panicking wrapper.
        let data = quant_like(2_000, 11);
        let (spec, payload) =
            PipelineSpec::try_encode_select(&[PipelineSpec::CR, PipelineSpec::TP], &data).unwrap();
        let (spec2, payload2) =
            PipelineSpec::encode_select(&[PipelineSpec::CR, PipelineSpec::TP], &data);
        assert_eq!(spec, spec2);
        assert_eq!(payload, payload2);
    }

    #[test]
    fn pipeline_decode_rejects_garbage() {
        let p = PipelineSpec::CR.build();
        assert!(p.decode(&[1, 2, 3]).is_err());
    }

    #[test]
    fn stage_lists_match_the_built_pipelines() {
        // `stages()` is the source of truth `build()` materialises from:
        // every named pipeline's stage count and stage names must agree,
        // and encoding through individually built stages must reproduce
        // the pipeline encoder byte for byte.
        let data = quant_like(10_000, 41);
        for spec in PipelineSpec::all() {
            let stages = spec.stages();
            let pipeline = spec.build();
            assert_eq!(pipeline.len(), stages.len(), "{spec}");
            let mut manual = data.clone();
            for stage in &stages {
                manual = stage.build().encode(&manual);
            }
            assert_eq!(manual, pipeline.encode(&data), "{spec} stage-wise encode");
            // Classification sanity: a stage is never both an entropy coder
            // and a pure transform.
            for stage in &stages {
                assert!(!(stage.is_entropy_coder() && stage.is_transform()));
            }
        }
    }

    #[test]
    fn try_encode_select_dedups_repeated_candidates() {
        // Regression (PR 5): repeated candidates must neither be
        // trial-encoded twice nor perturb the documented first-wins
        // tie-break — a list with duplicates selects exactly what its
        // deduplicated form selects.
        let data = quant_like(20_000, 53);
        let with_dups = [
            PipelineSpec::CR,
            PipelineSpec::TP,
            PipelineSpec::CR,
            PipelineSpec::TP,
            PipelineSpec::CR,
        ];
        let deduped = [PipelineSpec::CR, PipelineSpec::TP];
        let (spec_a, payload_a) = PipelineSpec::try_encode_select(&with_dups, &data).unwrap();
        let (spec_b, payload_b) = PipelineSpec::try_encode_select(&deduped, &data).unwrap();
        assert_eq!(spec_a, spec_b);
        assert_eq!(payload_a, payload_b);
        // A pure-duplicate list ties with itself; the first (only) spec wins.
        let (spec, _) = PipelineSpec::try_encode_select(
            &[PipelineSpec::Hf, PipelineSpec::Hf, PipelineSpec::Hf],
            &data,
        )
        .unwrap();
        assert_eq!(spec, PipelineSpec::Hf);
    }
}
