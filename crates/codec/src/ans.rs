//! A static rANS entropy coder over byte symbols.
//!
//! The paper's Figure 6 includes nvCOMP's proprietary ANS codec among the
//! benchmarked lossless encoders. This module provides an open-source
//! stand-in: a classic single-state range-asymmetric-numeral-system coder
//! with static, 12-bit-normalised frequencies. Like the real thing it is an
//! order-0 entropy coder, so its compression ratio on quantization codes is
//! close to Huffman's while its throughput profile differs from the
//! dictionary and bit-packing codecs.

use crate::bitio::{decode_capacity, put_u16, put_u64, ByteCursor};
use crate::CodecError;

/// Log2 of the frequency normalisation total.
const SCALE_BITS: u32 = 12;
const SCALE: u32 = 1 << SCALE_BITS;
/// Lower bound of the rANS state.
const RANS_L: u32 = 1 << 23;

/// Normalises a histogram so the frequencies sum to exactly `SCALE` and every
/// occurring symbol keeps a non-zero frequency.
fn normalize(hist: &[u64; 256]) -> [u32; 256] {
    let total: u64 = hist.iter().sum();
    let mut freqs = [0u32; 256];
    if total == 0 {
        return freqs;
    }
    let mut assigned = 0u32;
    for s in 0..256 {
        if hist[s] > 0 {
            let f = ((hist[s] as u128 * SCALE as u128) / total as u128) as u32;
            freqs[s] = f.max(1);
            assigned += freqs[s];
        }
    }
    // Fix the sum to exactly SCALE by adjusting the most frequent symbol(s).
    if assigned > SCALE {
        let mut excess = assigned - SCALE;
        // Shrink symbols with the largest frequencies first, never below 1.
        while excess > 0 {
            let s = (0..256).max_by_key(|&s| freqs[s]).unwrap();
            if freqs[s] <= 1 {
                break;
            }
            let take = excess.min(freqs[s] - 1);
            freqs[s] -= take;
            excess -= take;
        }
    } else if assigned < SCALE {
        let s = (0..256).max_by_key(|&s| freqs[s]).unwrap();
        freqs[s] += SCALE - assigned;
    }
    freqs
}

fn cumulative(freqs: &[u32; 256]) -> [u32; 257] {
    let mut cum = [0u32; 257];
    for s in 0..256 {
        cum[s + 1] = cum[s] + freqs[s];
    }
    cum
}

/// One symbol's fused encode-table entry: the renormalisation threshold, the
/// cumulative base, and an exact multiplicative reciprocal of the frequency,
/// so the hot loop performs no hardware division and reads a single table
/// entry per symbol.
#[derive(Debug, Clone, Copy, Default)]
struct SymEnc {
    /// Reciprocal multiplier: `x / freq == (x * m) >> shift` exactly for
    /// every state value `x < 2^31` (the rANS state invariant).
    m: u64,
    shift: u32,
    /// Renormalisation threshold `freq << (23 - 12 + 8)`: the state must
    /// drop below this before encoding, in at most two byte shifts.
    x_max: u32,
    freq: u32,
    cum: u32,
}

/// Builds the fused per-symbol encode table. The reciprocal uses the
/// round-up method: with `shift = 31 + ceil_log2(f)` and
/// `m = ceil(2^shift / f)`, the error `ε = m·f − 2^shift` is below
/// `2^(shift−31)`, so for `x < 2^31` the truncated product
/// `(x·m) >> shift` equals `x / f` exactly — the encoder's output bytes are
/// bit-identical to the divide-based reference.
fn encode_table(freqs: &[u32; 256], cum: &[u32; 257]) -> [SymEnc; 256] {
    let mut table = [SymEnc::default(); 256];
    for s in 0..256 {
        let f = freqs[s];
        if f == 0 {
            continue;
        }
        let ceil_log2 = 32 - (f - 1).leading_zeros();
        let shift = 31 + ceil_log2;
        let m = (1u64 << shift).div_ceil(f as u64);
        table[s] = SymEnc {
            m,
            shift,
            x_max: ((RANS_L >> SCALE_BITS) << 8) * f,
            freq: f,
            cum: cum[s],
        };
    }
    table
}

/// Encodes `data` with a static rANS coder.
///
/// Layout: `n u64 | 256 × u16 frequencies | payload` where the payload is the
/// 4-byte final state followed by the renormalisation bytes in decode order.
/// The hot loop is table-driven: one fused `SymEnc` entry per symbol
/// supplies the renormalisation threshold, an exact reciprocal replacing the
/// `x / f` hardware division, and the cumulative base; renormalisation is
/// unrolled to its maximum of two byte emissions.
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut hist = [0u64; 256];
    for &b in data {
        hist[b as usize] += 1;
    }
    let freqs = normalize(&hist);
    let cum = cumulative(&freqs);

    let mut out = Vec::with_capacity(data.len() / 2 + 512 + 16);
    put_u64(&mut out, data.len() as u64);
    for &f in freqs.iter() {
        put_u16(&mut out, f as u16);
    }
    if data.is_empty() {
        return out;
    }

    let table = encode_table(&freqs, &cum);
    let mut emitted: Vec<u8> = Vec::with_capacity(data.len());
    let mut x: u32 = RANS_L;
    for &b in data.iter().rev() {
        let e = &table[b as usize];
        debug_assert!(e.freq > 0, "symbol {b} has zero frequency");
        // Renormalise so the state stays in [RANS_L, RANS_L * 256) after
        // encoding. The state invariant `x < 2^31` and `x_max ≥ 2^19` bound
        // the loop at two emissions, so it is unrolled.
        if x >= e.x_max {
            emitted.push(x as u8);
            x >>= 8;
            if x >= e.x_max {
                emitted.push(x as u8);
                x >>= 8;
            }
        }
        let q = ((x as u64 * e.m) >> e.shift) as u32;
        x = (q << SCALE_BITS) + (x - q * e.freq) + e.cum;
    }
    // Final state, then the stream bytes reversed so the decoder reads forward.
    out.extend_from_slice(&x.to_le_bytes());
    emitted.reverse();
    out.extend_from_slice(&emitted);
    out
}

/// Reference encoder kept for differential tests and the before/after
/// kernel benchmarks: identical output to [`encode`], but with the
/// per-symbol hardware division and open-coded renormalisation loop (the
/// pre-optimisation formulation).
#[doc(hidden)]
pub fn encode_reference(data: &[u8]) -> Vec<u8> {
    let mut hist = [0u64; 256];
    for &b in data {
        hist[b as usize] += 1;
    }
    let freqs = normalize(&hist);
    let cum = cumulative(&freqs);

    let mut out = Vec::with_capacity(data.len() / 2 + 512 + 16);
    put_u64(&mut out, data.len() as u64);
    for &f in freqs.iter() {
        put_u16(&mut out, f as u16);
    }
    if data.is_empty() {
        return out;
    }

    let mut emitted: Vec<u8> = Vec::with_capacity(data.len());
    let mut x: u32 = RANS_L;
    for &b in data.iter().rev() {
        let f = freqs[b as usize];
        let x_max = ((RANS_L >> SCALE_BITS) << 8) * f;
        while x >= x_max {
            emitted.push(x as u8);
            x >>= 8;
        }
        x = ((x / f) << SCALE_BITS) + (x % f) + cum[b as usize];
    }
    out.extend_from_slice(&x.to_le_bytes());
    emitted.reverse();
    out.extend_from_slice(&emitted);
    out
}

/// Decodes a stream produced by [`encode`].
pub fn decode(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    decode_limited(data, usize::MAX)
}

/// Like [`decode`], but rejects streams whose claimed symbol count exceeds
/// `max_out` before any decoding work. Unlike Huffman there is no sound
/// input-derived bound on the symbol count — a degenerate single-symbol
/// frequency table emits symbols without consuming bits — so untrusted
/// callers must supply the bound.
pub fn decode_limited(data: &[u8], max_out: usize) -> Result<Vec<u8>, CodecError> {
    let mut cur = ByteCursor::new(data);
    let n = cur.get_u64()? as usize;
    if n > max_out {
        return Err(CodecError::corrupt(
            "ans",
            format!("claimed {n} symbols, limit {max_out}"),
        ));
    }
    let mut freqs = [0u32; 256];
    for f in freqs.iter_mut() {
        *f = cur.get_u16()? as u32;
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let total: u32 = freqs.iter().sum();
    if total != SCALE {
        return Err(CodecError::header(
            "ans",
            format!("frequencies sum to {total}, expected {SCALE}"),
        ));
    }
    // Slot → (symbol, frequency, cumulative-start) lookup table. Folding the
    // frequency and cumulative base into the slot entry keeps the hot loop
    // free of further table lookups (and of unchecked indexing).
    // szhi-analyzer: allow(capped-alloc) -- fixed 4 Ki-entry slot table, size is a compile-time constant
    let mut slots = Vec::with_capacity(SCALE as usize);
    let mut cum = 0u32;
    for (s, &f) in freqs.iter().enumerate() {
        for _ in 0..f {
            slots.push((s as u8, f, cum));
        }
        cum += f;
    }

    let mut x = u32::from_le_bytes(cur.take_array()?);
    let stream = cur.take_rest();
    let mut pos = 0usize;
    let mut out = Vec::with_capacity(decode_capacity(n));
    for _ in 0..n {
        let slot = x & (SCALE - 1);
        // The table holds exactly SCALE entries (the frequencies sum to
        // SCALE, checked above) and `slot < SCALE`, so the lookup succeeds.
        let &(s, f, base) = slots
            .get(slot as usize)
            .ok_or_else(|| CodecError::corrupt("ans", "slot table underflow"))?;
        x = f * (x >> SCALE_BITS) + slot - base;
        while x < RANS_L {
            let &byte = stream.get(pos).ok_or_else(|| CodecError::eof("ans"))?;
            x = (x << 8) | byte as u32;
            pos += 1;
        }
        out.push(s);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn roundtrip(data: &[u8]) -> usize {
        let enc = encode(data);
        assert_eq!(decode(&enc).unwrap(), data);
        enc.len()
    }

    #[test]
    fn fused_encoder_matches_the_division_reference() {
        // The reciprocal-multiply hot loop must be byte-identical to the
        // hardware-division reference on every frequency shape: uniform,
        // heavily skewed (maximal frequencies → minimal x_max slack), and
        // single-symbol degenerate tables.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2025);
        let uniform: Vec<u8> = (0..50_000).map(|_| rng.gen()).collect();
        let skewed: Vec<u8> = (0..50_000)
            .map(|_| {
                if rng.gen::<f64>() < 0.95 {
                    7u8
                } else {
                    rng.gen()
                }
            })
            .collect();
        let constant = vec![42u8; 10_000];
        for data in [
            &b""[..],
            &b"x"[..],
            &uniform[..],
            &skewed[..],
            &constant[..],
        ] {
            assert_eq!(encode(data), encode_reference(data));
        }
    }

    #[test]
    fn roundtrip_edge_cases() {
        roundtrip(&[]);
        roundtrip(&[0]);
        roundtrip(&[255; 3]);
        roundtrip(&[1, 2, 3, 4, 5]);
    }

    #[test]
    fn roundtrip_random_and_skewed() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(59);
        let random: Vec<u8> = (0..50_000).map(|_| rng.gen()).collect();
        roundtrip(&random);
        let skewed: Vec<u8> = (0..50_000)
            .map(|_| {
                let r: f64 = rng.gen();
                if r < 0.9 {
                    128
                } else {
                    rng.gen()
                }
            })
            .collect();
        let size = roundtrip(&skewed);
        assert!(
            size < skewed.len() / 2,
            "skewed data must compress ≥2x, got {size}"
        );
    }

    #[test]
    fn compression_close_to_entropy() {
        // Two symbols, p = 0.25 / 0.75 → H ≈ 0.811 bits/symbol.
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        let data: Vec<u8> = (0..200_000)
            .map(|_| if rng.gen::<f64>() < 0.25 { 1u8 } else { 2u8 })
            .collect();
        let size = roundtrip(&data);
        let bits_per_symbol = size as f64 * 8.0 / data.len() as f64;
        assert!(
            bits_per_symbol < 0.9,
            "rANS should be near entropy (0.81), got {bits_per_symbol}"
        );
    }

    #[test]
    fn single_symbol_stream() {
        let size = roundtrip(&[7u8; 100_000]);
        assert!(size < 1200, "constant stream should collapse, got {size}");
    }

    #[test]
    fn corrupted_frequency_table_is_rejected() {
        let enc = encode(&[1u8, 2, 3, 4, 5, 6, 7, 8]);
        let mut bad = enc.clone();
        bad[8] ^= 0xff; // clobber a frequency entry
        assert!(decode(&bad).is_err() || decode(&bad).unwrap() != vec![1u8, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn truncation_is_detected() {
        let data: Vec<u8> = (0..10_000).map(|i| (i * 31 % 256) as u8).collect();
        let enc = encode(&data);
        assert!(decode(&enc[..enc.len() - 4]).is_err());
    }
}
