//! A byte-aligned LZSS dictionary coder.
//!
//! Figure 6 of the paper benchmarks several dictionary coders (GPULZ, nvCOMP
//! LZ4/GDeflate/Zstd). This module provides the open-source stand-in used by
//! the Figure 6 harness: a greedy hash-chain LZSS coder with an LZ4-style
//! token format. Two effort levels mirror the throughput/ratio trade-off of
//! the originals: [`Effort::Fast`] (single hash probe, GPULZ/LZ4-like) and
//! [`Effort::Thorough`] (longer chains, GDeflate/Zstd-like).

use crate::bitio::{decode_capacity, put_u64, ByteCursor};
use crate::CodecError;

const MIN_MATCH: usize = 4;
const MAX_OFFSET: usize = 65_535;
const HASH_BITS: u32 = 16;

/// Search effort of the match finder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// One probe per position (fast, lower ratio).
    Fast,
    /// Up to 32 chained probes per position (slower, higher ratio).
    Thorough,
}

impl Effort {
    fn max_probes(self) -> usize {
        match self {
            Effort::Fast => 1,
            Effort::Thorough => 32,
        }
    }
}

#[inline]
fn hash4(data: &[u8], pos: usize) -> usize {
    let v = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

fn write_len(out: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

fn read_len(cur: &mut ByteCursor<'_>, nibble: usize) -> Result<usize, CodecError> {
    let mut len = nibble;
    if nibble == 15 {
        loop {
            let b = cur.get_u8()?;
            len += b as usize;
            if b != 255 {
                break;
            }
        }
    }
    Ok(len)
}

/// Compresses `input`.
///
/// Layout: `orig_len u64 | LZ4-style sequences` (token byte with
/// literal/match length nibbles, literals, little-endian 16-bit offset,
/// length extension bytes; the final sequence carries literals only).
pub fn compress(input: &[u8], effort: Effort) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    put_u64(&mut out, input.len() as u64);
    if input.is_empty() {
        return out;
    }

    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut chain = vec![usize::MAX; input.len()];
    let max_probes = effort.max_probes();

    let mut pos = 0usize;
    let mut literal_start = 0usize;
    while pos + MIN_MATCH <= input.len() {
        let h = hash4(input, pos);
        // Find the best match among up to `max_probes` chained candidates.
        let mut best_len = 0usize;
        let mut best_offset = 0usize;
        let mut candidate = head[h];
        let mut probes = 0usize;
        while candidate != usize::MAX && probes < max_probes {
            let offset = pos - candidate;
            if offset > MAX_OFFSET {
                break;
            }
            let limit = input.len() - pos;
            let mut len = 0usize;
            while len < limit && input[candidate + len] == input[pos + len] {
                len += 1;
            }
            if len >= MIN_MATCH && len > best_len {
                best_len = len;
                best_offset = offset;
            }
            candidate = chain[candidate];
            probes += 1;
        }

        if best_len >= MIN_MATCH {
            // Emit the pending literals and the match.
            let literals = &input[literal_start..pos];
            let lit_nibble = literals.len().min(15);
            let match_nibble = (best_len - MIN_MATCH).min(15);
            out.push(((lit_nibble as u8) << 4) | match_nibble as u8);
            if lit_nibble == 15 {
                write_len(&mut out, literals.len() - 15);
            }
            out.extend_from_slice(literals);
            out.extend_from_slice(&(best_offset as u16).to_le_bytes());
            if match_nibble == 15 {
                write_len(&mut out, best_len - MIN_MATCH - 15);
            }
            // Insert the covered positions into the hash chains (sparsely for
            // speed) and advance.
            let end = pos + best_len;
            let step = if best_len > 64 { 8 } else { 1 };
            let mut p = pos;
            while p < end && p + MIN_MATCH <= input.len() {
                let hh = hash4(input, p);
                chain[p] = head[hh];
                head[hh] = p;
                p += step;
            }
            pos = end;
            literal_start = pos;
        } else {
            chain[pos] = head[h];
            head[h] = pos;
            pos += 1;
        }
    }

    // Final literal-only sequence.
    let literals = &input[literal_start..];
    let lit_nibble = literals.len().min(15);
    out.push((lit_nibble as u8) << 4);
    if lit_nibble == 15 {
        write_len(&mut out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    out
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, CodecError> {
    decompress_limited(input, usize::MAX)
}

/// Like [`decompress`], but rejects streams whose claimed output length
/// exceeds `max_out` before any decoding work, for use on untrusted input.
pub fn decompress_limited(input: &[u8], max_out: usize) -> Result<Vec<u8>, CodecError> {
    let mut cur = ByteCursor::new(input);
    let orig_len = cur.get_u64()? as usize;
    if orig_len > max_out {
        return Err(CodecError::corrupt(
            "lz",
            format!("claimed {orig_len} bytes, limit {max_out}"),
        ));
    }
    let mut out = Vec::with_capacity(decode_capacity(orig_len));
    while out.len() < orig_len {
        let token = cur.get_u8()?;
        let lit_len = read_len(&mut cur, (token >> 4) as usize)?;
        let literals = cur.take(lit_len)?;
        out.extend_from_slice(literals);
        if out.len() >= orig_len {
            break;
        }
        if cur.remaining() == 0 {
            return Err(CodecError::eof("lz"));
        }
        let offset = cur.get_u16()? as usize;
        if offset == 0 || offset > out.len() {
            return Err(CodecError::corrupt(
                "lz",
                format!("invalid offset {offset} at output length {}", out.len()),
            ));
        }
        let match_len = read_len(&mut cur, (token & 0x0f) as usize)? + MIN_MATCH;
        let start = out.len() - offset;
        for k in 0..match_len {
            // The copy source may overlap the bytes this loop appends (an
            // RLE-style match), so re-resolve the index every iteration.
            let b = *out
                .get(start + k)
                .ok_or_else(|| CodecError::corrupt("lz", "match source past produced output"))?;
            out.push(b);
        }
    }
    if out.len() != orig_len {
        return Err(CodecError::corrupt(
            "lz",
            format!("decoded {} bytes, expected {orig_len}", out.len()),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn roundtrip(data: &[u8], effort: Effort) -> usize {
        let enc = compress(data, effort);
        assert_eq!(
            decompress(&enc).unwrap(),
            data,
            "effort {effort:?} len {}",
            data.len()
        );
        enc.len()
    }

    #[test]
    fn roundtrip_edge_cases() {
        for effort in [Effort::Fast, Effort::Thorough] {
            roundtrip(&[], effort);
            roundtrip(&[1], effort);
            roundtrip(&[1, 2, 3], effort);
            roundtrip(&[9; 4], effort);
        }
    }

    #[test]
    fn repeated_patterns_compress() {
        let mut data = Vec::new();
        for _ in 0..1000 {
            data.extend_from_slice(b"abcdefgh12345678");
        }
        for effort in [Effort::Fast, Effort::Thorough] {
            let size = roundtrip(&data, effort);
            assert!(
                size < data.len() / 10,
                "periodic data must compress >10x, got {size}"
            );
        }
    }

    #[test]
    fn long_zero_runs_compress() {
        let data = vec![0u8; 1 << 18];
        let size = roundtrip(&data, Effort::Fast);
        assert!(size < 4096, "zero run should collapse, got {size}");
    }

    #[test]
    fn random_data_survives_with_bounded_expansion() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(67);
        let data: Vec<u8> = (0..100_000).map(|_| rng.gen()).collect();
        for effort in [Effort::Fast, Effort::Thorough] {
            let size = roundtrip(&data, effort);
            assert!(size <= data.len() + data.len() / 100 + 64);
        }
    }

    #[test]
    fn thorough_is_at_least_as_good_on_structured_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        // Structured: repeated fragments with small perturbations.
        let mut data = Vec::new();
        let fragment: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
        for i in 0..2000 {
            data.extend_from_slice(&fragment);
            data.push((i % 256) as u8);
        }
        let fast = compress(&data, Effort::Fast).len();
        let thorough = compress(&data, Effort::Thorough).len();
        assert!(
            thorough <= fast,
            "thorough ({thorough}) must not be worse than fast ({fast})"
        );
    }

    #[test]
    fn overlapping_matches_decode_correctly() {
        // "aaaa..." forces overlapping copies (offset 1, long match).
        let data = vec![b'a'; 500];
        roundtrip(&data, Effort::Fast);
    }

    #[test]
    fn corrupt_offset_is_rejected() {
        let enc = compress(
            &[1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4, 5, 6, 7, 8],
            Effort::Fast,
        );
        // Truncating usually produces an EOF or invalid-offset error.
        assert!(decompress(&enc[..enc.len() - 2]).is_err());
    }
}
