//! Meta-test: the analyzer must run clean over the real workspace. This is
//! the same invocation CI enforces (`szhi-analyzer --deny-all`), so a
//! violation introduced anywhere in the tree fails `cargo test` too.
//!
//! Beyond "no findings", the suite pins what *clean* means: the transitive
//! lints actually found their entry points (a rename that empties the root
//! sets would otherwise pass vacuously), and every suppression comment in
//! the tree carries a written reason.

use std::path::{Path, PathBuf};

use szhi_analyzer::Analyzer;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_no_violations() {
    let report = Analyzer::new(workspace_root())
        .run_report()
        .expect("walking the workspace");
    assert!(
        report.violations.is_empty(),
        "szhi-analyzer found {} violation(s):\n{}",
        report.violations.len(),
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The decode/serve entry points and warm-path roots must exist in the
/// tree: together with `workspace_has_no_violations` this asserts the
/// entry points are transitively panic-free (L6) and the warm encode path
/// is statically allocation-free (L7) — not that the lints had nothing to
/// check.
#[test]
fn transitive_lints_found_their_roots() {
    let report = Analyzer::new(workspace_root())
        .run_report()
        .expect("walking the workspace");
    assert!(
        report.metrics.panic_roots > 0,
        "no panic-reachability entry points found — did the decode/serve API get renamed?"
    );
    assert!(
        report.metrics.alloc_roots > 0,
        "no steady-alloc warm-path roots found — did the encode API get renamed?"
    );
    assert!(report.metrics.functions > 0);
    assert!(report.metrics.resolved_edges > 0);
    assert!(
        report.metrics.unresolved_calls > 0,
        "zero unresolved calls is implausible (std/extern calls are recorded, not dropped)"
    );
}

/// Every `szhi-analyzer: allow(...)` comment in the tree must carry a
/// ` -- <reason>` tail. The analyzer already treats a reasonless allow as
/// inert (the finding still fires), but an inert allow left in the tree is
/// a lie to the next reader — fail loudly instead.
#[test]
fn every_suppression_carries_a_reason() {
    let root = workspace_root();
    let mut rs_files = Vec::new();
    collect_rs(&root, &mut rs_files);
    assert!(rs_files.len() > 50, "workspace walk looks broken");
    let mut bad = Vec::new();
    let mut seen = 0usize;
    for path in &rs_files {
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        for (idx, line) in src.lines().enumerate() {
            let Some(p) = line.find("szhi-analyzer: allow(") else {
                continue;
            };
            // Skip mentions inside string literals or backtick-quoted prose
            // (the analyzer's tests and docs talk *about* allow comments).
            if line[..p].contains('"') || line[..p].contains('`') {
                continue;
            }
            seen += 1;
            let rest = &line[p..];
            let reasoned = rest
                .split_once(')')
                .and_then(|(_, tail)| tail.split_once("--"))
                .is_some_and(|(_, reason)| !reason.trim().is_empty());
            if !reasoned {
                bad.push(format!("{}:{}: {}", path.display(), idx + 1, line.trim()));
            }
        }
    }
    assert!(
        seen > 10,
        "expected the tree's suppressions to be visible to this walk"
    );
    assert!(
        bad.is_empty(),
        "suppression(s) without a ` -- <reason>` tail:\n{}",
        bad.join("\n")
    );
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if path.is_dir() {
            if matches!(name.as_str(), "target" | ".git" | "node_modules") {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}
