//! Meta-test: the analyzer must run clean over the real workspace. This is
//! the same invocation CI enforces (`szhi-analyzer --deny-all`), so a
//! violation introduced anywhere in the tree fails `cargo test` too.

use std::path::Path;

use szhi_analyzer::Analyzer;

#[test]
fn workspace_has_no_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let violations = Analyzer::new(root).run().expect("walking the workspace");
    assert!(
        violations.is_empty(),
        "szhi-analyzer found {} violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
