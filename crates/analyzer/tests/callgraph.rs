//! Fixture tests for the call-graph engine: name resolution, conservatism
//! (unresolved calls are recorded, never dropped), cycle termination, and
//! the transitive lints' chain reporting in both text and JSON.

use szhi_analyzer::graph::{CallGraph, Qualifier};
use szhi_analyzer::report;
use szhi_analyzer::Workspace;

fn ws_of(files: &[(&str, &str)]) -> Workspace {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(rel, src)| (rel.to_string(), src.to_string()))
        .collect();
    Workspace::from_sources(&sources)
}

#[test]
fn bare_call_prefers_free_fn_over_method_of_same_name() {
    let ws = ws_of(&[(
        "crates/x/src/lib.rs",
        r#"
struct A;
impl A {
    fn go(&self) -> usize {
        work()
    }
    fn via_self(&self) -> usize {
        self.work()
    }
    fn work(&self) -> usize {
        1
    }
}
fn work() -> usize {
    2
}
"#,
    )]);
    let graph = CallGraph::build(&ws);
    let free_work = ws.find_fn("work", None).expect("free work");
    let method_work = ws.find_fn("work", Some("A")).expect("A::work");

    let go = ws.find_fn("go", Some("A")).expect("A::go");
    assert_eq!(graph.callees(go), vec![free_work], "bare call → free fn");

    let via_self = ws.find_fn("via_self", Some("A")).expect("A::via_self");
    assert_eq!(
        graph.callees(via_self),
        vec![method_work],
        "self.work() → the enclosing impl's method"
    );
}

#[test]
fn same_method_name_on_two_types_resolves_by_owner() {
    let ws = ws_of(&[(
        "crates/x/src/lib.rs",
        r#"
struct B;
struct C;
impl B {
    fn ping(&self) -> usize {
        1
    }
}
impl C {
    fn ping(&self) -> usize {
        2
    }
}
fn drive_b(b: &B) -> usize {
    B::ping(b)
}
fn drive_unknown(b: &B) -> usize {
    (*b).ping()
}
"#,
    )]);
    let graph = CallGraph::build(&ws);
    let b_ping = ws.find_fn("ping", Some("B")).expect("B::ping");
    let c_ping = ws.find_fn("ping", Some("C")).expect("C::ping");

    let drive_b = ws.find_fn("drive_b", None).unwrap();
    assert_eq!(
        graph.callees(drive_b),
        vec![b_ping],
        "Type::method resolves to that type's impl only"
    );

    let drive_unknown = ws.find_fn("drive_unknown", None).unwrap();
    let mut callees = graph.callees(drive_unknown);
    callees.sort_unstable();
    assert_eq!(
        callees,
        vec![b_ping, c_ping],
        "a method on an unknown receiver conservatively fans out to every impl"
    );
}

#[test]
fn local_nested_fn_shadows_the_free_fn() {
    let ws = ws_of(&[(
        "crates/x/src/lib.rs",
        r#"
fn outer() -> usize {
    fn helper() -> usize {
        1
    }
    helper()
}
fn helper() -> usize {
    2
}
"#,
    )]);
    let graph = CallGraph::build(&ws);
    let outer = ws.find_fn("outer", None).unwrap();
    let callees = graph.callees(outer);
    assert_eq!(
        callees.len(),
        1,
        "exactly one resolution for the shadowed name"
    );
    let callee = &ws.fns[callees[0]];
    assert_eq!(callee.name, "helper");
    let outer_body = ws.fns[outer].body;
    assert!(
        callee.body.0 > outer_body.0 && callee.body.1 < outer_body.1,
        "the nested helper (inside outer's body) wins over the free helper"
    );
}

#[test]
fn macro_calls_are_recorded_as_unresolved_not_dropped() {
    let ws = ws_of(&[(
        "crates/x/src/lib.rs",
        r#"
fn uses_macro() -> String {
    format!("{}", 1)
}
"#,
    )]);
    let graph = CallGraph::build(&ws);
    assert!(graph.calls >= 1);
    assert!(graph.unresolved_calls >= 1);
    let site = graph
        .unresolved
        .iter()
        .find(|s| s.name == "format")
        .expect("the format! invocation is recorded");
    assert_eq!(site.qualifier, Qualifier::Macro);
}

#[test]
fn call_cycles_terminate_the_reachability_walk() {
    let ws = ws_of(&[(
        "crates/core/src/cyclic.rs",
        r#"
pub fn decompress_cycle(n: usize) -> usize {
    a_step(n)
}
fn a_step(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        b_step(n - 1)
    }
}
fn b_step(n: usize) -> usize {
    a_step(n)
}
"#,
    )]);
    let graph = CallGraph::build(&ws);
    // `decompress_cycle` is an L6 root; the a↔b cycle must not hang or
    // overflow the walk, and a panic-free cycle yields no findings.
    let violations = szhi_analyzer::graph::lint_panic_reachability(&ws, &graph);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn transitive_panic_chain_is_reported_with_the_full_path() {
    let ws = ws_of(&[(
        "crates/core/src/fixture.rs",
        r#"
pub fn decompress_entry(stream: &[u8]) -> usize {
    helper_mid(stream)
}
fn helper_mid(stream: &[u8]) -> usize {
    helper_leaf(stream)
}
fn helper_leaf(stream: &[u8]) -> usize {
    stream.first().copied().unwrap() as usize
}
"#,
    )]);
    let graph = CallGraph::build(&ws);
    let violations = szhi_analyzer::graph::lint_panic_reachability(&ws, &graph);
    assert_eq!(violations.len(), 1, "{violations:?}");
    let v = &violations[0];
    assert_eq!(v.file, "crates/core/src/fixture.rs");

    // Text: the Display form carries the whole chain, entry to panic site.
    let text = v.to_string();
    assert!(text.contains("[panic-reachability]"), "{text}");
    assert!(text.contains("entry `decompress_entry`"), "{text}");
    assert!(text.contains("`helper_mid`"), "{text}");
    assert!(text.contains("`helper_leaf`"), "{text}");
    assert!(text.contains("call to `.unwrap()`"), "{text}");

    // JSON: the same chain rides along in the notes array, and the report
    // parses back with our own reader.
    let json = report::to_json(&report::Metrics::default(), &violations);
    let doc = report::parse_json(&json).expect("report JSON parses");
    let viol = doc.get("violations").expect("violations member");
    let szhi_analyzer::report::Json::Arr(items) = viol else {
        panic!("violations is not an array")
    };
    assert_eq!(items.len(), 1);
    let notes = items[0].get("notes").expect("notes member");
    let szhi_analyzer::report::Json::Arr(notes) = notes else {
        panic!("notes is not an array")
    };
    let joined: Vec<&str> = notes.iter().filter_map(|n| n.as_str()).collect();
    assert!(joined
        .iter()
        .any(|n| n.contains("entry `decompress_entry`")));
    assert!(joined.iter().any(|n| n.contains("`helper_mid`")));
    assert!(joined.iter().any(|n| n.contains("`helper_leaf`")));
    assert!(joined.last().is_some_and(|n| n.contains(".unwrap()")));
}

#[test]
fn suppression_at_a_call_site_cuts_the_whole_chain() {
    let ws = ws_of(&[(
        "crates/core/src/fixture.rs",
        r#"
pub fn decompress_entry(stream: &[u8]) -> usize {
    // szhi-analyzer: allow(panic-reachability) -- fixture: the callee is length-checked upstream
    helper_mid(stream)
}
fn helper_mid(stream: &[u8]) -> usize {
    stream.first().copied().unwrap() as usize
}
"#,
    )]);
    let graph = CallGraph::build(&ws);
    let violations = szhi_analyzer::graph::lint_panic_reachability(&ws, &graph);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn warm_path_allocations_are_flagged_and_scratch_routes_accepted() {
    let ws = ws_of(&[(
        "crates/core/src/warm.rs",
        r#"
pub fn compress_into(out: &mut Vec<u8>) {
    fill(out);
}
fn fill(out: &mut Vec<u8>) {
    let tmp: Vec<u8> = Vec::new();
    let scratch_buf: Vec<u8> = Vec::with_capacity(16); // reused scratch
    out.extend_from_slice(&tmp);
    out.extend_from_slice(&scratch_buf);
}
"#,
    )]);
    let graph = CallGraph::build(&ws);
    let violations = szhi_analyzer::graph::lint_steady_alloc(&ws, &graph);
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert!(
        violations[0].to_string().contains("`Vec::new()`"),
        "{}",
        violations[0]
    );
}

#[test]
fn baseline_passes_known_findings_and_fails_new_ones() {
    let ws = ws_of(&[(
        "crates/core/src/fixture.rs",
        r#"
pub fn decompress_entry(stream: &[u8]) -> usize {
    stream.first().copied().unwrap() as usize
}
"#,
    )]);
    let graph = CallGraph::build(&ws);
    let violations = szhi_analyzer::graph::lint_panic_reachability(&ws, &graph);
    assert_eq!(violations.len(), 1);

    // A baseline generated from this very report marks the finding known.
    let baseline_json = report::to_json(&report::Metrics::default(), &violations);
    let keys = report::parse_baseline(&baseline_json).expect("baseline parses");
    let (known, fresh) = report::split_by_baseline(violations.clone(), &keys);
    assert_eq!(known.len(), 1);
    assert!(fresh.is_empty(), "an old finding must not fail the gate");

    // An empty baseline leaves the same finding fresh — the gate fails.
    let empty = report::parse_baseline(r#"{"violations": []}"#).expect("empty baseline");
    let (known, fresh) = report::split_by_baseline(violations, &empty);
    assert!(known.is_empty());
    assert_eq!(fresh.len(), 1, "a new finding must fail the gate");
}
