//! Per-lint fixture tests: each lint must fire on a seeded violation and
//! stay quiet on the equivalent clean code, and the inline suppression
//! syntax must silence exactly the annotated line.
//!
//! Fixtures are passed to the linting functions as string literals — the
//! analyzer's own lexer blanks string literals before matching, so these
//! fixtures can never make the analyzer trip over its own test suite.

use szhi_analyzer::{lex, lint_error_coverage, lint_file, lint_spec_drift, Lint};

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[test]
fn lexer_blanks_strings_and_collects_comments() {
    let lexed = lex("let s = \"unsafe\"; // unsafe in a comment\n");
    let code = String::from_utf8(lexed.code).unwrap();
    assert!(
        !code.contains("unsafe"),
        "literal and comment text must be blanked, got: {code}"
    );
    assert!(lexed.comments[&1].contains("unsafe in a comment"));
}

#[test]
fn lexer_blanks_raw_strings_but_keeps_following_code() {
    let lexed = lex("let s = r#\"panic!(boom)\"#; let t = 1;\n");
    let code = String::from_utf8(lexed.code).unwrap();
    assert!(!code.contains("panic"));
    assert!(code.contains("let t = 1;"));
}

#[test]
fn lexer_preserves_byte_offsets_and_newlines() {
    let src = "let a = \"x\";\n// note\nlet b = 'y';\n";
    let lexed = lex(src);
    assert_eq!(lexed.code.len(), src.len());
    assert_eq!(
        lexed.code.iter().filter(|&&b| b == b'\n').count(),
        src.bytes().filter(|&b| b == b'\n').count()
    );
}

// ---------------------------------------------------------------------------
// L1: no-unsafe
// ---------------------------------------------------------------------------

#[test]
fn l1_flags_unsafe_in_first_party_code() {
    let src = "pub fn grow(p: *mut u8) {\n    unsafe { *p = 1 };\n}\n";
    let v = lint_file("crates/core/src/x.rs", src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].lint, Lint::NoUnsafe);
    assert_eq!(v[0].line, 2);
}

#[test]
fn l1_requires_safety_comment_in_vendor() {
    let bad = "unsafe impl<T: Send> Send for SharedMut<T> {}\n";
    let v = lint_file("vendor/rayon/src/lib.rs", bad);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].lint, Lint::NoUnsafe);

    let good = "// SAFETY: drive ranges are disjoint across threads.\n\
                unsafe impl<T: Send> Send for SharedMut<T> {}\n";
    assert!(lint_file("vendor/rayon/src/lib.rs", good).is_empty());
}

#[test]
fn l1_suppression_requires_a_reason() {
    let with_reason = "// szhi-analyzer: allow(no-unsafe) -- vetted FFI experiment\n\
                       pub fn f(p: *mut u8) { unsafe { *p = 1 }; }\n";
    assert!(lint_file("crates/core/src/x.rs", with_reason).is_empty());

    let without_reason = "// szhi-analyzer: allow(no-unsafe)\n\
                          pub fn f(p: *mut u8) { unsafe { *p = 1 }; }\n";
    assert_eq!(lint_file("crates/core/src/x.rs", without_reason).len(), 1);
}

// ---------------------------------------------------------------------------
// L2: no-panic-decode
// ---------------------------------------------------------------------------

#[test]
fn l2_flags_indexing_and_unwrap_in_decode_paths() {
    let idx = "pub fn decode_field(v: &[u8]) -> u8 {\n    v[0]\n}\n";
    let v = lint_file("crates/codec/src/x.rs", idx);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].lint, Lint::NoPanicDecode);
    assert_eq!(v[0].line, 2);

    for body in [
        "o.unwrap()",
        "o.expect(\"present\")",
        "panic!(\"boom\")",
        "unreachable!()",
    ] {
        let src = format!("pub fn decode_field(o: Option<u8>) -> u8 {{\n    {body}\n}}\n");
        let v = lint_file("crates/codec/src/x.rs", &src);
        assert_eq!(v.len(), 1, "{body} must fire: {v:?}");
        assert_eq!(v[0].lint, Lint::NoPanicDecode);
    }
}

#[test]
fn l2_ignores_encode_paths_tests_and_unwrap_or() {
    let encode = "pub fn encode_field(v: &[u8]) -> u8 {\n    v[0]\n}\n";
    assert!(lint_file("crates/codec/src/x.rs", encode).is_empty());

    let in_test = "#[cfg(test)]\nmod tests {\n    fn decode_helper(v: &[u8]) -> u8 {\n        v[0]\n    }\n}\n";
    assert!(lint_file("crates/codec/src/x.rs", in_test).is_empty());

    let fallback = "pub fn decode_field(o: Option<u8>) -> u8 {\n    o.unwrap_or(0)\n}\n";
    assert!(lint_file("crates/codec/src/x.rs", fallback).is_empty());
}

#[test]
fn l2_only_applies_to_decode_modules() {
    // The same panicking decode fn in a crate outside the lint's scope.
    let src = "pub fn decode_field(v: &[u8]) -> u8 {\n    v[0]\n}\n";
    assert!(lint_file("crates/datagen/src/x.rs", src).is_empty());
}

#[test]
fn l2_suppression_silences_one_line() {
    let src = "pub fn decode_field(v: &[u8]) -> u8 {\n    \
               // szhi-analyzer: allow(no-panic-decode) -- index bounded by the loop above\n    \
               v[0]\n}\n";
    assert!(lint_file("crates/codec/src/x.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// L3: capped-alloc
// ---------------------------------------------------------------------------

#[test]
fn l3_requires_decode_capacity_on_untrusted_sizes() {
    let bad = "pub fn decode_body(n: usize) -> Vec<u8> {\n    Vec::with_capacity(n)\n}\n";
    let v = lint_file("crates/codec/src/x.rs", bad);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].lint, Lint::CappedAlloc);

    let bad_reserve =
        "pub fn decode_body(n: usize) {\n    let mut v = Vec::new();\n    v.reserve(n);\n}\n";
    let v = lint_file("crates/codec/src/x.rs", bad_reserve);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].lint, Lint::CappedAlloc);

    let good =
        "pub fn decode_body(n: usize) -> Vec<u8> {\n    Vec::with_capacity(decode_capacity(n))\n}\n";
    assert!(lint_file("crates/codec/src/x.rs", good).is_empty());
}

// ---------------------------------------------------------------------------
// L4: spec-drift
// ---------------------------------------------------------------------------

const FORMAT_RS_FIXTURE: &str = "pub(crate) const MAGIC: [u8; 4] = *b\"SZHI\";\n\
                                 pub(crate) const VERSION: u8 = 1;\n\
                                 pub(crate) const TRAILER_SIZE: usize = 24;\n";

#[test]
fn l4_passes_when_docs_state_the_constants() {
    let md = "The stream opens with \"SZHI\", a v1 body, and a trailer of 24 bytes.";
    assert!(lint_spec_drift(FORMAT_RS_FIXTURE, md).is_empty());
}

#[test]
fn l4_flags_drifted_docs() {
    let md = "The stream opens with \"SZXX\", a v2 body, and a trailer of 16 bytes.";
    let v = lint_spec_drift(FORMAT_RS_FIXTURE, md);
    assert_eq!(v.len(), 3, "{v:?}");
    assert!(v.iter().all(|v| v.lint == Lint::SpecDrift));
    // Violations anchor at the declaring const's line in format.rs.
    assert_eq!(v.iter().map(|v| v.line).collect::<Vec<_>>(), vec![1, 2, 3]);
}

#[test]
fn l4_version_check_uses_word_boundaries() {
    // "v12" must not satisfy the v1 check.
    let md = "Magic \"SZHI\", a v12 body, 24 bytes of trailer.";
    let v = lint_spec_drift(FORMAT_RS_FIXTURE, md);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].line, 2);
}

#[test]
fn l4_reports_when_nothing_can_be_extracted() {
    let v = lint_spec_drift("fn nothing_here() {}\n", "prose");
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].lint, Lint::SpecDrift);
}

#[test]
fn l4_suppression_on_the_const_line() {
    let rs = "// szhi-analyzer: allow(spec-drift) -- legacy magic intentionally undocumented\n\
              pub(crate) const OLD_MAGIC: [u8; 4] = *b\"OLD!\";\n";
    assert!(lint_spec_drift(rs, "no mention of it").is_empty());
}

// ---------------------------------------------------------------------------
// L5: error-coverage
// ---------------------------------------------------------------------------

fn l5_files(lib_src: &str, test_src: &str) -> Vec<(String, String)> {
    vec![
        (
            "crates/core/src/error.rs".to_string(),
            "pub enum SzhiError {\n    Io(String),\n}\n".to_string(),
        ),
        ("crates/core/src/lib.rs".to_string(), lib_src.to_string()),
        (
            "crates/core/tests/errors.rs".to_string(),
            test_src.to_string(),
        ),
    ]
}

#[test]
fn l5_requires_construction_and_assertion() {
    let v = lint_error_coverage(&l5_files("", ""));
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v.iter().all(|v| v.lint == Lint::ErrorCoverage));
    assert!(v[0].message.contains("never constructed"));
    assert!(v[1].message.contains("never asserted"));

    let v = lint_error_coverage(&l5_files(
        "pub fn f() -> SzhiError { SzhiError::Io(String::new()) }\n",
        "fn t(e: SzhiError) { assert!(matches!(e, SzhiError::Io(_))); }\n",
    ));
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn l5_construction_in_a_test_does_not_count_as_library_use() {
    // The only construction site sits inside a #[cfg(test)] region: the
    // "constructed in library code" leg must still fire.
    let v = lint_error_coverage(&l5_files(
        "#[cfg(test)]\nmod tests {\n    fn f() -> SzhiError { SzhiError::Io(String::new()) }\n}\n",
        "fn t(e: SzhiError) { assert!(matches!(e, SzhiError::Io(_))); }\n",
    ));
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].message.contains("never constructed"));
}

#[test]
fn l5_suppression_on_the_variant_line() {
    let files = vec![(
        "crates/core/src/error.rs".to_string(),
        "pub enum SzhiError {\n    \
         // szhi-analyzer: allow(error-coverage) -- reserved for the v6 container\n    \
         Future,\n}\n"
            .to_string(),
    )];
    assert!(lint_error_coverage(&files).is_empty());
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

#[test]
fn violations_render_as_file_line_lint() {
    let src = "pub fn decode_field(v: &[u8]) -> u8 {\n    v[0]\n}\n";
    let v = &lint_file("crates/codec/src/x.rs", src)[0];
    let rendered = v.to_string();
    assert!(
        rendered.starts_with("crates/codec/src/x.rs:2: [no-panic-decode]"),
        "got: {rendered}"
    );
}
