//! A small byte-preserving Rust lexer plus structural helpers.
//!
//! [`lex`] blanks comments and string/char literals to spaces while
//! preserving newlines, so byte offsets and line numbers in the blanked
//! stream line up with the original text and braces/tokens can be matched
//! without tripping over literal contents. The structural helpers
//! (line tables, brace matching, `#[cfg(test)]` regions) operate on that
//! blanked stream.

use std::collections::HashMap;

/// A lexed source file.
///
/// `code` is the original byte stream with comments and string/char literals
/// blanked to spaces — newlines are preserved, so byte offsets and line
/// numbers still line up with the original text and braces/tokens can be
/// matched without tripping over literal contents. `comments` maps 1-based
/// line numbers to the comment text appearing on that line (used for
/// `// SAFETY:` checks, suppression comments and `// ORDER:` levels).
pub struct Lexed {
    /// Blanked source bytes, same length as the input.
    pub code: Vec<u8>,
    /// Comment text per 1-based line number.
    pub comments: HashMap<usize, String>,
}

pub(crate) fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

fn append_comment(map: &mut HashMap<usize, String>, line: usize, text: &str) {
    if text.is_empty() {
        return;
    }
    let entry = map.entry(line).or_default();
    if !entry.is_empty() {
        entry.push(' ');
    }
    entry.push_str(text);
}

/// Returns the position of the opening quote if `i` starts a raw string
/// (`r"`, `r#"`, `br"`, `br##"`, …), along with the number of `#`s.
fn raw_string_start(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        Some((hashes, j))
    } else {
        None
    }
}

/// Lexes `source`: blanks comments and literals, collects per-line comments.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let n = bytes.len();
    let mut code = Vec::with_capacity(n);
    let mut comments: HashMap<usize, String> = HashMap::new();
    let mut line = 1usize;
    let mut i = 0usize;
    // Pushes one blank per byte, preserving newlines (and counting lines).
    macro_rules! blank {
        ($b:expr) => {
            if $b == b'\n' {
                code.push(b'\n');
                line += 1;
            } else {
                code.push(b' ');
            }
        };
    }
    while i < n {
        let b = bytes[i];
        let prev_ident = i > 0 && is_ident_byte(bytes[i - 1]);
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < n && bytes[i] != b'\n' {
                code.push(b' ');
                i += 1;
            }
            append_comment(&mut comments, line, &source[start..i]);
        } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 1usize;
            code.push(b' ');
            code.push(b' ');
            i += 2;
            let mut seg = i;
            while i < n && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    code.push(b' ');
                    code.push(b' ');
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    code.push(b' ');
                    code.push(b' ');
                    i += 2;
                } else if bytes[i] == b'\n' {
                    append_comment(&mut comments, line, &source[seg..i]);
                    code.push(b'\n');
                    line += 1;
                    i += 1;
                    seg = i;
                } else {
                    code.push(b' ');
                    i += 1;
                }
            }
            append_comment(&mut comments, line, &source[seg..i]);
        } else if !prev_ident && (b == b'r' || b == b'b') && raw_string_start(bytes, i).is_some() {
            let (hashes, quote) = raw_string_start(bytes, i).unwrap_or((0, i)); // unreachable: checked just above
            while i <= quote {
                code.push(b' ');
                i += 1;
            }
            while i < n {
                if bytes[i] == b'"' {
                    let mut k = 0usize;
                    while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                        k += 1;
                    }
                    if k == hashes {
                        code.extend(std::iter::repeat_n(b' ', hashes + 1));
                        i += 1 + hashes;
                        break;
                    }
                    code.push(b' ');
                    i += 1;
                } else {
                    blank!(bytes[i]);
                    i += 1;
                }
            }
        } else if b == b'"' {
            // Plain (or byte) string literal; the `b` prefix, if any, was
            // already copied through as a harmless stray identifier byte.
            code.push(b' ');
            i += 1;
            while i < n {
                match bytes[i] {
                    b'\\' => {
                        code.push(b' ');
                        i += 1;
                        if i < n {
                            blank!(bytes[i]);
                            i += 1;
                        }
                    }
                    b'"' => {
                        code.push(b' ');
                        i += 1;
                        break;
                    }
                    other => {
                        blank!(other);
                        i += 1;
                    }
                }
            }
        } else if b == b'\'' {
            // Distinguish a char literal from a lifetime: a lifetime starts
            // with an identifier char and is NOT closed by a quote right
            // after that single char ('a, 'static), while 'x' / '\n' / '('
            // are literals.
            let next = bytes.get(i + 1).copied();
            let is_char = match next {
                Some(b'\\') => true,
                Some(c) if is_ident_byte(c) => bytes.get(i + 2) == Some(&b'\''),
                Some(_) => true,
                None => true,
            };
            if !is_char {
                code.push(b'\'');
                i += 1;
            } else {
                code.push(b' ');
                i += 1;
                while i < n && bytes[i] != b'\'' {
                    if bytes[i] == b'\\' {
                        code.push(b' ');
                        i += 1;
                        if i < n {
                            blank!(bytes[i]);
                            i += 1;
                        }
                    } else if bytes[i] == b'\n' {
                        break; // malformed literal: bail out of the scan
                    } else {
                        code.push(b' ');
                        i += 1;
                    }
                }
                if i < n && bytes[i] == b'\'' {
                    code.push(b' ');
                    i += 1;
                }
            }
        } else {
            if b == b'\n' {
                line += 1;
            }
            code.push(b);
            i += 1;
        }
    }
    Lexed { code, comments }
}

// ---------------------------------------------------------------------------
// Structural helpers over lexed code
// ---------------------------------------------------------------------------

pub(crate) fn line_starts(code: &[u8]) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, &b) in code.iter().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

pub(crate) fn line_of(starts: &[usize], pos: usize) -> usize {
    starts.partition_point(|&s| s <= pos)
}

pub(crate) fn find(hay: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    hay.get(from..)?
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// Position of the `}` matching the `{` at `open`.
pub(crate) fn match_brace(code: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, &b) in code.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Byte ranges covered by `#[cfg(test)]` items (the attribute through the
/// end of the item it gates).
pub(crate) fn test_regions(code: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let pat = b"cfg(test)";
    let mut from = 0usize;
    while let Some(p) = find(code, pat, from) {
        let mut k = p + pat.len();
        let mut end = code.len();
        while k < code.len() {
            match code[k] {
                b'{' => {
                    end = match_brace(code, k).map_or(code.len(), |c| c + 1);
                    break;
                }
                b';' => {
                    end = k + 1;
                    break;
                }
                _ => k += 1,
            }
        }
        out.push((p, end));
        from = end.max(p + 1);
    }
    out
}

pub(crate) fn in_regions(regions: &[(usize, usize)], pos: usize) -> bool {
    regions.iter().any(|&(s, e)| pos >= s && pos < e)
}

/// Skips a generic-argument list: `pos` points at `<`; returns the position
/// one past the matching `>`. `->` arrows inside the list (closure-trait
/// bounds like `Fn(usize) -> bool`) do not close it.
pub(crate) fn skip_angles(code: &[u8], pos: usize) -> usize {
    let mut angle = 0isize;
    let mut paren = 0isize;
    let mut k = pos;
    while k < code.len() {
        match code[k] {
            b'(' | b'[' => paren += 1,
            b')' | b']' => paren -= 1,
            b'<' if paren == 0 => angle += 1,
            // `->` return arrows inside parenthesised bounds
            // (`Fn(usize) -> bool`) do not close the list.
            b'>' if paren == 0 && !(k > 0 && code[k - 1] == b'-') => {
                angle -= 1;
                if angle == 0 {
                    return k + 1;
                }
            }
            b';' | b'{' if paren == 0 => return k, // malformed: bail early
            _ => {}
        }
        k += 1;
    }
    code.len()
}

/// The identifier ending at `end` (exclusive), if any.
pub(crate) fn ident_before(code: &[u8], end: usize) -> Option<(usize, &[u8])> {
    if end == 0 || !is_ident_byte(code[end - 1]) {
        return None;
    }
    let mut s = end - 1;
    while s > 0 && is_ident_byte(code[s - 1]) {
        s -= 1;
    }
    Some((s, &code[s..end]))
}

/// The previous non-whitespace byte before `pos`, with its position.
pub(crate) fn prev_nonspace(code: &[u8], pos: usize) -> Option<(usize, u8)> {
    let mut k = pos;
    while k > 0 {
        k -= 1;
        let b = code[k];
        if b != b' ' && b != b'\n' && b != b'\t' && b != b'\r' {
            return Some((k, b));
        }
    }
    None
}

/// The next non-whitespace byte at or after `pos`, with its position.
pub(crate) fn next_nonspace(code: &[u8], pos: usize) -> Option<(usize, u8)> {
    let mut k = pos;
    while k < code.len() {
        let b = code[k];
        if b != b' ' && b != b'\n' && b != b'\t' && b != b'\r' {
            return Some((k, b));
        }
        k += 1;
    }
    None
}
