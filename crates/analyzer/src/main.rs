//! `szhi-analyzer` command-line interface.
//!
//! ```text
//! szhi-analyzer [--root PATH] [--deny-all] [--lint ID]...
//! ```
//!
//! Without flags every lint runs in report-only mode (violations are printed
//! but the exit code stays 0). `--deny-all` makes any violation fatal (exit
//! code 1), which is how CI invokes it. Exit code 2 signals a usage or I/O
//! error.

use std::path::PathBuf;
use std::process::ExitCode;

use szhi_analyzer::{Analyzer, Lint};

const USAGE: &str = "usage: szhi-analyzer [--root PATH] [--deny-all] [--lint ID]...

  --root PATH   workspace root to analyze (default: current directory)
  --deny-all    exit 1 on any violation (CI mode); default is report-only
  --lint ID     run only the named lint (repeatable); default: all lints

lints: no-unsafe, no-panic-decode, capped-alloc, spec-drift, error-coverage
exit codes: 0 clean (or report-only), 1 violations under --deny-all, 2 error";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("szhi-analyzer: {message}\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut lints: Vec<Lint> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage_error("--root requires a path"),
            },
            "--deny-all" => deny = true,
            "--lint" => match args.next().as_deref().and_then(Lint::from_id) {
                Some(l) => {
                    if !lints.contains(&l) {
                        lints.push(l);
                    }
                }
                None => return usage_error("--lint requires a known lint id"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    let analyzer = if lints.is_empty() {
        Analyzer::new(root)
    } else {
        Analyzer::with_lints(root, lints)
    };
    match analyzer.run() {
        Ok(violations) if violations.is_empty() => {
            println!("szhi-analyzer: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("szhi-analyzer: {} violation(s)", violations.len());
            if deny {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("szhi-analyzer: error: {e}");
            ExitCode::from(2)
        }
    }
}
