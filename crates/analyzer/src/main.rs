//! `szhi-analyzer` command-line interface.
//!
//! ```text
//! szhi-analyzer [--root PATH] [--deny-all] [--lint ID]...
//!               [--format text|json] [--baseline FILE]
//! ```
//!
//! Without flags every lint runs in report-only mode (violations are printed
//! but the exit code stays 0). `--deny-all` makes any violation fatal (exit
//! code 1), which is how CI invokes it. `--format json` writes the full
//! machine-readable report to stdout. `--baseline FILE` loads a previous
//! JSON report and counts only findings *not* in it as failures — CI fails
//! on new findings while known ones age out. Exit code 2 signals a usage
//! or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use szhi_analyzer::{report, Analyzer, Lint};

const USAGE: &str = "usage: szhi-analyzer [--root PATH] [--deny-all] [--lint ID]...
                     [--format text|json] [--baseline FILE]

  --root PATH      workspace root to analyze (default: current directory)
  --deny-all       exit 1 on any new violation (CI mode); default report-only
  --lint ID        run only the named lint (repeatable); default: all lints
  --format FMT     text (default, human-readable on stderr) or json (full
                   machine-readable report on stdout)
  --baseline FILE  previous JSON report; findings recorded there are known
                   and do not fail --deny-all, only new findings do

lints: no-unsafe, no-panic-decode, capped-alloc, spec-drift, error-coverage,
       panic-reachability, steady-alloc, pool-invariant
exit codes: 0 clean (or report-only), 1 new violations under --deny-all, 2 error";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("szhi-analyzer: {message}\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut json = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut lints: Vec<Lint> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage_error("--root requires a path"),
            },
            "--deny-all" => deny = true,
            "--lint" => match args.next().as_deref().and_then(Lint::from_id) {
                Some(l) => {
                    if !lints.contains(&l) {
                        lints.push(l);
                    }
                }
                None => return usage_error("--lint requires a known lint id"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => json = false,
                Some("json") => json = true,
                Some(other) => {
                    return usage_error(&format!("unknown format `{other}` (text or json)"))
                }
                None => return usage_error("--format requires a value"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage_error("--baseline requires a file"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    let baseline = match &baseline_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    return usage_error(&format!("cannot read baseline {}: {e}", path.display()))
                }
            };
            match report::parse_baseline(&text) {
                Some(keys) => Some(keys),
                None => {
                    return usage_error(&format!(
                        "baseline {} is not a valid JSON report",
                        path.display()
                    ))
                }
            }
        }
        None => None,
    };
    let analyzer = if lints.is_empty() {
        Analyzer::new(root)
    } else {
        Analyzer::with_lints(root, lints)
    };
    let analysis = match analyzer.run_report() {
        Ok(analysis) => analysis,
        Err(e) => {
            eprintln!("szhi-analyzer: error: {e}");
            return ExitCode::from(2);
        }
    };
    let (known, fresh) = match &baseline {
        Some(keys) => report::split_by_baseline(analysis.violations, keys),
        None => (Vec::new(), analysis.violations),
    };
    if json {
        // The JSON report carries every finding (known ones included, so a
        // report can serve as next cycle's baseline); the baseline only
        // affects the exit code.
        let mut all = fresh.clone();
        all.extend(known.iter().cloned());
        all.sort_by(|a, b| (&a.file, a.line, a.lint.id()).cmp(&(&b.file, b.line, b.lint.id())));
        print!("{}", report::to_json(&analysis.metrics, &all));
    } else {
        for v in &fresh {
            eprintln!("{v}");
        }
        for v in &known {
            eprintln!("{v} (baseline)");
        }
        let m = &analysis.metrics;
        eprintln!(
            "szhi-analyzer: {} file(s), {} fn(s), {} call site(s) \
             ({} resolved edge(s), {} unresolved), {} panic root(s), {} alloc root(s)",
            m.files,
            m.functions,
            m.calls,
            m.resolved_edges,
            m.unresolved_calls,
            m.panic_roots,
            m.alloc_roots
        );
    }
    if fresh.is_empty() && known.is_empty() {
        if !json {
            println!("szhi-analyzer: workspace clean");
        }
        ExitCode::SUCCESS
    } else {
        if !json {
            eprintln!(
                "szhi-analyzer: {} new violation(s), {} known from baseline",
                fresh.len(),
                known.len()
            );
        }
        if deny && !fresh.is_empty() {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        }
    }
}
