//! In-tree static analysis enforcing the workspace's safety invariants.
//!
//! PRs 1–5 hardened the decoder by convention: every `Vec::with_capacity`
//! fed by an untrusted length routes through `bitio::decode_capacity`,
//! decode paths return typed errors instead of panicking, and all `unsafe`
//! stays inside `vendor/`. This crate machine-checks those conventions so
//! future work cannot silently regress them. It is dependency-free (the
//! build environment is offline): a plain `std::fs` walk plus a small Rust
//! lexer that blanks comments and string/char literals before matching, so
//! a lint never fires on the contents of a string or a doc comment.
//!
//! # Lints
//!
//! | id | rule |
//! |----|------|
//! | `no-unsafe` (L1) | `unsafe` is forbidden outside `vendor/`; every `unsafe` inside `vendor/` must carry a `// SAFETY:` comment |
//! | `no-panic-decode` (L2) | no `unwrap`/`expect`/`panic!`/`unreachable!`/slice indexing in library (non-test) decode paths of `szhi-codec` and `szhi-core::{format,stream}` |
//! | `capped-alloc` (L3) | `Vec::with_capacity`/`reserve` in those decode paths must route through `decode_capacity` |
//! | `spec-drift` (L4) | magic strings, version bytes and entry/trailer sizes declared in `format.rs` must be stated in `docs/FORMAT.md` |
//! | `error-coverage` (L5) | every `SzhiError` variant is constructed in library code and asserted by name in at least one test |
//!
//! # Suppression
//!
//! A violation is suppressed by a comment on the same line or the line
//! directly above, naming the lint and giving a non-empty reason:
//!
//! ```text
//! // szhi-analyzer: allow(no-panic-decode) -- ids are validated at parse time
//! ```
//!
//! See `docs/ANALYSIS.md` for the full catalogue and the rationale per lint.
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The project lints, in catalogue order (L1–L5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// L1: `unsafe` forbidden outside `vendor/`; `// SAFETY:` required inside.
    NoUnsafe,
    /// L2: panic-free decode paths (no `unwrap`/`expect`/`panic!`/indexing).
    NoPanicDecode,
    /// L3: decoder allocations route through `decode_capacity`.
    CappedAlloc,
    /// L4: `format.rs` constants cross-checked against `docs/FORMAT.md`.
    SpecDrift,
    /// L5: every `SzhiError` variant constructed and asserted by name.
    ErrorCoverage,
}

impl Lint {
    /// Every lint, in catalogue order.
    pub const ALL: [Lint; 5] = [
        Lint::NoUnsafe,
        Lint::NoPanicDecode,
        Lint::CappedAlloc,
        Lint::SpecDrift,
        Lint::ErrorCoverage,
    ];

    /// The stable id used on the command line and in suppression comments.
    pub fn id(self) -> &'static str {
        match self {
            Lint::NoUnsafe => "no-unsafe",
            Lint::NoPanicDecode => "no-panic-decode",
            Lint::CappedAlloc => "capped-alloc",
            Lint::SpecDrift => "spec-drift",
            Lint::ErrorCoverage => "error-coverage",
        }
    }

    /// Inverse of [`Lint::id`].
    pub fn from_id(id: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.id() == id)
    }
}

/// One lint violation, anchored at a workspace-relative file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The lint that fired.
    pub lint: Lint,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.lint.id(),
            self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

/// A lexed source file.
///
/// `code` is the original byte stream with comments and string/char literals
/// blanked to spaces — newlines are preserved, so byte offsets and line
/// numbers still line up with the original text and braces/tokens can be
/// matched without tripping over literal contents. `comments` maps 1-based
/// line numbers to the comment text appearing on that line (used for
/// `// SAFETY:` checks and suppression comments).
pub struct Lexed {
    /// Blanked source bytes, same length as the input.
    pub code: Vec<u8>,
    /// Comment text per 1-based line number.
    pub comments: HashMap<usize, String>,
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

fn append_comment(map: &mut HashMap<usize, String>, line: usize, text: &str) {
    if text.is_empty() {
        return;
    }
    let entry = map.entry(line).or_default();
    if !entry.is_empty() {
        entry.push(' ');
    }
    entry.push_str(text);
}

/// Returns the position of the opening quote if `i` starts a raw string
/// (`r"`, `r#"`, `br"`, `br##"`, …), along with the number of `#`s.
fn raw_string_start(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        Some((hashes, j))
    } else {
        None
    }
}

/// Lexes `source`: blanks comments and literals, collects per-line comments.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let n = bytes.len();
    let mut code = Vec::with_capacity(n);
    let mut comments: HashMap<usize, String> = HashMap::new();
    let mut line = 1usize;
    let mut i = 0usize;
    // Pushes one blank per byte, preserving newlines (and counting lines).
    macro_rules! blank {
        ($b:expr) => {
            if $b == b'\n' {
                code.push(b'\n');
                line += 1;
            } else {
                code.push(b' ');
            }
        };
    }
    while i < n {
        let b = bytes[i];
        let prev_ident = i > 0 && is_ident_byte(bytes[i - 1]);
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < n && bytes[i] != b'\n' {
                code.push(b' ');
                i += 1;
            }
            append_comment(&mut comments, line, &source[start..i]);
        } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 1usize;
            code.push(b' ');
            code.push(b' ');
            i += 2;
            let mut seg = i;
            while i < n && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    code.push(b' ');
                    code.push(b' ');
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    code.push(b' ');
                    code.push(b' ');
                    i += 2;
                } else if bytes[i] == b'\n' {
                    append_comment(&mut comments, line, &source[seg..i]);
                    code.push(b'\n');
                    line += 1;
                    i += 1;
                    seg = i;
                } else {
                    code.push(b' ');
                    i += 1;
                }
            }
            append_comment(&mut comments, line, &source[seg..i]);
        } else if !prev_ident && (b == b'r' || b == b'b') && raw_string_start(bytes, i).is_some() {
            let (hashes, quote) = raw_string_start(bytes, i).unwrap_or((0, i)); // unreachable: checked just above
            while i <= quote {
                code.push(b' ');
                i += 1;
            }
            while i < n {
                if bytes[i] == b'"' {
                    let mut k = 0usize;
                    while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                        k += 1;
                    }
                    if k == hashes {
                        code.extend(std::iter::repeat_n(b' ', hashes + 1));
                        i += 1 + hashes;
                        break;
                    }
                    code.push(b' ');
                    i += 1;
                } else {
                    blank!(bytes[i]);
                    i += 1;
                }
            }
        } else if b == b'"' {
            // Plain (or byte) string literal; the `b` prefix, if any, was
            // already copied through as a harmless stray identifier byte.
            code.push(b' ');
            i += 1;
            while i < n {
                match bytes[i] {
                    b'\\' => {
                        code.push(b' ');
                        i += 1;
                        if i < n {
                            blank!(bytes[i]);
                            i += 1;
                        }
                    }
                    b'"' => {
                        code.push(b' ');
                        i += 1;
                        break;
                    }
                    other => {
                        blank!(other);
                        i += 1;
                    }
                }
            }
        } else if b == b'\'' {
            // Distinguish a char literal from a lifetime: a lifetime starts
            // with an identifier char and is NOT closed by a quote right
            // after that single char ('a, 'static), while 'x' / '\n' / '('
            // are literals.
            let next = bytes.get(i + 1).copied();
            let is_char = match next {
                Some(b'\\') => true,
                Some(c) if is_ident_byte(c) => bytes.get(i + 2) == Some(&b'\''),
                Some(_) => true,
                None => true,
            };
            if !is_char {
                code.push(b'\'');
                i += 1;
            } else {
                code.push(b' ');
                i += 1;
                while i < n && bytes[i] != b'\'' {
                    if bytes[i] == b'\\' {
                        code.push(b' ');
                        i += 1;
                        if i < n {
                            blank!(bytes[i]);
                            i += 1;
                        }
                    } else if bytes[i] == b'\n' {
                        break; // malformed literal: bail out of the scan
                    } else {
                        code.push(b' ');
                        i += 1;
                    }
                }
                if i < n && bytes[i] == b'\'' {
                    code.push(b' ');
                    i += 1;
                }
            }
        } else {
            if b == b'\n' {
                line += 1;
            }
            code.push(b);
            i += 1;
        }
    }
    Lexed { code, comments }
}

// ---------------------------------------------------------------------------
// Structural helpers over lexed code
// ---------------------------------------------------------------------------

fn line_starts(code: &[u8]) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, &b) in code.iter().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

fn line_of(starts: &[usize], pos: usize) -> usize {
    starts.partition_point(|&s| s <= pos)
}

fn find(hay: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    hay.get(from..)?
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// Position of the `}` matching the `{` at `open`.
fn match_brace(code: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, &b) in code.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Byte ranges covered by `#[cfg(test)]` items (the attribute through the
/// end of the item it gates).
fn test_regions(code: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let pat = b"cfg(test)";
    let mut from = 0usize;
    while let Some(p) = find(code, pat, from) {
        let mut k = p + pat.len();
        let mut end = code.len();
        while k < code.len() {
            match code[k] {
                b'{' => {
                    end = match_brace(code, k).map_or(code.len(), |c| c + 1);
                    break;
                }
                b';' => {
                    end = k + 1;
                    break;
                }
                _ => k += 1,
            }
        }
        out.push((p, end));
        from = end.max(p + 1);
    }
    out
}

fn in_regions(regions: &[(usize, usize)], pos: usize) -> bool {
    regions.iter().any(|&(s, e)| pos >= s && pos < e)
}

/// A named function and the byte range of its body (braces inclusive).
struct FnRegion {
    name: String,
    start: usize,
    end: usize,
}

fn fn_regions(code: &[u8]) -> Vec<FnRegion> {
    let n = code.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < n {
        if !is_ident_byte(code[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < n && is_ident_byte(code[i]) {
            i += 1;
        }
        if &code[start..i] != b"fn" {
            continue;
        }
        let mut j = i;
        while j < n && (code[j] == b' ' || code[j] == b'\n') {
            j += 1;
        }
        let name_start = j;
        while j < n && is_ident_byte(code[j]) {
            j += 1;
        }
        if j == name_start {
            continue; // `fn(...)` pointer type: no name, no body to track
        }
        let name = String::from_utf8_lossy(&code[name_start..j]).into_owned();
        // Scan for the body `{`, skipping `;` inside `[u8; 4]`-style types.
        let mut depth = 0i32;
        let mut k = j;
        while k < n {
            match code[k] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    if let Some(close) = match_brace(code, k) {
                        out.push(FnRegion {
                            name,
                            start: k,
                            end: close,
                        });
                    }
                    break;
                }
                b';' if depth == 0 => break, // trait method declaration
                _ => {}
            }
            k += 1;
        }
        i = j;
    }
    out
}

/// The innermost function body containing `pos`.
fn enclosing_fn(fns: &[FnRegion], pos: usize) -> Option<&FnRegion> {
    fns.iter()
        .filter(|f| pos >= f.start && pos <= f.end)
        .min_by_key(|f| f.end - f.start)
}

// ---------------------------------------------------------------------------
// Suppression comments
// ---------------------------------------------------------------------------

const ALLOW_MARKER: &str = "szhi-analyzer: allow(";

/// Whether `text` carries a well-formed suppression for `id`:
/// `szhi-analyzer: allow(<ids>) -- <non-empty reason>`.
fn comment_allows(text: &str, id: &str) -> bool {
    let Some(p) = text.find(ALLOW_MARKER) else {
        return false;
    };
    let rest = &text[p + ALLOW_MARKER.len()..];
    let Some(close) = rest.find(')') else {
        return false;
    };
    let ids = &rest[..close];
    let after = &rest[close + 1..];
    let Some(dash) = after.find("--") else {
        return false;
    };
    if after[dash + 2..].trim().is_empty() {
        return false; // a reason is mandatory
    }
    ids.split(',').any(|s| s.trim() == id)
}

/// Suppression applies on the violation's own line or the line above.
fn is_suppressed(comments: &HashMap<usize, String>, line: usize, lint: Lint) -> bool {
    [line, line.saturating_sub(1)]
        .iter()
        .filter(|&&l| l > 0)
        .any(|l| {
            comments
                .get(l)
                .is_some_and(|t| comment_allows(t, lint.id()))
        })
}

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

fn is_vendor_path(rel: &str) -> bool {
    rel.starts_with("vendor/")
}

/// Integration-test files: every byte is test code.
fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|c| c == "tests")
}

/// Files that are not library code (tests, benches, examples).
fn is_nonlib_path(rel: &str) -> bool {
    rel.split('/')
        .any(|c| matches!(c, "tests" | "benches" | "examples"))
}

/// First-party library source (in scope for L5's construction leg).
fn is_first_party_lib(rel: &str) -> bool {
    !is_vendor_path(rel)
        && !is_nonlib_path(rel)
        && (rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/")))
}

/// The decode-path scope of L2/L3: `szhi-codec` and the container modules
/// of `szhi-core`.
fn in_decode_scope(rel: &str) -> bool {
    rel.starts_with("crates/codec/src/")
        || rel == "crates/core/src/format.rs"
        || rel == "crates/core/src/stream.rs"
}

/// Function-name keywords that mark a function as a decode path. Matched as
/// substrings of the function name; encode-side names (`encode`, `compress`,
/// `pack`, `finish`, …) deliberately match none of them.
const DECODE_FN_KEYWORDS: &[&str] = &[
    "decode",
    "decompress",
    "unpack",
    "unpass",
    "read",
    "parse",
    "validate",
    "verif",
    "restore",
    "take",
    "peek",
    "refill",
    "consume",
    "fetch",
    "resolve",
    "get_",
    "from_bytes",
    "stream_version",
    "reject",
    "expect_chunked",
    "checked_count",
];

fn is_decode_fn(name: &str) -> bool {
    DECODE_FN_KEYWORDS.iter().any(|k| name.contains(k))
}

/// Keywords that can directly precede a `[` without it being an index
/// expression (array/slice literals and patterns).
const PRE_BRACKET_KEYWORDS: &[&str] = &[
    "return", "break", "in", "else", "match", "if", "while", "let", "mut", "ref", "move", "for",
    "loop", "as", "dyn", "where", "impl", "const", "static",
];

/// Heuristic: `[` is an index expression if it directly follows an
/// identifier, `)`, `]` or `?` (rustfmt leaves no space there), and the
/// preceding identifier is not a keyword.
fn is_index_expr(code: &[u8], pos: usize) -> bool {
    if pos == 0 {
        return false;
    }
    let prev = code[pos - 1];
    if prev == b')' || prev == b']' || prev == b'?' {
        return true;
    }
    if !is_ident_byte(prev) {
        return false;
    }
    let mut s = pos - 1;
    while s > 0 && is_ident_byte(code[s - 1]) {
        s -= 1;
    }
    let ident = String::from_utf8_lossy(&code[s..pos]);
    !PRE_BRACKET_KEYWORDS.contains(&ident.as_ref())
}

/// Whether the parenthesised argument list opening at `open` contains
/// `needle` (used to accept `with_capacity(decode_capacity(...))`).
fn paren_contains(code: &[u8], open: usize, needle: &[u8]) -> bool {
    if code.get(open) != Some(&b'(') {
        return false;
    }
    let mut depth = 0usize;
    let mut end = open;
    for (k, &b) in code.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    end = k;
                    break;
                }
            }
            _ => {}
        }
    }
    find(&code[..end], needle, open).is_some()
}

// ---------------------------------------------------------------------------
// Per-file lints: L1 no-unsafe, L2 no-panic-decode, L3 capped-alloc
// ---------------------------------------------------------------------------

/// Runs the per-file lints (L1, L2, L3) over one source file. `rel` is the
/// workspace-relative `/`-separated path, which selects the applicable
/// scopes (vendor for L1, decode modules for L2/L3).
pub fn lint_file(rel: &str, source: &str) -> Vec<Violation> {
    let lexed = lex(source);
    let code = &lexed.code;
    let starts = line_starts(code);
    let tests = test_regions(code);
    let fns = fn_regions(code);
    let vendor = is_vendor_path(rel);
    let decode_scope = in_decode_scope(rel) && !is_test_path(rel);
    let mut out = Vec::new();
    let push = |out: &mut Vec<Violation>, lint: Lint, pos: usize, message: String| {
        let line = line_of(&starts, pos);
        if !is_suppressed(&lexed.comments, line, lint) {
            out.push(Violation {
                lint,
                file: rel.to_string(),
                line,
                message,
            });
        }
    };

    // L1: `unsafe` tokens.
    let mut i = 0usize;
    while i < code.len() {
        if !is_ident_byte(code[i]) {
            i += 1;
            continue;
        }
        let s = i;
        while i < code.len() && is_ident_byte(code[i]) {
            i += 1;
        }
        if &code[s..i] != b"unsafe" {
            continue;
        }
        if !vendor {
            push(
                &mut out,
                Lint::NoUnsafe,
                s,
                "`unsafe` is forbidden outside vendor/".to_string(),
            );
        } else {
            let line = line_of(&starts, s);
            let documented = (line.saturating_sub(3)..=line).any(|l| {
                lexed
                    .comments
                    .get(&l)
                    .is_some_and(|t| t.contains("SAFETY:"))
            });
            if !documented {
                push(
                    &mut out,
                    Lint::NoUnsafe,
                    s,
                    "`unsafe` in vendor/ without a `// SAFETY:` comment".to_string(),
                );
            }
        }
    }

    // L2 + L3: decode-path scans.
    if decode_scope {
        let mut i = 0usize;
        while i < code.len() {
            let at_ident = i == 0 || !is_ident_byte(code[i - 1]);
            let hit: Option<(Lint, String)> = if code[i..].starts_with(b".unwrap()") {
                Some((Lint::NoPanicDecode, "call to `.unwrap()`".to_string()))
            } else if code[i..].starts_with(b".expect(") {
                Some((Lint::NoPanicDecode, "call to `.expect(...)`".to_string()))
            } else if at_ident && code[i..].starts_with(b"panic!") {
                Some((Lint::NoPanicDecode, "`panic!` invocation".to_string()))
            } else if at_ident && code[i..].starts_with(b"unreachable!") {
                Some((Lint::NoPanicDecode, "`unreachable!` invocation".to_string()))
            } else if code[i] == b'[' && is_index_expr(code, i) {
                Some((
                    Lint::NoPanicDecode,
                    "slice/array indexing (use `.get()` and return a typed error)".to_string(),
                ))
            } else if at_ident
                && code[i..].starts_with(b"with_capacity(")
                && !paren_contains(code, i + 13, b"decode_capacity")
            {
                Some((
                    Lint::CappedAlloc,
                    "`with_capacity` not routed through `decode_capacity`".to_string(),
                ))
            } else if code[i..].starts_with(b".reserve(")
                && !paren_contains(code, i + 8, b"decode_capacity")
            {
                Some((
                    Lint::CappedAlloc,
                    "`reserve` not routed through `decode_capacity`".to_string(),
                ))
            } else {
                None
            };
            if let Some((lint, message)) = hit {
                if !in_regions(&tests, i) {
                    if let Some(f) = enclosing_fn(&fns, i) {
                        if is_decode_fn(&f.name) {
                            let message = format!("{message} in decode path `{}`", f.name);
                            push(&mut out, lint, i, message);
                        }
                    }
                }
            }
            i += 1;
        }
    }

    out
}

// ---------------------------------------------------------------------------
// L4: spec-drift between format.rs and docs/FORMAT.md
// ---------------------------------------------------------------------------

enum ConstValue {
    Bytes(String),
    Int(u64),
}

/// Parses `pub const NAME: T = VALUE;` where VALUE is `*b"..."`, `b"..."`
/// or an integer literal. Returns `None` for anything else.
fn parse_const_line(line: &str) -> Option<(String, ConstValue)> {
    let p = line.find("const ")?;
    let t = &line[p + 6..];
    let colon = t.find(':')?;
    let name = t[..colon].trim();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
    {
        return None;
    }
    let eq = t.find('=')?;
    // The terminating `;` must be looked up after the `=`: array types like
    // `[u8; 4]` put a semicolon inside the type annotation.
    let semi = t[eq..].find(';')? + eq;
    let val = t[eq + 1..semi].trim();
    if let Some(s) = val.strip_prefix("*b\"").or_else(|| val.strip_prefix("b\"")) {
        let inner = s.strip_suffix('"')?;
        return Some((name.to_string(), ConstValue::Bytes(inner.to_string())));
    }
    let digits: String = val.chars().filter(|c| *c != '_').collect();
    digits
        .parse::<u64>()
        .ok()
        .map(|v| (name.to_string(), ConstValue::Int(v)))
}

fn contains_word(hay: &str, needle: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0usize;
    while let Some(p) = hay.get(from..).and_then(|h| h.find(needle)) {
        let abs = from + p;
        let before_ok = abs == 0 || !bytes[abs - 1].is_ascii_alphanumeric();
        let after = bytes.get(abs + needle.len());
        let after_ok = !matches!(after, Some(b) if b.is_ascii_alphanumeric());
        if before_ok && after_ok {
            return true;
        }
        from = abs + 1;
    }
    false
}

fn md_states_size(md: &str, n: u64) -> bool {
    [
        format!("{n} bytes"),
        format!("{n}-byte"),
        format!("× {n}"),
        format!("{n} B"),
    ]
    .iter()
    .any(|p| md.contains(p.as_str()))
}

/// Cross-checks the constants declared in `format.rs` (raw source, so the
/// magic string literals are visible) against the prose of `docs/FORMAT.md`:
/// magics must appear quoted, sizes as `N bytes`/`N-byte`/`× N`/`N B`,
/// version bytes as `vN`.
pub fn lint_spec_drift(format_rs: &str, format_md: &str) -> Vec<Violation> {
    const FORMAT_RS: &str = "crates/core/src/format.rs";
    let comments = lex(format_rs).comments;
    let mut out = Vec::new();
    let push = |out: &mut Vec<Violation>, line: usize, message: String| {
        if !is_suppressed(&comments, line, Lint::SpecDrift) {
            out.push(Violation {
                lint: Lint::SpecDrift,
                file: FORMAT_RS.to_string(),
                line,
                message,
            });
        }
    };
    let mut extracted = 0usize;
    for (idx, raw) in format_rs.lines().enumerate() {
        let line_no = idx + 1;
        let Some((name, value)) = parse_const_line(raw) else {
            continue;
        };
        match value {
            ConstValue::Bytes(s) if name.contains("MAGIC") => {
                extracted += 1;
                let quoted = format!("\"{s}\"");
                if !format_md.contains(&quoted) {
                    push(
                        &mut out,
                        line_no,
                        format!(
                            "docs/FORMAT.md does not state the magic {quoted} declared by `{name}`"
                        ),
                    );
                }
            }
            ConstValue::Int(v) if name.contains("SIZE") => {
                extracted += 1;
                if !md_states_size(format_md, v) {
                    push(
                        &mut out,
                        line_no,
                        format!("docs/FORMAT.md does not state the size {v} declared by `{name}`"),
                    );
                }
            }
            ConstValue::Int(v) if name.starts_with("VERSION") => {
                extracted += 1;
                if !contains_word(format_md, &format!("v{v}")) {
                    push(
                        &mut out,
                        line_no,
                        format!("docs/FORMAT.md does not mention v{v} declared by `{name}`"),
                    );
                }
            }
            _ => {}
        }
    }
    if extracted == 0 {
        out.push(Violation {
            lint: Lint::SpecDrift,
            file: FORMAT_RS.to_string(),
            line: 1,
            message: "no magic/size/version constants could be extracted from format.rs"
                .to_string(),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// L5: SzhiError variant coverage
// ---------------------------------------------------------------------------

/// Variant names (with byte positions) of `pub enum <name>` in lexed code.
fn extract_enum_variants(code: &[u8], enum_name: &str) -> Option<Vec<(String, usize)>> {
    let pat = format!("pub enum {enum_name}");
    let p = find(code, pat.as_bytes(), 0)?;
    let open = (p..code.len()).find(|&k| code[k] == b'{')?;
    let close = match_brace(code, open)?;
    let mut variants = Vec::new();
    let mut depth = 0usize;
    let mut expect_name = true;
    let mut i = open + 1;
    while i < close {
        match code[i] {
            b'{' | b'(' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b')' | b']' => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            b',' if depth == 0 => {
                expect_name = true;
                i += 1;
            }
            b'#' => {
                // Skip an attribute: `#[...]`.
                if code.get(i + 1) == Some(&b'[') {
                    let mut d = 0usize;
                    let mut k = i + 1;
                    while k < close {
                        match code[k] {
                            b'[' => d += 1,
                            b']' => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    i = k + 1;
                } else {
                    i += 1;
                }
            }
            b if is_ident_byte(b) && depth == 0 => {
                let s = i;
                while i < close && is_ident_byte(code[i]) {
                    i += 1;
                }
                if expect_name {
                    variants.push((String::from_utf8_lossy(&code[s..i]).into_owned(), s));
                    expect_name = false;
                }
            }
            _ => i += 1,
        }
    }
    Some(variants)
}

/// Checks that every `SzhiError` variant is (a) constructed/named in
/// first-party library code outside its defining file, and (b) asserted by
/// name inside at least one test (a `#[cfg(test)]` region or a `tests/`
/// file). `files` maps workspace-relative paths to file contents.
pub fn lint_error_coverage(files: &[(String, String)]) -> Vec<Violation> {
    struct Prepped {
        rel: String,
        code: Vec<u8>,
        tests: Vec<(usize, usize)>,
        whole_test: bool,
    }
    let prepped: Vec<Prepped> = files
        .iter()
        .filter(|(rel, _)| !is_vendor_path(rel))
        .map(|(rel, src)| {
            let code = lex(src).code;
            let tests = test_regions(&code);
            Prepped {
                rel: rel.clone(),
                tests,
                whole_test: is_test_path(rel),
                code,
            }
        })
        .collect();

    // Locate the enum definition.
    let mut enum_rel = None;
    let mut variants: Vec<(String, usize)> = Vec::new();
    let mut enum_comments = HashMap::new();
    for (rel, src) in files {
        if !is_first_party_lib(rel) {
            continue;
        }
        let lexed = lex(src);
        if let Some(vs) = extract_enum_variants(&lexed.code, "SzhiError") {
            let starts = line_starts(&lexed.code);
            variants = vs
                .into_iter()
                .map(|(name, pos)| (name, line_of(&starts, pos)))
                .collect();
            enum_rel = Some(rel.clone());
            enum_comments = lexed.comments;
            break;
        }
    }
    let Some(enum_rel) = enum_rel else {
        return vec![Violation {
            lint: Lint::ErrorCoverage,
            file: "crates/core/src/error.rs".to_string(),
            line: 1,
            message: "no `pub enum SzhiError` found in first-party library code".to_string(),
        }];
    };

    let mentions = |p: &Prepped, variant: &str, want_test: bool| -> bool {
        let pat = format!("SzhiError::{variant}");
        let pb = pat.as_bytes();
        let mut from = 0usize;
        while let Some(pos) = find(&p.code, pb, from) {
            let boundary = p
                .code
                .get(pos + pb.len())
                .is_none_or(|b| !is_ident_byte(*b));
            if boundary {
                let in_test = p.whole_test || in_regions(&p.tests, pos);
                if in_test == want_test {
                    return true;
                }
            }
            from = pos + 1;
        }
        false
    };

    let mut out = Vec::new();
    for (variant, line) in &variants {
        let constructed = prepped
            .iter()
            .filter(|p| is_first_party_lib(&p.rel) && p.rel != enum_rel)
            .any(|p| mentions(p, variant, false));
        let tested = prepped.iter().any(|p| mentions(p, variant, true));
        let mut push = |message: String| {
            if !is_suppressed(&enum_comments, *line, Lint::ErrorCoverage) {
                out.push(Violation {
                    lint: Lint::ErrorCoverage,
                    file: enum_rel.clone(),
                    line: *line,
                    message,
                });
            }
        };
        if !constructed {
            push(format!(
                "`SzhiError::{variant}` is never constructed in library code outside {enum_rel}"
            ));
        }
        if !tested {
            push(format!(
                "`SzhiError::{variant}` is never asserted by name in any test"
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Walks a workspace root and runs the selected lints.
pub struct Analyzer {
    root: PathBuf,
    lints: Vec<Lint>,
}

impl Analyzer {
    /// An analyzer running every lint.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Analyzer {
            root: root.into(),
            lints: Lint::ALL.to_vec(),
        }
    }

    /// An analyzer restricted to `lints`.
    pub fn with_lints(root: impl Into<PathBuf>, lints: Vec<Lint>) -> Self {
        Analyzer {
            root: root.into(),
            lints,
        }
    }

    /// Runs the lints over every `.rs` file under the root (skipping
    /// `target/`, `.git/` and fixture directories). Violations are sorted
    /// by file, line and lint.
    pub fn run(&self) -> io::Result<Vec<Violation>> {
        let mut files: Vec<(String, String)> = Vec::new();
        collect_rs(&self.root, &self.root, &mut files)?;
        files.sort();
        let mut out = Vec::new();
        for (rel, src) in &files {
            out.extend(
                lint_file(rel, src)
                    .into_iter()
                    .filter(|v| self.lints.contains(&v.lint)),
            );
        }
        if self.lints.contains(&Lint::SpecDrift) {
            let format_rs = files
                .iter()
                .find(|(rel, _)| rel == "crates/core/src/format.rs");
            let format_md = fs::read_to_string(self.root.join("docs/FORMAT.md"));
            match (format_rs, format_md) {
                (Some((_, src)), Ok(md)) => out.extend(lint_spec_drift(src, &md)),
                _ => out.push(Violation {
                    lint: Lint::SpecDrift,
                    file: "docs/FORMAT.md".to_string(),
                    line: 1,
                    message: "format.rs or docs/FORMAT.md not found; cannot cross-check the spec"
                        .to_string(),
                }),
            }
        }
        if self.lints.contains(&Lint::ErrorCoverage) {
            out.extend(lint_error_coverage(&files));
        }
        out.sort_by(|a, b| (&a.file, a.line, a.lint.id()).cmp(&(&b.file, b.line, b.lint.id())));
        Ok(out)
    }
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "target" | ".git" | "fixtures" | "node_modules"
            ) {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if let Ok(src) = fs::read_to_string(&path) {
                out.push((rel, src));
            }
        }
    }
    Ok(())
}
