//! In-tree static analysis enforcing the workspace's safety invariants.
//!
//! PRs 1–5 hardened the decoder by convention: every `Vec::with_capacity`
//! fed by an untrusted length routes through `bitio::decode_capacity`,
//! decode paths return typed errors instead of panicking, and all `unsafe`
//! stays inside `vendor/`. This crate machine-checks those conventions so
//! future work cannot silently regress them. It is dependency-free (the
//! build environment is offline): a plain `std::fs` walk plus a small Rust
//! lexer that blanks comments and string/char literals before matching, so
//! a lint never fires on the contents of a string or a doc comment.
//!
//! Since PR 9 the per-line lints sit on top of a workspace **call-graph
//! engine** ([`table`], [`graph`]): every `fn` item is parsed into a
//! function table and call sites are resolved into a conservative,
//! name-based call graph (unresolved calls are recorded, never silently
//! dropped), which powers three transitive lints with root-cause chains.
//!
//! # Lints
//!
//! | id | rule |
//! |----|------|
//! | `no-unsafe` (L1) | `unsafe` is forbidden outside `vendor/`; every `unsafe` inside `vendor/` must carry a `// SAFETY:` comment |
//! | `no-panic-decode` (L2) | no `unwrap`/`expect`/`panic!`/`unreachable!`/slice indexing in library (non-test) decode paths |
//! | `capped-alloc` (L3) | `Vec::with_capacity`/`reserve` in decode paths must route through `decode_capacity` |
//! | `spec-drift` (L4) | constants in `format.rs` must be stated in `docs/FORMAT.md`; subcommands/flags/exit codes in `args.rs` must be stated in `docs/CLI.md` |
//! | `error-coverage` (L5) | every `SzhiError` variant constructed and asserted by name; every cli usage-error message pinned by a test |
//! | `panic-reachability` (L6) | no call chain from a decode/serve entry point reaches a panic site (reported with the full chain) |
//! | `steady-alloc` (L7) | no call chain from a warm-path encode root reaches an allocation that is not scratch-routed |
//! | `pool-invariant` (L8) | every `lock()`/`wait` in `vendor/rayon` carries an `// ORDER:` level, monotonically non-decreasing along call chains |
//!
//! # Suppression
//!
//! A violation is suppressed by a comment on the same line or the line
//! directly above, naming the lint and giving a non-empty reason:
//!
//! ```text
//! // szhi-analyzer: allow(no-panic-decode) -- ids are validated at parse time
//! ```
//!
//! For the transitive lints (L6/L7) the same comment on a *call site*
//! cuts every chain through that edge — place it at the boundary where
//! the invariant is argued (e.g. a fuzz-tested subsystem entry).
//!
//! # Scoping
//!
//! L2/L3 scope is driven by file-level directives instead of a hard-coded
//! path list (the legacy decode modules stay in scope unconditionally):
//!
//! ```text
//! // szhi-analyzer: scope(<lint-id>)        — decode-named fns of this file
//! // szhi-analyzer: scope(<lint-id>: all)   — every non-test fn of this file
//! ```
//!
//! (The placeholder `<lint-id>` stands for a lint id such as
//! `no-panic-decode`; a directive naming no real lint is inert, which is
//! also why this very doc comment does not put the analyzer in scope.)
//!
//! See `docs/ANALYSIS.md` for the full catalogue and the rationale per lint.
#![forbid(unsafe_code)]

pub mod graph;
pub mod lexer;
pub mod report;
pub mod table;

pub use lexer::{lex, Lexed};
pub use report::Metrics;
pub use table::Workspace;

use lexer::{find, in_regions, is_ident_byte, line_of, line_starts, match_brace, test_regions};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The project lints, in catalogue order (L1–L8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// L1: `unsafe` forbidden outside `vendor/`; `// SAFETY:` required inside.
    NoUnsafe,
    /// L2: panic-free decode paths (no `unwrap`/`expect`/`panic!`/indexing).
    NoPanicDecode,
    /// L3: decoder allocations route through `decode_capacity`.
    CappedAlloc,
    /// L4: `format.rs`/`args.rs` constants cross-checked against the docs.
    SpecDrift,
    /// L5: every `SzhiError` variant constructed and asserted by name.
    ErrorCoverage,
    /// L6: no panic site reachable from a decode/serve entry point.
    PanicReachability,
    /// L7: no unrouted allocation reachable from a warm-path root.
    SteadyAlloc,
    /// L8: `vendor/rayon` lock sites annotated and ordered.
    PoolInvariant,
}

impl Lint {
    /// Every lint, in catalogue order.
    pub const ALL: [Lint; 8] = [
        Lint::NoUnsafe,
        Lint::NoPanicDecode,
        Lint::CappedAlloc,
        Lint::SpecDrift,
        Lint::ErrorCoverage,
        Lint::PanicReachability,
        Lint::SteadyAlloc,
        Lint::PoolInvariant,
    ];

    /// The stable id used on the command line and in suppression comments.
    pub fn id(self) -> &'static str {
        match self {
            Lint::NoUnsafe => "no-unsafe",
            Lint::NoPanicDecode => "no-panic-decode",
            Lint::CappedAlloc => "capped-alloc",
            Lint::SpecDrift => "spec-drift",
            Lint::ErrorCoverage => "error-coverage",
            Lint::PanicReachability => "panic-reachability",
            Lint::SteadyAlloc => "steady-alloc",
            Lint::PoolInvariant => "pool-invariant",
        }
    }

    /// Inverse of [`Lint::id`].
    pub fn from_id(id: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.id() == id)
    }
}

/// One lint violation, anchored at a workspace-relative file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The lint that fired.
    pub lint: Lint,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// Supporting detail — for the transitive lints, the call chain from
    /// the entry point to the offending site, one step per line.
    pub notes: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.lint.id(),
            self.message
        )?;
        for note in &self.notes {
            write!(f, "\n        {note}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Suppression and scope comments
// ---------------------------------------------------------------------------

const ALLOW_MARKER: &str = "szhi-analyzer: allow(";
const SCOPE_MARKER: &str = "szhi-analyzer: scope(";

/// Whether `text` carries a well-formed suppression for `id`:
/// `szhi-analyzer: allow(<ids>) -- <non-empty reason>`.
fn comment_allows(text: &str, id: &str) -> bool {
    let Some(p) = text.find(ALLOW_MARKER) else {
        return false;
    };
    let rest = &text[p + ALLOW_MARKER.len()..];
    let Some(close) = rest.find(')') else {
        return false;
    };
    let ids = &rest[..close];
    let after = &rest[close + 1..];
    let Some(dash) = after.find("--") else {
        return false;
    };
    if after[dash + 2..].trim().is_empty() {
        return false; // a reason is mandatory
    }
    ids.split(',').any(|s| s.trim() == id)
}

/// Suppression applies on the violation's own line or the line above.
pub(crate) fn is_suppressed(comments: &HashMap<usize, String>, line: usize, lint: Lint) -> bool {
    [line, line.saturating_sub(1)]
        .iter()
        .filter(|&&l| l > 0)
        .any(|l| {
            comments
                .get(l)
                .is_some_and(|t| comment_allows(t, lint.id()))
        })
}

/// File-level scope directives for the per-line lints.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Scope {
    /// Lints applying to decode-named fns of the file.
    pub decode_named: Vec<Lint>,
    /// Lints applying to every non-test fn of the file.
    pub all_fns: Vec<Lint>,
}

impl Scope {
    fn is_empty(&self) -> bool {
        self.decode_named.is_empty() && self.all_fns.is_empty()
    }
}

/// Parses every `szhi-analyzer: scope(<lint>[: all][, ...])` directive in
/// a file's comments.
pub fn parse_scope(comments: &HashMap<usize, String>) -> Scope {
    let mut scope = Scope::default();
    for text in comments.values() {
        let mut rest = text.as_str();
        while let Some(p) = rest.find(SCOPE_MARKER) {
            rest = &rest[p + SCOPE_MARKER.len()..];
            let Some(close) = rest.find(')') else {
                break;
            };
            for part in rest[..close].split(',') {
                let part = part.trim();
                let (id, all) = match part.split_once(':') {
                    Some((id, modifier)) => (id.trim(), modifier.trim() == "all"),
                    None => (part, false),
                };
                if let Some(lint) = Lint::from_id(id) {
                    let bucket = if all {
                        &mut scope.all_fns
                    } else {
                        &mut scope.decode_named
                    };
                    if !bucket.contains(&lint) {
                        bucket.push(lint);
                    }
                }
            }
            rest = &rest[close..];
        }
    }
    scope
}

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

fn is_vendor_path(rel: &str) -> bool {
    rel.starts_with("vendor/")
}

/// Integration-test files: every byte is test code.
fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|c| c == "tests")
}

/// Files that are not library code (tests, benches, examples).
fn is_nonlib_path(rel: &str) -> bool {
    rel.split('/')
        .any(|c| matches!(c, "tests" | "benches" | "examples"))
}

/// First-party library source (in scope for L5's construction leg).
fn is_first_party_lib(rel: &str) -> bool {
    !is_vendor_path(rel)
        && !is_nonlib_path(rel)
        && (rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/")))
}

/// The always-on decode-path scope of L2/L3: `szhi-codec` and the
/// container modules of `szhi-core`. Other files opt in via a
/// `szhi-analyzer: scope(...)` directive.
fn in_decode_scope(rel: &str) -> bool {
    rel.starts_with("crates/codec/src/")
        || rel == "crates/core/src/format.rs"
        || rel == "crates/core/src/stream.rs"
}

/// Function-name keywords that mark a function as a decode path. Matched as
/// substrings of the function name; encode-side names (`encode`, `compress`,
/// `pack`, `finish`, …) deliberately match none of them.
const DECODE_FN_KEYWORDS: &[&str] = &[
    "decode",
    "decompress",
    "unpack",
    "unpass",
    "read",
    "parse",
    "validate",
    "verif",
    "restore",
    "take",
    "peek",
    "refill",
    "consume",
    "fetch",
    "resolve",
    "get_",
    "from_bytes",
    "stream_version",
    "reject",
    "expect_chunked",
    "checked_count",
];

fn is_decode_fn(name: &str) -> bool {
    DECODE_FN_KEYWORDS.iter().any(|k| name.contains(k))
}

/// Keywords that can directly precede a `[` without it being an index
/// expression (array/slice literals and patterns).
const PRE_BRACKET_KEYWORDS: &[&str] = &[
    "return", "break", "in", "else", "match", "if", "while", "let", "mut", "ref", "move", "for",
    "loop", "as", "dyn", "where", "impl", "const", "static",
];

/// Heuristic: `[` is an index expression if it directly follows an
/// identifier, `)`, `]` or `?` (rustfmt leaves no space there), and the
/// preceding identifier is not a keyword.
pub(crate) fn is_index_expr(code: &[u8], pos: usize) -> bool {
    if pos == 0 {
        return false;
    }
    let prev = code[pos - 1];
    if prev == b')' || prev == b']' || prev == b'?' {
        return true;
    }
    if !is_ident_byte(prev) {
        return false;
    }
    let mut s = pos - 1;
    while s > 0 && is_ident_byte(code[s - 1]) {
        s -= 1;
    }
    let ident = String::from_utf8_lossy(&code[s..pos]);
    !PRE_BRACKET_KEYWORDS.contains(&ident.as_ref())
}

/// Whether the parenthesised argument list opening at `open` contains
/// `needle` (used to accept `with_capacity(decode_capacity(...))`).
fn paren_contains(code: &[u8], open: usize, needle: &[u8]) -> bool {
    if code.get(open) != Some(&b'(') {
        return false;
    }
    let mut depth = 0usize;
    let mut end = open;
    for (k, &b) in code.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    end = k;
                    break;
                }
            }
            _ => {}
        }
    }
    find(&code[..end], needle, open).is_some()
}

// ---------------------------------------------------------------------------
// Per-file lints: L1 no-unsafe, L2 no-panic-decode, L3 capped-alloc
// ---------------------------------------------------------------------------

/// A named function and the byte range of its body (braces inclusive).
struct FnRegion {
    name: String,
    start: usize,
    end: usize,
}

fn fn_regions(code: &[u8]) -> Vec<FnRegion> {
    let n = code.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < n {
        if !is_ident_byte(code[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < n && is_ident_byte(code[i]) {
            i += 1;
        }
        if &code[start..i] != b"fn" {
            continue;
        }
        let mut j = i;
        while j < n && (code[j] == b' ' || code[j] == b'\n') {
            j += 1;
        }
        let name_start = j;
        while j < n && is_ident_byte(code[j]) {
            j += 1;
        }
        if j == name_start {
            continue; // `fn(...)` pointer type: no name, no body to track
        }
        let name = String::from_utf8_lossy(&code[name_start..j]).into_owned();
        // Scan for the body `{`, skipping `;` inside `[u8; 4]`-style types.
        let mut depth = 0i32;
        let mut k = j;
        while k < n {
            match code[k] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    if let Some(close) = match_brace(code, k) {
                        out.push(FnRegion {
                            name,
                            start: k,
                            end: close,
                        });
                    }
                    break;
                }
                b';' if depth == 0 => break, // trait method declaration
                _ => {}
            }
            k += 1;
        }
        i = j;
    }
    out
}

/// The innermost function body containing `pos`.
fn enclosing_fn(fns: &[FnRegion], pos: usize) -> Option<&FnRegion> {
    fns.iter()
        .filter(|f| pos >= f.start && pos <= f.end)
        .min_by_key(|f| f.end - f.start)
}

/// Runs the per-file lints (L1, L2, L3) over one source file. `rel` is the
/// workspace-relative `/`-separated path, which selects the applicable
/// scopes (vendor for L1, decode modules plus `scope(...)` directives for
/// L2/L3).
pub fn lint_file(rel: &str, source: &str) -> Vec<Violation> {
    let lexed = lex(source);
    let code = &lexed.code;
    let starts = line_starts(code);
    let tests = test_regions(code);
    let fns = fn_regions(code);
    let vendor = is_vendor_path(rel);
    let scope = parse_scope(&lexed.comments);
    let legacy_decode = in_decode_scope(rel) && !is_test_path(rel);
    let scan_decode = (legacy_decode || !scope.is_empty()) && !is_test_path(rel);
    let mut out = Vec::new();
    let push = |out: &mut Vec<Violation>, lint: Lint, pos: usize, message: String| {
        let line = line_of(&starts, pos);
        if !is_suppressed(&lexed.comments, line, lint) {
            out.push(Violation {
                lint,
                file: rel.to_string(),
                line,
                message,
                notes: Vec::new(),
            });
        }
    };

    // L1: `unsafe` tokens.
    let mut i = 0usize;
    while i < code.len() {
        if !is_ident_byte(code[i]) {
            i += 1;
            continue;
        }
        let s = i;
        while i < code.len() && is_ident_byte(code[i]) {
            i += 1;
        }
        if &code[s..i] != b"unsafe" {
            continue;
        }
        if !vendor {
            push(
                &mut out,
                Lint::NoUnsafe,
                s,
                "`unsafe` is forbidden outside vendor/".to_string(),
            );
        } else {
            let line = line_of(&starts, s);
            let documented = (line.saturating_sub(3)..=line).any(|l| {
                lexed
                    .comments
                    .get(&l)
                    .is_some_and(|t| t.contains("SAFETY:"))
            });
            if !documented {
                push(
                    &mut out,
                    Lint::NoUnsafe,
                    s,
                    "`unsafe` in vendor/ without a `// SAFETY:` comment".to_string(),
                );
            }
        }
    }

    // L2 + L3: decode-path scans (legacy path list plus scope directives).
    if scan_decode {
        let mut i = 0usize;
        while i < code.len() {
            let at_ident = i == 0 || !is_ident_byte(code[i - 1]);
            let hit: Option<(Lint, String)> = if code[i..].starts_with(b".unwrap()") {
                Some((Lint::NoPanicDecode, "call to `.unwrap()`".to_string()))
            } else if code[i..].starts_with(b".expect(") {
                Some((Lint::NoPanicDecode, "call to `.expect(...)`".to_string()))
            } else if at_ident && code[i..].starts_with(b"panic!") {
                Some((Lint::NoPanicDecode, "`panic!` invocation".to_string()))
            } else if at_ident && code[i..].starts_with(b"unreachable!") {
                Some((Lint::NoPanicDecode, "`unreachable!` invocation".to_string()))
            } else if code[i] == b'[' && is_index_expr(code, i) {
                Some((
                    Lint::NoPanicDecode,
                    "slice/array indexing (use `.get()` and return a typed error)".to_string(),
                ))
            } else if at_ident
                && code[i..].starts_with(b"with_capacity(")
                && !paren_contains(code, i + 13, b"decode_capacity")
            {
                Some((
                    Lint::CappedAlloc,
                    "`with_capacity` not routed through `decode_capacity`".to_string(),
                ))
            } else if code[i..].starts_with(b".reserve(")
                && !paren_contains(code, i + 8, b"decode_capacity")
            {
                Some((
                    Lint::CappedAlloc,
                    "`reserve` not routed through `decode_capacity`".to_string(),
                ))
            } else {
                None
            };
            if let Some((lint, message)) = hit {
                if !in_regions(&tests, i) {
                    if let Some(f) = enclosing_fn(&fns, i) {
                        let decode_scoped = (legacy_decode || scope.decode_named.contains(&lint))
                            && is_decode_fn(&f.name);
                        if decode_scoped {
                            let message = format!("{message} in decode path `{}`", f.name);
                            push(&mut out, lint, i, message);
                        } else if scope.all_fns.contains(&lint) {
                            let message = format!("{message} in `{}`", f.name);
                            push(&mut out, lint, i, message);
                        }
                    }
                }
            }
            i += 1;
        }
    }

    out
}

// ---------------------------------------------------------------------------
// L4: spec-drift between format.rs and docs/FORMAT.md
// ---------------------------------------------------------------------------

enum ConstValue {
    Bytes(String),
    Int(u64),
}

/// Parses `pub const NAME: T = VALUE;` where VALUE is `*b"..."`, `b"..."`
/// or an integer literal. Returns `None` for anything else.
fn parse_const_line(line: &str) -> Option<(String, ConstValue)> {
    let p = line.find("const ")?;
    let t = &line[p + 6..];
    let colon = t.find(':')?;
    let name = t[..colon].trim();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
    {
        return None;
    }
    let eq = t.find('=')?;
    // The terminating `;` must be looked up after the `=`: array types like
    // `[u8; 4]` put a semicolon inside the type annotation.
    let semi = t[eq..].find(';')? + eq;
    let val = t[eq + 1..semi].trim();
    if let Some(s) = val.strip_prefix("*b\"").or_else(|| val.strip_prefix("b\"")) {
        let inner = s.strip_suffix('"')?;
        return Some((name.to_string(), ConstValue::Bytes(inner.to_string())));
    }
    let digits: String = val.chars().filter(|c| *c != '_').collect();
    digits
        .parse::<u64>()
        .ok()
        .map(|v| (name.to_string(), ConstValue::Int(v)))
}

fn contains_word(hay: &str, needle: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0usize;
    while let Some(p) = hay.get(from..).and_then(|h| h.find(needle)) {
        let abs = from + p;
        let before_ok = abs == 0 || !bytes[abs - 1].is_ascii_alphanumeric();
        let after = bytes.get(abs + needle.len());
        let after_ok = !matches!(after, Some(b) if b.is_ascii_alphanumeric());
        if before_ok && after_ok {
            return true;
        }
        from = abs + 1;
    }
    false
}

fn md_states_size(md: &str, n: u64) -> bool {
    [
        format!("{n} bytes"),
        format!("{n}-byte"),
        format!("× {n}"),
        format!("{n} B"),
    ]
    .iter()
    .any(|p| md.contains(p.as_str()))
}

/// Cross-checks the constants declared in `format.rs` (raw source, so the
/// magic string literals are visible) against the prose of `docs/FORMAT.md`:
/// magics must appear quoted, sizes as `N bytes`/`N-byte`/`× N`/`N B`,
/// version bytes as `vN`.
pub fn lint_spec_drift(format_rs: &str, format_md: &str) -> Vec<Violation> {
    const FORMAT_RS: &str = "crates/core/src/format.rs";
    let comments = lex(format_rs).comments;
    let mut out = Vec::new();
    let push = |out: &mut Vec<Violation>, line: usize, message: String| {
        if !is_suppressed(&comments, line, Lint::SpecDrift) {
            out.push(Violation {
                lint: Lint::SpecDrift,
                file: FORMAT_RS.to_string(),
                line,
                message,
                notes: Vec::new(),
            });
        }
    };
    let mut extracted = 0usize;
    for (idx, raw) in format_rs.lines().enumerate() {
        let line_no = idx + 1;
        let Some((name, value)) = parse_const_line(raw) else {
            continue;
        };
        match value {
            ConstValue::Bytes(s) if name.contains("MAGIC") => {
                extracted += 1;
                let quoted = format!("\"{s}\"");
                if !format_md.contains(&quoted) {
                    push(
                        &mut out,
                        line_no,
                        format!(
                            "docs/FORMAT.md does not state the magic {quoted} declared by `{name}`"
                        ),
                    );
                }
            }
            ConstValue::Int(v) if name.contains("SIZE") => {
                extracted += 1;
                if !md_states_size(format_md, v) {
                    push(
                        &mut out,
                        line_no,
                        format!("docs/FORMAT.md does not state the size {v} declared by `{name}`"),
                    );
                }
            }
            ConstValue::Int(v) if name.starts_with("VERSION") => {
                extracted += 1;
                if !contains_word(format_md, &format!("v{v}")) {
                    push(
                        &mut out,
                        line_no,
                        format!("docs/FORMAT.md does not mention v{v} declared by `{name}`"),
                    );
                }
            }
            _ => {}
        }
    }
    if extracted == 0 {
        out.push(Violation {
            lint: Lint::SpecDrift,
            file: FORMAT_RS.to_string(),
            line: 1,
            message: "no magic/size/version constants could be extracted from format.rs"
                .to_string(),
            notes: Vec::new(),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// L4 (cli leg): args.rs cross-checked against docs/CLI.md
// ---------------------------------------------------------------------------

/// Whether `md` mentions `flag` as a whole token (`--chunk` must not be
/// satisfied by `--chunk-span`).
fn contains_flag(md: &str, flag: &str) -> bool {
    let bytes = md.as_bytes();
    let mut from = 0usize;
    while let Some(p) = md.get(from..).and_then(|h| h.find(flag)) {
        let abs = from + p;
        let after = bytes.get(abs + flag.len());
        let after_ok = !matches!(after, Some(b) if b.is_ascii_lowercase() || *b == b'-');
        if after_ok {
            return true;
        }
        from = abs + 1;
    }
    false
}

/// Cross-checks the CLI surface declared in `crates/cli/src/args.rs`
/// against `docs/CLI.md`: every dispatched subcommand, every `"--flag"`
/// literal and every exit code on the `exit codes:` usage line must be
/// stated in the doc (same word-boundary rules as the FORMAT.md pass).
pub fn lint_cli_drift(args_rs: &str, cli_md: &str) -> Vec<Violation> {
    const ARGS_RS: &str = "crates/cli/src/args.rs";
    let comments = lex(args_rs).comments;
    let mut out = Vec::new();
    let push = |out: &mut Vec<Violation>, line: usize, message: String| {
        if !is_suppressed(&comments, line, Lint::SpecDrift) {
            out.push(Violation {
                lint: Lint::SpecDrift,
                file: ARGS_RS.to_string(),
                line,
                message,
                notes: Vec::new(),
            });
        }
    };
    let mut subcommands = 0usize;
    let mut flags_seen: Vec<String> = Vec::new();
    for (idx, raw) in args_rs.lines().enumerate() {
        let line_no = idx + 1;
        // Subcommand dispatch arms: `"encode" => parse_encode(...)`.
        if let Some(arrow) = raw.find("\" => parse_") {
            let head = &raw[..arrow];
            if let Some(open) = head.rfind('"') {
                let name = &head[open + 1..];
                if !name.is_empty()
                    && name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
                {
                    subcommands += 1;
                    if !contains_word(cli_md, name) {
                        push(
                            &mut out,
                            line_no,
                            format!("docs/CLI.md does not document the `{name}` subcommand"),
                        );
                    }
                }
            }
        }
        // Exact `"--flag"` string literals (match arms and alias lists).
        let mut from = 0usize;
        while let Some(p) = raw.get(from..).and_then(|h| h.find("\"--")) {
            let abs = from + p;
            let rest = &raw[abs + 1..];
            let end = rest
                .char_indices()
                .find(|(_, c)| !(c.is_ascii_lowercase() || *c == '-'))
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            let flag = &rest[..end];
            if rest[end..].starts_with('"')
                && flag.len() > 2
                && !flags_seen.contains(&flag.to_string())
            {
                flags_seen.push(flag.to_string());
                if !contains_flag(cli_md, flag) {
                    push(
                        &mut out,
                        line_no,
                        format!("docs/CLI.md does not document the `{flag}` flag"),
                    );
                }
            }
            from = abs + 3;
        }
        // Exit codes from the usage text's `exit codes:` line.
        if let Some(p) = raw.find("exit codes:") {
            let codes: Vec<String> = raw[p..]
                .chars()
                .filter(|c| c.is_ascii_digit())
                .map(|c| c.to_string())
                .collect();
            if !codes.is_empty() {
                subcommands += 1; // the usage line counts as extractable surface
            }
            for code in codes {
                if !contains_word(cli_md, &code) {
                    push(
                        &mut out,
                        line_no,
                        format!("docs/CLI.md does not state exit code {code}"),
                    );
                }
            }
        }
    }
    if subcommands == 0 && flags_seen.is_empty() {
        out.push(Violation {
            lint: Lint::SpecDrift,
            file: ARGS_RS.to_string(),
            line: 1,
            message: "no subcommands/flags/exit codes could be extracted from args.rs".to_string(),
            notes: Vec::new(),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// L5: SzhiError variant coverage
// ---------------------------------------------------------------------------

/// Variant names (with byte positions) of `pub enum <name>` in lexed code.
fn extract_enum_variants(code: &[u8], enum_name: &str) -> Option<Vec<(String, usize)>> {
    let pat = format!("pub enum {enum_name}");
    let p = find(code, pat.as_bytes(), 0)?;
    let open = (p..code.len()).find(|&k| code[k] == b'{')?;
    let close = match_brace(code, open)?;
    let mut variants = Vec::new();
    let mut depth = 0usize;
    let mut expect_name = true;
    let mut i = open + 1;
    while i < close {
        match code[i] {
            b'{' | b'(' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b')' | b']' => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            b',' if depth == 0 => {
                expect_name = true;
                i += 1;
            }
            b'#' => {
                // Skip an attribute: `#[...]`.
                if code.get(i + 1) == Some(&b'[') {
                    let mut d = 0usize;
                    let mut k = i + 1;
                    while k < close {
                        match code[k] {
                            b'[' => d += 1,
                            b']' => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    i = k + 1;
                } else {
                    i += 1;
                }
            }
            b if is_ident_byte(b) && depth == 0 => {
                let s = i;
                while i < close && is_ident_byte(code[i]) {
                    i += 1;
                }
                if expect_name {
                    variants.push((String::from_utf8_lossy(&code[s..i]).into_owned(), s));
                    expect_name = false;
                }
            }
            _ => i += 1,
        }
    }
    Some(variants)
}

/// Checks that every `SzhiError` variant is (a) constructed/named in
/// first-party library code outside its defining file, and (b) asserted by
/// name inside at least one test (a `#[cfg(test)]` region or a `tests/`
/// file). `files` maps workspace-relative paths to file contents.
pub fn lint_error_coverage(files: &[(String, String)]) -> Vec<Violation> {
    struct Prepped {
        rel: String,
        code: Vec<u8>,
        tests: Vec<(usize, usize)>,
        whole_test: bool,
    }
    let prepped: Vec<Prepped> = files
        .iter()
        .filter(|(rel, _)| !is_vendor_path(rel))
        .map(|(rel, src)| {
            let code = lex(src).code;
            let tests = test_regions(&code);
            Prepped {
                rel: rel.clone(),
                tests,
                whole_test: is_test_path(rel),
                code,
            }
        })
        .collect();

    // Locate the enum definition.
    let mut enum_rel = None;
    let mut variants: Vec<(String, usize)> = Vec::new();
    let mut enum_comments = HashMap::new();
    for (rel, src) in files {
        if !is_first_party_lib(rel) {
            continue;
        }
        let lexed = lex(src);
        if let Some(vs) = extract_enum_variants(&lexed.code, "SzhiError") {
            let starts = line_starts(&lexed.code);
            variants = vs
                .into_iter()
                .map(|(name, pos)| (name, line_of(&starts, pos)))
                .collect();
            enum_rel = Some(rel.clone());
            enum_comments = lexed.comments;
            break;
        }
    }
    let Some(enum_rel) = enum_rel else {
        return vec![Violation {
            lint: Lint::ErrorCoverage,
            file: "crates/core/src/error.rs".to_string(),
            line: 1,
            message: "no `pub enum SzhiError` found in first-party library code".to_string(),
            notes: Vec::new(),
        }];
    };

    let mentions = |p: &Prepped, variant: &str, want_test: bool| -> bool {
        let pat = format!("SzhiError::{variant}");
        let pb = pat.as_bytes();
        let mut from = 0usize;
        while let Some(pos) = find(&p.code, pb, from) {
            let boundary = p
                .code
                .get(pos + pb.len())
                .is_none_or(|b| !is_ident_byte(*b));
            if boundary {
                let in_test = p.whole_test || in_regions(&p.tests, pos);
                if in_test == want_test {
                    return true;
                }
            }
            from = pos + 1;
        }
        false
    };

    let mut out = Vec::new();
    for (variant, line) in &variants {
        let constructed = prepped
            .iter()
            .filter(|p| is_first_party_lib(&p.rel) && p.rel != enum_rel)
            .any(|p| mentions(p, variant, false));
        let tested = prepped.iter().any(|p| mentions(p, variant, true));
        let mut push = |message: String| {
            if !is_suppressed(&enum_comments, *line, Lint::ErrorCoverage) {
                out.push(Violation {
                    lint: Lint::ErrorCoverage,
                    file: enum_rel.clone(),
                    line: *line,
                    message,
                    notes: Vec::new(),
                });
            }
        };
        if !constructed {
            push(format!(
                "`SzhiError::{variant}` is never constructed in library code outside {enum_rel}"
            ));
        }
        if !tested {
            push(format!(
                "`SzhiError::{variant}` is never asserted by name in any test"
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L5 (cli leg): every usage-error message in args.rs pinned by a test
// ---------------------------------------------------------------------------

/// Reads a Rust string literal starting at the `"` at `pos` in raw
/// source, resolving `\"`, `\\`, `\n`, `\t` and backslash-newline
/// continuations. Returns the decoded content.
fn read_string_literal(src: &[u8], pos: usize) -> Option<String> {
    if src.get(pos) != Some(&b'"') {
        return None;
    }
    let mut out = String::new();
    let mut i = pos + 1;
    while i < src.len() {
        match src[i] {
            b'"' => return Some(out),
            b'\\' => {
                i += 1;
                match src.get(i)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'\n' => {
                        // Line continuation: skip the newline and the
                        // indentation that follows.
                        i += 1;
                        while matches!(src.get(i), Some(b' ') | Some(b'\t')) {
                            i += 1;
                        }
                        continue;
                    }
                    &b => out.push(b as char),
                }
                i += 1;
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    None
}

/// The longest literal segment of a format string, between `{...}`
/// placeholders (`{{`/`}}` decoded as literal braces).
fn longest_literal_segment(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut segments: Vec<String> = vec![String::new()];
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' if bytes.get(i + 1) == Some(&b'{') => {
                if let Some(seg) = segments.last_mut() {
                    seg.push('{');
                }
                i += 2;
            }
            b'}' if bytes.get(i + 1) == Some(&b'}') => {
                if let Some(seg) = segments.last_mut() {
                    seg.push('}');
                }
                i += 2;
            }
            b'{' => {
                // A placeholder: skip to the matching `}` and start a new
                // segment.
                while i < bytes.len() && bytes[i] != b'}' {
                    i += 1;
                }
                i += 1;
                segments.push(String::new());
            }
            b => {
                if let Some(seg) = segments.last_mut() {
                    seg.push(b as char);
                }
                i += 1;
            }
        }
    }
    segments
        .into_iter()
        .map(|seg| seg.trim().to_string())
        .max_by_key(|seg| seg.len())
        .unwrap_or_default()
}

/// L5 cli leg: every `usage(...)` error message constructed in
/// `crates/cli/src/args.rs` must be pinned by a test — its longest
/// literal segment must appear verbatim inside test code somewhere in the
/// workspace (the args.rs test table asserting exit code 2 and the
/// message text). Messages too short to pin robustly (< 8 chars of
/// literal text) are skipped.
pub fn lint_usage_pins(files: &[(String, String)]) -> Vec<Violation> {
    const ARGS_RS: &str = "crates/cli/src/args.rs";
    let Some((_, args_src)) = files.iter().find(|(rel, _)| rel == ARGS_RS) else {
        return Vec::new(); // no cli crate in this tree: nothing to pin
    };
    let lexed = lex(args_src);
    let starts = line_starts(&lexed.code);
    let tests = test_regions(&lexed.code);
    let raw = args_src.as_bytes();

    // Collect the usage messages: `usage("...")` / `usage(format!("..."))`
    // call sites outside test code. Blanking preserves byte offsets, so
    // positions found in lexed code index the raw source directly.
    let mut messages: Vec<(usize, String)> = Vec::new(); // (line, segment)
    let mut from = 0usize;
    while let Some(p) = find(&lexed.code, b"usage(", from) {
        from = p + 1;
        if (p > 0 && is_ident_byte(lexed.code[p - 1])) || in_regions(&tests, p) {
            continue; // an identifier tail (`USAGE(`-like) or test code
        }
        // Skip the definition `fn usage(msg: String)`.
        if let Some((pp, prev)) = lexer::prev_nonspace(&lexed.code, p) {
            if is_ident_byte(prev) {
                if let Some((_, word)) = lexer::ident_before(&lexed.code, pp + 1) {
                    if word == b"fn" {
                        continue;
                    }
                }
            }
        }
        // Find the string literal: directly, or behind `format!(`.
        let mut q = p + 6;
        while matches!(raw.get(q), Some(b' ') | Some(b'\n') | Some(b'\t')) {
            q += 1;
        }
        if raw[q..].starts_with(b"format!(") {
            q += 8;
            while matches!(raw.get(q), Some(b' ') | Some(b'\n') | Some(b'\t')) {
                q += 1;
            }
        }
        let Some(content) = read_string_literal(raw, q) else {
            continue; // not a literal (e.g. `usage(msg)` forwarding)
        };
        let segment = longest_literal_segment(&content);
        if segment.len() >= 8 {
            messages.push((line_of(&starts, p), segment));
        }
    }

    // A message is pinned when its segment appears inside test code.
    let pinned = |segment: &str| -> bool {
        files.iter().any(|(rel, src)| {
            if is_vendor_path(rel) {
                return false;
            }
            let whole_test = is_test_path(rel);
            let code = lex(src).code;
            let regions = test_regions(&code);
            let mut from = 0usize;
            // Search the raw source: the segment lives inside test string
            // literals, which the lexer blanks.
            while let Some(pos) = find(src.as_bytes(), segment.as_bytes(), from) {
                if whole_test || in_regions(&regions, pos) {
                    return true;
                }
                from = pos + 1;
            }
            false
        })
    };

    let mut out = Vec::new();
    for (line, segment) in messages {
        if is_suppressed(&lexed.comments, line, Lint::ErrorCoverage) {
            continue;
        }
        if !pinned(&segment) {
            out.push(Violation {
                lint: Lint::ErrorCoverage,
                file: ARGS_RS.to_string(),
                line,
                message: format!(
                    "usage-error message \"{segment}\" has no test pinning its exit code and text"
                ),
                notes: Vec::new(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// A full analysis result: summary metrics plus the findings.
pub struct AnalysisReport {
    /// Function-table and call-graph statistics.
    pub metrics: Metrics,
    /// All findings, sorted by file, line and lint.
    pub violations: Vec<Violation>,
}

/// Walks a workspace root and runs the selected lints.
pub struct Analyzer {
    root: PathBuf,
    lints: Vec<Lint>,
}

impl Analyzer {
    /// An analyzer running every lint.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Analyzer {
            root: root.into(),
            lints: Lint::ALL.to_vec(),
        }
    }

    /// An analyzer restricted to `lints`.
    pub fn with_lints(root: impl Into<PathBuf>, lints: Vec<Lint>) -> Self {
        Analyzer {
            root: root.into(),
            lints,
        }
    }

    /// Runs the lints over every `.rs` file under the root (skipping
    /// `target/`, `.git/` and fixture directories). Violations are sorted
    /// by file, line and lint.
    pub fn run(&self) -> io::Result<Vec<Violation>> {
        self.run_report().map(|r| r.violations)
    }

    /// Like [`Analyzer::run`], also returning the summary metrics.
    pub fn run_report(&self) -> io::Result<AnalysisReport> {
        let mut files: Vec<(String, String)> = Vec::new();
        collect_rs(&self.root, &self.root, &mut files)?;
        files.sort();
        let mut out = Vec::new();
        for (rel, src) in &files {
            out.extend(
                lint_file(rel, src)
                    .into_iter()
                    .filter(|v| self.lints.contains(&v.lint)),
            );
        }
        if self.lints.contains(&Lint::SpecDrift) {
            let format_rs = files
                .iter()
                .find(|(rel, _)| rel == "crates/core/src/format.rs");
            let format_md = fs::read_to_string(self.root.join("docs/FORMAT.md"));
            match (format_rs, format_md) {
                (Some((_, src)), Ok(md)) => out.extend(lint_spec_drift(src, &md)),
                _ => out.push(Violation {
                    lint: Lint::SpecDrift,
                    file: "docs/FORMAT.md".to_string(),
                    line: 1,
                    message: "format.rs or docs/FORMAT.md not found; cannot cross-check the spec"
                        .to_string(),
                    notes: Vec::new(),
                }),
            }
            let args_rs = files
                .iter()
                .find(|(rel, _)| rel == "crates/cli/src/args.rs");
            let cli_md = fs::read_to_string(self.root.join("docs/CLI.md"));
            match (args_rs, cli_md) {
                (Some((_, src)), Ok(md)) => out.extend(lint_cli_drift(src, &md)),
                _ => out.push(Violation {
                    lint: Lint::SpecDrift,
                    file: "docs/CLI.md".to_string(),
                    line: 1,
                    message: "args.rs or docs/CLI.md not found; cannot cross-check the CLI doc"
                        .to_string(),
                    notes: Vec::new(),
                }),
            }
        }
        if self.lints.contains(&Lint::ErrorCoverage) {
            out.extend(lint_error_coverage(&files));
            out.extend(lint_usage_pins(&files));
        }

        // The call-graph lints: L6/L7 over first-party code, L8 over the
        // vendored pool.
        let first_party: Vec<(String, String)> = files
            .iter()
            .filter(|(rel, _)| !is_vendor_path(rel))
            .cloned()
            .collect();
        let ws = Workspace::from_sources(&first_party);
        let cg = graph::CallGraph::build(&ws);
        let vendor_files: Vec<(String, String)> = files
            .iter()
            .filter(|(rel, _)| rel.starts_with("vendor/rayon/"))
            .cloned()
            .collect();
        let vws = Workspace::from_sources(&vendor_files);
        let vcg = graph::CallGraph::build(&vws);
        let metrics = Metrics {
            files: files.len(),
            functions: ws.fns.len() + vws.fns.len(),
            calls: cg.calls + vcg.calls,
            resolved_edges: cg.resolved_edges + vcg.resolved_edges,
            unresolved_calls: cg.unresolved_calls + vcg.unresolved_calls,
            panic_roots: graph::l6_roots(&ws).len(),
            alloc_roots: graph::l7_roots(&ws).len(),
        };
        if self.lints.contains(&Lint::PanicReachability) {
            out.extend(graph::lint_panic_reachability(&ws, &cg));
        }
        if self.lints.contains(&Lint::SteadyAlloc) {
            out.extend(graph::lint_steady_alloc(&ws, &cg));
        }
        if self.lints.contains(&Lint::PoolInvariant) {
            out.extend(graph::lint_pool_invariants(&vws, &vcg));
        }

        out.sort_by(|a, b| (&a.file, a.line, a.lint.id()).cmp(&(&b.file, b.line, b.lint.id())));
        Ok(AnalysisReport {
            metrics,
            violations: out,
        })
    }
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "target" | ".git" | "fixtures" | "node_modules"
            ) {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if let Ok(src) = fs::read_to_string(&path) {
                out.push((rel, src));
            }
        }
    }
    Ok(())
}
