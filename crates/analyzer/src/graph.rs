//! The conservative call graph over the function table, and the three
//! transitive lints that walk it (L6 panic-reachability, L7 steady-state
//! allocation-freedom, L8 pool lock-ordering).
//!
//! Resolution is name-based with owner disambiguation, never type-based:
//! a method call through an unknown receiver links to *every* non-test
//! method of that name (over-approximation), while a call that matches no
//! candidate at all — macros, std/extern calls, arity mismatches — is
//! recorded as *unresolved* and counted in the metrics, never silently
//! dropped. See `docs/ANALYSIS.md` for the exact rules and what they do
//! and do not guarantee.

use crate::lexer::{ident_before, is_ident_byte, next_nonspace, prev_nonspace, skip_angles};
use crate::table::{is_keyword, FnItem, Workspace};
use crate::{is_suppressed, Lint, Violation};
use std::collections::HashMap;

/// How a call site was qualified in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Qualifier {
    /// `helper(...)` — a bare path.
    Bare,
    /// `self.helper(...)` — a method on the enclosing impl's type.
    SelfMethod,
    /// `expr.helper(...)` — a method on a receiver of unknown type.
    UnknownReceiver,
    /// `Type::helper(...)` — an associated function of a named type.
    Type(String),
    /// `Self::helper(...)`.
    SelfType,
    /// `module::helper(...)` — a lowercase path segment.
    Module(String),
    /// `helper!(...)` — a macro invocation (always unresolved).
    Macro,
}

/// One syntactic call site, attributed to its innermost enclosing fn.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the calling fn in [`Workspace::fns`].
    pub caller: usize,
    /// Callee name as written.
    pub name: String,
    /// Path/receiver context.
    pub qualifier: Qualifier,
    /// Byte position of the callee name.
    pub pos: usize,
    /// 1-based line.
    pub line: usize,
    /// Top-level comma count + 1 in the argument list (0 when empty).
    pub args: usize,
    /// Whether the argument list contains a `|` (a probable closure, which
    /// makes the comma count unreliable — arity filtering is skipped).
    pub has_closure: bool,
}

/// A resolved edge: caller fn → callee fn, at a call line.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee fn index.
    pub callee: usize,
    /// Byte position of the call in the caller's file.
    pub pos: usize,
    /// 1-based call line in the caller's file.
    pub line: usize,
}

/// The resolved call graph plus resolution metrics.
pub struct CallGraph {
    /// Outgoing edges per fn index, in call-site order.
    pub edges: Vec<Vec<Edge>>,
    /// Total call sites extracted from non-test code.
    pub calls: usize,
    /// Resolved edges (one site may produce several, conservatively).
    pub resolved_edges: usize,
    /// Sites with no candidate (macros, std/extern, arity mismatches).
    pub unresolved_calls: usize,
    /// Unresolved sites kept for inspection, in extraction order.
    pub unresolved: Vec<CallSite>,
}

impl CallGraph {
    /// Extracts and resolves every call site of every non-test fn.
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, f) in ws.fns.iter().enumerate() {
            if !f.is_test {
                by_name.entry(f.name.as_str()).or_default().push(i);
            }
        }
        let mut graph = CallGraph {
            edges: vec![Vec::new(); ws.fns.len()],
            calls: 0,
            resolved_edges: 0,
            unresolved_calls: 0,
            unresolved: Vec::new(),
        };
        for (fi, file) in ws.files.iter().enumerate() {
            if file.whole_test {
                continue;
            }
            for site in extract_calls(ws, fi) {
                graph.calls += 1;
                match resolve(ws, &by_name, &site) {
                    Some(callees) => {
                        for callee in callees {
                            graph.resolved_edges += 1;
                            graph.edges[site.caller].push(Edge {
                                callee,
                                pos: site.pos,
                                line: site.line,
                            });
                        }
                    }
                    None => {
                        graph.unresolved_calls += 1;
                        graph.unresolved.push(site);
                    }
                }
            }
        }
        graph
    }

    /// The distinct callees of one fn, in call order (test helper).
    pub fn callees(&self, fn_idx: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for e in &self.edges[fn_idx] {
            if !out.contains(&e.callee) {
                out.push(e.callee);
            }
        }
        out
    }
}

/// Extracts the call sites of one file, attributed to their innermost
/// enclosing non-test fn. Attribute ranges (`#[...]`) are skipped so
/// derive lists and cfg predicates do not read as calls.
fn extract_calls(ws: &Workspace, fi: usize) -> Vec<CallSite> {
    let file = &ws.files[fi];
    let code = &file.code;
    let n = code.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < n {
        let b = code[i];
        if b == b'#' && code.get(i + 1) == Some(&b'[') {
            let mut depth = 0usize;
            let mut k = i + 1;
            while k < n {
                match code[k] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            i = k + 1;
            continue;
        }
        if !is_ident_byte(b) || (i > 0 && is_ident_byte(code[i - 1])) {
            i += 1;
            continue;
        }
        let s = i;
        let mut e = i;
        while e < n && is_ident_byte(code[e]) {
            e += 1;
        }
        i = e;
        let name_bytes = &code[s..e];
        if is_keyword(name_bytes) || name_bytes == b"self" || name_bytes == b"Self" {
            continue;
        }
        // A definition, not a call: `fn name(...)`.
        if let Some((pp, prev)) = prev_nonspace(code, s) {
            if is_ident_byte(prev) {
                if let Some((_, word)) = ident_before(code, pp + 1) {
                    if word == b"fn" {
                        continue;
                    }
                }
            }
        }
        let Some((mut k, next)) = next_nonspace(code, e) else {
            break;
        };
        let mut qualifier = None;
        if next == b'!' {
            // `name!(...)` / `name![...]` / `name! {...}`: macro.
            if matches!(code.get(k + 1), Some(&b'(') | Some(&b'[') | Some(&b'{')) {
                qualifier = Some(Qualifier::Macro);
                k += 1;
            } else {
                continue;
            }
        } else {
            // Skip a turbofish between the name and the arguments.
            if next == b':' && code.get(k + 1) == Some(&b':') && code.get(k + 2) == Some(&b'<') {
                k = skip_angles(code, k + 2);
                match next_nonspace(code, k) {
                    Some((p, b'(')) => k = p,
                    _ => continue,
                }
            }
            if code.get(k) != Some(&b'(') {
                continue;
            }
        }
        let qualifier = qualifier.unwrap_or_else(|| classify_qualifier(code, s));
        let (args, has_closure) = count_args(code, k);
        let Some(caller) = ws.enclosing_fn(fi, s) else {
            continue;
        };
        if ws.fns[caller].is_test {
            continue;
        }
        out.push(CallSite {
            caller,
            name: String::from_utf8_lossy(name_bytes).into_owned(),
            qualifier,
            pos: s,
            line: file.line(s),
            args,
            has_closure,
        });
    }
    out
}

/// Classifies the path/receiver context of the callee name starting at `s`.
fn classify_qualifier(code: &[u8], s: usize) -> Qualifier {
    let Some((p, prev)) = prev_nonspace(code, s) else {
        return Qualifier::Bare;
    };
    if prev == b'.' {
        // Method call: `self.name(...)` vs anything else.
        if let Some((_, word)) = ident_before(code, p) {
            if word == b"self" {
                return Qualifier::SelfMethod;
            }
        }
        return Qualifier::UnknownReceiver;
    }
    if prev == b':' && p > 0 && code[p - 1] == b':' {
        // Qualified path: the segment before `::` (skipping a generic
        // argument list: `Vec::<u8>::new`).
        let mut q = p - 1;
        if q > 0 && code[q - 1] == b'>' {
            // Walk back over `<...>`.
            let mut depth = 0isize;
            let mut k = q - 1;
            loop {
                match code[k] {
                    b'>' => depth += 1,
                    b'<' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if k == 0 {
                    break;
                }
                k -= 1;
            }
            q = k;
        }
        if let Some((_, word)) = ident_before(code, q) {
            if word == b"Self" {
                return Qualifier::SelfType;
            }
            if word == b"self" || word == b"crate" || word == b"super" {
                return Qualifier::Bare;
            }
            let seg = String::from_utf8_lossy(word).into_owned();
            if seg.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                return Qualifier::Type(seg);
            }
            return Qualifier::Module(seg);
        }
        return Qualifier::Bare;
    }
    Qualifier::Bare
}

/// Counts top-level commas of an argument list opening at `open` and
/// reports whether a `|` (probable closure) appears at the top level.
fn count_args(code: &[u8], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut closure = false;
    let mut k = open;
    while k < code.len() {
        let b = code[k];
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            b':' if code.get(k + 1) == Some(&b':') && code.get(k + 2) == Some(&b'<') => {
                // Nested turbofish: its commas are generic args, not ours.
                k = skip_angles(code, k + 2);
                continue;
            }
            b',' if depth == 1 => commas += 1,
            b'|' if depth == 1 => closure = true,
            _ => {
                if depth == 1 && b != b' ' && b != b'\n' && b != b'\t' {
                    any = true;
                }
            }
        }
        k += 1;
    }
    (if any { commas + 1 } else { 0 }, closure)
}

/// Resolves one call site to its candidate callees, or `None` when the
/// site cannot be linked to any non-test fn (recorded as unresolved).
fn resolve(
    ws: &Workspace,
    by_name: &HashMap<&str, Vec<usize>>,
    site: &CallSite,
) -> Option<Vec<usize>> {
    if site.qualifier == Qualifier::Macro {
        return None;
    }
    let base = by_name.get(site.name.as_str())?;
    let caller = &ws.fns[site.caller];
    let pick = |pred: &dyn Fn(&FnItem) -> bool| -> Vec<usize> {
        base.iter().copied().filter(|&c| pred(&ws.fns[c])).collect()
    };
    let candidates: Vec<usize> = match &site.qualifier {
        Qualifier::Macro => return None,
        Qualifier::Type(t) => pick(&|f| f.owner.as_deref() == Some(t.as_str())),
        Qualifier::SelfType => {
            let owner = caller.owner.clone()?;
            pick(&|f| f.owner.as_deref() == Some(owner.as_str()))
        }
        Qualifier::SelfMethod => {
            let owner = caller.owner.clone()?;
            pick(&|f| f.owner.as_deref() == Some(owner.as_str()))
        }
        Qualifier::UnknownReceiver => pick(&|f| f.has_self),
        Qualifier::Module(m) => {
            let stem_match = pick(&|f| {
                f.owner.is_none() && !f.has_self && file_stem(&ws.files[f.file].rel) == m.as_str()
            });
            if stem_match.is_empty() {
                pick(&|f| f.owner.is_none() && !f.has_self)
            } else {
                stem_match
            }
        }
        Qualifier::Bare => {
            // A local `fn` defined inside the caller's own body shadows
            // file- and workspace-level free fns.
            let local: Vec<usize> = base
                .iter()
                .copied()
                .filter(|&c| {
                    let f = &ws.fns[c];
                    c != site.caller
                        && f.file == caller.file
                        && f.body.0 > caller.body.0
                        && f.body.1 < caller.body.1
                })
                .collect();
            if local.is_empty() {
                pick(&|f| f.owner.is_none() && !f.has_self)
            } else {
                local
            }
        }
    };
    if candidates.is_empty() {
        return None;
    }
    // Arity narrowing: keep exact-arity candidates when the argument count
    // is trustworthy (no closure in the list). A site whose count matches
    // no candidate is unresolved — the callee is a std/extern fn that
    // happens to share a first-party name.
    if site.has_closure {
        return Some(candidates);
    }
    // A path-qualified method call (`Type::method(recv, ...)`) passes the
    // receiver as an explicit first argument, so a `has_self` candidate's
    // effective arity is `params + 1` there.
    let path_qualified = matches!(site.qualifier, Qualifier::Type(_) | Qualifier::SelfType);
    let exact: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&c| {
            let f = &ws.fns[c];
            let expect = if f.has_self && path_qualified {
                f.params + 1
            } else {
                f.params
            };
            expect == site.args
        })
        .collect();
    if exact.is_empty() {
        None
    } else {
        Some(exact)
    }
}

fn file_stem(rel: &str) -> &str {
    rel.rsplit('/')
        .next()
        .unwrap_or(rel)
        .strip_suffix(".rs")
        .unwrap_or(rel)
}

// ---------------------------------------------------------------------------
// Reachability
// ---------------------------------------------------------------------------

/// How a fn was reached in a BFS: its parent fn and the call line.
#[derive(Debug, Clone, Copy)]
struct Via {
    parent: Option<usize>,
    call_line: usize,
}

/// Breadth-first reachability from `roots`, honouring suppressions: an
/// edge whose call line carries `allow(<lint>)` in the caller's file cuts
/// every chain through it. Returns the reached set with parent links.
fn bfs(ws: &Workspace, graph: &CallGraph, roots: &[usize], lint: Lint) -> HashMap<usize, Via> {
    let mut reached: HashMap<usize, Via> = HashMap::new();
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for &r in roots {
        if let std::collections::hash_map::Entry::Vacant(slot) = reached.entry(r) {
            slot.insert(Via {
                parent: None,
                call_line: 0,
            });
            queue.push_back(r);
        }
    }
    while let Some(f) = queue.pop_front() {
        let file = &ws.files[ws.fns[f].file];
        for e in &graph.edges[f] {
            if reached.contains_key(&e.callee) {
                continue;
            }
            if is_suppressed(&file.comments, e.line, lint) {
                continue; // the chain is cut at this call site
            }
            reached.insert(
                e.callee,
                Via {
                    parent: Some(f),
                    call_line: e.line,
                },
            );
            queue.push_back(e.callee);
        }
    }
    reached
}

/// The call chain root → … → `f`, rendered as note lines.
fn chain_notes(ws: &Workspace, reached: &HashMap<usize, Via>, f: usize) -> Vec<String> {
    let mut rev: Vec<(usize, usize)> = Vec::new(); // (fn, call_line into it)
    let mut cur = f;
    loop {
        let via = reached[&cur];
        rev.push((cur, via.call_line));
        match via.parent {
            Some(p) => cur = p,
            None => break,
        }
    }
    rev.reverse();
    let mut notes = Vec::with_capacity(rev.len());
    for (step, (fx, call_line)) in rev.iter().enumerate() {
        let item = &ws.fns[*fx];
        let rel = &ws.files[item.file].rel;
        if step == 0 {
            notes.push(format!(
                "entry `{}` ({rel}:{})",
                item.qualified(),
                item.line
            ));
        } else {
            let caller_rel = &ws.files[ws.fns[rev[step - 1].0].file].rel;
            notes.push(format!(
                "-> `{}` ({rel}:{}), called at {caller_rel}:{call_line}",
                item.qualified(),
                item.line
            ));
        }
    }
    notes
}

// ---------------------------------------------------------------------------
// Sites inside one fn body
// ---------------------------------------------------------------------------

/// A token of interest inside a fn body.
struct Site {
    pos: usize,
    line: usize,
    what: &'static str,
}

/// Byte ranges of fns nested inside `f`'s body (excluded from its scans).
fn nested_ranges(ws: &Workspace, f: usize) -> Vec<(usize, usize)> {
    let item = &ws.fns[f];
    ws.fns
        .iter()
        .filter(|g| g.file == item.file && g.body.0 > item.body.0 && g.body.1 < item.body.1)
        .map(|g| (g.body.0, g.body.1))
        .collect()
}

fn scan_sites(
    ws: &Workspace,
    f: usize,
    matcher: impl Fn(&[u8], usize) -> Option<&'static str>,
) -> Vec<Site> {
    let item = &ws.fns[f];
    let file = &ws.files[item.file];
    let code = &file.code;
    let nested = nested_ranges(ws, f);
    let mut out = Vec::new();
    let mut i = item.body.0;
    while i <= item.body.1 {
        if let Some(&(_, end)) = nested.iter().find(|&&(s, e)| i >= s && i <= e) {
            i = end + 1;
            continue;
        }
        if let Some(what) = matcher(code, i) {
            out.push(Site {
                pos: i,
                line: file.line(i),
                what,
            });
        }
        i += 1;
    }
    out
}

fn panic_matcher(code: &[u8], i: usize) -> Option<&'static str> {
    let at_ident = i == 0 || !is_ident_byte(code[i - 1]);
    if code[i..].starts_with(b".unwrap()") {
        Some("call to `.unwrap()`")
    } else if code[i..].starts_with(b".expect(") {
        Some("call to `.expect(...)`")
    } else if at_ident && code[i..].starts_with(b"panic!") {
        Some("`panic!` invocation")
    } else if at_ident && code[i..].starts_with(b"unreachable!") {
        Some("`unreachable!` invocation")
    } else if code[i] == b'[' && crate::is_index_expr(code, i) {
        Some("slice/array indexing")
    } else {
        None
    }
}

fn alloc_matcher(code: &[u8], i: usize) -> Option<&'static str> {
    let at_ident = i == 0 || !is_ident_byte(code[i - 1]);
    if at_ident && code[i..].starts_with(b"Vec::new()") {
        Some("`Vec::new()` allocation")
    } else if at_ident && code[i..].starts_with(b"with_capacity(") {
        Some("`with_capacity` allocation")
    } else if code[i..].starts_with(b".reserve(") {
        Some("`reserve` call")
    } else if code[i..].starts_with(b".to_vec()") {
        Some("`to_vec` allocation")
    } else if code[i..].starts_with(b".collect()") || code[i..].starts_with(b".collect::<") {
        Some("`collect` allocation")
    } else {
        None
    }
}

fn lock_matcher(code: &[u8], i: usize) -> Option<&'static str> {
    if code[i..].starts_with(b".lock()") {
        Some("`lock()`")
    } else if code[i..].starts_with(b".wait(") {
        Some("`wait`")
    } else {
        None
    }
}

/// Whether the site's own line names a scratch buffer — the allocation is
/// scratch-routed and steady-state clean by construction.
fn line_mentions_scratch(file: &crate::table::SourceFile, line: usize) -> bool {
    let start = file.starts.get(line - 1).copied().unwrap_or(0);
    let end = file.starts.get(line).copied().unwrap_or(file.code.len());
    let text = &file.code[start..end];
    crate::lexer::find(text, b"scratch", 0).is_some()
        || crate::lexer::find(text, b"Scratch", 0).is_some()
}

// ---------------------------------------------------------------------------
// L6: panic-reachability
// ---------------------------------------------------------------------------

/// Serving crates whose entry points are L6/L7 roots.
fn in_serving_scope(rel: &str) -> bool {
    rel.starts_with("crates/core/src/")
        || rel.starts_with("crates/cli/src/")
        || rel.starts_with("src/")
}

/// The decode/serve entry points: `decompress*` / `read_stream*` free fns,
/// every `StreamSource` / `ForwardSource` / `StreamReader` method,
/// `inspect::render`, and `JobHandle::join`.
pub fn l6_roots(ws: &Workspace) -> Vec<usize> {
    ws.fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            if f.is_test || !in_serving_scope(&ws.files[f.file].rel) {
                return false;
            }
            let rel = &ws.files[f.file].rel;
            f.name.starts_with("decompress")
                || f.name.starts_with("read_stream")
                || matches!(
                    f.owner.as_deref(),
                    Some("StreamSource") | Some("ForwardSource") | Some("StreamReader")
                )
                || (rel.ends_with("inspect.rs") && f.name == "render" && f.owner.is_none())
                || (f.owner.as_deref() == Some("JobHandle") && f.name == "join")
        })
        .map(|(i, _)| i)
        .collect()
}

/// L6: no path from a decode/serve entry point may reach a panic site.
pub fn lint_panic_reachability(ws: &Workspace, graph: &CallGraph) -> Vec<Violation> {
    let roots = l6_roots(ws);
    let reached = bfs(ws, graph, &roots, Lint::PanicReachability);
    let mut out = Vec::new();
    for f in 0..ws.fns.len() {
        if !reached.contains_key(&f) || ws.fns[f].is_test {
            continue;
        }
        let file = &ws.files[ws.fns[f].file];
        for site in scan_sites(ws, f, panic_matcher) {
            if is_suppressed(&file.comments, site.line, Lint::PanicReachability) {
                continue;
            }
            let mut notes = chain_notes(ws, &reached, f);
            notes.push(format!("-> {} at {}:{}", site.what, file.rel, site.line));
            out.push(Violation {
                lint: Lint::PanicReachability,
                file: file.rel.clone(),
                line: site.line,
                message: format!(
                    "{} reachable from decode/serve entry point (chain below); \
                     return a typed error or suppress with a reason",
                    site.what
                ),
                notes,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L7: steady-state allocation freedom
// ---------------------------------------------------------------------------

/// The warm-path roots: `ChunkEncoder::encode*`, `compress_into`, and
/// `StreamSink::push_chunk`.
pub fn l7_roots(ws: &Workspace) -> Vec<usize> {
    ws.fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !f.is_test
                && ((f.owner.as_deref() == Some("ChunkEncoder") && f.name.starts_with("encode"))
                    || f.name == "compress_into"
                    || (f.owner.as_deref() == Some("StreamSink") && f.name == "push_chunk"))
        })
        .map(|(i, _)| i)
        .collect()
}

/// L7: every allocation site reachable from a warm-path root must be
/// scratch-routed (its line names a scratch buffer) or suppressed.
pub fn lint_steady_alloc(ws: &Workspace, graph: &CallGraph) -> Vec<Violation> {
    let roots = l7_roots(ws);
    let reached = bfs(ws, graph, &roots, Lint::SteadyAlloc);
    let mut out = Vec::new();
    for f in 0..ws.fns.len() {
        if !reached.contains_key(&f) || ws.fns[f].is_test {
            continue;
        }
        let file = &ws.files[ws.fns[f].file];
        for site in scan_sites(ws, f, alloc_matcher) {
            if line_mentions_scratch(file, site.line)
                || is_suppressed(&file.comments, site.line, Lint::SteadyAlloc)
            {
                continue;
            }
            let mut notes = chain_notes(ws, &reached, f);
            notes.push(format!("-> {} at {}:{}", site.what, file.rel, site.line));
            out.push(Violation {
                lint: Lint::SteadyAlloc,
                file: file.rel.clone(),
                line: site.line,
                message: format!(
                    "{} on the warm encode path (chain below); \
                     route it through a scratch buffer or suppress with a reason",
                    site.what
                ),
                notes,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L8: pool lock-ordering invariants (vendor/rayon)
// ---------------------------------------------------------------------------

/// Parses the `ORDER: <n>` level from the comments on `line` or the line
/// above.
fn order_level(file: &crate::table::SourceFile, line: usize) -> Option<u32> {
    [line, line.saturating_sub(1)]
        .iter()
        .filter(|&&l| l > 0)
        .find_map(|l| {
            let text = file.comments.get(l)?;
            let p = text.find("ORDER:")?;
            let rest = text[p + 6..].trim_start();
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse::<u32>().ok()
        })
}

/// The minimum lock level reachable from `f` (its own annotated sites and
/// everything transitively called), with a witness site for diagnostics.
fn min_reachable_level(
    ws: &Workspace,
    graph: &CallGraph,
    f: usize,
    memo: &mut HashMap<usize, Option<(u32, String)>>,
    visiting: &mut Vec<usize>,
) -> Option<(u32, String)> {
    if let Some(cached) = memo.get(&f) {
        return cached.clone();
    }
    if visiting.contains(&f) {
        return None; // cycle: the recursion terminates, levels resolve below
    }
    visiting.push(f);
    let file = &ws.files[ws.fns[f].file];
    let mut best: Option<(u32, String)> = None;
    for site in scan_sites(ws, f, lock_matcher) {
        if let Some(level) = order_level(file, site.line) {
            let witness = format!("level {level} {} at {}:{}", site.what, file.rel, site.line);
            if best.as_ref().is_none_or(|(b, _)| level < *b) {
                best = Some((level, witness));
            }
        }
    }
    for e in &graph.edges[f] {
        if let Some((level, witness)) = min_reachable_level(ws, graph, e.callee, memo, visiting) {
            if best.as_ref().is_none_or(|(b, _)| level < *b) {
                best = Some((level, witness));
            }
        }
    }
    visiting.pop();
    memo.insert(f, best.clone());
    best
}

/// L8: every `lock()` / `wait` site in `ws` (built over `vendor/rayon`)
/// must carry an `// ORDER: <n>` level, and levels must be monotonically
/// non-decreasing along call chains: a call made after acquiring level
/// `M` must not reach a site at a level below `M`.
pub fn lint_pool_invariants(ws: &Workspace, graph: &CallGraph) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut memo: HashMap<usize, Option<(u32, String)>> = HashMap::new();
    for (f, item) in ws.fns.iter().enumerate() {
        if item.is_test {
            continue;
        }
        let file = &ws.files[item.file];
        let sites = scan_sites(ws, f, lock_matcher);
        for site in &sites {
            if order_level(file, site.line).is_none()
                && !is_suppressed(&file.comments, site.line, Lint::PoolInvariant)
            {
                out.push(Violation {
                    lint: Lint::PoolInvariant,
                    file: file.rel.clone(),
                    line: site.line,
                    message: format!(
                        "{} site in `{}` without an `// ORDER: <level>` annotation",
                        site.what,
                        item.qualified()
                    ),
                    notes: Vec::new(),
                });
            }
        }
        // Monotonicity: for each outgoing call, the levels already
        // acquired textually before it bound the callee's closure from
        // below. (Guards dropped before the call are over-approximated as
        // held; within-fn re-ordering is the dynamic racecheck's job.)
        for e in &graph.edges[f] {
            let held: Option<u32> = sites
                .iter()
                .filter(|s| s.pos < e.pos)
                .filter_map(|s| order_level(file, s.line))
                .max();
            let Some(held) = held else { continue };
            let mut visiting = Vec::new();
            let Some((level, witness)) =
                min_reachable_level(ws, graph, e.callee, &mut memo, &mut visiting)
            else {
                continue;
            };
            if level < held && !is_suppressed(&file.comments, e.line, Lint::PoolInvariant) {
                out.push(Violation {
                    lint: Lint::PoolInvariant,
                    file: file.rel.clone(),
                    line: e.line,
                    message: format!(
                        "lock-ordering inversion: `{}` calls `{}` after acquiring level \
                         {held}, but the callee can reach {witness}",
                        item.qualified(),
                        ws.fns[e.callee].qualified()
                    ),
                    notes: Vec::new(),
                });
            }
        }
    }
    out
}
