//! Machine-readable reports: the `--format json` writer, a dependency-free
//! JSON reader for `--baseline` files, and the baseline diff.
//!
//! The JSON shape is versioned and mirrors `chunked_throughput --json`:
//!
//! ```json
//! {
//!   "version": 1,
//!   "summary": {
//!     "files": 42, "functions": 900, "calls": 3000,
//!     "resolved_edges": 2100, "unresolved_calls": 900,
//!     "panic_roots": 12, "alloc_roots": 3, "violations": 0,
//!     "per_lint": {"no-unsafe": 0, "...": 0}
//!   },
//!   "violations": [
//!     {"lint": "…", "file": "…", "line": 1, "message": "…", "notes": ["…"]}
//!   ]
//! }
//! ```
//!
//! A baseline file is simply a previous report (or the `violations` array
//! of one): findings whose `(lint, file, message)` key appears in the
//! baseline are *known* and do not fail a `--deny-all --baseline` run;
//! only new findings do. Line numbers are deliberately not part of the
//! key, so unrelated edits shifting a known finding do not break CI.

use crate::{Lint, Violation};
use std::collections::BTreeMap;
use std::collections::HashSet;

/// Per-run summary metrics, reported in text and JSON output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Source files analyzed.
    pub files: usize,
    /// `fn` items in the function table (vendor included).
    pub functions: usize,
    /// Call sites extracted from non-test code.
    pub calls: usize,
    /// Resolved call edges (conservative: one site may yield several).
    pub resolved_edges: usize,
    /// Call sites resolution recorded as unresolved (never dropped).
    pub unresolved_calls: usize,
    /// L6 decode/serve entry points found.
    pub panic_roots: usize,
    /// L7 warm-path roots found.
    pub alloc_roots: usize,
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders the full machine-readable report.
pub fn to_json(metrics: &Metrics, violations: &[Violation]) -> String {
    let mut per_lint: BTreeMap<&'static str, usize> =
        Lint::ALL.iter().map(|l| (l.id(), 0usize)).collect();
    for v in violations {
        *per_lint.entry(v.lint.id()).or_insert(0) += 1;
    }
    let mut out = String::new();
    out.push_str("{\n  \"version\": 1,\n  \"summary\": {\n");
    out.push_str(&format!("    \"files\": {},\n", metrics.files));
    out.push_str(&format!("    \"functions\": {},\n", metrics.functions));
    out.push_str(&format!("    \"calls\": {},\n", metrics.calls));
    out.push_str(&format!(
        "    \"resolved_edges\": {},\n",
        metrics.resolved_edges
    ));
    out.push_str(&format!(
        "    \"unresolved_calls\": {},\n",
        metrics.unresolved_calls
    ));
    out.push_str(&format!("    \"panic_roots\": {},\n", metrics.panic_roots));
    out.push_str(&format!("    \"alloc_roots\": {},\n", metrics.alloc_roots));
    out.push_str(&format!("    \"violations\": {},\n", violations.len()));
    out.push_str("    \"per_lint\": {");
    let mut first = true;
    for (id, count) in &per_lint {
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!("\"{id}\": {count}"));
    }
    out.push_str("}\n  },\n  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"lint\": \"");
        out.push_str(v.lint.id());
        out.push_str("\", \"file\": \"");
        escape_json(&v.file, &mut out);
        out.push_str(&format!("\", \"line\": {}, \"message\": \"", v.line));
        escape_json(&v.message, &mut out);
        out.push_str("\", \"notes\": [");
        for (j, note) in v.notes.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push('"');
            escape_json(note, &mut out);
            out.push('"');
        }
        out.push_str("]}");
    }
    if !violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (the build environment is offline: no serde)
// ---------------------------------------------------------------------------

/// A parsed JSON value — just enough to read our own reports back.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (read back as f64; our fields are small integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while matches!(
            self.bytes.get(self.pos),
            Some(b' ') | Some(b'\n') | Some(b'\t') | Some(b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        self.ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Option<Json> {
        self.ws();
        match self.bytes.get(self.pos)? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Json::Str),
            b't' if self.bytes[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Some(Json::Bool(true))
            }
            b'f' if self.bytes[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Some(Json::Bool(false))
            }
            b'n' if self.bytes[self.pos..].starts_with(b"null") => {
                self.pos += 4;
                Some(Json::Null)
            }
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Option<Json> {
        if !self.eat(b'{') {
            return None;
        }
        let mut members = Vec::new();
        if self.eat(b'}') {
            return Some(Json::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            if !self.eat(b':') {
                return None;
            }
            members.push((key, self.value()?));
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Some(Json::Obj(members));
            }
            return None;
        }
    }

    fn array(&mut self) -> Option<Json> {
        if !self.eat(b'[') {
            return None;
        }
        let mut items = Vec::new();
        if self.eat(b']') {
            return Some(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Some(Json::Arr(items));
            }
            return None;
        }
    }

    fn string(&mut self) -> Option<String> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return None;
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                &b => {
                    // Copy the UTF-8 sequence through byte-by-byte.
                    let start = self.pos;
                    let mut end = self.pos + 1;
                    if b >= 0x80 {
                        while self
                            .bytes
                            .get(end)
                            .is_some_and(|&c| (0x80..0xc0).contains(&c))
                        {
                            end += 1;
                        }
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).ok()?);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-') | Some(b'+') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(Json::Num)
    }
}

/// Parses a JSON document; `None` on any syntax error.
pub fn parse_json(text: &str) -> Option<Json> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.pos == p.bytes.len() {
        Some(v)
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// The identity of a finding for baseline purposes: lint, file and
/// message — line numbers excluded so unrelated edits do not churn it.
pub fn baseline_key(v: &Violation) -> String {
    format!("{}|{}|{}", v.lint.id(), v.file, v.message)
}

/// Reads the known-finding keys out of a baseline file: either a full
/// report object (its `violations` member) or a bare array of findings.
/// `None` means the file is not valid JSON of either shape.
pub fn parse_baseline(text: &str) -> Option<HashSet<String>> {
    let doc = parse_json(text)?;
    let arr = match &doc {
        Json::Arr(items) => items.as_slice(),
        Json::Obj(_) => match doc.get("violations")? {
            Json::Arr(items) => items.as_slice(),
            _ => return None,
        },
        _ => return None,
    };
    let mut keys = HashSet::new();
    for item in arr {
        let lint = item.get("lint")?.as_str()?;
        let file = item.get("file")?.as_str()?;
        let message = item.get("message")?.as_str()?;
        keys.insert(format!("{lint}|{file}|{message}"));
    }
    Some(keys)
}

/// Splits findings into `(known, new)` against a baseline key set.
pub fn split_by_baseline(
    violations: Vec<Violation>,
    baseline: &HashSet<String>,
) -> (Vec<Violation>, Vec<Violation>) {
    violations
        .into_iter()
        .partition(|v| baseline.contains(&baseline_key(v)))
}
