//! The workspace function table: every brace-matched `fn` item of every
//! source file, with its file/line span, impl/trait owner and
//! `#[cfg(test)]` classification. This is the substrate the call graph
//! ([`crate::graph`]) is resolved over.

use crate::lexer::{
    is_ident_byte, lex, line_of, line_starts, match_brace, next_nonspace, prev_nonspace,
    skip_angles, test_regions, Lexed,
};
use std::collections::HashMap;

/// One parsed source file, lexed and indexed.
pub struct SourceFile {
    /// Workspace-relative `/`-separated path.
    pub rel: String,
    /// Blanked code bytes (see [`crate::lexer::Lexed`]).
    pub code: Vec<u8>,
    /// Comment text per 1-based line.
    pub comments: HashMap<usize, String>,
    /// Byte offsets of line starts.
    pub starts: Vec<usize>,
    /// `#[cfg(test)]` byte ranges.
    pub tests: Vec<(usize, usize)>,
    /// Whether every byte of the file is test code (`tests/` path).
    pub whole_test: bool,
}

impl SourceFile {
    /// 1-based line of a byte position.
    pub fn line(&self, pos: usize) -> usize {
        line_of(&self.starts, pos)
    }
}

/// One `fn` item with a body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index of the defining file in [`Workspace::files`].
    pub file: usize,
    /// The function's bare name.
    pub name: String,
    /// Base type name of the enclosing `impl` block, if any
    /// (`impl Display for Violation` → `Violation`).
    pub owner: Option<String>,
    /// Trait name for trait impls (`impl Display for Violation` → `Display`).
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Byte position of the `fn` keyword.
    pub sig_start: usize,
    /// Byte range of the body, braces inclusive.
    pub body: (usize, usize),
    /// Number of parameters, `self` excluded.
    pub params: usize,
    /// Whether the function takes `self` (a method).
    pub has_self: bool,
    /// Whether the function is test code (a `tests/` file, a
    /// `#[cfg(test)]` region, or a `#[test]` item).
    pub is_test: bool,
}

impl FnItem {
    /// `Owner::name` or the bare name, for display.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The parsed workspace: files plus the function table over them.
pub struct Workspace {
    /// All parsed files, in input order.
    pub files: Vec<SourceFile>,
    /// All `fn` items with bodies, grouped by file in source order.
    pub fns: Vec<FnItem>,
}

/// An `impl` block: body byte range, owner base type, optional trait.
struct ImplRegion {
    start: usize,
    end: usize,
    owner: String,
    trait_name: Option<String>,
}

impl Workspace {
    /// Parses `(relative path, source)` pairs into a function table.
    pub fn from_sources(sources: &[(String, String)]) -> Workspace {
        let mut files = Vec::with_capacity(sources.len());
        let mut fns = Vec::new();
        for (rel, src) in sources {
            let Lexed { code, comments } = lex(src);
            let starts = line_starts(&code);
            let tests = test_regions(&code);
            let whole_test = crate::is_test_path(rel);
            let file = SourceFile {
                rel: rel.clone(),
                code,
                comments,
                starts,
                tests,
                whole_test,
            };
            let fi = files.len();
            parse_fns(fi, &file, &mut fns);
            files.push(file);
        }
        Workspace { files, fns }
    }

    /// The innermost function whose body contains `pos` in file `file`.
    pub fn enclosing_fn(&self, file: usize, pos: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && pos >= f.body.0 && pos <= f.body.1)
            .min_by_key(|(_, f)| f.body.1 - f.body.0)
            .map(|(i, _)| i)
    }

    /// Looks a function up by bare name and optional owner (test helpers).
    pub fn find_fn(&self, name: &str, owner: Option<&str>) -> Option<usize> {
        self.fns
            .iter()
            .position(|f| f.name == name && f.owner.as_deref() == owner)
    }
}

/// Keywords that an identifier scan must never treat as a name.
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "true", "type", "unsafe", "use", "where",
    "while", "async", "await", "box", "macro", "union", "yield",
];

pub(crate) fn is_keyword(ident: &[u8]) -> bool {
    KEYWORDS.iter().any(|k| k.as_bytes() == ident)
}

/// `impl` blocks of one file, with owners resolved.
fn impl_regions(code: &[u8]) -> Vec<ImplRegion> {
    let n = code.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < n {
        if !is_ident_byte(code[i]) {
            i += 1;
            continue;
        }
        let s = i;
        while i < n && is_ident_byte(code[i]) {
            i += 1;
        }
        if &code[s..i] != b"impl" {
            continue;
        }
        // `impl Trait` in signatures (`fn f(x: impl Read)`, `-> impl Iterator`)
        // is preceded by `(`, `,`, `:`, `=`, `&`, `+`, `<` or a `->` arrow;
        // item-level impl blocks never are.
        if let Some((_, prev)) = prev_nonspace(code, s) {
            if matches!(prev, b'(' | b',' | b':' | b'=' | b'&' | b'+' | b'<' | b'>') {
                continue;
            }
        }
        // Skip the generic parameter list, if any.
        let mut k = match next_nonspace(code, i) {
            Some((p, b'<')) => skip_angles(code, p),
            Some((p, _)) => p,
            None => break,
        };
        // Walk the header up to the body `{`, collecting the last path
        // segment seen; `for` switches from the trait to the implementing
        // type, `where` ends owner collection.
        let mut last_ident: Option<String> = None;
        let mut trait_name: Option<String> = None;
        let mut done_collecting = false;
        while k < n {
            let b = code[k];
            if b == b'{' {
                if let (Some(owner), Some(close)) = (last_ident.take(), match_brace(code, k)) {
                    out.push(ImplRegion {
                        start: k,
                        end: close,
                        owner,
                        trait_name,
                    });
                }
                break;
            }
            if b == b';' {
                break;
            }
            if b == b'<' {
                k = skip_angles(code, k);
                continue;
            }
            if is_ident_byte(b) {
                let ws = k;
                while k < n && is_ident_byte(code[k]) {
                    k += 1;
                }
                let word = &code[ws..k];
                if word == b"for" {
                    // `impl Trait for Type`: what we collected so far was
                    // the trait; the owner follows.
                    trait_name = last_ident.take();
                } else if word == b"where" {
                    done_collecting = true;
                } else if !done_collecting && !is_keyword(word) {
                    last_ident = Some(String::from_utf8_lossy(word).into_owned());
                }
                continue;
            }
            k += 1;
        }
        i = k.max(i);
    }
    out
}

/// Parses every braced `fn` item of `file` into `out`.
fn parse_fns(fi: usize, file: &SourceFile, out: &mut Vec<FnItem>) {
    let code = &file.code;
    let n = code.len();
    let impls = impl_regions(code);
    let mut i = 0usize;
    while i < n {
        if !is_ident_byte(code[i]) {
            i += 1;
            continue;
        }
        let s = i;
        while i < n && is_ident_byte(code[i]) {
            i += 1;
        }
        if &code[s..i] != b"fn" {
            continue;
        }
        // Name.
        let (name_start, mut j) = match next_nonspace(code, i) {
            Some((p, b)) if is_ident_byte(b) => (p, p),
            _ => continue, // `fn(...)` pointer type: no name, no body
        };
        while j < n && is_ident_byte(code[j]) {
            j += 1;
        }
        let name = String::from_utf8_lossy(&code[name_start..j]).into_owned();
        // Generic parameter list.
        let mut k = match next_nonspace(code, j) {
            Some((p, b'<')) => skip_angles(code, p),
            Some((p, _)) => p,
            None => break,
        };
        // Parameter list.
        let (params, has_self, after_params) = match next_nonspace(code, k) {
            Some((p, b'(')) => parse_params(code, p),
            _ => {
                i = j;
                continue;
            }
        };
        k = after_params;
        // Body `{`, skipping `;` inside `[u8; 4]`-style types in the
        // return position; a bare `;` at depth 0 is a bodyless trait
        // method declaration.
        let mut depth = 0i32;
        let mut body = None;
        while k < n {
            match code[k] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'<' if depth == 0 => {
                    k = skip_angles(code, k);
                    continue;
                }
                b'{' if depth == 0 => {
                    if let Some(close) = match_brace(code, k) {
                        body = Some((k, close));
                    }
                    break;
                }
                b';' if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let Some(body) = body else {
            i = j;
            continue;
        };
        let enclosing = impls
            .iter()
            .filter(|r| s >= r.start && s <= r.end)
            .min_by_key(|r| r.end - r.start);
        let is_test = file.whole_test
            || crate::lexer::in_regions(&file.tests, s)
            || has_test_attr(file, file.line(s));
        out.push(FnItem {
            file: fi,
            name,
            owner: enclosing.map(|r| r.owner.clone()),
            trait_name: enclosing.and_then(|r| r.trait_name.clone()),
            line: file.line(s),
            sig_start: s,
            body,
            params,
            has_self,
            is_test,
        });
        i = j;
    }
}

/// Whether one of the few lines above `line` carries a `#[test]` /
/// `#[bench]`-style attribute (blanked code keeps attribute tokens).
fn has_test_attr(file: &SourceFile, line: usize) -> bool {
    (line.saturating_sub(3)..line).any(|l| {
        let (Some(&start), end) = (
            file.starts.get(l.wrapping_sub(1)),
            file.starts.get(l).copied().unwrap_or(file.code.len()),
        ) else {
            return false;
        };
        let text = &file.code[start..end];
        crate::lexer::find(text, b"#[test]", 0).is_some()
            || crate::lexer::find(text, b"#[proptest", 0).is_some()
    })
}

/// Parses a parameter list opening at `open` (a `(`): returns
/// `(param count excluding self, has_self, position after the `)`)`.
fn parse_params(code: &[u8], open: usize) -> (usize, bool, usize) {
    let n = code.len();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut any_content = false;
    let mut k = open;
    let mut close = n;
    while k < n {
        let b = code[k];
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                depth -= 1;
                if depth == 0 && b == b')' {
                    close = k;
                    break;
                }
            }
            b'<' if depth == 1 => angle += 1,
            b'>' if depth == 1 && !(k > 0 && code[k - 1] == b'-') => angle -= 1,
            b',' if depth == 1 && angle == 0 => commas += 1,
            _ => {
                if depth == 1 && b != b' ' && b != b'\n' && b != b'\t' {
                    any_content = true;
                }
            }
        }
        k += 1;
    }
    let mut params = if any_content { commas + 1 } else { 0 };
    // `self`, `&self`, `&mut self`, `&'a self`, `mut self` as first token.
    let mut has_self = false;
    let mut p = open + 1;
    while p < close {
        let b = code[p];
        if b == b' ' || b == b'\n' || b == b'\t' || b == b'&' {
            p += 1;
            continue;
        }
        if b == b'\'' {
            // A lifetime (`&'a self`): skip the quote and its name.
            p += 1;
            while p < close && is_ident_byte(code[p]) {
                p += 1;
            }
            continue;
        }
        if is_ident_byte(b) {
            let ws = p;
            while p < close && is_ident_byte(code[p]) {
                p += 1;
            }
            let word = &code[ws..p];
            if word == b"mut" {
                continue;
            }
            has_self = word == b"self";
            break;
        }
        break;
    }
    if has_self {
        params = params.saturating_sub(1);
    }
    (params, has_self, close.saturating_add(1).min(n))
}
