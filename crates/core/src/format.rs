//! The self-describing compressed stream format.
//!
//! A szhi stream consists of a fixed header followed by three sections:
//! the losslessly stored anchor values, the outlier side channel, and the
//! lossless-pipeline-encoded quantization codes. Everything needed to
//! decompress (shape, error bound, predictor configuration, pipeline
//! identifier, reorder flag) lives in the header, so `decompress` takes only
//! the byte stream.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "SZHI" | version u8 | rank u8 | nz u64 | ny u64 | nx u64
//! | abs_eb f64 | pipeline_id u8 | reorder u8 | anchor_stride u16
//! | block_span 3×u16 | n_levels u8 | n_levels × (scheme u8, spline u8)
//! | n_anchors u64 | n_anchors × f32
//! | n_outliers u64 | n_outliers × (index u64, value f32)
//! | payload_len u64 | payload bytes
//! ```

use crate::error::SzhiError;
use szhi_codec::bitio::{put_f32, put_f64, put_u16, put_u64, put_u8, ByteCursor};
use szhi_codec::PipelineSpec;
use szhi_ndgrid::Dims;
use szhi_predictor::{InterpConfig, LevelConfig, Outlier, Scheme, Spline};

/// Magic bytes identifying a szhi stream.
pub const MAGIC: [u8; 4] = *b"SZHI";
/// Stream format version.
pub const VERSION: u8 = 1;

/// The decoded header of a compressed stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// Shape of the original field.
    pub dims: Dims,
    /// Absolute error bound the stream was produced with.
    pub abs_eb: f64,
    /// Lossless pipeline used for the quantization codes.
    pub pipeline: PipelineSpec,
    /// Whether the codes were level-reordered before encoding.
    pub reorder: bool,
    /// Interpolation predictor configuration.
    pub interp: InterpConfig,
}

fn scheme_id(s: Scheme) -> u8 {
    match s {
        Scheme::DimSequence => 0,
        Scheme::MultiDim => 1,
    }
}

fn scheme_from(id: u8) -> Result<Scheme, SzhiError> {
    match id {
        0 => Ok(Scheme::DimSequence),
        1 => Ok(Scheme::MultiDim),
        _ => Err(SzhiError::InvalidStream(format!("unknown scheme id {id}"))),
    }
}

fn spline_id(s: Spline) -> u8 {
    match s {
        Spline::Linear => 0,
        Spline::Cubic => 1,
    }
}

fn spline_from(id: u8) -> Result<Spline, SzhiError> {
    match id {
        0 => Ok(Spline::Linear),
        1 => Ok(Spline::Cubic),
        _ => Err(SzhiError::InvalidStream(format!("unknown spline id {id}"))),
    }
}

/// Serialises the header and the anchor/outlier/payload sections into a
/// complete stream.
pub fn write_stream(
    header: &Header,
    anchors: &[f32],
    outliers: &[Outlier],
    payload: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + anchors.len() * 4 + outliers.len() * 12 + payload.len());
    out.extend_from_slice(&MAGIC);
    put_u8(&mut out, VERSION);
    put_u8(&mut out, header.dims.rank() as u8);
    put_u64(&mut out, header.dims.nz() as u64);
    put_u64(&mut out, header.dims.ny() as u64);
    put_u64(&mut out, header.dims.nx() as u64);
    put_f64(&mut out, header.abs_eb);
    put_u8(&mut out, header.pipeline.id());
    put_u8(&mut out, header.reorder as u8);
    put_u16(&mut out, header.interp.anchor_stride as u16);
    for &s in &header.interp.block_span {
        put_u16(&mut out, s as u16);
    }
    put_u8(&mut out, header.interp.levels.len() as u8);
    for lc in &header.interp.levels {
        put_u8(&mut out, scheme_id(lc.scheme));
        put_u8(&mut out, spline_id(lc.spline));
    }
    put_u64(&mut out, anchors.len() as u64);
    for &a in anchors {
        put_f32(&mut out, a);
    }
    put_u64(&mut out, outliers.len() as u64);
    for o in outliers {
        put_u64(&mut out, o.index);
        put_f32(&mut out, o.value);
    }
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    out
}

/// Parses a stream back into its header and sections.
pub fn read_stream(bytes: &[u8]) -> Result<(Header, Vec<f32>, Vec<Outlier>, Vec<u8>), SzhiError> {
    let mut cur = ByteCursor::new(bytes);
    let magic = cur.take(4).map_err(|_| SzhiError::InvalidStream("stream too short for magic".into()))?;
    if magic != MAGIC {
        return Err(SzhiError::InvalidStream("not a szhi stream (bad magic)".into()));
    }
    let version = cur.get_u8().map_err(SzhiError::from)?;
    if version != VERSION {
        return Err(SzhiError::InvalidStream(format!("unsupported version {version}")));
    }
    let rank = cur.get_u8().map_err(SzhiError::from)? as usize;
    let nz = cur.get_u64().map_err(SzhiError::from)? as usize;
    let ny = cur.get_u64().map_err(SzhiError::from)? as usize;
    let nx = cur.get_u64().map_err(SzhiError::from)? as usize;
    let dims = match rank {
        1 => Dims::d1(nx),
        2 => Dims::d2(ny, nx),
        3 => Dims::d3(nz, ny, nx),
        _ => return Err(SzhiError::InvalidStream(format!("unsupported rank {rank}"))),
    };
    let abs_eb = cur.get_f64().map_err(SzhiError::from)?;
    let pipeline_id = cur.get_u8().map_err(SzhiError::from)?;
    let pipeline = PipelineSpec::from_id(pipeline_id)
        .ok_or_else(|| SzhiError::InvalidStream(format!("unknown pipeline id {pipeline_id}")))?;
    let reorder = cur.get_u8().map_err(SzhiError::from)? != 0;
    let anchor_stride = cur.get_u16().map_err(SzhiError::from)? as usize;
    let mut block_span = [0usize; 3];
    for s in block_span.iter_mut() {
        *s = cur.get_u16().map_err(SzhiError::from)? as usize;
    }
    let n_levels = cur.get_u8().map_err(SzhiError::from)? as usize;
    let mut levels = Vec::with_capacity(n_levels);
    for _ in 0..n_levels {
        let scheme = scheme_from(cur.get_u8().map_err(SzhiError::from)?)?;
        let spline = spline_from(cur.get_u8().map_err(SzhiError::from)?)?;
        levels.push(LevelConfig { scheme, spline });
    }
    if !anchor_stride.is_power_of_two() || anchor_stride < 2 || levels.len() != anchor_stride.trailing_zeros() as usize {
        return Err(SzhiError::InvalidStream(format!(
            "inconsistent predictor configuration: stride {anchor_stride}, {} levels",
            levels.len()
        )));
    }
    let interp = InterpConfig { anchor_stride, block_span, levels };

    let n_anchors = cur.get_u64().map_err(SzhiError::from)? as usize;
    let mut anchors = Vec::with_capacity(n_anchors);
    for _ in 0..n_anchors {
        anchors.push(cur.get_f32().map_err(SzhiError::from)?);
    }
    let n_outliers = cur.get_u64().map_err(SzhiError::from)? as usize;
    let mut outliers = Vec::with_capacity(n_outliers);
    for _ in 0..n_outliers {
        let index = cur.get_u64().map_err(SzhiError::from)?;
        let value = cur.get_f32().map_err(SzhiError::from)?;
        outliers.push(Outlier { index, value });
    }
    let payload_len = cur.get_u64().map_err(SzhiError::from)? as usize;
    let payload = cur.take(payload_len).map_err(SzhiError::from)?.to_vec();

    Ok((
        Header { dims, abs_eb, pipeline, reorder, interp },
        anchors,
        outliers,
        payload,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Header {
        Header {
            dims: Dims::d3(20, 30, 40),
            abs_eb: 1.5e-3,
            pipeline: PipelineSpec::CR,
            reorder: true,
            interp: InterpConfig::cusz_hi(),
        }
    }

    #[test]
    fn stream_roundtrips() {
        let header = sample_header();
        let anchors = vec![1.0f32, -2.5, 3.25];
        let outliers = vec![Outlier { index: 7, value: 9.5 }, Outlier { index: 1000, value: -0.125 }];
        let payload = vec![1u8, 2, 3, 4, 5];
        let bytes = write_stream(&header, &anchors, &outliers, &payload);
        let (h, a, o, p) = read_stream(&bytes).unwrap();
        assert_eq!(h, header);
        assert_eq!(a, anchors);
        assert_eq!(o, outliers);
        assert_eq!(p, payload);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let header = sample_header();
        let mut bytes = write_stream(&header, &[], &[], &[]);
        bytes[0] = b'X';
        assert!(matches!(read_stream(&bytes), Err(SzhiError::InvalidStream(_))));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let header = sample_header();
        let mut bytes = write_stream(&header, &[], &[], &[]);
        bytes[4] = 99;
        assert!(matches!(read_stream(&bytes), Err(SzhiError::InvalidStream(_))));
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let header = sample_header();
        let bytes = write_stream(&header, &[1.0; 10], &[], &[7u8; 100]);
        for cut in [3usize, 20, bytes.len() - 1] {
            assert!(read_stream(&bytes[..cut]).is_err(), "cut at {cut} not detected");
        }
    }

    #[test]
    fn two_d_headers_roundtrip() {
        let header = Header {
            dims: Dims::d2(1800, 3600),
            abs_eb: 0.25,
            pipeline: PipelineSpec::TP,
            reorder: false,
            interp: InterpConfig::cusz_i(),
        };
        let bytes = write_stream(&header, &[], &[], &[]);
        let (h, _, _, _) = read_stream(&bytes).unwrap();
        assert_eq!(h, header);
    }

    #[test]
    fn inconsistent_predictor_config_is_rejected() {
        let header = sample_header();
        let mut bytes = write_stream(&header, &[], &[], &[]);
        // Corrupt the anchor stride (offset: 4 magic + 1 ver + 1 rank + 24 dims + 8 eb + 1 pid + 1 reorder = 40).
        bytes[40] = 12;
        bytes[41] = 0;
        assert!(read_stream(&bytes).is_err());
    }
}
