//! The self-describing compressed stream format.
//!
//! The byte-level specification of every container version lives in
//! `docs/FORMAT.md` at the repository root — that document is the
//! authoritative reference the format fuzz tests link to. Five container
//! versions share the same magic and header layout:
//!
//! **v1 (monolithic)** — a fixed header followed by three sections: the
//! losslessly stored anchor values, the outlier side channel, and the
//! lossless-pipeline-encoded quantization codes. Everything needed to
//! decompress (shape, error bound, predictor configuration, pipeline
//! identifier, reorder flag) lives in the header, so `decompress` takes only
//! the byte stream.
//!
//! ```text
//! magic "SZHI" | version=1 u8 | rank u8 | nz u64 | ny u64 | nx u64
//! | abs_eb f64 | pipeline_id u8 | reorder u8 | anchor_stride u16
//! | block_span 3×u16 | n_levels u8 | n_levels × (scheme u8, spline u8)
//! | n_anchors u64 | n_anchors × f32
//! | n_outliers u64 | n_outliers × (index u64, value f32)
//! | payload_len u64 | payload bytes
//! ```
//!
//! **v2 (chunked)** — the same header (version byte 2), then the chunk span
//! and a chunk table, then one v1-style section body per chunk. Each chunk
//! is a completely independent sub-field (its own anchors, outliers and
//! pipeline payload, with chunk-local outlier indices), so chunks compress,
//! decompress and random-access independently:
//!
//! ```text
//! <v1 header with version=2>
//! | chunk_span 3×u32 | n_chunks u64
//! | n_chunks × (offset u64, length u64)      ← into the chunk data area
//! | chunk data area: n_chunks × chunk body
//! chunk body := n_anchors u64 | n_anchors × f32
//!             | n_outliers u64 | n_outliers × (index u64, value f32)
//!             | payload_len u64 | payload bytes
//! ```
//!
//! **v3 (streamed)** — the chunked layout with an *extended* chunk table:
//! every entry additionally records the chunk's own lossless pipeline id
//! (the *mode byte*, so different chunks of one stream can use different
//! pipelines) and a CRC32 integrity checksum of the chunk body, verified
//! before any lossless decoder touches the bytes:
//!
//! ```text
//! <v1 header with version=3>
//! | chunk_span 3×u32 | n_chunks u64
//! | n_chunks × (offset u64, length u64, pipeline_id u8, crc32 u32)
//! | chunk data area: n_chunks × chunk body     ← same body layout as v2
//! ```
//!
//! **v4 (trailered)** — the v3 layout inverted for bounded-memory writers:
//! the chunk bodies follow the chunk span directly, the v3-style chunk
//! table comes *after* the data area, and a fixed-size trailer at the very
//! end of the stream (table offset, chunk count, table CRC32, closing
//! magic) locates the table. A writer can therefore emit each chunk body
//! the moment it is encoded and hold only the table in memory; a reader
//! seeks to the trailer first:
//!
//! ```text
//! <v1 header with version=4>
//! | chunk_span 3×u32
//! | chunk data area: n_chunks × chunk body     ← same body layout as v2/v3
//! | n_chunks × (offset u64, length u64, pipeline_id u8, crc32 u32)
//! | table_offset u64 | n_chunks u64 | table_crc32 u32 | magic "SZT4"
//! ```
//!
//! **v5 (tuned)** — the trailered layout whose CRC-protected table region
//! additionally opens with a **predictor-config dictionary**, and whose
//! 23-byte chunk-table entries each carry a `config_id` naming the
//! dictionary entry their chunk was compressed with — so per-chunk
//! interpolation tuning is representable alongside per-chunk pipeline
//! modes. A `config_id` at or beyond the dictionary is rejected with the
//! typed [`SzhiError::UnknownConfigId`]:
//!
//! ```text
//! <v1 header with version=5>
//! | chunk_span 3×u32
//! | chunk data area: n_chunks × chunk body     ← same body layout as v2/v3
//! | n_configs u16 | n_configs × (n_levels u8, n_levels × (scheme u8, spline u8))
//! | n_chunks × (offset u64, length u64, pipeline_id u8, config_id u16, crc32 u32)
//! | table_offset u64 | n_chunks u64 | table_crc32 u32 | magic "SZT5"
//! ```
//!
//! The header's own pipeline id remains the stream's *default* mode (the
//! configuration's global mode); each chunk decodes with the pipeline named
//! by its table entry — and, for v5, with the interpolation configuration
//! named by its config id ([`ChunkTable::chunk_interp`]).
//!
//! The chunk span must obey the *chunk-alignment rule*
//! ([`szhi_ndgrid::ChunkPlan::is_aligned`]): a positive multiple of the
//! anchor stride along every non-degenerate axis (or the whole axis).
//! Offsets are relative to the start of the chunk data area, must be
//! non-decreasing and non-overlapping, and every `(offset, length)` extent
//! must lie inside the data area — all of which [`read_stream_chunked`] and
//! [`read_stream_trailered`] enforce with typed errors before any chunk is
//! touched. For v3/v4 streams a chunk body whose CRC32 disagrees with its
//! table entry is rejected with [`SzhiError::ChunkChecksum`] by
//! [`ChunkTable::verified_chunk_slice`]; a v4 chunk table whose bytes
//! disagree with the trailer's CRC32 is rejected with
//! [`SzhiError::TableChecksum`] before any entry is parsed.

use crate::error::SzhiError;
use szhi_codec::bitio::{
    decode_capacity, put_f32, put_f64, put_u16, put_u32, put_u64, put_u8, ByteCursor,
};
use szhi_codec::checksum::crc32;
use szhi_codec::PipelineSpec;
use szhi_ndgrid::{ChunkPlan, Dims};
use szhi_predictor::{InterpConfig, LevelConfig, Outlier, Scheme, Spline};

/// Magic bytes identifying a szhi stream.
pub const MAGIC: [u8; 4] = *b"SZHI";
/// Stream format version of the monolithic (single-chunk) container.
pub const VERSION: u8 = 1;
/// Stream format version of the chunked container.
pub const VERSION_CHUNKED: u8 = 2;
/// Stream format version of the streamed container (chunked layout with a
/// per-chunk pipeline-mode byte and CRC32 checksum in every chunk-table
/// entry).
pub const VERSION_STREAMED: u8 = 3;
/// Stream format version of the trailered container (v3 chunk-table entries
/// moved *behind* the data area, located via a fixed-size trailer at the
/// end of the stream, so a writer can emit chunk bodies as they are
/// produced with O(one chunk + table) memory).
pub const VERSION_TRAILERED: u8 = 4;
/// Stream format version of the tuned container: the trailered (v4) layout
/// whose tail additionally carries a **predictor-config dictionary**, and
/// whose 23-byte chunk-table entries each name the dictionary entry their
/// chunk was compressed with — so per-chunk interpolation tuning is
/// representable alongside per-chunk pipeline modes.
pub const VERSION_TUNED: u8 = 5;

/// Magic bytes closing a trailered (v4) stream — the last four bytes of
/// the container.
pub const TRAILER_MAGIC: [u8; 4] = *b"SZT4";
/// Magic bytes closing a tuned (v5) stream — the last four bytes of the
/// container.
pub const TRAILER_MAGIC_V5: [u8; 4] = *b"SZT5";
/// Size in bytes of the fixed v4/v5 trailer
/// (`table_offset u64, n_chunks u64, table_crc32 u32, magic 4×u8`).
pub const TRAILER_SIZE: usize = 24;

/// The decoded header of a compressed stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// Shape of the original field.
    pub dims: Dims,
    /// Absolute error bound the stream was produced with.
    pub abs_eb: f64,
    /// Lossless pipeline used for the quantization codes.
    pub pipeline: PipelineSpec,
    /// Whether the codes were level-reordered before encoding.
    pub reorder: bool,
    /// Interpolation predictor configuration.
    pub interp: InterpConfig,
}

fn scheme_id(s: Scheme) -> u8 {
    match s {
        Scheme::DimSequence => 0,
        Scheme::MultiDim => 1,
    }
}

fn scheme_from(id: u8) -> Result<Scheme, SzhiError> {
    match id {
        0 => Ok(Scheme::DimSequence),
        1 => Ok(Scheme::MultiDim),
        _ => Err(SzhiError::InvalidStream(format!("unknown scheme id {id}"))),
    }
}

fn spline_id(s: Spline) -> u8 {
    match s {
        Spline::Linear => 0,
        Spline::Cubic => 1,
    }
}

fn spline_from(id: u8) -> Result<Spline, SzhiError> {
    match id {
        0 => Ok(Spline::Linear),
        1 => Ok(Spline::Cubic),
        _ => Err(SzhiError::InvalidStream(format!("unknown spline id {id}"))),
    }
}

/// Serialises the shared header fields (shape, bound, pipeline, predictor
/// configuration) with the given version byte.
pub(crate) fn write_header(out: &mut Vec<u8>, header: &Header, version: u8) {
    out.extend_from_slice(&MAGIC);
    put_u8(out, version);
    put_u8(out, header.dims.rank() as u8);
    put_u64(out, header.dims.nz() as u64);
    put_u64(out, header.dims.ny() as u64);
    put_u64(out, header.dims.nx() as u64);
    put_f64(out, header.abs_eb);
    put_u8(out, header.pipeline.id());
    put_u8(out, header.reorder as u8);
    put_u16(out, header.interp.anchor_stride as u16);
    for &s in &header.interp.block_span {
        put_u16(out, s as u16);
    }
    put_u8(out, header.interp.levels.len() as u8);
    for lc in &header.interp.levels {
        put_u8(out, scheme_id(lc.scheme));
        put_u8(out, spline_id(lc.spline));
    }
}

/// Serialises one anchor/outlier/payload section body (the v1 stream body;
/// also the per-chunk body of the v2 container).
pub fn write_sections(out: &mut Vec<u8>, anchors: &[f32], outliers: &[Outlier], payload: &[u8]) {
    out.reserve(24 + anchors.len() * 4 + outliers.len() * 12 + payload.len());
    put_u64(out, anchors.len() as u64);
    for &a in anchors {
        put_f32(out, a);
    }
    put_u64(out, outliers.len() as u64);
    for o in outliers {
        put_u64(out, o.index);
        put_f32(out, o.value);
    }
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

/// Serialises the header and the anchor/outlier/payload sections into a
/// complete monolithic (v1) stream.
pub fn write_stream(
    header: &Header,
    anchors: &[f32],
    outliers: &[Outlier],
    payload: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + anchors.len() * 4 + outliers.len() * 12 + payload.len());
    write_header(&mut out, header, VERSION);
    write_sections(&mut out, anchors, outliers, payload);
    out
}

/// Serialises a chunked (v2) stream: the header, the chunk span, the chunk
/// table and the concatenated per-chunk bodies. `chunk_bodies` must be in
/// [`ChunkPlan`] row-major chunk order, each produced by [`write_sections`].
pub fn write_stream_v2(header: &Header, span: [usize; 3], chunk_bodies: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = chunk_bodies.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(80 + chunk_bodies.len() * 16 + total);
    write_header(&mut out, header, VERSION_CHUNKED);
    for s in span {
        put_u32(&mut out, s as u32);
    }
    put_u64(&mut out, chunk_bodies.len() as u64);
    let mut offset = 0u64;
    for body in chunk_bodies {
        put_u64(&mut out, offset);
        put_u64(&mut out, body.len() as u64);
        offset += body.len() as u64;
    }
    for body in chunk_bodies {
        out.extend_from_slice(body);
    }
    out
}

/// Serialises a streamed (v3) stream: the header, the chunk span, the
/// extended chunk table (offset, length, per-chunk pipeline id, CRC32 of
/// the body) and the concatenated per-chunk bodies. `chunks` must be in
/// [`ChunkPlan`] row-major chunk order, each body produced by
/// [`write_sections`] and paired with the pipeline that encoded its
/// payload.
pub fn write_stream_v3(
    header: &Header,
    span: [usize; 3],
    chunks: &[(PipelineSpec, Vec<u8>)],
) -> Vec<u8> {
    let total: usize = chunks.iter().map(|(_, body)| body.len()).sum();
    let mut out = Vec::with_capacity(80 + chunks.len() * V3_ENTRY_SIZE + total);
    write_header(&mut out, header, VERSION_STREAMED);
    for s in span {
        put_u32(&mut out, s as u32);
    }
    put_u64(&mut out, chunks.len() as u64);
    let mut offset = 0u64;
    for (pipeline, body) in chunks {
        put_u64(&mut out, offset);
        put_u64(&mut out, body.len() as u64);
        put_u8(&mut out, pipeline.id());
        put_u32(&mut out, crc32(body));
        offset += body.len() as u64;
    }
    for (_, body) in chunks {
        out.extend_from_slice(body);
    }
    out
}

/// Serialises a trailered (v4) stream: the header, the chunk span, the
/// concatenated per-chunk bodies, then the v3-style chunk table and the
/// fixed trailer that locates it. This is the in-memory equivalent of
/// streaming the same chunks through a
/// [`StreamSink`](crate::stream::StreamSink) — byte for byte.
pub fn write_stream_v4(
    header: &Header,
    span: [usize; 3],
    chunks: &[(PipelineSpec, Vec<u8>)],
) -> Vec<u8> {
    let total: usize = chunks.iter().map(|(_, body)| body.len()).sum();
    let mut out = Vec::with_capacity(80 + total + chunks.len() * V3_ENTRY_SIZE + TRAILER_SIZE);
    write_header(&mut out, header, VERSION_TRAILERED);
    for s in span {
        put_u32(&mut out, s as u32);
    }
    let mut entries = Vec::with_capacity(chunks.len());
    let mut offset = 0u64;
    for (pipeline, body) in chunks {
        entries.push((offset, body.len() as u64, *pipeline, crc32(body)));
        offset += body.len() as u64;
        out.extend_from_slice(body);
    }
    let table_offset = out.len() as u64;
    out.extend_from_slice(&encode_table_tail(table_offset, &entries));
    out
}

/// Serialises the tail of a trailered (v4) stream: the chunk table (one
/// v3-style 21-byte entry per chunk) followed by the fixed trailer, whose
/// CRC32 covers exactly the table bytes. `table_offset` is the absolute
/// stream offset the table will land at. Shared by [`write_stream_v4`] and
/// the incremental [`StreamSink`](crate::stream::StreamSink).
pub(crate) fn encode_table_tail(
    table_offset: u64,
    entries: &[(u64, u64, PipelineSpec, u32)],
) -> Vec<u8> {
    let mut tail = Vec::with_capacity(entries.len() * V3_ENTRY_SIZE + TRAILER_SIZE);
    for &(offset, len, pipeline, crc) in entries {
        put_u64(&mut tail, offset);
        put_u64(&mut tail, len);
        put_u8(&mut tail, pipeline.id());
        put_u32(&mut tail, crc);
    }
    let table_crc = crc32(&tail);
    put_u64(&mut tail, table_offset);
    put_u64(&mut tail, entries.len() as u64);
    put_u32(&mut tail, table_crc);
    tail.extend_from_slice(&TRAILER_MAGIC);
    tail
}

/// Serialises a tuned (v5) stream: the header, the chunk span, the
/// concatenated per-chunk bodies, then the config dictionary, the extended
/// chunk table (each entry naming its chunk's pipeline **and**
/// predictor-config id) and the fixed trailer. `configs` is the dictionary
/// of per-level (scheme, spline) lists; each chunk's `config_id` indexes
/// into it. This is the in-memory equivalent of streaming the same chunks
/// through a [`StreamSink`](crate::stream::StreamSink) with per-chunk
/// interpolation tuning enabled — byte for byte.
pub fn write_stream_v5(
    header: &Header,
    span: [usize; 3],
    configs: &[Vec<LevelConfig>],
    chunks: &[(PipelineSpec, u16, Vec<u8>)],
) -> Vec<u8> {
    let total: usize = chunks.iter().map(|(_, _, body)| body.len()).sum();
    let mut out = Vec::with_capacity(100 + total + chunks.len() * V5_ENTRY_SIZE + TRAILER_SIZE);
    write_header(&mut out, header, VERSION_TUNED);
    for s in span {
        put_u32(&mut out, s as u32);
    }
    let mut entries = Vec::with_capacity(chunks.len());
    let mut offset = 0u64;
    for (pipeline, config, body) in chunks {
        entries.push((offset, body.len() as u64, *pipeline, *config, crc32(body)));
        offset += body.len() as u64;
        out.extend_from_slice(body);
    }
    let table_offset = out.len() as u64;
    out.extend_from_slice(&encode_table_tail_v5(table_offset, configs, &entries));
    out
}

/// Serialises the tail of a tuned (v5) stream: the config dictionary, the
/// chunk table (one 23-byte entry per chunk) and the fixed trailer, whose
/// CRC32 covers the dictionary *and* table bytes. Shared by
/// [`write_stream_v5`] and the incremental
/// [`StreamSink`](crate::stream::StreamSink).
pub(crate) fn encode_table_tail_v5(
    table_offset: u64,
    configs: &[Vec<LevelConfig>],
    entries: &[(u64, u64, PipelineSpec, u16, u32)],
) -> Vec<u8> {
    let mut tail = Vec::with_capacity(
        2 + configs.iter().map(|c| 1 + 2 * c.len()).sum::<usize>()
            + entries.len() * V5_ENTRY_SIZE
            + TRAILER_SIZE,
    );
    put_u16(&mut tail, configs.len() as u16);
    for config in configs {
        put_u8(&mut tail, config.len() as u8);
        for lc in config {
            put_u8(&mut tail, scheme_id(lc.scheme));
            put_u8(&mut tail, spline_id(lc.spline));
        }
    }
    for &(offset, len, pipeline, config, crc) in entries {
        put_u64(&mut tail, offset);
        put_u64(&mut tail, len);
        put_u8(&mut tail, pipeline.id());
        put_u16(&mut tail, config);
        put_u32(&mut tail, crc);
    }
    let table_crc = crc32(&tail);
    put_u64(&mut tail, table_offset);
    put_u64(&mut tail, entries.len() as u64);
    put_u32(&mut tail, table_crc);
    tail.extend_from_slice(&TRAILER_MAGIC_V5);
    tail
}

/// Size in bytes of one v2 chunk-table entry (`offset u64, length u64`).
pub(crate) const V2_ENTRY_SIZE: usize = 16;
/// Size in bytes of one v3/v4 chunk-table entry
/// (`offset u64, length u64, pipeline_id u8, crc32 u32`).
pub(crate) const V3_ENTRY_SIZE: usize = 21;
/// Size in bytes of one v5 chunk-table entry
/// (`offset u64, length u64, pipeline_id u8, config_id u16, crc32 u32`).
pub(crate) const V5_ENTRY_SIZE: usize = 23;

/// Reads a u64 element count and checks that `count * elem_size` bytes can
/// still be present in the stream, so corrupted counts fail cleanly instead
/// of driving a huge `Vec::with_capacity`.
fn checked_count(
    cur: &mut ByteCursor<'_>,
    elem_size: usize,
    what: &str,
) -> Result<usize, SzhiError> {
    let count = cur.get_u64().map_err(SzhiError::from)?;
    let need = count.checked_mul(elem_size as u64);
    match need {
        Some(bytes) if bytes <= cur.remaining() as u64 => Ok(count as usize),
        _ => Err(SzhiError::InvalidStream(format!(
            "{what} count {count} exceeds the {} bytes left in the stream",
            cur.remaining()
        ))),
    }
}

/// The sections of a parsed stream: header, anchors, outliers, payload.
pub type StreamSections = (Header, Vec<f32>, Vec<Outlier>, Vec<u8>);

/// One section body: anchors, outliers, pipeline payload.
pub type SectionBody = (Vec<f32>, Vec<Outlier>, Vec<u8>);

/// Checks the magic and consumes the version byte.
pub(crate) fn read_magic_version(cur: &mut ByteCursor<'_>) -> Result<u8, SzhiError> {
    let magic = cur
        .take(4)
        .map_err(|_| SzhiError::InvalidStream("stream too short for magic".into()))?;
    if magic != MAGIC {
        return Err(SzhiError::InvalidStream(
            "not a szhi stream (bad magic)".into(),
        ));
    }
    cur.get_u8().map_err(SzhiError::from)
}

/// The container version of a stream (1 = monolithic, 2 = chunked,
/// 3 = streamed, 4 = trailered, 5 = tuned), after validating the magic.
/// Top-level `decompress` dispatches on this.
pub fn stream_version(bytes: &[u8]) -> Result<u8, SzhiError> {
    let version = read_magic_version(&mut ByteCursor::new(bytes))?;
    if (VERSION..=VERSION_TUNED).contains(&version) {
        Ok(version)
    } else {
        Err(SzhiError::InvalidStream(format!(
            "unsupported version {version}"
        )))
    }
}

/// Parses a monolithic (v1) stream back into its header and sections.
pub fn read_stream(bytes: &[u8]) -> Result<StreamSections, SzhiError> {
    let mut cur = ByteCursor::new(bytes);
    let version = read_magic_version(&mut cur)?;
    if version != VERSION {
        return Err(SzhiError::InvalidStream(format!(
            "expected a monolithic (v{VERSION}) stream, found version {version}"
        )));
    }
    let header = read_header_fields(&mut cur)?;
    let (anchors, outliers, payload) = read_sections(&mut cur)?;
    Ok((header, anchors, outliers, payload))
}

/// Parses the shared header fields following the version byte.
pub(crate) fn read_header_fields(cur: &mut ByteCursor<'_>) -> Result<Header, SzhiError> {
    let rank = cur.get_u8().map_err(SzhiError::from)? as usize;
    let nz = cur.get_u64().map_err(SzhiError::from)? as usize;
    let ny = cur.get_u64().map_err(SzhiError::from)? as usize;
    let nx = cur.get_u64().map_err(SzhiError::from)? as usize;
    // Validate the shape before handing it to the `Dims` constructors, whose
    // non-zero asserts would otherwise turn a corrupt stream into a panic.
    // The element-count cap (2^40 points = 4 TiB of f32) rejects absurd
    // corrupt shapes before any decompressor tries to allocate the output.
    const MAX_POINTS: u64 = 1 << 40;
    if nz == 0 || ny == 0 || nx == 0 {
        return Err(SzhiError::InvalidStream(format!(
            "zero dimension in header: {nz}x{ny}x{nx}"
        )));
    }
    match (nz as u64)
        .checked_mul(ny as u64)
        .and_then(|p| p.checked_mul(nx as u64))
    {
        Some(points) if points <= MAX_POINTS => {}
        _ => {
            return Err(SzhiError::InvalidStream(format!(
                "implausible field size {nz}x{ny}x{nx}"
            )))
        }
    }
    let dims = match rank {
        1 => Dims::d1(nx),
        2 => Dims::d2(ny, nx),
        3 => Dims::d3(nz, ny, nx),
        _ => return Err(SzhiError::InvalidStream(format!("unsupported rank {rank}"))),
    };
    let abs_eb = cur.get_f64().map_err(SzhiError::from)?;
    // A corrupt bound would otherwise fail asserts deep in the quantizer.
    if !(abs_eb.is_finite() && abs_eb > 0.0) {
        return Err(SzhiError::InvalidStream(format!(
            "invalid error bound {abs_eb}"
        )));
    }
    let pipeline_id = cur.get_u8().map_err(SzhiError::from)?;
    let pipeline = PipelineSpec::from_id(pipeline_id).ok_or(SzhiError::UnknownPipelineId {
        chunk: None,
        id: pipeline_id,
    })?;
    let reorder = cur.get_u8().map_err(SzhiError::from)? != 0;
    let anchor_stride = cur.get_u16().map_err(SzhiError::from)? as usize;
    let mut block_span = [0usize; 3];
    for s in block_span.iter_mut() {
        *s = cur.get_u16().map_err(SzhiError::from)? as usize;
    }
    let n_levels = cur.get_u8().map_err(SzhiError::from)? as usize;
    let mut levels = Vec::with_capacity(decode_capacity(n_levels));
    for _ in 0..n_levels {
        let scheme = scheme_from(cur.get_u8().map_err(SzhiError::from)?)?;
        let spline = spline_from(cur.get_u8().map_err(SzhiError::from)?)?;
        levels.push(LevelConfig { scheme, spline });
    }
    // Mirror every invariant `InterpConfig::validate` asserts, so a corrupt
    // header surfaces as a typed error here instead of a panic downstream.
    if !anchor_stride.is_power_of_two()
        || anchor_stride < 2
        || levels.len() != anchor_stride.trailing_zeros() as usize
    {
        return Err(SzhiError::InvalidStream(format!(
            "inconsistent predictor configuration: stride {anchor_stride}, {} levels",
            levels.len()
        )));
    }
    if block_span.iter().any(|&s| s < anchor_stride) {
        return Err(SzhiError::InvalidStream(format!(
            "block span {block_span:?} smaller than anchor stride {anchor_stride}"
        )));
    }
    let interp = InterpConfig {
        anchor_stride,
        block_span,
        levels,
    };

    Ok(Header {
        dims,
        abs_eb,
        pipeline,
        reorder,
        interp,
    })
}

/// Parses one anchor/outlier/payload section body (the v1 stream body; also
/// the per-chunk body of the v2 container). Every untrusted count is
/// validated against the bytes actually present before allocating: a
/// corrupted count must produce a typed error, not an allocation abort or
/// OOM.
fn read_sections(cur: &mut ByteCursor<'_>) -> Result<SectionBody, SzhiError> {
    let n_anchors = checked_count(cur, 4, "anchors")?;
    let mut anchors = Vec::with_capacity(decode_capacity(n_anchors));
    for _ in 0..n_anchors {
        anchors.push(cur.get_f32().map_err(SzhiError::from)?);
    }
    let n_outliers = checked_count(cur, 12, "outliers")?;
    let mut outliers = Vec::with_capacity(decode_capacity(n_outliers));
    for _ in 0..n_outliers {
        let index = cur.get_u64().map_err(SzhiError::from)?;
        let value = cur.get_f32().map_err(SzhiError::from)?;
        outliers.push(Outlier { index, value });
    }
    let payload_len = checked_count(cur, 1, "payload")?;
    let payload = cur.take(payload_len).map_err(SzhiError::from)?.to_vec();
    Ok((anchors, outliers, payload))
}

/// Parses one chunk body of a v2 stream. The slice must contain exactly one
/// section body (the chunk table's length field delimits it), so trailing
/// bytes are rejected.
pub fn read_chunk_sections(chunk: &[u8]) -> Result<SectionBody, SzhiError> {
    let mut cur = ByteCursor::new(chunk);
    let sections = read_sections(&mut cur)?;
    if cur.remaining() != 0 {
        return Err(SzhiError::InvalidStream(format!(
            "{} trailing bytes after a chunk body",
            cur.remaining()
        )));
    }
    Ok(sections)
}

/// One entry of a parsed chunk table: the chunk's extent in the data area
/// plus (for v3+ streams) its pipeline, integrity checksum and (for v5
/// streams) its predictor-config id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Byte offset of the chunk body, relative to the data area.
    pub offset: usize,
    /// Length of the chunk body in bytes.
    pub len: usize,
    /// The lossless pipeline that encoded this chunk's payload. For v2
    /// streams (no per-chunk mode byte) this is the header's pipeline.
    pub pipeline: PipelineSpec,
    /// The predictor-config id of a tuned (v5) chunk-table entry — an
    /// index into the stream's config dictionary
    /// ([`ChunkTable::configs`]), validated at parse time. `None` for
    /// v2/v3/v4 streams, whose chunks all share the header's
    /// interpolation configuration.
    pub config: Option<u16>,
    /// The CRC32 of the chunk body recorded in a v3+ chunk table; `None`
    /// for v2 streams, which carry no integrity checksums.
    pub checksum: Option<u32>,
}

/// The parsed chunk table of any chunk-bearing container: the chunk span
/// plus one [`ChunkEntry`] per chunk, with extents relative to the chunk
/// data area, whose absolute stream offset is `data_start`. For tuned (v5)
/// streams the table also carries the predictor-config dictionary the
/// entries' config ids index into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkTable {
    /// Chunk span per axis `(z, y, x)`, normalised as by
    /// [`ChunkPlan::new`].
    pub span: [usize; 3],
    /// Per-chunk entries, in [`ChunkPlan`] row-major chunk order.
    pub entries: Vec<ChunkEntry>,
    /// Absolute offset of the chunk data area in the stream.
    pub data_start: usize,
    /// The predictor-config dictionary of a tuned (v5) stream: per config,
    /// the per-level (scheme, spline) list. Empty for every other version.
    pub configs: Vec<Vec<LevelConfig>>,
}

impl ChunkTable {
    /// The interpolation configuration chunk `i` was compressed with: the
    /// dictionary entry its table entry names (v5), or the header's
    /// configuration (every other version). The anchor stride and block
    /// span always come from the header — only the per-level selections
    /// vary per chunk.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range. Config ids are validated at parse
    /// time, so indexing the dictionary cannot fail on a parsed table.
    pub fn chunk_interp(&self, header: &Header, i: usize) -> InterpConfig {
        // szhi-analyzer: allow(panic-reachability) -- documented `# Panics` contract; chunk indices come from the reader's own table and config ids are validated at parse time
        resolve_chunk_interp(header, self.entries[i].config, &self.configs)
    }
    /// The byte slice of chunk `i` within `bytes` (the full stream),
    /// **without** checksum verification. Prefer
    /// [`ChunkTable::verified_chunk_slice`] for untrusted streams.
    pub fn chunk_slice<'a>(&self, bytes: &'a [u8], i: usize) -> &'a [u8] {
        let e = &self.entries[i];
        &bytes[self.data_start + e.offset..self.data_start + e.offset + e.len]
    }

    /// The byte slice of chunk `i`, verified against the chunk's CRC32
    /// first when the stream carries one (v3). A mismatch — i.e. any
    /// corruption of the chunk body after compression — surfaces as
    /// [`SzhiError::ChunkChecksum`] *before* any lossless decoder sees the
    /// bytes. For v2 streams (no checksums) this is [`Self::chunk_slice`].
    pub fn verified_chunk_slice<'a>(
        &self,
        bytes: &'a [u8],
        i: usize,
    ) -> Result<&'a [u8], SzhiError> {
        let e = self
            .entries
            .get(i)
            .ok_or_else(|| SzhiError::InvalidStream(format!("chunk index {i} out of range")))?;
        let start = self.data_start + e.offset;
        let slice = bytes.get(start..start + e.len).ok_or_else(|| {
            SzhiError::InvalidStream(format!("chunk {i} extends past the stream"))
        })?;
        if let Some(stored) = e.checksum {
            let computed = crc32(slice);
            if computed != stored {
                return Err(SzhiError::ChunkChecksum {
                    index: i,
                    stored,
                    computed,
                });
            }
        }
        Ok(slice)
    }
}

/// Resolves the interpolation configuration a chunk was compressed with:
/// the dictionary entry its table entry names (v5), or the header's
/// configuration (every other version). The anchor stride and block span
/// always come from the header — only the per-level selections vary per
/// chunk. Shared by [`ChunkTable::chunk_interp`] and the io-backed
/// [`StreamSource`](crate::stream::StreamSource), so the resolution rule
/// exists exactly once.
pub(crate) fn resolve_chunk_interp(
    header: &Header,
    config: Option<u16>,
    configs: &[Vec<LevelConfig>],
) -> InterpConfig {
    match config {
        Some(id) => InterpConfig {
            anchor_stride: header.interp.anchor_stride,
            block_span: header.interp.block_span,
            // szhi-analyzer: allow(no-panic-decode, panic-reachability) -- config ids are validated against the dictionary at parse time
            levels: configs[id as usize].clone(),
        },
        None => header.interp.clone(),
    }
}

/// Parses the header and chunk table of a chunked (v2) stream. A thin
/// wrapper over [`read_stream_chunked`] that additionally rejects every
/// other container version.
pub fn read_stream_v2(bytes: &[u8]) -> Result<(Header, ChunkTable), SzhiError> {
    expect_chunked_version(bytes, VERSION_CHUNKED)?;
    read_stream_chunked(bytes)
}

/// Parses the header and chunk table of a streamed (v3) stream. A thin
/// wrapper over [`read_stream_chunked`] that additionally rejects every
/// other container version.
pub fn read_stream_v3(bytes: &[u8]) -> Result<(Header, ChunkTable), SzhiError> {
    expect_chunked_version(bytes, VERSION_STREAMED)?;
    read_stream_chunked(bytes)
}

fn expect_chunked_version(bytes: &[u8], expected: u8) -> Result<(), SzhiError> {
    let version = read_magic_version(&mut ByteCursor::new(bytes))?;
    if version != expected {
        return Err(SzhiError::InvalidStream(format!(
            "expected a v{expected} stream, found version {version}"
        )));
    }
    Ok(())
}

/// Parses the header and chunk table of a chunked (v2) or streamed (v3)
/// stream, validating the chunk span (alignment rule, plan consistency)
/// and every table extent (in-bounds, non-overlapping, non-decreasing)
/// before any chunk data is touched. For v3 tables the per-chunk pipeline
/// id must name a known pipeline; checksums are *recorded* here and
/// verified lazily by [`ChunkTable::verified_chunk_slice`], so parsing the
/// table stays O(table), not O(stream).
pub fn read_stream_chunked(bytes: &[u8]) -> Result<(Header, ChunkTable), SzhiError> {
    let mut cur = ByteCursor::new(bytes);
    let version = read_magic_version(&mut cur)?;
    if version != VERSION_CHUNKED && version != VERSION_STREAMED {
        return Err(SzhiError::InvalidStream(format!(
            "expected a chunked (v{VERSION_CHUNKED}) or streamed (v{VERSION_STREAMED}) \
             stream, found version {version}"
        )));
    }
    let header = read_header_fields(&mut cur)?;
    let span = read_span(&mut cur)?;
    let plan = validated_plan(&header, span)?;
    let entry_size = if version == VERSION_STREAMED {
        V3_ENTRY_SIZE
    } else {
        V2_ENTRY_SIZE
    };
    let n_chunks = checked_count(&mut cur, entry_size, "chunk table")?;
    if n_chunks != plan.len() {
        return Err(SzhiError::InvalidStream(format!(
            "chunk table lists {n_chunks} chunks, the {} field at span {span:?} has {}",
            header.dims,
            plan.len()
        )));
    }
    let raw = read_raw_entries(&mut cur, version, n_chunks, header.pipeline, 0)?;
    let data_start = cur.position();
    let data_len = cur.remaining() as u64;
    let entries = validate_extents(raw, data_len)?;
    Ok((
        header,
        ChunkTable {
            span,
            entries,
            data_start,
            configs: Vec::new(),
        },
    ))
}

/// Parses the chunk span (3×u32) following the shared header, rejecting a
/// zero axis.
pub(crate) fn read_span(cur: &mut ByteCursor<'_>) -> Result<[usize; 3], SzhiError> {
    let mut span = [0usize; 3];
    for s in span.iter_mut() {
        *s = cur.get_u32().map_err(SzhiError::from)? as usize;
    }
    if span.contains(&0) {
        return Err(SzhiError::InvalidStream(format!(
            "zero chunk span {span:?}"
        )));
    }
    Ok(span)
}

/// Validates a stored chunk span against the header (normalisation and the
/// chunk-alignment rule) and returns the resulting plan.
pub(crate) fn validated_plan(header: &Header, span: [usize; 3]) -> Result<ChunkPlan, SzhiError> {
    let plan = ChunkPlan::new(header.dims, span);
    if plan.span() != span {
        return Err(SzhiError::InvalidStream(format!(
            "chunk span {span:?} is not normalised for a {} field (expected {:?})",
            header.dims,
            plan.span()
        )));
    }
    if !plan.is_aligned(header.interp.anchor_stride) {
        return Err(SzhiError::InvalidStream(format!(
            "chunk span {span:?} violates the alignment rule for anchor stride {}",
            header.interp.anchor_stride
        )));
    }
    Ok(plan)
}

/// One chunk-table entry as stored, before extent validation.
pub(crate) struct RawChunkEntry {
    offset: u64,
    len: u64,
    pipeline: PipelineSpec,
    config: Option<u16>,
    checksum: Option<u32>,
}

/// Parses `n_chunks` chunk-table entries: 16-byte `(offset, length)` pairs
/// for v2 (the pipeline is inherited from the header, no checksum), 21-byte
/// `(offset, length, pipeline_id, crc32)` entries for v3/v4, and 23-byte
/// `(offset, length, pipeline_id, config_id, crc32)` entries for v5.
/// Unknown pipeline ids are the typed [`SzhiError::UnknownPipelineId`];
/// for v5, a config id at or beyond `n_configs` is the typed
/// [`SzhiError::UnknownConfigId`].
pub(crate) fn read_raw_entries(
    cur: &mut ByteCursor<'_>,
    version: u8,
    n_chunks: usize,
    header_pipeline: PipelineSpec,
    n_configs: usize,
) -> Result<Vec<RawChunkEntry>, SzhiError> {
    let mut raw = Vec::with_capacity(decode_capacity(n_chunks));
    for i in 0..n_chunks {
        let offset = cur.get_u64().map_err(SzhiError::from)?;
        let len = cur.get_u64().map_err(SzhiError::from)?;
        let (pipeline, config, checksum) = if version == VERSION_CHUNKED {
            (header_pipeline, None, None)
        } else {
            let id = cur.get_u8().map_err(SzhiError::from)?;
            let pipeline = PipelineSpec::from_id(id)
                .ok_or(SzhiError::UnknownPipelineId { chunk: Some(i), id })?;
            let config = if version == VERSION_TUNED {
                let config_id = cur.get_u16().map_err(SzhiError::from)?;
                if config_id as usize >= n_configs {
                    return Err(SzhiError::UnknownConfigId {
                        chunk: i,
                        id: config_id,
                        n_configs,
                    });
                }
                Some(config_id)
            } else {
                None
            };
            (
                pipeline,
                config,
                Some(cur.get_u32().map_err(SzhiError::from)?),
            )
        };
        raw.push(RawChunkEntry {
            offset,
            len,
            pipeline,
            config,
            checksum,
        });
    }
    Ok(raw)
}

/// Validates raw chunk-table extents against a data area of `data_len`
/// bytes — in-bounds, non-overlapping, non-decreasing, no u64 wraparound —
/// and produces the typed entries.
pub(crate) fn validate_extents(
    raw: Vec<RawChunkEntry>,
    data_len: u64,
) -> Result<Vec<ChunkEntry>, SzhiError> {
    let mut entries = Vec::with_capacity(decode_capacity(raw.len()));
    let mut prev_end = 0u64;
    for (i, entry) in raw.into_iter().enumerate() {
        let RawChunkEntry {
            offset,
            len,
            pipeline,
            config,
            checksum,
        } = entry;
        if offset < prev_end {
            return Err(SzhiError::InvalidStream(format!(
                "chunk {i} at offset {offset} overlaps the previous chunk ending at {prev_end}"
            )));
        }
        let end = offset.checked_add(len).ok_or_else(|| {
            SzhiError::InvalidStream(format!("chunk {i} extent {offset}+{len} overflows"))
        })?;
        if end > data_len {
            return Err(SzhiError::InvalidStream(format!(
                "chunk {i} extent {offset}+{len} exceeds the {data_len}-byte data area"
            )));
        }
        prev_end = end;
        entries.push(ChunkEntry {
            offset: offset as usize,
            len: len as usize,
            pipeline,
            config,
            checksum,
        });
    }
    Ok(entries)
}

/// The parsed fields of a v4/v5 trailer: the absolute chunk-table offset,
/// the chunk count and the CRC32 of the table region (for v5, the config
/// dictionary plus the entries).
pub(crate) struct Trailer {
    /// Absolute stream offset of the chunk table.
    pub table_offset: u64,
    /// Number of chunk-table entries.
    pub n_chunks: u64,
    /// CRC32 of the chunk-table bytes.
    pub table_crc: u32,
}

/// Parses the fixed-size v4/v5 trailer from its [`TRAILER_SIZE`] bytes,
/// validating the version's closing magic (`"SZT4"` for trailered v4
/// streams, `"SZT5"` for tuned v5 streams).
pub(crate) fn parse_trailer(tail: &[u8], version: u8) -> Result<Trailer, SzhiError> {
    debug_assert_eq!(tail.len(), TRAILER_SIZE);
    let expected: &[u8] = if version == VERSION_TUNED {
        &TRAILER_MAGIC_V5
    } else {
        &TRAILER_MAGIC
    };
    if tail.get(20..24) != Some(expected) {
        return Err(SzhiError::TrailerCorrupt(format!(
            "bad trailer magic (a v{version} stream must end in {:?})",
            std::str::from_utf8(expected).unwrap_or("?")
        )));
    }
    let mut cur = ByteCursor::new(tail);
    let table_offset = cur.get_u64().map_err(SzhiError::from)?;
    let n_chunks = cur.get_u64().map_err(SzhiError::from)?;
    let table_crc = cur.get_u32().map_err(SzhiError::from)?;
    Ok(Trailer {
        table_offset,
        n_chunks,
        table_crc,
    })
}

/// Validates a v4 trailer against the stream geometry: the chunk count
/// must match the plan, and the table must sit exactly between the data
/// area and the trailer. Returns the table length in bytes.
pub(crate) fn validate_trailer_geometry(
    trailer: &Trailer,
    plan_len: usize,
    data_start: u64,
    trailer_start: u64,
) -> Result<u64, SzhiError> {
    if trailer.n_chunks != plan_len as u64 {
        return Err(SzhiError::TrailerCorrupt(format!(
            "trailer lists {} chunks, the plan has {plan_len}",
            trailer.n_chunks
        )));
    }
    let table_len = trailer
        .n_chunks
        .checked_mul(V3_ENTRY_SIZE as u64)
        .ok_or_else(|| SzhiError::TrailerCorrupt("chunk count overflows the table size".into()))?;
    let table_end = trailer.table_offset.checked_add(table_len);
    if trailer.table_offset < data_start || table_end != Some(trailer_start) {
        return Err(SzhiError::TrailerCorrupt(format!(
            "table offset {} does not place a {}-entry table directly before the trailer \
             (data starts at {data_start}, trailer at {trailer_start})",
            trailer.table_offset, trailer.n_chunks
        )));
    }
    Ok(table_len)
}

/// Parses the header and chunk table of a trailered (v4) or tuned (v5)
/// stream held in memory: the header and span are read from the front, the
/// trailer from the fixed-size tail, and the chunk table (preceded, for
/// v5, by the config dictionary) from where the trailer points — verified
/// against the trailer's CRC32 *before* any entry is parsed. The data area
/// is everything between the span and the table region.
pub fn read_stream_trailered(bytes: &[u8]) -> Result<(Header, ChunkTable), SzhiError> {
    let mut cur = ByteCursor::new(bytes);
    let version = read_magic_version(&mut cur)?;
    if version != VERSION_TRAILERED && version != VERSION_TUNED {
        return Err(SzhiError::InvalidStream(format!(
            "expected a trailered (v{VERSION_TRAILERED}) or tuned (v{VERSION_TUNED}) stream, \
             found version {version}"
        )));
    }
    let header = read_header_fields(&mut cur)?;
    let span = read_span(&mut cur)?;
    let plan = validated_plan(&header, span)?;
    let data_start = cur.position();
    if bytes.len() < data_start + TRAILER_SIZE {
        return Err(SzhiError::TrailerCorrupt(format!(
            "stream of {} bytes is too short for a {TRAILER_SIZE}-byte trailer",
            bytes.len()
        )));
    }
    let trailer_start = bytes.len() - TRAILER_SIZE;
    let tail = bytes
        .get(trailer_start..)
        .ok_or_else(|| SzhiError::TrailerCorrupt("stream too short for a trailer".into()))?;
    let trailer = parse_trailer(tail, version)?;
    let (entries, configs) = if version == VERSION_TRAILERED {
        validate_trailer_geometry(
            &trailer,
            plan.len(),
            data_start as u64,
            trailer_start as u64,
        )?;
        let table_bytes = bytes
            .get(trailer.table_offset as usize..trailer_start)
            .ok_or_else(|| SzhiError::TrailerCorrupt("table region out of bounds".into()))?;
        let entries =
            parse_trailered_entries(table_bytes, &trailer, data_start as u64, header.pipeline)?;
        (entries, Vec::new())
    } else {
        validate_tuned_geometry(
            &trailer,
            plan.len(),
            data_start as u64,
            trailer_start as u64,
        )?;
        let region = bytes
            .get(trailer.table_offset as usize..trailer_start)
            .ok_or_else(|| SzhiError::TrailerCorrupt("table region out of bounds".into()))?;
        parse_tuned_region(region, &trailer, data_start as u64, &header)?
    };
    Ok((
        header,
        ChunkTable {
            span,
            entries,
            data_start,
            configs,
        },
    ))
}

/// Verifies geometry-validated v4 chunk-table bytes against the trailer's
/// CRC32, then parses and extent-validates the entries — shared by the
/// slice-based [`read_stream_trailered`] and the io-backed
/// [`StreamSource`](crate::stream::StreamSource), so the two readers accept
/// exactly the same streams.
pub(crate) fn parse_trailered_entries(
    table_bytes: &[u8],
    trailer: &Trailer,
    data_start: u64,
    header_pipeline: PipelineSpec,
) -> Result<Vec<ChunkEntry>, SzhiError> {
    let computed = crc32(table_bytes);
    if computed != trailer.table_crc {
        return Err(SzhiError::TableChecksum {
            stored: trailer.table_crc,
            computed,
        });
    }
    let mut cur = ByteCursor::new(table_bytes);
    let raw = read_raw_entries(
        &mut cur,
        VERSION_TRAILERED,
        trailer.n_chunks as usize,
        header_pipeline,
        0,
    )?;
    validate_extents(raw, trailer.table_offset - data_start)
}

/// Validates a v5 trailer against the stream geometry. Unlike the v4 check
/// the exact table length cannot be known yet — the config dictionary's
/// size is part of the CRC-protected region — so this validates the chunk
/// count and that the region between `table_offset` and the trailer can at
/// least hold the dictionary count plus the entries; the exact-size check
/// happens in [`parse_tuned_region`] after the dictionary is parsed.
pub(crate) fn validate_tuned_geometry(
    trailer: &Trailer,
    plan_len: usize,
    data_start: u64,
    trailer_start: u64,
) -> Result<(), SzhiError> {
    if trailer.n_chunks != plan_len as u64 {
        return Err(SzhiError::TrailerCorrupt(format!(
            "trailer lists {} chunks, the plan has {plan_len}",
            trailer.n_chunks
        )));
    }
    let min_len = trailer
        .n_chunks
        .checked_mul(V5_ENTRY_SIZE as u64)
        .and_then(|t| t.checked_add(2))
        .ok_or_else(|| SzhiError::TrailerCorrupt("chunk count overflows the table size".into()))?;
    if trailer.table_offset < data_start
        || trailer.table_offset > trailer_start
        || trailer_start - trailer.table_offset < min_len
    {
        return Err(SzhiError::TrailerCorrupt(format!(
            "table offset {} cannot place a config dictionary and {}-entry table before the \
             trailer (data starts at {data_start}, trailer at {trailer_start})",
            trailer.table_offset, trailer.n_chunks
        )));
    }
    Ok(())
}

/// Verifies a geometry-validated v5 table region (config dictionary +
/// chunk table) against the trailer's CRC32, then parses the dictionary
/// and the entries — shared by the slice-based [`read_stream_trailered`]
/// and the io-backed [`StreamSource`](crate::stream::StreamSource).
///
/// Validation order inside the region: CRC32 first
/// ([`SzhiError::TableChecksum`]), then the dictionary (level count must
/// match the header, scheme/spline bytes must name known values), then the
/// exact-size check (dictionary + entries must fill the region exactly),
/// then the entries (unknown pipeline/config ids are their dedicated typed
/// errors, extents the usual invalid-stream errors).
pub(crate) fn parse_tuned_region(
    region: &[u8],
    trailer: &Trailer,
    data_start: u64,
    header: &Header,
) -> Result<(Vec<ChunkEntry>, Vec<Vec<LevelConfig>>), SzhiError> {
    let computed = crc32(region);
    if computed != trailer.table_crc {
        return Err(SzhiError::TableChecksum {
            stored: trailer.table_crc,
            computed,
        });
    }
    let mut cur = ByteCursor::new(region);
    let n_configs = cur.get_u16().map_err(SzhiError::from)? as usize;
    // Every config needs at least its count byte; reject absurd counts
    // before allocating.
    if n_configs > cur.remaining() {
        return Err(SzhiError::InvalidStream(format!(
            "config dictionary count {n_configs} exceeds the {} bytes left in the table region",
            cur.remaining()
        )));
    }
    let expected_levels = header.interp.levels.len();
    let mut configs = Vec::with_capacity(decode_capacity(n_configs));
    for c in 0..n_configs {
        let n_levels = cur.get_u8().map_err(SzhiError::from)? as usize;
        if n_levels != expected_levels {
            return Err(SzhiError::InvalidStream(format!(
                "config {c} has {n_levels} levels, the header's anchor stride implies \
                 {expected_levels}"
            )));
        }
        let mut levels = Vec::with_capacity(decode_capacity(n_levels));
        for _ in 0..n_levels {
            let scheme = scheme_from(cur.get_u8().map_err(SzhiError::from)?)?;
            let spline = spline_from(cur.get_u8().map_err(SzhiError::from)?)?;
            levels.push(LevelConfig { scheme, spline });
        }
        configs.push(levels);
    }
    if cur.remaining() as u64 != trailer.n_chunks * V5_ENTRY_SIZE as u64 {
        return Err(SzhiError::InvalidStream(format!(
            "{} bytes follow the config dictionary, a {}-entry table needs {}",
            cur.remaining(),
            trailer.n_chunks,
            trailer.n_chunks * V5_ENTRY_SIZE as u64
        )));
    }
    let raw = read_raw_entries(
        &mut cur,
        VERSION_TUNED,
        trailer.n_chunks as usize,
        header.pipeline,
        n_configs,
    )?;
    let entries = validate_extents(raw, trailer.table_offset - data_start)?;
    Ok((entries, configs))
}

/// Rejects the container versions that carry no chunk table — monolithic
/// (v1) streams, with a clear pointer at [`crate::decompress`], and unknown
/// future versions — with the same typed errors on every reader path.
pub(crate) fn reject_unchunked_version(version: u8) -> Result<(), SzhiError> {
    match version {
        VERSION => Err(SzhiError::InvalidStream(format!(
            "a monolithic (v{VERSION}) stream has no chunk table; decode it with decompress"
        ))),
        VERSION_CHUNKED | VERSION_STREAMED | VERSION_TRAILERED | VERSION_TUNED => Ok(()),
        version => Err(SzhiError::InvalidStream(format!(
            "unsupported container version {version}"
        ))),
    }
}

/// Parses the header and chunk table of any chunk-bearing container
/// (v2 chunked, v3 streamed, v4 trailered, v5 tuned), dispatching on the
/// version byte. Monolithic (v1) streams have no chunk table and are
/// rejected with a clear typed error pointing at [`crate::decompress`];
/// unknown future versions are rejected as unsupported.
pub fn read_chunk_table(bytes: &[u8]) -> Result<(Header, ChunkTable), SzhiError> {
    let version = read_magic_version(&mut ByteCursor::new(bytes))?;
    reject_unchunked_version(version)?;
    if version == VERSION_TRAILERED || version == VERSION_TUNED {
        read_stream_trailered(bytes)
    } else {
        read_stream_chunked(bytes)
    }
}

#[cfg(test)]
mod tests {
    //! Round-trip, truncation and byte-flip fuzz tests of the container
    //! formats. The layouts, field offsets and validation rules asserted
    //! here are specified in `docs/FORMAT.md` — keep the two in sync.

    use super::*;

    fn sample_header() -> Header {
        Header {
            dims: Dims::d3(20, 30, 40),
            abs_eb: 1.5e-3,
            pipeline: PipelineSpec::CR,
            reorder: true,
            interp: InterpConfig::cusz_hi(),
        }
    }

    #[test]
    fn stream_roundtrips() {
        let header = sample_header();
        let anchors = vec![1.0f32, -2.5, 3.25];
        let outliers = vec![
            Outlier {
                index: 7,
                value: 9.5,
            },
            Outlier {
                index: 1000,
                value: -0.125,
            },
        ];
        let payload = vec![1u8, 2, 3, 4, 5];
        let bytes = write_stream(&header, &anchors, &outliers, &payload);
        let (h, a, o, p) = read_stream(&bytes).unwrap();
        assert_eq!(h, header);
        assert_eq!(a, anchors);
        assert_eq!(o, outliers);
        assert_eq!(p, payload);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let header = sample_header();
        let mut bytes = write_stream(&header, &[], &[], &[]);
        bytes[0] = b'X';
        assert!(matches!(
            read_stream(&bytes),
            Err(SzhiError::InvalidStream(_))
        ));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let header = sample_header();
        let mut bytes = write_stream(&header, &[], &[], &[]);
        bytes[4] = 99;
        assert!(matches!(
            read_stream(&bytes),
            Err(SzhiError::InvalidStream(_))
        ));
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let header = sample_header();
        let bytes = write_stream(&header, &[1.0; 10], &[], &[7u8; 100]);
        for cut in [3usize, 20, bytes.len() - 1] {
            assert!(
                read_stream(&bytes[..cut]).is_err(),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn two_d_headers_roundtrip() {
        let header = Header {
            dims: Dims::d2(1800, 3600),
            abs_eb: 0.25,
            pipeline: PipelineSpec::TP,
            reorder: false,
            interp: InterpConfig::cusz_i(),
        };
        let bytes = write_stream(&header, &[], &[], &[]);
        let (h, _, _, _) = read_stream(&bytes).unwrap();
        assert_eq!(h, header);
    }

    #[test]
    fn header_fields_roundtrip_exactly() {
        // The satellite contract: magic, version, dims, pipeline mode and
        // error bound all survive a serialise/parse cycle bit-exactly.
        for (dims, pipeline, reorder, abs_eb) in [
            (Dims::d1(1_000_000), PipelineSpec::CR, false, 1e-9),
            (Dims::d2(1800, 3600), PipelineSpec::TP, true, 0.5),
            (
                Dims::d3(512, 512, 512),
                PipelineSpec::CR,
                true,
                f64::MIN_POSITIVE,
            ),
        ] {
            let header = Header {
                dims,
                abs_eb,
                pipeline,
                reorder,
                interp: InterpConfig::cusz_hi(),
            };
            let bytes = write_stream(&header, &[], &[], &[]);
            assert_eq!(&bytes[..4], &MAGIC);
            assert_eq!(bytes[4], VERSION);
            let (h, _, _, _) = read_stream(&bytes).unwrap();
            assert_eq!(h, header);
            assert_eq!(
                h.abs_eb.to_bits(),
                abs_eb.to_bits(),
                "error bound must be bit-exact"
            );
        }
    }

    #[test]
    fn every_truncation_yields_a_typed_error_not_a_panic() {
        let header = sample_header();
        let anchors = [0.5f32; 9];
        let outliers = [Outlier {
            index: 3,
            value: 1.5,
        }];
        let bytes = write_stream(&header, &anchors, &outliers, &[0xAB; 33]);
        for cut in 0..bytes.len() {
            let result = std::panic::catch_unwind(|| read_stream(&bytes[..cut]));
            let parsed = result.unwrap_or_else(|_| panic!("read_stream panicked at cut {cut}"));
            assert!(
                parsed.is_err(),
                "truncation at {cut}/{} went undetected",
                bytes.len()
            );
        }
    }

    #[test]
    fn corrupt_section_counts_error_instead_of_allocating() {
        // A flipped length field must not drive `Vec::with_capacity` into an
        // allocation abort: it has to surface as `SzhiError::InvalidStream`.
        let header = sample_header();
        let bytes = write_stream(&header, &[1.0; 4], &[], &[9u8; 16]);
        // n_anchors lives right after the fixed header; find it by locating
        // the known count (4) and stamping u64::MAX over it.
        let fixed = bytes.len() - (8 + 4 * 4) - 8 - (8 + 16);
        for (offset, label) in [
            (fixed, "anchors"),
            (fixed + 8 + 16, "outliers"),
            (fixed + 8 + 16 + 8, "payload"),
        ] {
            let mut corrupt = bytes.clone();
            corrupt[offset..offset + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            match read_stream(&corrupt) {
                Err(SzhiError::InvalidStream(msg)) => {
                    assert!(msg.contains("count"), "{label}: unexpected message {msg}")
                }
                other => panic!("{label}: corrupt count not rejected: {other:?}"),
            }
        }
    }

    #[test]
    fn zero_dims_and_corrupt_bounds_error_instead_of_panicking() {
        // Layout: magic 4 | version 1 | rank 1 | nz u64 @6 | ny u64 @14
        // | nx u64 @22 | abs_eb f64 @30. Zeroed dimensions and non-finite
        // or non-positive bounds must all surface as typed errors: the
        // `Dims` constructors and the quantizer assert on them.
        let bytes = write_stream(&sample_header(), &[], &[], &[]);
        for dim_offset in [6usize, 14, 22] {
            let mut corrupt = bytes.clone();
            corrupt[dim_offset..dim_offset + 8].copy_from_slice(&0u64.to_le_bytes());
            assert!(
                matches!(read_stream(&corrupt), Err(SzhiError::InvalidStream(_))),
                "zero dim at offset {dim_offset} not rejected"
            );
            corrupt[dim_offset..dim_offset + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            assert!(
                matches!(read_stream(&corrupt), Err(SzhiError::InvalidStream(_))),
                "absurd dim at offset {dim_offset} not rejected"
            );
        }
        for bad_eb in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
            let mut corrupt = bytes.clone();
            corrupt[30..38].copy_from_slice(&bad_eb.to_le_bytes());
            assert!(
                matches!(read_stream(&corrupt), Err(SzhiError::InvalidStream(_))),
                "bad error bound {bad_eb} not rejected"
            );
        }
    }

    #[test]
    fn single_byte_corruption_never_panics() {
        let header = sample_header();
        let bytes = write_stream(
            &header,
            &[2.0; 3],
            &[Outlier {
                index: 1,
                value: 0.5,
            }],
            &[7u8; 20],
        );
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                let result = std::panic::catch_unwind(|| {
                    let _ = read_stream(&corrupt);
                });
                assert!(
                    result.is_ok(),
                    "read_stream panicked with byte {pos} xor {flip:#x}"
                );
            }
        }
    }

    #[test]
    fn inconsistent_predictor_config_is_rejected() {
        let header = sample_header();
        let mut bytes = write_stream(&header, &[], &[], &[]);
        // Corrupt the anchor stride (offset: 4 magic + 1 ver + 1 rank + 24 dims + 8 eb + 1 pid + 1 reorder = 40).
        bytes[40] = 12;
        bytes[41] = 0;
        assert!(read_stream(&bytes).is_err());
    }

    // -----------------------------------------------------------------
    // v2 (chunked) container
    // -----------------------------------------------------------------

    /// A v2 header whose dims/span produce a 2×2×2 = 8-chunk plan.
    fn sample_v2_header() -> (Header, [usize; 3]) {
        (
            Header {
                dims: Dims::d3(20, 18, 24),
                abs_eb: 2.5e-3,
                pipeline: PipelineSpec::CR,
                reorder: true,
                interp: InterpConfig::cusz_hi(),
            },
            [16, 16, 16],
        )
    }

    /// Small synthetic chunk bodies of distinct sizes.
    fn sample_bodies(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                let anchors = vec![i as f32 + 0.5; (i % 3) + 1];
                let outliers = [Outlier {
                    index: i as u64,
                    value: -1.5,
                }];
                let payload = vec![i as u8; 5 + i];
                let mut body = Vec::new();
                write_sections(&mut body, &anchors, &outliers, &payload);
                body
            })
            .collect()
    }

    /// Stream offset of the chunk span field: fixed header (49 bytes) plus
    /// two bytes per interpolation level.
    fn span_offset(header: &Header) -> usize {
        49 + 2 * header.interp.levels.len()
    }

    #[test]
    fn v2_stream_roundtrips_chunk_table_and_bodies() {
        let (header, span) = sample_v2_header();
        let bodies = sample_bodies(8);
        let bytes = write_stream_v2(&header, span, &bodies);
        assert_eq!(stream_version(&bytes).unwrap(), VERSION_CHUNKED);
        let (h, table) = read_stream_v2(&bytes).unwrap();
        assert_eq!(h, header);
        assert_eq!(table.span, span);
        assert_eq!(table.entries.len(), 8);
        for (i, body) in bodies.iter().enumerate() {
            assert_eq!(table.chunk_slice(&bytes, i), &body[..]);
            let (anchors, outliers, payload) = read_chunk_sections(body).unwrap();
            assert_eq!(anchors.len(), (i % 3) + 1);
            assert_eq!(outliers.len(), 1);
            assert_eq!(payload.len(), 5 + i);
        }
    }

    #[test]
    fn v1_and_v2_readers_reject_each_others_streams() {
        let (header, span) = sample_v2_header();
        let v2 = write_stream_v2(&header, span, &sample_bodies(8));
        assert!(matches!(read_stream(&v2), Err(SzhiError::InvalidStream(_))));
        let v1 = write_stream(&header, &[], &[], &[]);
        assert!(matches!(
            read_stream_v2(&v1),
            Err(SzhiError::InvalidStream(_))
        ));
        assert_eq!(stream_version(&v1).unwrap(), VERSION);
    }

    #[test]
    fn v2_chunk_count_overflow_errors_instead_of_allocating() {
        // A corrupted chunk count must fail before `Vec::with_capacity`
        // can abort the process, and a plausible-but-wrong count must fail
        // against the plan.
        let (header, span) = sample_v2_header();
        let bytes = write_stream_v2(&header, span, &sample_bodies(8));
        let count_at = span_offset(&header) + 12;
        for bad in [u64::MAX, u64::MAX / 16, 7, 9, 0] {
            let mut corrupt = bytes.clone();
            corrupt[count_at..count_at + 8].copy_from_slice(&bad.to_le_bytes());
            match read_stream_v2(&corrupt) {
                Err(SzhiError::InvalidStream(msg)) => assert!(
                    msg.contains("chunk table") || msg.contains("chunks"),
                    "count {bad}: unexpected message {msg}"
                ),
                other => panic!("chunk count {bad} not rejected: {other:?}"),
            }
        }
    }

    #[test]
    fn v2_misaligned_or_denormalised_span_is_rejected() {
        let (header, _) = sample_v2_header();
        let bodies = sample_bodies(8);
        let at = span_offset(&header);
        // Alignment violation: span 12 is not a multiple of stride 16.
        let bytes = write_stream_v2(&header, [16, 16, 16], &bodies);
        let mut corrupt = bytes.clone();
        corrupt[at + 8..at + 12].copy_from_slice(&12u32.to_le_bytes());
        assert!(matches!(
            read_stream_v2(&corrupt),
            Err(SzhiError::InvalidStream(_))
        ));
        // Zero span.
        let mut corrupt = bytes.clone();
        corrupt[at..at + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_stream_v2(&corrupt),
            Err(SzhiError::InvalidStream(_))
        ));
        // Denormalised span (32 > the 20-point z-axis would clamp to 20,
        // so the stored span no longer matches its own plan).
        let mut corrupt = bytes;
        corrupt[at..at + 4].copy_from_slice(&32u32.to_le_bytes());
        assert!(matches!(
            read_stream_v2(&corrupt),
            Err(SzhiError::InvalidStream(_))
        ));
    }

    #[test]
    fn v2_overlapping_and_truncated_extents_are_rejected() {
        let (header, span) = sample_v2_header();
        let bodies = sample_bodies(8);
        let bytes = write_stream_v2(&header, span, &bodies);
        let table_at = span_offset(&header) + 12 + 8;
        let entry = |i: usize| table_at + 16 * i;

        // Overlap: chunk 1 rewound onto chunk 0.
        let mut corrupt = bytes.clone();
        corrupt[entry(1)..entry(1) + 8].copy_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            read_stream_v2(&corrupt),
            Err(SzhiError::InvalidStream(msg)) if msg.contains("overlap")
        ));

        // Truncation: the last chunk's length runs past the data area.
        let mut corrupt = bytes.clone();
        corrupt[entry(7) + 8..entry(7) + 16].copy_from_slice(&(1u64 << 40).to_le_bytes());
        assert!(matches!(
            read_stream_v2(&corrupt),
            Err(SzhiError::InvalidStream(msg)) if msg.contains("exceeds")
        ));

        // Offset + length overflow of u64 must not wrap around the bound
        // check.
        let mut corrupt = bytes.clone();
        corrupt[entry(7)..entry(7) + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        corrupt[entry(7) + 8..entry(7) + 16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_stream_v2(&corrupt).is_err());

        // A truncated stream cutting through the table itself.
        for cut in [table_at + 3, table_at + 16 * 4 + 1] {
            assert!(read_stream_v2(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn v2_single_byte_corruption_never_panics() {
        // Byte-flip fuzz of the whole v2 stream — header, span, chunk table
        // and bodies: parsing plus every chunk-section read must produce
        // typed errors only, never a panic or allocation abort.
        let (header, span) = sample_v2_header();
        let bytes = write_stream_v2(&header, span, &sample_bodies(8));
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                let result = std::panic::catch_unwind(|| {
                    if let Ok((_, table)) = read_stream_v2(&corrupt) {
                        for i in 0..table.entries.len() {
                            let _ = read_chunk_sections(table.chunk_slice(&corrupt, i));
                        }
                    }
                });
                assert!(
                    result.is_ok(),
                    "v2 parsing panicked with byte {pos} xor {flip:#x}"
                );
            }
        }
    }

    // -----------------------------------------------------------------
    // v3 (streamed) container
    // -----------------------------------------------------------------

    /// Per-chunk pipelines alternating between the two production modes.
    fn sample_v3_chunks(n: usize) -> Vec<(PipelineSpec, Vec<u8>)> {
        sample_bodies(n)
            .into_iter()
            .enumerate()
            .map(|(i, body)| {
                let spec = if i % 2 == 0 {
                    PipelineSpec::CR
                } else {
                    PipelineSpec::TP
                };
                (spec, body)
            })
            .collect()
    }

    #[test]
    fn v3_stream_roundtrips_modes_and_checksums() {
        let (header, span) = sample_v2_header();
        let chunks = sample_v3_chunks(8);
        let bytes = write_stream_v3(&header, span, &chunks);
        assert_eq!(stream_version(&bytes).unwrap(), VERSION_STREAMED);
        let (h, table) = read_stream_chunked(&bytes).unwrap();
        assert_eq!(h, header);
        assert_eq!(table.span, span);
        assert_eq!(table.entries.len(), 8);
        for (i, (spec, body)) in chunks.iter().enumerate() {
            let e = &table.entries[i];
            assert_eq!(e.pipeline, *spec);
            assert_eq!(e.checksum, Some(crc32(body)));
            assert_eq!(table.verified_chunk_slice(&bytes, i).unwrap(), &body[..]);
        }
        // The strict readers agree on which versions they accept.
        assert!(read_stream_v3(&bytes).is_ok());
        assert!(matches!(
            read_stream_v2(&bytes),
            Err(SzhiError::InvalidStream(_))
        ));
    }

    #[test]
    fn v2_tables_inherit_the_header_pipeline_and_carry_no_checksums() {
        let (header, span) = sample_v2_header();
        let bytes = write_stream_v2(&header, span, &sample_bodies(8));
        let (h, table) = read_stream_chunked(&bytes).unwrap();
        for e in &table.entries {
            assert_eq!(e.pipeline, h.pipeline);
            assert_eq!(e.checksum, None);
        }
        assert!(matches!(
            read_stream_v3(&bytes),
            Err(SzhiError::InvalidStream(_))
        ));
    }

    #[test]
    fn v3_data_area_corruption_is_caught_by_the_checksum() {
        // Every byte flip anywhere in the data area must be rejected by the
        // chunk's CRC32 — with the typed ChunkChecksum error, before any
        // decoder sees the bytes.
        let (header, span) = sample_v2_header();
        let chunks = sample_v3_chunks(8);
        let bytes = write_stream_v3(&header, span, &chunks);
        let (_, table) = read_stream_chunked(&bytes).unwrap();
        let data_start = table.data_start;
        for pos in data_start..bytes.len() {
            for flip in [0x01u8, 0x80] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                // The table itself is untouched, so parsing still succeeds…
                let (_, t) = read_stream_chunked(&corrupt).unwrap();
                // …and exactly the chunk owning the flipped byte fails.
                let failing: Vec<usize> = (0..t.entries.len())
                    .filter(|&i| {
                        matches!(
                            t.verified_chunk_slice(&corrupt, i),
                            Err(SzhiError::ChunkChecksum { index, .. }) if index == i
                        )
                    })
                    .collect();
                assert_eq!(
                    failing.len(),
                    1,
                    "flip at data byte {} must fail exactly one chunk, failed {failing:?}",
                    pos - data_start
                );
            }
        }
    }

    #[test]
    fn v3_unknown_per_chunk_pipeline_id_is_rejected_with_the_typed_error() {
        // The dedicated typed error names the chunk and the id, so callers
        // can tell "needs a newer decoder" from garbage. Byte-flip the mode
        // byte of one entry to an id outside the catalogue.
        let (header, span) = sample_v2_header();
        let bytes = write_stream_v3(&header, span, &sample_v3_chunks(8));
        let table_at = span_offset(&header) + 12 + 8;
        // The mode byte of entry 3 lives 16 bytes into its 21-byte entry.
        let mut corrupt = bytes.clone();
        corrupt[table_at + 21 * 3 + 16] = 0xEE;
        assert!(matches!(
            read_stream_chunked(&corrupt),
            Err(SzhiError::UnknownPipelineId {
                chunk: Some(3),
                id: 0xEE
            })
        ));
        // Every unknown value a single byte flip can produce on any
        // entry's mode byte yields the typed error (never a panic, never
        // the generic invalid-stream fallback).
        for entry in 0..8usize {
            let at = table_at + 21 * entry + 16;
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[at] ^= flip;
                let flipped = corrupt[at];
                match read_stream_chunked(&corrupt) {
                    Ok(_) => assert!(
                        PipelineSpec::from_id(flipped).is_some(),
                        "entry {entry}: unknown id {flipped} accepted"
                    ),
                    Err(SzhiError::UnknownPipelineId { chunk, id }) => {
                        assert_eq!(chunk, Some(entry));
                        assert_eq!(id, flipped);
                        assert!(PipelineSpec::from_id(id).is_none());
                    }
                    Err(other) => panic!("entry {entry} flip {flip:#x}: unexpected {other:?}"),
                }
            }
        }
        // The header's own pipeline byte gets the headerless variant.
        let mut corrupt = bytes;
        corrupt[38] = 0xEE;
        assert!(matches!(
            read_stream_chunked(&corrupt),
            Err(SzhiError::UnknownPipelineId {
                chunk: None,
                id: 0xEE
            })
        ));
    }

    #[test]
    fn v3_single_byte_corruption_never_panics() {
        // Byte-flip fuzz of the whole v3 stream: parsing, checksum
        // verification and every chunk-section read must produce typed
        // errors only — never a panic or allocation abort.
        let (header, span) = sample_v2_header();
        let bytes = write_stream_v3(&header, span, &sample_v3_chunks(8));
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                let result = std::panic::catch_unwind(|| {
                    if let Ok((_, table)) = read_stream_chunked(&corrupt) {
                        for i in 0..table.entries.len() {
                            if let Ok(slice) = table.verified_chunk_slice(&corrupt, i) {
                                let _ = read_chunk_sections(slice);
                            }
                        }
                    }
                });
                assert!(
                    result.is_ok(),
                    "v3 parsing panicked with byte {pos} xor {flip:#x}"
                );
            }
        }
    }

    // -----------------------------------------------------------------
    // v4 (trailered) container
    // -----------------------------------------------------------------

    #[test]
    fn v4_stream_roundtrips_modes_checksums_and_trailer() {
        let (header, span) = sample_v2_header();
        let chunks = sample_v3_chunks(8);
        let bytes = write_stream_v4(&header, span, &chunks);
        assert_eq!(stream_version(&bytes).unwrap(), VERSION_TRAILERED);
        assert_eq!(&bytes[bytes.len() - 4..], &TRAILER_MAGIC);
        let (h, table) = read_stream_trailered(&bytes).unwrap();
        assert_eq!(h, header);
        assert_eq!(table.span, span);
        assert_eq!(table.entries.len(), 8);
        // The data area starts right after the span — chunk bodies precede
        // the table in a v4 stream.
        assert_eq!(table.data_start, span_offset(&header) + 12);
        for (i, (spec, body)) in chunks.iter().enumerate() {
            let e = &table.entries[i];
            assert_eq!(e.pipeline, *spec);
            assert_eq!(e.checksum, Some(crc32(body)));
            assert_eq!(table.verified_chunk_slice(&bytes, i).unwrap(), &body[..]);
        }
        // The dispatching reader agrees with the strict one; the v2/v3
        // readers reject the stream.
        let (h2, table2) = read_chunk_table(&bytes).unwrap();
        assert_eq!(h2, h);
        assert_eq!(table2, table);
        assert!(matches!(
            read_stream_chunked(&bytes),
            Err(SzhiError::InvalidStream(_))
        ));
    }

    #[test]
    fn v4_reader_rejects_other_versions_and_v1_gets_a_clear_error() {
        let (header, span) = sample_v2_header();
        let v3 = write_stream_v3(&header, span, &sample_v3_chunks(8));
        assert!(matches!(
            read_stream_trailered(&v3),
            Err(SzhiError::InvalidStream(_))
        ));
        // Through the dispatching reader: v1 is named monolithic, with a
        // pointer at `decompress`, not a confusing table-parse failure.
        let v1 = write_stream(&header, &[], &[], &[]);
        match read_chunk_table(&v1) {
            Err(SzhiError::InvalidStream(msg)) => {
                assert!(msg.contains("monolithic"), "unexpected message: {msg}");
                assert!(msg.contains("decompress"), "unexpected message: {msg}");
            }
            other => panic!("v1 not rejected clearly: {other:?}"),
        }
        // Unknown future versions are named as unsupported.
        let mut v6 = write_stream_v4(&header, span, &sample_v3_chunks(8));
        v6[4] = 6;
        match read_chunk_table(&v6) {
            Err(SzhiError::InvalidStream(msg)) => {
                assert!(msg.contains("unsupported"), "unexpected message: {msg}");
                assert!(msg.contains('6'), "unexpected message: {msg}");
            }
            other => panic!("v6 not rejected clearly: {other:?}"),
        }
        // A version byte stamped 5 over a v4 stream is *recognised* but
        // fails the v5 trailer magic with the typed trailer error.
        let mut fake_v5 = write_stream_v4(&header, span, &sample_v3_chunks(8));
        fake_v5[4] = 5;
        assert!(matches!(
            read_chunk_table(&fake_v5),
            Err(SzhiError::TrailerCorrupt(msg)) if msg.contains("magic")
        ));
    }

    #[test]
    fn v4_trailer_corruption_yields_the_typed_trailer_error() {
        let (header, span) = sample_v2_header();
        let bytes = write_stream_v4(&header, span, &sample_v3_chunks(8));
        let trailer_at = bytes.len() - TRAILER_SIZE;

        // Broken closing magic.
        let mut corrupt = bytes.clone();
        corrupt[bytes.len() - 1] ^= 0xFF;
        assert!(matches!(
            read_stream_trailered(&corrupt),
            Err(SzhiError::TrailerCorrupt(msg)) if msg.contains("magic")
        ));

        // A table offset that cannot place the table before the trailer.
        for bad_offset in [0u64, u64::MAX, bytes.len() as u64] {
            let mut corrupt = bytes.clone();
            corrupt[trailer_at..trailer_at + 8].copy_from_slice(&bad_offset.to_le_bytes());
            assert!(
                matches!(
                    read_stream_trailered(&corrupt),
                    Err(SzhiError::TrailerCorrupt(_))
                ),
                "table offset {bad_offset} not rejected"
            );
        }

        // A chunk count disagreeing with the plan (or absurd).
        for bad_count in [0u64, 7, 9, u64::MAX] {
            let mut corrupt = bytes.clone();
            corrupt[trailer_at + 8..trailer_at + 16].copy_from_slice(&bad_count.to_le_bytes());
            assert!(
                matches!(
                    read_stream_trailered(&corrupt),
                    Err(SzhiError::TrailerCorrupt(_))
                ),
                "chunk count {bad_count} not rejected"
            );
        }

        // A stream too short to even hold a trailer.
        assert!(matches!(
            read_stream_trailered(&bytes[..span_offset(&header) + 12 + 3]),
            Err(SzhiError::TrailerCorrupt(_)) | Err(SzhiError::InvalidStream(_))
        ));
    }

    #[test]
    fn v4_table_corruption_is_caught_by_the_table_checksum() {
        // Every byte flip anywhere in the chunk table must be rejected by
        // the trailer's table CRC32 — before any entry is parsed.
        let (header, span) = sample_v2_header();
        let bytes = write_stream_v4(&header, span, &sample_v3_chunks(8));
        let trailer_at = bytes.len() - TRAILER_SIZE;
        let table_at = trailer_at - 8 * V3_ENTRY_SIZE;
        for pos in table_at..trailer_at {
            for flip in [0x01u8, 0x80] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                assert!(
                    matches!(
                        read_stream_trailered(&corrupt),
                        Err(SzhiError::TableChecksum { .. })
                    ),
                    "table flip at {} xor {flip:#x} not caught",
                    pos - table_at
                );
            }
        }
        // Flipping the stored table CRC itself is also a checksum mismatch.
        let mut corrupt = bytes.clone();
        corrupt[trailer_at + 16] ^= 0x01;
        assert!(matches!(
            read_stream_trailered(&corrupt),
            Err(SzhiError::TableChecksum { .. })
        ));
    }

    #[test]
    fn v4_data_area_corruption_is_caught_by_the_owning_chunks_checksum() {
        let (header, span) = sample_v2_header();
        let chunks = sample_v3_chunks(8);
        let bytes = write_stream_v4(&header, span, &chunks);
        let (_, table) = read_stream_trailered(&bytes).unwrap();
        let data_start = table.data_start;
        let data_end = data_start + chunks.iter().map(|(_, b)| b.len()).sum::<usize>();
        for pos in data_start..data_end {
            for flip in [0x01u8, 0x80] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                // The table and trailer are untouched, so parsing succeeds…
                let (_, t) = read_stream_trailered(&corrupt).unwrap();
                // …and exactly the chunk owning the flipped byte fails.
                let failing: Vec<usize> = (0..t.entries.len())
                    .filter(|&i| {
                        matches!(
                            t.verified_chunk_slice(&corrupt, i),
                            Err(SzhiError::ChunkChecksum { index, .. }) if index == i
                        )
                    })
                    .collect();
                assert_eq!(
                    failing.len(),
                    1,
                    "flip at data byte {} must fail exactly one chunk, failed {failing:?}",
                    pos - data_start
                );
            }
        }
    }

    #[test]
    fn v4_every_truncation_yields_a_typed_error_not_a_panic() {
        let (header, span) = sample_v2_header();
        let bytes = write_stream_v4(&header, span, &sample_v3_chunks(8));
        for cut in 0..bytes.len() {
            let result = std::panic::catch_unwind(|| read_stream_trailered(&bytes[..cut]));
            let parsed =
                result.unwrap_or_else(|_| panic!("read_stream_trailered panicked at cut {cut}"));
            assert!(
                parsed.is_err(),
                "truncation at {cut}/{} went undetected",
                bytes.len()
            );
        }
    }

    #[test]
    fn v4_single_byte_corruption_never_panics() {
        // Byte-flip fuzz of the whole v4 stream — header, span, data area,
        // chunk table and trailer: parsing, checksum verification and every
        // chunk-section read must produce typed errors only, never a panic
        // or allocation abort.
        let (header, span) = sample_v2_header();
        let bytes = write_stream_v4(&header, span, &sample_v3_chunks(8));
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                let result = std::panic::catch_unwind(|| {
                    if let Ok((_, table)) = read_stream_trailered(&corrupt) {
                        for i in 0..table.entries.len() {
                            if let Ok(slice) = table.verified_chunk_slice(&corrupt, i) {
                                let _ = read_chunk_sections(slice);
                            }
                        }
                    }
                });
                assert!(
                    result.is_ok(),
                    "v4 parsing panicked with byte {pos} xor {flip:#x}"
                );
            }
        }
    }

    // -----------------------------------------------------------------
    // v5 (tuned) container
    // -----------------------------------------------------------------

    /// A small config dictionary: three distinct per-level selections for
    /// the cuSZ-Hi 4-level header.
    fn sample_configs() -> Vec<Vec<LevelConfig>> {
        let lc = |scheme, spline| LevelConfig { scheme, spline };
        vec![
            vec![lc(Scheme::MultiDim, Spline::Cubic); 4],
            vec![lc(Scheme::DimSequence, Spline::Linear); 4],
            vec![
                lc(Scheme::MultiDim, Spline::Cubic),
                lc(Scheme::MultiDim, Spline::Linear),
                lc(Scheme::DimSequence, Spline::Cubic),
                lc(Scheme::DimSequence, Spline::Linear),
            ],
        ]
    }

    /// Chunks cycling through the dictionary's config ids and both
    /// production pipelines.
    fn sample_v5_chunks(n: usize) -> Vec<(PipelineSpec, u16, Vec<u8>)> {
        sample_bodies(n)
            .into_iter()
            .enumerate()
            .map(|(i, body)| {
                let spec = if i % 2 == 0 {
                    PipelineSpec::CR
                } else {
                    PipelineSpec::TP
                };
                (spec, (i % 3) as u16, body)
            })
            .collect()
    }

    #[test]
    fn v5_stream_roundtrips_modes_configs_and_checksums() {
        let (header, span) = sample_v2_header();
        let configs = sample_configs();
        let chunks = sample_v5_chunks(8);
        let bytes = write_stream_v5(&header, span, &configs, &chunks);
        assert_eq!(stream_version(&bytes).unwrap(), VERSION_TUNED);
        assert_eq!(&bytes[bytes.len() - 4..], &TRAILER_MAGIC_V5);
        let (h, table) = read_stream_trailered(&bytes).unwrap();
        assert_eq!(h, header);
        assert_eq!(table.span, span);
        assert_eq!(table.entries.len(), 8);
        assert_eq!(table.configs, configs);
        // Data area directly after the span, exactly like v4.
        assert_eq!(table.data_start, span_offset(&header) + 12);
        for (i, (spec, config, body)) in chunks.iter().enumerate() {
            let e = &table.entries[i];
            assert_eq!(e.pipeline, *spec);
            assert_eq!(e.config, Some(*config));
            assert_eq!(e.checksum, Some(crc32(body)));
            assert_eq!(table.verified_chunk_slice(&bytes, i).unwrap(), &body[..]);
            // The resolved interpolation config: dictionary levels, the
            // header's stride and block span.
            let interp = table.chunk_interp(&h, i);
            assert_eq!(interp.levels, configs[*config as usize]);
            assert_eq!(interp.anchor_stride, h.interp.anchor_stride);
            assert_eq!(interp.block_span, h.interp.block_span);
            interp.validate().unwrap();
        }
        // The dispatching reader agrees; the v2/v3 readers reject it.
        let (h2, table2) = read_chunk_table(&bytes).unwrap();
        assert_eq!(h2, h);
        assert_eq!(table2, table);
        assert!(matches!(
            read_stream_chunked(&bytes),
            Err(SzhiError::InvalidStream(_))
        ));
    }

    #[test]
    fn v5_unknown_config_id_is_rejected_with_the_typed_error() {
        // Craft a stream whose entry 5 names config id 7 against a 3-entry
        // dictionary — with a *valid* region CRC, so the typed error can
        // only come from the config-id validation itself.
        let (header, span) = sample_v2_header();
        let configs = sample_configs();
        let mut chunks = sample_v5_chunks(8);
        chunks[5].1 = 7;
        let bytes = write_stream_v5(&header, span, &configs, &chunks);
        assert!(matches!(
            read_stream_trailered(&bytes),
            Err(SzhiError::UnknownConfigId {
                chunk: 5,
                id: 7,
                n_configs: 3
            })
        ));
        // An unknown pipeline id in a v5 entry gets its own typed error.
        let mut chunks = sample_v5_chunks(8);
        chunks[2].0 = PipelineSpec::CR; // placeholder; stamp the byte below
        let bytes = write_stream_v5(&header, span, &configs, &chunks);
        let trailer_at = bytes.len() - TRAILER_SIZE;
        let table_offset =
            u64::from_le_bytes(bytes[trailer_at..trailer_at + 8].try_into().unwrap()) as usize;
        let dict_len = 2 + configs.iter().map(|c| 1 + 2 * c.len()).sum::<usize>();
        // Entry 2's pipeline byte: 16 bytes into its 23-byte entry.
        let pid_at = table_offset + dict_len + V5_ENTRY_SIZE * 2 + 16;
        let mut corrupt = bytes.clone();
        corrupt[pid_at] = 0xEE;
        // Restamp the region CRC so only the id is at fault.
        let region_crc = crc32(&corrupt[table_offset..trailer_at]);
        corrupt[trailer_at + 16..trailer_at + 20].copy_from_slice(&region_crc.to_le_bytes());
        assert!(matches!(
            read_stream_trailered(&corrupt),
            Err(SzhiError::UnknownPipelineId {
                chunk: Some(2),
                id: 0xEE
            })
        ));
    }

    #[test]
    fn v5_table_region_corruption_is_caught_by_the_table_checksum() {
        // Every byte flip anywhere in the config dictionary *or* the chunk
        // table must be rejected by the trailer's region CRC32 — before
        // any dictionary entry or table entry is parsed.
        let (header, span) = sample_v2_header();
        let bytes = write_stream_v5(&header, span, &sample_configs(), &sample_v5_chunks(8));
        let trailer_at = bytes.len() - TRAILER_SIZE;
        let table_offset =
            u64::from_le_bytes(bytes[trailer_at..trailer_at + 8].try_into().unwrap()) as usize;
        for pos in table_offset..trailer_at {
            for flip in [0x01u8, 0x80] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                assert!(
                    matches!(
                        read_stream_trailered(&corrupt),
                        Err(SzhiError::TableChecksum { .. })
                    ),
                    "region flip at {} xor {flip:#x} not caught",
                    pos - table_offset
                );
            }
        }
    }

    #[test]
    fn v5_trailer_corruption_yields_the_typed_trailer_error() {
        let (header, span) = sample_v2_header();
        let bytes = write_stream_v5(&header, span, &sample_configs(), &sample_v5_chunks(8));
        let trailer_at = bytes.len() - TRAILER_SIZE;

        // Broken closing magic — including the one that would spell the
        // v4 magic.
        let mut corrupt = bytes.clone();
        corrupt[bytes.len() - 1] = b'4';
        assert!(matches!(
            read_stream_trailered(&corrupt),
            Err(SzhiError::TrailerCorrupt(msg)) if msg.contains("magic")
        ));

        // A table offset that cannot place the region before the trailer.
        for bad_offset in [0u64, u64::MAX, bytes.len() as u64] {
            let mut corrupt = bytes.clone();
            corrupt[trailer_at..trailer_at + 8].copy_from_slice(&bad_offset.to_le_bytes());
            assert!(
                matches!(
                    read_stream_trailered(&corrupt),
                    Err(SzhiError::TrailerCorrupt(_))
                ),
                "table offset {bad_offset} not rejected"
            );
        }

        // A chunk count disagreeing with the plan (or absurd).
        for bad_count in [0u64, 7, 9, u64::MAX] {
            let mut corrupt = bytes.clone();
            corrupt[trailer_at + 8..trailer_at + 16].copy_from_slice(&bad_count.to_le_bytes());
            assert!(
                matches!(
                    read_stream_trailered(&corrupt),
                    Err(SzhiError::TrailerCorrupt(_))
                ),
                "chunk count {bad_count} not rejected"
            );
        }
    }

    #[test]
    fn v5_data_area_corruption_is_caught_by_the_owning_chunks_checksum() {
        let (header, span) = sample_v2_header();
        let chunks = sample_v5_chunks(8);
        let bytes = write_stream_v5(&header, span, &sample_configs(), &chunks);
        let (_, table) = read_stream_trailered(&bytes).unwrap();
        let data_start = table.data_start;
        let data_end = data_start + chunks.iter().map(|(_, _, b)| b.len()).sum::<usize>();
        for pos in data_start..data_end {
            for flip in [0x01u8, 0x80] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                let (_, t) = read_stream_trailered(&corrupt).unwrap();
                let failing: Vec<usize> = (0..t.entries.len())
                    .filter(|&i| {
                        matches!(
                            t.verified_chunk_slice(&corrupt, i),
                            Err(SzhiError::ChunkChecksum { index, .. }) if index == i
                        )
                    })
                    .collect();
                assert_eq!(
                    failing.len(),
                    1,
                    "flip at data byte {} must fail exactly one chunk, failed {failing:?}",
                    pos - data_start
                );
            }
        }
    }

    #[test]
    fn v5_every_truncation_yields_a_typed_error_not_a_panic() {
        let (header, span) = sample_v2_header();
        let bytes = write_stream_v5(&header, span, &sample_configs(), &sample_v5_chunks(8));
        for cut in 0..bytes.len() {
            let result = std::panic::catch_unwind(|| read_stream_trailered(&bytes[..cut]));
            let parsed =
                result.unwrap_or_else(|_| panic!("read_stream_trailered panicked at cut {cut}"));
            assert!(
                parsed.is_err(),
                "truncation at {cut}/{} went undetected",
                bytes.len()
            );
        }
    }

    #[test]
    fn v5_single_byte_corruption_never_panics() {
        // The full 3-mask byte-flip fuzz over header, span, data area,
        // dictionary, table and trailer: parsing, checksum verification
        // and every chunk-section read must produce typed errors only.
        let (header, span) = sample_v2_header();
        let bytes = write_stream_v5(&header, span, &sample_configs(), &sample_v5_chunks(8));
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                let result = std::panic::catch_unwind(|| {
                    if let Ok((_, table)) = read_stream_trailered(&corrupt) {
                        for i in 0..table.entries.len() {
                            if let Ok(slice) = table.verified_chunk_slice(&corrupt, i) {
                                let _ = read_chunk_sections(slice);
                            }
                        }
                    }
                });
                assert!(
                    result.is_ok(),
                    "v5 parsing panicked with byte {pos} xor {flip:#x}"
                );
            }
        }
    }

    #[test]
    fn chunk_bodies_reject_trailing_bytes() {
        let mut body = Vec::new();
        write_sections(&mut body, &[1.0], &[], &[7u8; 4]);
        assert!(read_chunk_sections(&body).is_ok());
        body.push(0xAB);
        assert!(matches!(
            read_chunk_sections(&body),
            Err(SzhiError::InvalidStream(msg)) if msg.contains("trailing")
        ));
    }
}
