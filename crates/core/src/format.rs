//! The self-describing compressed stream format.
//!
//! A szhi stream consists of a fixed header followed by three sections:
//! the losslessly stored anchor values, the outlier side channel, and the
//! lossless-pipeline-encoded quantization codes. Everything needed to
//! decompress (shape, error bound, predictor configuration, pipeline
//! identifier, reorder flag) lives in the header, so `decompress` takes only
//! the byte stream.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "SZHI" | version u8 | rank u8 | nz u64 | ny u64 | nx u64
//! | abs_eb f64 | pipeline_id u8 | reorder u8 | anchor_stride u16
//! | block_span 3×u16 | n_levels u8 | n_levels × (scheme u8, spline u8)
//! | n_anchors u64 | n_anchors × f32
//! | n_outliers u64 | n_outliers × (index u64, value f32)
//! | payload_len u64 | payload bytes
//! ```

use crate::error::SzhiError;
use szhi_codec::bitio::{put_f32, put_f64, put_u16, put_u64, put_u8, ByteCursor};
use szhi_codec::PipelineSpec;
use szhi_ndgrid::Dims;
use szhi_predictor::{InterpConfig, LevelConfig, Outlier, Scheme, Spline};

/// Magic bytes identifying a szhi stream.
pub const MAGIC: [u8; 4] = *b"SZHI";
/// Stream format version.
pub const VERSION: u8 = 1;

/// The decoded header of a compressed stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// Shape of the original field.
    pub dims: Dims,
    /// Absolute error bound the stream was produced with.
    pub abs_eb: f64,
    /// Lossless pipeline used for the quantization codes.
    pub pipeline: PipelineSpec,
    /// Whether the codes were level-reordered before encoding.
    pub reorder: bool,
    /// Interpolation predictor configuration.
    pub interp: InterpConfig,
}

fn scheme_id(s: Scheme) -> u8 {
    match s {
        Scheme::DimSequence => 0,
        Scheme::MultiDim => 1,
    }
}

fn scheme_from(id: u8) -> Result<Scheme, SzhiError> {
    match id {
        0 => Ok(Scheme::DimSequence),
        1 => Ok(Scheme::MultiDim),
        _ => Err(SzhiError::InvalidStream(format!("unknown scheme id {id}"))),
    }
}

fn spline_id(s: Spline) -> u8 {
    match s {
        Spline::Linear => 0,
        Spline::Cubic => 1,
    }
}

fn spline_from(id: u8) -> Result<Spline, SzhiError> {
    match id {
        0 => Ok(Spline::Linear),
        1 => Ok(Spline::Cubic),
        _ => Err(SzhiError::InvalidStream(format!("unknown spline id {id}"))),
    }
}

/// Serialises the header and the anchor/outlier/payload sections into a
/// complete stream.
pub fn write_stream(
    header: &Header,
    anchors: &[f32],
    outliers: &[Outlier],
    payload: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + anchors.len() * 4 + outliers.len() * 12 + payload.len());
    out.extend_from_slice(&MAGIC);
    put_u8(&mut out, VERSION);
    put_u8(&mut out, header.dims.rank() as u8);
    put_u64(&mut out, header.dims.nz() as u64);
    put_u64(&mut out, header.dims.ny() as u64);
    put_u64(&mut out, header.dims.nx() as u64);
    put_f64(&mut out, header.abs_eb);
    put_u8(&mut out, header.pipeline.id());
    put_u8(&mut out, header.reorder as u8);
    put_u16(&mut out, header.interp.anchor_stride as u16);
    for &s in &header.interp.block_span {
        put_u16(&mut out, s as u16);
    }
    put_u8(&mut out, header.interp.levels.len() as u8);
    for lc in &header.interp.levels {
        put_u8(&mut out, scheme_id(lc.scheme));
        put_u8(&mut out, spline_id(lc.spline));
    }
    put_u64(&mut out, anchors.len() as u64);
    for &a in anchors {
        put_f32(&mut out, a);
    }
    put_u64(&mut out, outliers.len() as u64);
    for o in outliers {
        put_u64(&mut out, o.index);
        put_f32(&mut out, o.value);
    }
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    out
}

/// Reads a u64 element count and checks that `count * elem_size` bytes can
/// still be present in the stream, so corrupted counts fail cleanly instead
/// of driving a huge `Vec::with_capacity`.
fn checked_count(
    cur: &mut ByteCursor<'_>,
    elem_size: usize,
    what: &str,
) -> Result<usize, SzhiError> {
    let count = cur.get_u64().map_err(SzhiError::from)?;
    let need = count.checked_mul(elem_size as u64);
    match need {
        Some(bytes) if bytes <= cur.remaining() as u64 => Ok(count as usize),
        _ => Err(SzhiError::InvalidStream(format!(
            "{what} count {count} exceeds the {} bytes left in the stream",
            cur.remaining()
        ))),
    }
}

/// The sections of a parsed stream: header, anchors, outliers, payload.
pub type StreamSections = (Header, Vec<f32>, Vec<Outlier>, Vec<u8>);

/// Parses a stream back into its header and sections.
pub fn read_stream(bytes: &[u8]) -> Result<StreamSections, SzhiError> {
    let mut cur = ByteCursor::new(bytes);
    let magic = cur
        .take(4)
        .map_err(|_| SzhiError::InvalidStream("stream too short for magic".into()))?;
    if magic != MAGIC {
        return Err(SzhiError::InvalidStream(
            "not a szhi stream (bad magic)".into(),
        ));
    }
    let version = cur.get_u8().map_err(SzhiError::from)?;
    if version != VERSION {
        return Err(SzhiError::InvalidStream(format!(
            "unsupported version {version}"
        )));
    }
    let rank = cur.get_u8().map_err(SzhiError::from)? as usize;
    let nz = cur.get_u64().map_err(SzhiError::from)? as usize;
    let ny = cur.get_u64().map_err(SzhiError::from)? as usize;
    let nx = cur.get_u64().map_err(SzhiError::from)? as usize;
    // Validate the shape before handing it to the `Dims` constructors, whose
    // non-zero asserts would otherwise turn a corrupt stream into a panic.
    // The element-count cap (2^40 points = 4 TiB of f32) rejects absurd
    // corrupt shapes before any decompressor tries to allocate the output.
    const MAX_POINTS: u64 = 1 << 40;
    if nz == 0 || ny == 0 || nx == 0 {
        return Err(SzhiError::InvalidStream(format!(
            "zero dimension in header: {nz}x{ny}x{nx}"
        )));
    }
    match (nz as u64)
        .checked_mul(ny as u64)
        .and_then(|p| p.checked_mul(nx as u64))
    {
        Some(points) if points <= MAX_POINTS => {}
        _ => {
            return Err(SzhiError::InvalidStream(format!(
                "implausible field size {nz}x{ny}x{nx}"
            )))
        }
    }
    let dims = match rank {
        1 => Dims::d1(nx),
        2 => Dims::d2(ny, nx),
        3 => Dims::d3(nz, ny, nx),
        _ => return Err(SzhiError::InvalidStream(format!("unsupported rank {rank}"))),
    };
    let abs_eb = cur.get_f64().map_err(SzhiError::from)?;
    // A corrupt bound would otherwise fail asserts deep in the quantizer.
    if !(abs_eb.is_finite() && abs_eb > 0.0) {
        return Err(SzhiError::InvalidStream(format!(
            "invalid error bound {abs_eb}"
        )));
    }
    let pipeline_id = cur.get_u8().map_err(SzhiError::from)?;
    let pipeline = PipelineSpec::from_id(pipeline_id)
        .ok_or_else(|| SzhiError::InvalidStream(format!("unknown pipeline id {pipeline_id}")))?;
    let reorder = cur.get_u8().map_err(SzhiError::from)? != 0;
    let anchor_stride = cur.get_u16().map_err(SzhiError::from)? as usize;
    let mut block_span = [0usize; 3];
    for s in block_span.iter_mut() {
        *s = cur.get_u16().map_err(SzhiError::from)? as usize;
    }
    let n_levels = cur.get_u8().map_err(SzhiError::from)? as usize;
    let mut levels = Vec::with_capacity(n_levels);
    for _ in 0..n_levels {
        let scheme = scheme_from(cur.get_u8().map_err(SzhiError::from)?)?;
        let spline = spline_from(cur.get_u8().map_err(SzhiError::from)?)?;
        levels.push(LevelConfig { scheme, spline });
    }
    // Mirror every invariant `InterpConfig::validate` asserts, so a corrupt
    // header surfaces as a typed error here instead of a panic downstream.
    if !anchor_stride.is_power_of_two()
        || anchor_stride < 2
        || levels.len() != anchor_stride.trailing_zeros() as usize
    {
        return Err(SzhiError::InvalidStream(format!(
            "inconsistent predictor configuration: stride {anchor_stride}, {} levels",
            levels.len()
        )));
    }
    if block_span.iter().any(|&s| s < anchor_stride) {
        return Err(SzhiError::InvalidStream(format!(
            "block span {block_span:?} smaller than anchor stride {anchor_stride}"
        )));
    }
    let interp = InterpConfig {
        anchor_stride,
        block_span,
        levels,
    };

    // Validate every untrusted count against the bytes actually present
    // before allocating: a corrupted count must produce a typed error, not
    // an allocation abort or OOM.
    let n_anchors = checked_count(&mut cur, 4, "anchors")?;
    let mut anchors = Vec::with_capacity(n_anchors);
    for _ in 0..n_anchors {
        anchors.push(cur.get_f32().map_err(SzhiError::from)?);
    }
    let n_outliers = checked_count(&mut cur, 12, "outliers")?;
    let mut outliers = Vec::with_capacity(n_outliers);
    for _ in 0..n_outliers {
        let index = cur.get_u64().map_err(SzhiError::from)?;
        let value = cur.get_f32().map_err(SzhiError::from)?;
        outliers.push(Outlier { index, value });
    }
    let payload_len = checked_count(&mut cur, 1, "payload")?;
    let payload = cur.take(payload_len).map_err(SzhiError::from)?.to_vec();

    Ok((
        Header {
            dims,
            abs_eb,
            pipeline,
            reorder,
            interp,
        },
        anchors,
        outliers,
        payload,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Header {
        Header {
            dims: Dims::d3(20, 30, 40),
            abs_eb: 1.5e-3,
            pipeline: PipelineSpec::CR,
            reorder: true,
            interp: InterpConfig::cusz_hi(),
        }
    }

    #[test]
    fn stream_roundtrips() {
        let header = sample_header();
        let anchors = vec![1.0f32, -2.5, 3.25];
        let outliers = vec![
            Outlier {
                index: 7,
                value: 9.5,
            },
            Outlier {
                index: 1000,
                value: -0.125,
            },
        ];
        let payload = vec![1u8, 2, 3, 4, 5];
        let bytes = write_stream(&header, &anchors, &outliers, &payload);
        let (h, a, o, p) = read_stream(&bytes).unwrap();
        assert_eq!(h, header);
        assert_eq!(a, anchors);
        assert_eq!(o, outliers);
        assert_eq!(p, payload);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let header = sample_header();
        let mut bytes = write_stream(&header, &[], &[], &[]);
        bytes[0] = b'X';
        assert!(matches!(
            read_stream(&bytes),
            Err(SzhiError::InvalidStream(_))
        ));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let header = sample_header();
        let mut bytes = write_stream(&header, &[], &[], &[]);
        bytes[4] = 99;
        assert!(matches!(
            read_stream(&bytes),
            Err(SzhiError::InvalidStream(_))
        ));
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let header = sample_header();
        let bytes = write_stream(&header, &[1.0; 10], &[], &[7u8; 100]);
        for cut in [3usize, 20, bytes.len() - 1] {
            assert!(
                read_stream(&bytes[..cut]).is_err(),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn two_d_headers_roundtrip() {
        let header = Header {
            dims: Dims::d2(1800, 3600),
            abs_eb: 0.25,
            pipeline: PipelineSpec::TP,
            reorder: false,
            interp: InterpConfig::cusz_i(),
        };
        let bytes = write_stream(&header, &[], &[], &[]);
        let (h, _, _, _) = read_stream(&bytes).unwrap();
        assert_eq!(h, header);
    }

    #[test]
    fn header_fields_roundtrip_exactly() {
        // The satellite contract: magic, version, dims, pipeline mode and
        // error bound all survive a serialise/parse cycle bit-exactly.
        for (dims, pipeline, reorder, abs_eb) in [
            (Dims::d1(1_000_000), PipelineSpec::CR, false, 1e-9),
            (Dims::d2(1800, 3600), PipelineSpec::TP, true, 0.5),
            (
                Dims::d3(512, 512, 512),
                PipelineSpec::CR,
                true,
                f64::MIN_POSITIVE,
            ),
        ] {
            let header = Header {
                dims,
                abs_eb,
                pipeline,
                reorder,
                interp: InterpConfig::cusz_hi(),
            };
            let bytes = write_stream(&header, &[], &[], &[]);
            assert_eq!(&bytes[..4], &MAGIC);
            assert_eq!(bytes[4], VERSION);
            let (h, _, _, _) = read_stream(&bytes).unwrap();
            assert_eq!(h, header);
            assert_eq!(
                h.abs_eb.to_bits(),
                abs_eb.to_bits(),
                "error bound must be bit-exact"
            );
        }
    }

    #[test]
    fn every_truncation_yields_a_typed_error_not_a_panic() {
        let header = sample_header();
        let anchors = [0.5f32; 9];
        let outliers = [Outlier {
            index: 3,
            value: 1.5,
        }];
        let bytes = write_stream(&header, &anchors, &outliers, &[0xAB; 33]);
        for cut in 0..bytes.len() {
            let result = std::panic::catch_unwind(|| read_stream(&bytes[..cut]));
            let parsed = result.unwrap_or_else(|_| panic!("read_stream panicked at cut {cut}"));
            assert!(
                parsed.is_err(),
                "truncation at {cut}/{} went undetected",
                bytes.len()
            );
        }
    }

    #[test]
    fn corrupt_section_counts_error_instead_of_allocating() {
        // A flipped length field must not drive `Vec::with_capacity` into an
        // allocation abort: it has to surface as `SzhiError::InvalidStream`.
        let header = sample_header();
        let bytes = write_stream(&header, &[1.0; 4], &[], &[9u8; 16]);
        // n_anchors lives right after the fixed header; find it by locating
        // the known count (4) and stamping u64::MAX over it.
        let fixed = bytes.len() - (8 + 4 * 4) - 8 - (8 + 16);
        for (offset, label) in [
            (fixed, "anchors"),
            (fixed + 8 + 16, "outliers"),
            (fixed + 8 + 16 + 8, "payload"),
        ] {
            let mut corrupt = bytes.clone();
            corrupt[offset..offset + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            match read_stream(&corrupt) {
                Err(SzhiError::InvalidStream(msg)) => {
                    assert!(msg.contains("count"), "{label}: unexpected message {msg}")
                }
                other => panic!("{label}: corrupt count not rejected: {other:?}"),
            }
        }
    }

    #[test]
    fn zero_dims_and_corrupt_bounds_error_instead_of_panicking() {
        // Layout: magic 4 | version 1 | rank 1 | nz u64 @6 | ny u64 @14
        // | nx u64 @22 | abs_eb f64 @30. Zeroed dimensions and non-finite
        // or non-positive bounds must all surface as typed errors: the
        // `Dims` constructors and the quantizer assert on them.
        let bytes = write_stream(&sample_header(), &[], &[], &[]);
        for dim_offset in [6usize, 14, 22] {
            let mut corrupt = bytes.clone();
            corrupt[dim_offset..dim_offset + 8].copy_from_slice(&0u64.to_le_bytes());
            assert!(
                matches!(read_stream(&corrupt), Err(SzhiError::InvalidStream(_))),
                "zero dim at offset {dim_offset} not rejected"
            );
            corrupt[dim_offset..dim_offset + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            assert!(
                matches!(read_stream(&corrupt), Err(SzhiError::InvalidStream(_))),
                "absurd dim at offset {dim_offset} not rejected"
            );
        }
        for bad_eb in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
            let mut corrupt = bytes.clone();
            corrupt[30..38].copy_from_slice(&bad_eb.to_le_bytes());
            assert!(
                matches!(read_stream(&corrupt), Err(SzhiError::InvalidStream(_))),
                "bad error bound {bad_eb} not rejected"
            );
        }
    }

    #[test]
    fn single_byte_corruption_never_panics() {
        let header = sample_header();
        let bytes = write_stream(
            &header,
            &[2.0; 3],
            &[Outlier {
                index: 1,
                value: 0.5,
            }],
            &[7u8; 20],
        );
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                let result = std::panic::catch_unwind(|| {
                    let _ = read_stream(&corrupt);
                });
                assert!(
                    result.is_ok(),
                    "read_stream panicked with byte {pos} xor {flip:#x}"
                );
            }
        }
    }

    #[test]
    fn inconsistent_predictor_config_is_rejected() {
        let header = sample_header();
        let mut bytes = write_stream(&header, &[], &[], &[]);
        // Corrupt the anchor stride (offset: 4 magic + 1 ver + 1 rank + 24 dims + 8 eb + 1 pid + 1 reorder = 40).
        bytes[40] = 12;
        bytes[41] = 0;
        assert!(read_stream(&bytes).is_err());
    }
}
