//! The end-to-end cuSZ-Hi compression and decompression pipelines.
//!
//! Two engines share the predictor and pipeline layers:
//!
//! * the **monolithic** engine compresses the whole grid into one v1
//!   stream (one predictor pass, one pipeline payload);
//! * the **chunked** engine ([`compress_chunked`]) splits the grid into
//!   independent anchor-aligned chunks ([`szhi_ndgrid::ChunkPlan`]) and
//!   compresses each into its own body of a v2 stream, in parallel over
//!   chunks. Chunks decompress independently too — [`decompress`] fans the
//!   work out again, and [`decompress_chunk`] random-accesses a single
//!   chunk without touching the rest of the stream.
//!
//! Chunked streams are byte-identical regardless of the worker-thread count:
//! every chunk is a pure function of (its sub-field, the config), and the
//! container assembles them in chunk order.

use crate::config::{PipelineMode, SzhiConfig};
use crate::error::SzhiError;
use crate::format::{
    read_chunk_sections, read_stream, read_stream_v2, stream_version, write_sections, write_stream,
    write_stream_v2, Header, VERSION,
};
use rayon::prelude::*;
use szhi_ndgrid::{ChunkPlan, Dims, Grid, Region};
use szhi_predictor::autotune;
use szhi_predictor::{InterpConfig, InterpOutput, InterpPredictor, LevelOrder};

/// Statistics of one compression run, returned by [`compress_with_stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStats {
    /// Uncompressed input size in bytes.
    pub original_bytes: usize,
    /// Compressed output size in bytes.
    pub compressed_bytes: usize,
    /// Compression ratio (`original / compressed`).
    pub compression_ratio: f64,
    /// Absolute error bound used.
    pub abs_eb: f64,
    /// Number of losslessly stored anchors.
    pub anchors: usize,
    /// Number of outlier points.
    pub outliers: usize,
    /// Size in bytes of the pipeline-encoded quantization codes.
    pub encoded_codes_bytes: usize,
}

/// Compresses `data` under `cfg`, returning the self-describing byte
/// stream. With `cfg.chunk_span` set this produces a chunked (v2) stream,
/// otherwise a monolithic (v1) stream.
pub fn compress(data: &Grid<f32>, cfg: &SzhiConfig) -> Result<Vec<u8>, SzhiError> {
    compress_with_stats(data, cfg).map(|(bytes, _)| bytes)
}

/// Compresses `data` under `cfg`, returning the stream and its statistics.
pub fn compress_with_stats(
    data: &Grid<f32>,
    cfg: &SzhiConfig,
) -> Result<(Vec<u8>, CompressionStats), SzhiError> {
    if let Some(span) = cfg.chunk_span {
        return compress_chunked_with_stats(data, cfg, span);
    }
    let (abs_eb, interp_cfg) = prepare(data, cfg)?;
    let dims = data.dims();

    // 2. Lossy decomposition: anchors + one-byte quantization codes +
    //    outliers (§5.1).
    let predictor = predictor_for(&interp_cfg)?;
    let output = predictor.compress(data, abs_eb);

    // 3. Level-ordered reordering of the codes (§5.1.4).
    let codes = if cfg.reorder {
        let order = LevelOrder::new(dims, interp_cfg.anchor_stride);
        order.reorder(&output.codes)
    } else {
        output.codes.clone()
    };

    // 4. Multi-stage lossless encoding (§5.2).
    let pipeline = cfg.mode.pipeline_spec();
    let payload = pipeline.build().encode(&codes);

    let header = Header {
        dims,
        abs_eb,
        pipeline,
        reorder: cfg.reorder,
        interp: interp_cfg,
    };
    let bytes = write_stream(&header, &output.anchors, &output.outliers, &payload);
    let stats = CompressionStats {
        original_bytes: dims.nbytes_f32(),
        compressed_bytes: bytes.len(),
        compression_ratio: dims.nbytes_f32() as f64 / bytes.len() as f64,
        abs_eb,
        anchors: output.anchors.len(),
        outliers: output.outliers.len(),
        encoded_codes_bytes: payload.len(),
    };
    Ok((bytes, stats))
}

/// Compresses `data` into a chunked (v2) stream with the given chunk span,
/// regardless of `cfg.chunk_span`.
pub fn compress_chunked(
    data: &Grid<f32>,
    cfg: &SzhiConfig,
    span: [usize; 3],
) -> Result<Vec<u8>, SzhiError> {
    compress_chunked_with_stats(data, cfg, span).map(|(bytes, _)| bytes)
}

/// Compresses `data` into a chunked (v2) stream, returning the stream and
/// its aggregated statistics.
///
/// The error bound is resolved and the interpolation configuration is
/// auto-tuned **once, globally**, then every chunk is compressed as an
/// independent sub-field (its own anchors, codes and outliers) in parallel.
/// The span must obey the chunk-alignment rule: a positive multiple of the
/// anchor stride along every non-degenerate axis (spans larger than the
/// grid are clamped to one whole-field chunk).
pub fn compress_chunked_with_stats(
    data: &Grid<f32>,
    cfg: &SzhiConfig,
    span: [usize; 3],
) -> Result<(Vec<u8>, CompressionStats), SzhiError> {
    // Validate the span up front — it only needs the (validated) anchor
    // stride, and auto-tuning samples the whole field, so an invalid span
    // must fail before that work. Tuning never changes the stride.
    cfg.interp
        .validate()
        .map_err(|e| SzhiError::InvalidInput(e.to_string()))?;
    let dims = data.dims();
    if span.contains(&0) {
        return Err(SzhiError::InvalidInput(format!(
            "chunk span {span:?} has a zero axis"
        )));
    }
    let plan = ChunkPlan::new(dims, span);
    if !plan.is_aligned(cfg.interp.anchor_stride) {
        return Err(SzhiError::InvalidInput(format!(
            "chunk span {span:?} is not a multiple of the anchor stride {}",
            cfg.interp.anchor_stride
        )));
    }
    if plan.span().iter().any(|&s| s > u32::MAX as usize) {
        // The container stores the span as 3×u32; a silent `as u32`
        // truncation would produce a stream the reader must reject.
        return Err(SzhiError::InvalidInput(format!(
            "chunk span {:?} does not fit the container's u32 span fields",
            plan.span()
        )));
    }
    let (abs_eb, interp_cfg) = prepare(data, cfg)?;
    let predictor = predictor_for(&interp_cfg)?;
    let pipeline = cfg.mode.pipeline_spec();

    // Each chunk is a pure function of (sub-field, config): the par_iter
    // result order is fixed, so the assembled stream is byte-identical at
    // every thread count.
    struct ChunkResult {
        body: Vec<u8>,
        anchors: usize,
        outliers: usize,
        payload_bytes: usize,
    }
    let chunks: Vec<ChunkResult> = (0..plan.len())
        .into_par_iter()
        .map(|i| {
            let region = plan.chunk_at(i);
            let chunk_dims = plan.chunk_dims(i);
            let sub = Grid::from_vec(chunk_dims, data.extract(&region));
            let output = predictor.compress(&sub, abs_eb);
            let codes = if cfg.reorder {
                LevelOrder::new(chunk_dims, interp_cfg.anchor_stride).reorder(&output.codes)
            } else {
                output.codes
            };
            let payload = pipeline.build().encode(&codes);
            let mut body = Vec::new();
            write_sections(&mut body, &output.anchors, &output.outliers, &payload);
            ChunkResult {
                body,
                anchors: output.anchors.len(),
                outliers: output.outliers.len(),
                payload_bytes: payload.len(),
            }
        })
        .collect();

    let header = Header {
        dims,
        abs_eb,
        pipeline,
        reorder: cfg.reorder,
        interp: interp_cfg,
    };
    let anchors = chunks.iter().map(|c| c.anchors).sum();
    let outliers = chunks.iter().map(|c| c.outliers).sum();
    let encoded_codes_bytes = chunks.iter().map(|c| c.payload_bytes).sum();
    let bodies: Vec<Vec<u8>> = chunks.into_iter().map(|c| c.body).collect();
    let bytes = write_stream_v2(&header, plan.span(), &bodies);
    let stats = CompressionStats {
        original_bytes: dims.nbytes_f32(),
        compressed_bytes: bytes.len(),
        compression_ratio: dims.nbytes_f32() as f64 / bytes.len() as f64,
        abs_eb,
        anchors,
        outliers,
        encoded_codes_bytes,
    };
    Ok((bytes, stats))
}

/// Shared input validation: resolves the error bound and selects the
/// (optionally auto-tuned) interpolation configuration.
fn prepare(data: &Grid<f32>, cfg: &SzhiConfig) -> Result<(f64, InterpConfig), SzhiError> {
    if data.is_empty() {
        return Err(SzhiError::InvalidInput(
            "cannot compress an empty field".into(),
        ));
    }
    cfg.interp
        .validate()
        .map_err(|e| SzhiError::InvalidInput(e.to_string()))?;
    let abs_eb = cfg.error_bound.absolute(data.value_range() as f64);
    if !(abs_eb.is_finite() && abs_eb > 0.0) {
        return Err(SzhiError::InvalidInput(format!(
            "invalid error bound {abs_eb}"
        )));
    }
    // Select the interpolation configuration, optionally auto-tuned on a
    // 0.2 % sample (§5.1.3). For chunked streams the tuning runs once on
    // the whole field, so every chunk shares one configuration.
    let interp_cfg = if cfg.auto_tune {
        let (tuned, _) = autotune::tune(data, &cfg.interp);
        tuned
    } else {
        cfg.interp.clone()
    };
    Ok((abs_eb, interp_cfg))
}

fn predictor_for(interp: &InterpConfig) -> Result<InterpPredictor, SzhiError> {
    InterpPredictor::new(interp.clone()).map_err(|e| SzhiError::InvalidInput(e.to_string()))
}

/// Decompresses a stream produced by [`compress`] or [`compress_chunked`]
/// (both container versions are self-describing; chunked streams decompress
/// their chunks in parallel).
pub fn decompress(bytes: &[u8]) -> Result<Grid<f32>, SzhiError> {
    if stream_version(bytes)? == VERSION {
        return decompress_monolithic(bytes);
    }
    let (header, table) = read_stream_v2(bytes)?;
    let plan = ChunkPlan::new(header.dims, table.span);
    let chunks: Vec<Result<Grid<f32>, SzhiError>> = (0..plan.len())
        .into_par_iter()
        .map(|i| decompress_chunk_body(&header, plan.chunk_dims(i), table.chunk_slice(bytes, i)))
        .collect();
    let mut out = Grid::zeros(header.dims);
    for (i, chunk) in chunks.into_iter().enumerate() {
        out.insert(&plan.chunk_at(i), chunk?.as_slice());
    }
    Ok(out)
}

/// Randomly accesses one chunk of a chunked (v2) stream: decompresses only
/// chunk `index`, returning the region of the original field it covers and
/// the reconstructed sub-field. Only the header and chunk table are parsed
/// besides the chunk body itself.
pub fn decompress_chunk(bytes: &[u8], index: usize) -> Result<(Region, Grid<f32>), SzhiError> {
    let (header, table) = read_stream_v2(bytes)?;
    let plan = ChunkPlan::new(header.dims, table.span);
    if index >= plan.len() {
        return Err(SzhiError::InvalidInput(format!(
            "chunk index {index} out of range for a stream of {} chunks",
            plan.len()
        )));
    }
    let grid = decompress_chunk_body(
        &header,
        plan.chunk_dims(index),
        table.chunk_slice(bytes, index),
    )?;
    Ok((plan.chunk_at(index), grid))
}

/// Number of chunks of a chunked (v2) stream.
pub fn chunk_count(bytes: &[u8]) -> Result<usize, SzhiError> {
    let (_, table) = read_stream_v2(bytes)?;
    Ok(table.entries.len())
}

/// Decodes and reconstructs one chunk body (also the whole field of a v1
/// stream, which is a single chunk in this sense).
fn decompress_chunk_body(
    header: &Header,
    chunk_dims: Dims,
    body: &[u8],
) -> Result<Grid<f32>, SzhiError> {
    let (anchors, outliers, payload) = read_chunk_sections(body)?;
    reconstruct(header, chunk_dims, anchors, outliers, payload)
}

fn decompress_monolithic(bytes: &[u8]) -> Result<Grid<f32>, SzhiError> {
    let (header, anchors, outliers, payload) = read_stream(bytes)?;
    reconstruct(&header, header.dims, anchors, outliers, payload)
}

/// The shared decode-restore-reconstruct tail of both engines. The
/// predictor owns the consistency checks (anchor count, outlier
/// completeness): a parseable-but-inconsistent stream surfaces as its typed
/// error, mapped to [`SzhiError::InvalidStream`].
fn reconstruct(
    header: &Header,
    dims: Dims,
    anchors: Vec<f32>,
    outliers: Vec<szhi_predictor::Outlier>,
    payload: Vec<u8>,
) -> Result<Grid<f32>, SzhiError> {
    let codes = header
        .pipeline
        .build()
        .decode_bounded(&payload, dims.len())?;
    if codes.len() != dims.len() {
        return Err(SzhiError::InvalidStream(format!(
            "decoded {} quantization codes for a field of {} points",
            codes.len(),
            dims.len()
        )));
    }
    let codes = if header.reorder {
        let order = LevelOrder::new(dims, header.interp.anchor_stride);
        order
            .restore(&codes)
            .map_err(|e| SzhiError::InvalidStream(e.to_string()))?
    } else {
        codes
    };
    let output = InterpOutput {
        anchors,
        codes,
        outliers,
    };
    let predictor = InterpPredictor::new(header.interp.clone())
        .map_err(|e| SzhiError::InvalidStream(e.to_string()))?;
    predictor
        .decompress(dims, header.abs_eb, &output)
        .map_err(|e| SzhiError::InvalidStream(e.to_string()))
}

/// Convenience: the mode name the paper uses for a configuration
/// (`cuSZ-Hi-CR` / `cuSZ-Hi-TP`).
pub fn mode_label(mode: PipelineMode) -> String {
    format!("cuSZ-Hi-{}", mode.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ErrorBound, PipelineMode, SzhiConfig};
    use szhi_datagen::DatasetKind;
    use szhi_metrics::QualityReport;
    use szhi_ndgrid::Dims;

    fn check_bound(orig: &Grid<f32>, recon: &Grid<f32>, abs_eb: f64) {
        for (i, (a, b)) in orig.as_slice().iter().zip(recon.as_slice()).enumerate() {
            assert!(
                ((*a as f64) - (*b as f64)).abs() <= abs_eb + 1e-12,
                "bound violated at {i}: {a} vs {b} (eb {abs_eb})"
            );
        }
    }

    #[test]
    fn inconsistent_but_parseable_streams_error_instead_of_panicking() {
        // Streams that pass header parsing but violate the predictor's
        // invariants must surface as typed errors, not asserts: a corrupted
        // block_span, a wrong anchor count, and an outlier code with no
        // outlier record.
        let g = DatasetKind::Nyx.generate(Dims::d3(20, 22, 24), 13);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
        let bytes = compress(&g, &cfg).unwrap();

        // Corrupt one low byte of the 3×u16 block_span field (stream offsets
        // 42/44/46: magic 4 + ver 1 + rank 1 + dims 24 + eb 8 + pid 1
        // + reorder 1 + stride 2).
        for offset in [42usize, 44, 46] {
            let mut corrupt = bytes.clone();
            corrupt[offset] = 1;
            corrupt[offset + 1] = 0;
            assert!(
                matches!(decompress(&corrupt), Err(SzhiError::InvalidStream(_))),
                "corrupt block_span at {offset} did not yield a typed error"
            );
        }

        // Re-serialise with one anchor dropped.
        let (header, anchors, outliers, payload) = crate::format::read_stream(&bytes).unwrap();
        let fewer = crate::format::write_stream(&header, &anchors[1..], &outliers, &payload);
        assert!(
            matches!(decompress(&fewer), Err(SzhiError::InvalidStream(_))),
            "anchor count mismatch did not yield a typed error"
        );

        // Re-serialise with the outlier records dropped while their codes
        // remain. (Skip if this field produced no outliers.)
        if !outliers.is_empty() {
            let no_records = crate::format::write_stream(&header, &anchors, &[], &payload);
            assert!(
                matches!(decompress(&no_records), Err(SzhiError::InvalidStream(_))),
                "missing outlier records did not yield a typed error"
            );
        }
    }

    #[test]
    fn roundtrip_all_dataset_families_cr_mode() {
        for kind in szhi_datagen::all_kinds() {
            let dims = if kind == DatasetKind::CesmAtm {
                Dims::d2(60, 90)
            } else {
                Dims::d3(33, 30, 35)
            };
            let g = kind.generate(dims, 5);
            let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
            let (bytes, stats) = compress_with_stats(&g, &cfg).unwrap();
            let recon = decompress(&bytes).unwrap();
            assert_eq!(recon.dims(), dims);
            check_bound(&g, &recon, stats.abs_eb);
            assert!(
                stats.compression_ratio > 1.0,
                "{kind}: no compression achieved"
            );
        }
    }

    #[test]
    fn roundtrip_tp_mode() {
        let g = DatasetKind::Miranda.generate(Dims::d3(40, 48, 48), 3);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3)).with_mode(PipelineMode::Tp);
        let (bytes, stats) = compress_with_stats(&g, &cfg).unwrap();
        let recon = decompress(&bytes).unwrap();
        check_bound(&g, &recon, stats.abs_eb);
    }

    #[test]
    fn absolute_bound_is_honoured() {
        let g = DatasetKind::Jhtdb.generate(Dims::d3(32, 32, 32), 11);
        let cfg = SzhiConfig::new(ErrorBound::Absolute(0.05));
        let bytes = compress(&g, &cfg).unwrap();
        let recon = decompress(&bytes).unwrap();
        check_bound(&g, &recon, 0.05);
    }

    #[test]
    fn looser_bounds_compress_better() {
        let g = DatasetKind::Nyx.generate(Dims::d3(48, 48, 48), 7);
        let mut ratios = Vec::new();
        for eb in [1e-2, 1e-3, 1e-4] {
            let cfg = SzhiConfig::new(ErrorBound::Relative(eb));
            let (_, stats) = compress_with_stats(&g, &cfg).unwrap();
            ratios.push(stats.compression_ratio);
        }
        assert!(
            ratios[0] > ratios[1] && ratios[1] > ratios[2],
            "compression ratio must decrease with tighter bounds: {ratios:?}"
        );
    }

    #[test]
    fn psnr_improves_with_tighter_bounds() {
        let g = DatasetKind::Rtm.generate(Dims::d3(40, 40, 24), 13);
        let mut psnrs = Vec::new();
        for eb in [1e-2, 1e-3] {
            let cfg = SzhiConfig::new(ErrorBound::Relative(eb));
            let bytes = compress(&g, &cfg).unwrap();
            let recon = decompress(&bytes).unwrap();
            psnrs.push(QualityReport::compare(&g, &recon).psnr);
        }
        assert!(
            psnrs[1] > psnrs[0] + 10.0,
            "PSNR should rise sharply with a 10x tighter bound: {psnrs:?}"
        );
    }

    #[test]
    fn stats_are_consistent() {
        let g = DatasetKind::Miranda.generate(Dims::d3(33, 33, 33), 1);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
        let (bytes, stats) = compress_with_stats(&g, &cfg).unwrap();
        assert_eq!(stats.compressed_bytes, bytes.len());
        assert_eq!(stats.original_bytes, 33 * 33 * 33 * 4);
        assert!(stats.encoded_codes_bytes < stats.compressed_bytes);
        assert_eq!(stats.anchors, 27);
    }

    #[test]
    fn disabling_reorder_and_autotune_still_roundtrips() {
        let g = DatasetKind::Qmcpack.generate(Dims::d3(30, 35, 35), 9);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3))
            .with_reorder(false)
            .with_auto_tune(false);
        let (bytes, stats) = compress_with_stats(&g, &cfg).unwrap();
        let recon = decompress(&bytes).unwrap();
        check_bound(&g, &recon, stats.abs_eb);
    }

    #[test]
    fn constant_field_compresses_enormously() {
        let dims = Dims::d3(32, 32, 32);
        let g = Grid::from_vec(dims, vec![4.25f32; dims.len()]);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
        let (bytes, stats) = compress_with_stats(&g, &cfg).unwrap();
        let recon = decompress(&bytes).unwrap();
        assert_eq!(recon.as_slice(), g.as_slice());
        assert!(
            stats.compression_ratio > 50.0,
            "constant field ratio only {}",
            stats.compression_ratio
        );
        assert!(bytes.len() < dims.nbytes_f32());
    }

    #[test]
    fn garbage_input_is_rejected() {
        assert!(decompress(&[]).is_err());
        assert!(decompress(b"not a szhi stream at all").is_err());
        let g = DatasetKind::Nyx.generate(Dims::d3(20, 20, 20), 2);
        let bytes = compress(&g, &SzhiConfig::new(ErrorBound::Relative(1e-2))).unwrap();
        // Truncations anywhere must error, never panic.
        for cut in [5usize, 50, bytes.len() / 2, bytes.len() - 3] {
            assert!(
                decompress(&bytes[..cut]).is_err(),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn mode_labels_match_paper() {
        assert_eq!(mode_label(PipelineMode::Cr), "cuSZ-Hi-CR");
        assert_eq!(mode_label(PipelineMode::Tp), "cuSZ-Hi-TP");
    }

    // -----------------------------------------------------------------
    // Chunked (v2) engine
    // -----------------------------------------------------------------

    #[test]
    fn chunked_roundtrip_matches_bound_on_all_dataset_families() {
        for kind in szhi_datagen::all_kinds() {
            let dims = if kind == DatasetKind::CesmAtm {
                Dims::d2(60, 90)
            } else {
                Dims::d3(40, 33, 35)
            };
            let g = kind.generate(dims, 5);
            let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3)).with_chunk_span([32, 32, 32]);
            let (bytes, stats) = compress_with_stats(&g, &cfg).unwrap();
            assert_eq!(
                crate::format::stream_version(&bytes).unwrap(),
                crate::format::VERSION_CHUNKED
            );
            let recon = decompress(&bytes).unwrap();
            assert_eq!(recon.dims(), dims);
            check_bound(&g, &recon, stats.abs_eb);
            assert!(stats.compression_ratio > 1.0, "{kind}: no compression");
        }
    }

    #[test]
    fn chunked_and_monolithic_reconstructions_honour_the_same_bound() {
        let g = DatasetKind::Nyx.generate(Dims::d3(48, 40, 36), 11);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
        let (mono, stats) = compress_with_stats(&g, &cfg).unwrap();
        let chunked = compress_chunked(&g, &cfg, [16, 16, 16]).unwrap();
        check_bound(&g, &decompress(&mono).unwrap(), stats.abs_eb);
        check_bound(&g, &decompress(&chunked).unwrap(), stats.abs_eb);
        // More chunks cost boundary anchors; the overhead must stay small.
        assert!(chunked.len() < mono.len() * 2);
    }

    #[test]
    fn every_chunk_decompresses_independently() {
        let g = DatasetKind::Rtm.generate(Dims::d3(40, 40, 24), 13);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
        let bytes = compress_chunked(&g, &cfg, [16, 16, 16]).unwrap();
        let n = chunk_count(&bytes).unwrap();
        assert_eq!(n, 3 * 3 * 2);
        let abs_eb = ErrorBound::Relative(1e-3).absolute(g.value_range() as f64);
        let mut covered = vec![false; g.dims().len()];
        for i in 0..n {
            let (region, sub) = decompress_chunk(&bytes, i).unwrap();
            assert_eq!(sub.len(), region.len());
            for ((z, y, x), (expect, got)) in region
                .z_range()
                .flat_map(|z| {
                    region
                        .y_range()
                        .flat_map(move |y| region.x_range().map(move |x| (z, y, x)))
                })
                .zip(
                    g.extract(&region)
                        .into_iter()
                        .zip(sub.as_slice().iter().copied()),
                )
            {
                assert!(
                    ((expect as f64) - (got as f64)).abs() <= abs_eb + 1e-12,
                    "chunk {i} bound violated at ({z},{y},{x})"
                );
                covered[g.dims().index(z, y, x)] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "chunks did not cover the field");
        assert!(decompress_chunk(&bytes, n).is_err());
    }

    #[test]
    fn misaligned_chunk_span_is_rejected_with_typed_error() {
        let g = DatasetKind::Nyx.generate(Dims::d3(40, 40, 40), 1);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
        assert!(matches!(
            compress_chunked(&g, &cfg, [12, 16, 16]),
            Err(SzhiError::InvalidInput(_))
        ));
        assert!(matches!(
            compress_chunked(&g, &cfg, [0, 16, 16]),
            Err(SzhiError::InvalidInput(_))
        ));
        // A span larger than the field clamps to one whole-field chunk.
        let bytes = compress_chunked(&g, &cfg, [512, 512, 512]).unwrap();
        assert_eq!(chunk_count(&bytes).unwrap(), 1);
    }

    #[test]
    fn chunked_stream_byte_flips_never_panic() {
        let g = DatasetKind::Qmcpack.generate(Dims::d3(20, 20, 20), 2);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-2)).with_chunk_span([16, 16, 16]);
        let bytes = compress(&g, &cfg).unwrap();
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                let result = std::panic::catch_unwind(|| {
                    let _ = decompress(&corrupt);
                });
                assert!(
                    result.is_ok(),
                    "decompress panicked with byte {pos} xor {flip:#x}"
                );
            }
        }
        // Truncations anywhere must error, never panic.
        for cut in [5usize, 60, bytes.len() / 2, bytes.len() - 3] {
            assert!(decompress(&bytes[..cut]).is_err());
        }
    }
}
