//! The end-to-end cuSZ-Hi compression and decompression pipelines.

use crate::config::{PipelineMode, SzhiConfig};
use crate::error::SzhiError;
use crate::format::{read_stream, write_stream, Header};
use szhi_ndgrid::Grid;
use szhi_predictor::autotune;
use szhi_predictor::{InterpPredictor, LevelOrder};

/// Statistics of one compression run, returned by [`compress_with_stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStats {
    /// Uncompressed input size in bytes.
    pub original_bytes: usize,
    /// Compressed output size in bytes.
    pub compressed_bytes: usize,
    /// Compression ratio (`original / compressed`).
    pub compression_ratio: f64,
    /// Absolute error bound used.
    pub abs_eb: f64,
    /// Number of losslessly stored anchors.
    pub anchors: usize,
    /// Number of outlier points.
    pub outliers: usize,
    /// Size in bytes of the pipeline-encoded quantization codes.
    pub encoded_codes_bytes: usize,
}

/// Compresses `data` under `cfg`, returning the self-describing byte stream.
pub fn compress(data: &Grid<f32>, cfg: &SzhiConfig) -> Result<Vec<u8>, SzhiError> {
    compress_with_stats(data, cfg).map(|(bytes, _)| bytes)
}

/// Compresses `data` under `cfg`, returning the stream and its statistics.
pub fn compress_with_stats(
    data: &Grid<f32>,
    cfg: &SzhiConfig,
) -> Result<(Vec<u8>, CompressionStats), SzhiError> {
    if data.is_empty() {
        return Err(SzhiError::InvalidInput(
            "cannot compress an empty field".into(),
        ));
    }
    let dims = data.dims();
    let abs_eb = cfg.error_bound.absolute(data.value_range() as f64);
    if !(abs_eb.is_finite() && abs_eb > 0.0) {
        return Err(SzhiError::InvalidInput(format!(
            "invalid error bound {abs_eb}"
        )));
    }

    // 1. Select the interpolation configuration, optionally auto-tuned on a
    //    0.2 % sample (§5.1.3).
    let interp_cfg = if cfg.auto_tune {
        let (tuned, _) = autotune::tune(data, &cfg.interp);
        tuned
    } else {
        cfg.interp.clone()
    };

    // 2. Lossy decomposition: anchors + one-byte quantization codes +
    //    outliers (§5.1).
    let predictor = InterpPredictor::new(interp_cfg.clone());
    let output = predictor.compress(data, abs_eb);

    // 3. Level-ordered reordering of the codes (§5.1.4).
    let codes = if cfg.reorder {
        let order = LevelOrder::new(dims, interp_cfg.anchor_stride);
        order.reorder(&output.codes)
    } else {
        output.codes.clone()
    };

    // 4. Multi-stage lossless encoding (§5.2).
    let pipeline = cfg.mode.pipeline_spec();
    let payload = pipeline.build().encode(&codes);

    let header = Header {
        dims,
        abs_eb,
        pipeline,
        reorder: cfg.reorder,
        interp: interp_cfg,
    };
    let bytes = write_stream(&header, &output.anchors, &output.outliers, &payload);
    let stats = CompressionStats {
        original_bytes: dims.nbytes_f32(),
        compressed_bytes: bytes.len(),
        compression_ratio: dims.nbytes_f32() as f64 / bytes.len() as f64,
        abs_eb,
        anchors: output.anchors.len(),
        outliers: output.outliers.len(),
        encoded_codes_bytes: payload.len(),
    };
    Ok((bytes, stats))
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(bytes: &[u8]) -> Result<Grid<f32>, SzhiError> {
    let (header, anchors, outliers, payload) = read_stream(bytes)?;
    let codes = header
        .pipeline
        .build()
        .decode_bounded(&payload, header.dims.len())?;
    if codes.len() != header.dims.len() {
        return Err(SzhiError::InvalidStream(format!(
            "decoded {} quantization codes for a field of {} points",
            codes.len(),
            header.dims.len()
        )));
    }
    let codes = if header.reorder {
        let order = LevelOrder::new(header.dims, header.interp.anchor_stride);
        order.restore(&codes)
    } else {
        codes
    };
    // The predictor asserts these invariants; a parseable-but-inconsistent
    // stream must fail with a typed error before reaching them.
    let expected_anchors =
        szhi_ndgrid::BlockGrid::new(header.dims, header.interp.anchor_stride).anchor_count();
    if anchors.len() != expected_anchors {
        return Err(SzhiError::InvalidStream(format!(
            "stream carries {} anchors, the {} field needs {expected_anchors}",
            anchors.len(),
            header.dims
        )));
    }
    let outlier_indices: std::collections::HashSet<u64> =
        outliers.iter().map(|o| o.index).collect();
    for (idx, &code) in codes.iter().enumerate() {
        if code == szhi_predictor::OUTLIER_CODE && !outlier_indices.contains(&(idx as u64)) {
            return Err(SzhiError::InvalidStream(format!(
                "point {idx} is coded as an outlier but has no outlier record"
            )));
        }
    }
    let output = szhi_predictor::InterpOutput {
        anchors,
        codes,
        outliers,
    };
    let predictor = InterpPredictor::new(header.interp.clone());
    Ok(predictor.decompress(header.dims, header.abs_eb, &output))
}

/// Convenience: the mode name the paper uses for a configuration
/// (`cuSZ-Hi-CR` / `cuSZ-Hi-TP`).
pub fn mode_label(mode: PipelineMode) -> String {
    format!("cuSZ-Hi-{}", mode.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ErrorBound, PipelineMode, SzhiConfig};
    use szhi_datagen::DatasetKind;
    use szhi_metrics::QualityReport;
    use szhi_ndgrid::Dims;

    fn check_bound(orig: &Grid<f32>, recon: &Grid<f32>, abs_eb: f64) {
        for (i, (a, b)) in orig.as_slice().iter().zip(recon.as_slice()).enumerate() {
            assert!(
                ((*a as f64) - (*b as f64)).abs() <= abs_eb + 1e-12,
                "bound violated at {i}: {a} vs {b} (eb {abs_eb})"
            );
        }
    }

    #[test]
    fn inconsistent_but_parseable_streams_error_instead_of_panicking() {
        // Streams that pass header parsing but violate the predictor's
        // invariants must surface as typed errors, not asserts: a corrupted
        // block_span, a wrong anchor count, and an outlier code with no
        // outlier record.
        let g = DatasetKind::Nyx.generate(Dims::d3(20, 22, 24), 13);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
        let bytes = compress(&g, &cfg).unwrap();

        // Corrupt one low byte of the 3×u16 block_span field (stream offsets
        // 42/44/46: magic 4 + ver 1 + rank 1 + dims 24 + eb 8 + pid 1
        // + reorder 1 + stride 2).
        for offset in [42usize, 44, 46] {
            let mut corrupt = bytes.clone();
            corrupt[offset] = 1;
            corrupt[offset + 1] = 0;
            assert!(
                matches!(decompress(&corrupt), Err(SzhiError::InvalidStream(_))),
                "corrupt block_span at {offset} did not yield a typed error"
            );
        }

        // Re-serialise with one anchor dropped.
        let (header, anchors, outliers, payload) = crate::format::read_stream(&bytes).unwrap();
        let fewer = crate::format::write_stream(&header, &anchors[1..], &outliers, &payload);
        assert!(
            matches!(decompress(&fewer), Err(SzhiError::InvalidStream(_))),
            "anchor count mismatch did not yield a typed error"
        );

        // Re-serialise with the outlier records dropped while their codes
        // remain. (Skip if this field produced no outliers.)
        if !outliers.is_empty() {
            let no_records = crate::format::write_stream(&header, &anchors, &[], &payload);
            assert!(
                matches!(decompress(&no_records), Err(SzhiError::InvalidStream(_))),
                "missing outlier records did not yield a typed error"
            );
        }
    }

    #[test]
    fn roundtrip_all_dataset_families_cr_mode() {
        for kind in szhi_datagen::all_kinds() {
            let dims = if kind == DatasetKind::CesmAtm {
                Dims::d2(60, 90)
            } else {
                Dims::d3(33, 30, 35)
            };
            let g = kind.generate(dims, 5);
            let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
            let (bytes, stats) = compress_with_stats(&g, &cfg).unwrap();
            let recon = decompress(&bytes).unwrap();
            assert_eq!(recon.dims(), dims);
            check_bound(&g, &recon, stats.abs_eb);
            assert!(
                stats.compression_ratio > 1.0,
                "{kind}: no compression achieved"
            );
        }
    }

    #[test]
    fn roundtrip_tp_mode() {
        let g = DatasetKind::Miranda.generate(Dims::d3(40, 48, 48), 3);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3)).with_mode(PipelineMode::Tp);
        let (bytes, stats) = compress_with_stats(&g, &cfg).unwrap();
        let recon = decompress(&bytes).unwrap();
        check_bound(&g, &recon, stats.abs_eb);
    }

    #[test]
    fn absolute_bound_is_honoured() {
        let g = DatasetKind::Jhtdb.generate(Dims::d3(32, 32, 32), 11);
        let cfg = SzhiConfig::new(ErrorBound::Absolute(0.05));
        let bytes = compress(&g, &cfg).unwrap();
        let recon = decompress(&bytes).unwrap();
        check_bound(&g, &recon, 0.05);
    }

    #[test]
    fn looser_bounds_compress_better() {
        let g = DatasetKind::Nyx.generate(Dims::d3(48, 48, 48), 7);
        let mut ratios = Vec::new();
        for eb in [1e-2, 1e-3, 1e-4] {
            let cfg = SzhiConfig::new(ErrorBound::Relative(eb));
            let (_, stats) = compress_with_stats(&g, &cfg).unwrap();
            ratios.push(stats.compression_ratio);
        }
        assert!(
            ratios[0] > ratios[1] && ratios[1] > ratios[2],
            "compression ratio must decrease with tighter bounds: {ratios:?}"
        );
    }

    #[test]
    fn psnr_improves_with_tighter_bounds() {
        let g = DatasetKind::Rtm.generate(Dims::d3(40, 40, 24), 13);
        let mut psnrs = Vec::new();
        for eb in [1e-2, 1e-3] {
            let cfg = SzhiConfig::new(ErrorBound::Relative(eb));
            let bytes = compress(&g, &cfg).unwrap();
            let recon = decompress(&bytes).unwrap();
            psnrs.push(QualityReport::compare(&g, &recon).psnr);
        }
        assert!(
            psnrs[1] > psnrs[0] + 10.0,
            "PSNR should rise sharply with a 10x tighter bound: {psnrs:?}"
        );
    }

    #[test]
    fn stats_are_consistent() {
        let g = DatasetKind::Miranda.generate(Dims::d3(33, 33, 33), 1);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
        let (bytes, stats) = compress_with_stats(&g, &cfg).unwrap();
        assert_eq!(stats.compressed_bytes, bytes.len());
        assert_eq!(stats.original_bytes, 33 * 33 * 33 * 4);
        assert!(stats.encoded_codes_bytes < stats.compressed_bytes);
        assert_eq!(stats.anchors, 27);
    }

    #[test]
    fn disabling_reorder_and_autotune_still_roundtrips() {
        let g = DatasetKind::Qmcpack.generate(Dims::d3(30, 35, 35), 9);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3))
            .with_reorder(false)
            .with_auto_tune(false);
        let (bytes, stats) = compress_with_stats(&g, &cfg).unwrap();
        let recon = decompress(&bytes).unwrap();
        check_bound(&g, &recon, stats.abs_eb);
    }

    #[test]
    fn constant_field_compresses_enormously() {
        let dims = Dims::d3(32, 32, 32);
        let g = Grid::from_vec(dims, vec![4.25f32; dims.len()]);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
        let (bytes, stats) = compress_with_stats(&g, &cfg).unwrap();
        let recon = decompress(&bytes).unwrap();
        assert_eq!(recon.as_slice(), g.as_slice());
        assert!(
            stats.compression_ratio > 50.0,
            "constant field ratio only {}",
            stats.compression_ratio
        );
        assert!(bytes.len() < dims.nbytes_f32());
    }

    #[test]
    fn garbage_input_is_rejected() {
        assert!(decompress(&[]).is_err());
        assert!(decompress(b"not a szhi stream at all").is_err());
        let g = DatasetKind::Nyx.generate(Dims::d3(20, 20, 20), 2);
        let bytes = compress(&g, &SzhiConfig::new(ErrorBound::Relative(1e-2))).unwrap();
        // Truncations anywhere must error, never panic.
        for cut in [5usize, 50, bytes.len() / 2, bytes.len() - 3] {
            assert!(
                decompress(&bytes[..cut]).is_err(),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn mode_labels_match_paper() {
        assert_eq!(mode_label(PipelineMode::Cr), "cuSZ-Hi-CR");
        assert_eq!(mode_label(PipelineMode::Tp), "cuSZ-Hi-TP");
    }
}
