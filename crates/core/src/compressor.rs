//! The end-to-end cuSZ-Hi compression and decompression pipelines.
//!
//! Two engines share the predictor and pipeline layers:
//!
//! * the **monolithic** engine compresses the whole grid into one v1
//!   stream (one predictor pass, one pipeline payload);
//! * the **chunked** engine ([`compress_chunked`]) splits the grid into
//!   independent anchor-aligned chunks ([`szhi_ndgrid::ChunkPlan`]) and
//!   compresses each into its own body of a streamed (v3) container. It is
//!   a thin parallel loop over the incremental [`StreamWriter`]: chunks
//!   are encoded in parallel ([`StreamWriter::encode_chunk`] is a pure
//!   function) and pushed in plan order, so the batch output is
//!   byte-identical to pushing the same chunks one at a time. Chunks
//!   decompress independently too — [`decompress`] drains a
//!   [`StreamReader`] eagerly, and [`decompress_chunk`] random-accesses a
//!   single chunk without touching the rest of the stream.
//!
//! Chunked streams are byte-identical regardless of the worker-thread count:
//! every chunk is a pure function of (its sub-field, the config), and the
//! container assembles them in chunk order.

use crate::config::{PipelineMode, SzhiConfig};
use crate::error::SzhiError;
use crate::format::{
    read_chunk_sections, read_chunk_table, read_stream, stream_version, write_stream, Header,
    VERSION,
};
use crate::stream::{EncodedChunk, StreamReader, StreamWriter};
use rayon::prelude::*;
use szhi_codec::PipelineSpec;
use szhi_ndgrid::{ChunkPlan, Dims, Grid, Region};
use szhi_predictor::autotune;
use szhi_predictor::{InterpConfig, InterpOutput, InterpPredictor, LevelOrder};

/// Statistics of one compression run, returned by [`compress_with_stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStats {
    /// Uncompressed input size in bytes.
    pub original_bytes: usize,
    /// Compressed output size in bytes.
    pub compressed_bytes: usize,
    /// Compression ratio (`original / compressed`).
    pub compression_ratio: f64,
    /// Absolute error bound used.
    pub abs_eb: f64,
    /// Number of losslessly stored anchors.
    pub anchors: usize,
    /// Number of outlier points.
    pub outliers: usize,
    /// Size in bytes of the pipeline-encoded quantization codes.
    pub encoded_codes_bytes: usize,
}

/// Compresses `data` under `cfg`, returning the self-describing byte
/// stream. With `cfg.chunk_span` set this produces a streamed (v3)
/// container, otherwise a monolithic (v1) stream.
pub fn compress(data: &Grid<f32>, cfg: &SzhiConfig) -> Result<Vec<u8>, SzhiError> {
    compress_with_stats(data, cfg).map(|(bytes, _)| bytes)
}

/// Compresses `data` under `cfg`, returning the stream and its statistics.
pub fn compress_with_stats(
    data: &Grid<f32>,
    cfg: &SzhiConfig,
) -> Result<(Vec<u8>, CompressionStats), SzhiError> {
    if let Some(span) = cfg.chunk_span {
        return compress_chunked_with_stats(data, cfg, span);
    }
    let (abs_eb, interp_cfg) = prepare(data, cfg)?;
    let dims = data.dims();

    // 2. Lossy decomposition: anchors + one-byte quantization codes +
    //    outliers (§5.1).
    let predictor = predictor_for(&interp_cfg)?;
    let output = predictor.compress(data, abs_eb);

    // 3. Level-ordered reordering of the codes (§5.1.4).
    let codes = if cfg.reorder {
        let order = LevelOrder::new(dims, interp_cfg.anchor_stride);
        order.reorder(&output.codes)
    } else {
        output.codes.clone()
    };

    // 4. Multi-stage lossless encoding (§5.2).
    let pipeline = cfg.mode.pipeline_spec();
    let payload = pipeline.build().encode(&codes);

    let header = Header {
        dims,
        abs_eb,
        pipeline,
        reorder: cfg.reorder,
        interp: interp_cfg,
    };
    let bytes = write_stream(&header, &output.anchors, &output.outliers, &payload);
    let stats = CompressionStats {
        original_bytes: dims.nbytes_f32(),
        compressed_bytes: bytes.len(),
        compression_ratio: dims.nbytes_f32() as f64 / bytes.len() as f64,
        abs_eb,
        anchors: output.anchors.len(),
        outliers: output.outliers.len(),
        encoded_codes_bytes: payload.len(),
    };
    Ok((bytes, stats))
}

/// Compresses `data` into a streamed (v3) container with the given chunk
/// span, regardless of `cfg.chunk_span`.
pub fn compress_chunked(
    data: &Grid<f32>,
    cfg: &SzhiConfig,
    span: [usize; 3],
) -> Result<Vec<u8>, SzhiError> {
    compress_chunked_with_stats(data, cfg, span).map(|(bytes, _)| bytes)
}

/// Compresses `data` into a streamed (v3) container, returning the stream
/// and its aggregated statistics.
///
/// The error bound is resolved and the interpolation configuration is
/// auto-tuned **once, globally**, then every chunk is compressed as an
/// independent sub-field (its own anchors, codes and outliers) in parallel
/// and fed to a [`StreamWriter`] in plan order — this function is a thin
/// loop over the incremental writer, so its output is byte-identical to
/// pushing the same chunks one at a time. With
/// [`ModeTuning::PerChunk`](crate::ModeTuning::PerChunk) each chunk's
/// lossless pipeline is selected independently and recorded in the chunk
/// table. The span must obey the chunk-alignment rule: a positive multiple
/// of the anchor stride along every non-degenerate axis (spans larger than
/// the grid are clamped to one whole-field chunk).
pub fn compress_chunked_with_stats(
    data: &Grid<f32>,
    cfg: &SzhiConfig,
    span: [usize; 3],
) -> Result<(Vec<u8>, CompressionStats), SzhiError> {
    // Validate the span up front — it only needs the (validated) anchor
    // stride, and auto-tuning samples the whole field, so an invalid span
    // must fail before that work. Tuning never changes the stride.
    cfg.interp
        .validate()
        .map_err(|e| SzhiError::InvalidInput(e.to_string()))?;
    if span.contains(&0) {
        return Err(SzhiError::InvalidInput(format!(
            "chunk span {span:?} has a zero axis"
        )));
    }
    let plan = ChunkPlan::new(data.dims(), span);
    if !plan.is_aligned(cfg.interp.anchor_stride) {
        return Err(SzhiError::InvalidInput(format!(
            "chunk span {span:?} is not a multiple of the anchor stride {}",
            cfg.interp.anchor_stride
        )));
    }
    if plan.span().iter().any(|&s| s > u32::MAX as usize) {
        // The container stores the span as 3×u32; a silent `as u32`
        // truncation would produce a stream the reader must reject.
        return Err(SzhiError::InvalidInput(format!(
            "chunk span {:?} does not fit the container's u32 span fields",
            plan.span()
        )));
    }
    let (abs_eb, interp_cfg) = prepare(data, cfg)?;
    let mut writer = StreamWriter::with_params(
        data.dims(),
        span,
        abs_eb,
        interp_cfg,
        cfg.reorder,
        cfg.mode,
        cfg.mode_tuning.clone(),
        cfg.chunk_interp_tuning,
    )?;

    // Each chunk is a pure function of (sub-field, config): the par_iter
    // result order is fixed, so the assembled stream is byte-identical at
    // every thread count — and identical to sequential push_chunk calls.
    let plan = *writer.plan();
    let encoded: Vec<Result<EncodedChunk, SzhiError>> = (0..plan.len())
        .into_par_iter()
        .map(|i| {
            let sub = Grid::from_vec(plan.chunk_dims(i), data.extract(&plan.chunk_at(i)));
            writer.encode_chunk(i, &sub)
        })
        .collect();
    for chunk in encoded {
        writer.push_encoded(chunk?)?;
    }
    writer.finish_with_stats()
}

/// Shared input validation: resolves the error bound and selects the
/// (optionally auto-tuned) interpolation configuration.
fn prepare(data: &Grid<f32>, cfg: &SzhiConfig) -> Result<(f64, InterpConfig), SzhiError> {
    if data.is_empty() {
        return Err(SzhiError::InvalidInput(
            "cannot compress an empty field".into(),
        ));
    }
    cfg.interp
        .validate()
        .map_err(|e| SzhiError::InvalidInput(e.to_string()))?;
    let abs_eb = cfg.error_bound.absolute(data.value_range() as f64);
    if !(abs_eb.is_finite() && abs_eb > 0.0) {
        return Err(SzhiError::InvalidInput(format!(
            "invalid error bound {abs_eb}"
        )));
    }
    // Select the interpolation configuration, optionally auto-tuned on a
    // 0.2 % sample (§5.1.3). For chunked streams the tuning runs once on
    // the whole field, so every chunk shares one configuration.
    let interp_cfg = if cfg.auto_tune {
        let (tuned, _) = autotune::tune(data, &cfg.interp);
        tuned
    } else {
        cfg.interp.clone()
    };
    Ok((abs_eb, interp_cfg))
}

fn predictor_for(interp: &InterpConfig) -> Result<InterpPredictor, SzhiError> {
    InterpPredictor::new(interp.clone()).map_err(|e| SzhiError::InvalidInput(e.to_string()))
}

/// Decompresses a stream produced by [`compress`], [`compress_chunked`] or
/// a [`StreamSink`](crate::stream::StreamSink) (every container version —
/// v1 monolithic, v2 chunked, v3 streamed, v4 trailered, v5 tuned — is
/// self-describing; chunk-bearing containers decompress their chunks in
/// parallel, with v3+ chunks verified against their checksums first and
/// v5 chunks decoded with their own per-chunk predictor configuration).
pub fn decompress(bytes: &[u8]) -> Result<Grid<f32>, SzhiError> {
    if stream_version(bytes)? == VERSION {
        return decompress_monolithic(bytes);
    }
    StreamReader::new(bytes)?.read_all()
}

/// Randomly accesses one chunk of a chunked (v2), streamed (v3),
/// trailered (v4) or tuned (v5) container: decompresses only chunk
/// `index`, returning the region of the original field it covers and the
/// reconstructed sub-field. Only the header and chunk table are parsed
/// besides the chunk body itself; a v3+ chunk is verified against its
/// CRC32 before decoding.
///
/// ```
/// use szhi_core::{compress, decompress_chunk, ErrorBound, SzhiConfig};
/// use szhi_ndgrid::{Dims, Grid};
///
/// let field = Grid::from_fn(Dims::d3(40, 32, 32), |z, y, x| {
///     (x as f32 * 0.1).sin() + (y + z) as f32 * 0.02
/// });
/// let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3)).with_chunk_span([32, 32, 32]);
/// let bytes = compress(&field, &cfg).unwrap();
/// let (region, sub) = decompress_chunk(&bytes, 1).unwrap();
/// assert_eq!(sub.len(), region.len());
/// assert_eq!(region.z0(), 32); // the second chunk along z
/// ```
pub fn decompress_chunk(bytes: &[u8], index: usize) -> Result<(Region, Grid<f32>), SzhiError> {
    StreamReader::new(bytes)?.read_chunk(index)
}

/// Number of chunks of any chunk-bearing container (v2 chunked, v3
/// streamed, v4 trailered, v5 tuned).
pub fn chunk_count(bytes: &[u8]) -> Result<usize, SzhiError> {
    let (_, table) = read_chunk_table(bytes)?;
    Ok(table.entries.len())
}

/// Decodes and reconstructs one chunk body (also the whole field of a v1
/// stream, which is a single chunk in this sense) with the pipeline and
/// interpolation configuration that encoded it — for v3+ streams the
/// chunk's own table entry, which may differ from the header's global
/// pipeline, and for v5 streams the chunk's dictionary config, which may
/// differ from the header's interpolation levels.
pub(crate) fn decompress_chunk_body(
    header: &Header,
    pipeline: PipelineSpec,
    interp: &InterpConfig,
    chunk_dims: Dims,
    body: &[u8],
) -> Result<Grid<f32>, SzhiError> {
    let _span = crate::telemetry::DECODE_CHUNK.enter();
    let (anchors, outliers, payload) = read_chunk_sections(body)?;
    reconstruct(
        header, pipeline, interp, chunk_dims, anchors, outliers, payload,
    )
}

fn decompress_monolithic(bytes: &[u8]) -> Result<Grid<f32>, SzhiError> {
    let (header, anchors, outliers, payload) = read_stream(bytes)?;
    let interp = header.interp.clone();
    reconstruct(
        &header,
        header.pipeline,
        &interp,
        header.dims,
        anchors,
        outliers,
        payload,
    )
}

/// The shared decode-restore-reconstruct tail of both engines. The
/// predictor owns the consistency checks (anchor count, outlier
/// completeness): a parseable-but-inconsistent stream surfaces as its typed
/// error, mapped to [`SzhiError::InvalidStream`].
#[allow(clippy::too_many_arguments)]
fn reconstruct(
    header: &Header,
    pipeline: PipelineSpec,
    interp: &InterpConfig,
    dims: Dims,
    anchors: Vec<f32>,
    outliers: Vec<szhi_predictor::Outlier>,
    payload: Vec<u8>,
) -> Result<Grid<f32>, SzhiError> {
    let codes = {
        let _span = crate::telemetry::DECODE_ENTROPY.enter();
        pipeline
            // szhi-analyzer: allow(panic-reachability) -- `StageSpec::build` panics only on stage widths no named pipeline produces; stream headers decode to named `PipelineSpec`s, and decoding itself is bounded and typed (byte-flip fuzz suites `chunked_stream_byte_flips_never_panic` / `corrupted_v4_streams` cover this boundary)
            .build()
            .decode_bounded(&payload, dims.len())
            .map_err(SzhiError::Codec)?
    };
    if codes.len() != dims.len() {
        return Err(SzhiError::InvalidStream(format!(
            "decoded {} quantization codes for a field of {} points",
            codes.len(),
            dims.len()
        )));
    }
    let codes = if header.reorder {
        let _span = crate::telemetry::DECODE_REORDER.enter();
        // szhi-analyzer: allow(panic-reachability) -- `LevelOrder::new` builds a permutation from locally computed dims/stride (never stream bytes) and indexes only its own level buckets; in bounds by construction
        let order = LevelOrder::new(dims, interp.anchor_stride);
        order
            // szhi-analyzer: allow(panic-reachability) -- `restore` length-checks `codes` against the permutation and `dest` is a valid permutation by construction, so both index expressions are in bounds; corrupt inputs surface as its typed error (byte-flip fuzz suites cover this boundary)
            .restore(&codes)
            .map_err(|e| SzhiError::InvalidStream(e.to_string()))?
    } else {
        codes
    };
    let output = InterpOutput {
        anchors,
        codes,
        outliers,
    };
    let _span = crate::telemetry::DECODE_PREDICT.enter();
    let predictor = InterpPredictor::new(interp.clone())
        .map_err(|e| SzhiError::InvalidStream(e.to_string()))?;
    predictor
        .decompress(dims, header.abs_eb, &output)
        .map_err(|e| SzhiError::InvalidStream(e.to_string()))
}

/// Convenience: the mode name the paper uses for a configuration
/// (`cuSZ-Hi-CR` / `cuSZ-Hi-TP`).
pub fn mode_label(mode: PipelineMode) -> String {
    format!("cuSZ-Hi-{}", mode.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ErrorBound, PipelineMode, SzhiConfig};
    use szhi_datagen::DatasetKind;
    use szhi_metrics::QualityReport;
    use szhi_ndgrid::Dims;

    fn check_bound(orig: &Grid<f32>, recon: &Grid<f32>, abs_eb: f64) {
        for (i, (a, b)) in orig.as_slice().iter().zip(recon.as_slice()).enumerate() {
            assert!(
                ((*a as f64) - (*b as f64)).abs() <= abs_eb + 1e-12,
                "bound violated at {i}: {a} vs {b} (eb {abs_eb})"
            );
        }
    }

    #[test]
    fn inconsistent_but_parseable_streams_error_instead_of_panicking() {
        // Streams that pass header parsing but violate the predictor's
        // invariants must surface as typed errors, not asserts: a corrupted
        // block_span, a wrong anchor count, and an outlier code with no
        // outlier record.
        let g = DatasetKind::Nyx.generate(Dims::d3(20, 22, 24), 13);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
        let bytes = compress(&g, &cfg).unwrap();

        // Corrupt one low byte of the 3×u16 block_span field (stream offsets
        // 42/44/46: magic 4 + ver 1 + rank 1 + dims 24 + eb 8 + pid 1
        // + reorder 1 + stride 2).
        for offset in [42usize, 44, 46] {
            let mut corrupt = bytes.clone();
            corrupt[offset] = 1;
            corrupt[offset + 1] = 0;
            assert!(
                matches!(decompress(&corrupt), Err(SzhiError::InvalidStream(_))),
                "corrupt block_span at {offset} did not yield a typed error"
            );
        }

        // Re-serialise with one anchor dropped.
        let (header, anchors, outliers, payload) = crate::format::read_stream(&bytes).unwrap();
        let fewer = crate::format::write_stream(&header, &anchors[1..], &outliers, &payload);
        assert!(
            matches!(decompress(&fewer), Err(SzhiError::InvalidStream(_))),
            "anchor count mismatch did not yield a typed error"
        );

        // Re-serialise with the outlier records dropped while their codes
        // remain. (Skip if this field produced no outliers.)
        if !outliers.is_empty() {
            let no_records = crate::format::write_stream(&header, &anchors, &[], &payload);
            assert!(
                matches!(decompress(&no_records), Err(SzhiError::InvalidStream(_))),
                "missing outlier records did not yield a typed error"
            );
        }
    }

    #[test]
    fn roundtrip_all_dataset_families_cr_mode() {
        for kind in szhi_datagen::all_kinds() {
            let dims = if kind == DatasetKind::CesmAtm {
                Dims::d2(60, 90)
            } else {
                Dims::d3(33, 30, 35)
            };
            let g = kind.generate(dims, 5);
            let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
            let (bytes, stats) = compress_with_stats(&g, &cfg).unwrap();
            let recon = decompress(&bytes).unwrap();
            assert_eq!(recon.dims(), dims);
            check_bound(&g, &recon, stats.abs_eb);
            assert!(
                stats.compression_ratio > 1.0,
                "{kind}: no compression achieved"
            );
        }
    }

    #[test]
    fn roundtrip_tp_mode() {
        let g = DatasetKind::Miranda.generate(Dims::d3(40, 48, 48), 3);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3)).with_mode(PipelineMode::Tp);
        let (bytes, stats) = compress_with_stats(&g, &cfg).unwrap();
        let recon = decompress(&bytes).unwrap();
        check_bound(&g, &recon, stats.abs_eb);
    }

    #[test]
    fn absolute_bound_is_honoured() {
        let g = DatasetKind::Jhtdb.generate(Dims::d3(32, 32, 32), 11);
        let cfg = SzhiConfig::new(ErrorBound::Absolute(0.05));
        let bytes = compress(&g, &cfg).unwrap();
        let recon = decompress(&bytes).unwrap();
        check_bound(&g, &recon, 0.05);
    }

    #[test]
    fn looser_bounds_compress_better() {
        let g = DatasetKind::Nyx.generate(Dims::d3(48, 48, 48), 7);
        let mut ratios = Vec::new();
        for eb in [1e-2, 1e-3, 1e-4] {
            let cfg = SzhiConfig::new(ErrorBound::Relative(eb));
            let (_, stats) = compress_with_stats(&g, &cfg).unwrap();
            ratios.push(stats.compression_ratio);
        }
        assert!(
            ratios[0] > ratios[1] && ratios[1] > ratios[2],
            "compression ratio must decrease with tighter bounds: {ratios:?}"
        );
    }

    #[test]
    fn psnr_improves_with_tighter_bounds() {
        let g = DatasetKind::Rtm.generate(Dims::d3(40, 40, 24), 13);
        let mut psnrs = Vec::new();
        for eb in [1e-2, 1e-3] {
            let cfg = SzhiConfig::new(ErrorBound::Relative(eb));
            let bytes = compress(&g, &cfg).unwrap();
            let recon = decompress(&bytes).unwrap();
            psnrs.push(QualityReport::compare(&g, &recon).psnr);
        }
        assert!(
            psnrs[1] > psnrs[0] + 10.0,
            "PSNR should rise sharply with a 10x tighter bound: {psnrs:?}"
        );
    }

    #[test]
    fn stats_are_consistent() {
        let g = DatasetKind::Miranda.generate(Dims::d3(33, 33, 33), 1);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
        let (bytes, stats) = compress_with_stats(&g, &cfg).unwrap();
        assert_eq!(stats.compressed_bytes, bytes.len());
        assert_eq!(stats.original_bytes, 33 * 33 * 33 * 4);
        assert!(stats.encoded_codes_bytes < stats.compressed_bytes);
        assert_eq!(stats.anchors, 27);
    }

    #[test]
    fn disabling_reorder_and_autotune_still_roundtrips() {
        let g = DatasetKind::Qmcpack.generate(Dims::d3(30, 35, 35), 9);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3))
            .with_reorder(false)
            .with_auto_tune(false);
        let (bytes, stats) = compress_with_stats(&g, &cfg).unwrap();
        let recon = decompress(&bytes).unwrap();
        check_bound(&g, &recon, stats.abs_eb);
    }

    #[test]
    fn constant_field_compresses_enormously() {
        let dims = Dims::d3(32, 32, 32);
        let g = Grid::from_vec(dims, vec![4.25f32; dims.len()]);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
        let (bytes, stats) = compress_with_stats(&g, &cfg).unwrap();
        let recon = decompress(&bytes).unwrap();
        assert_eq!(recon.as_slice(), g.as_slice());
        assert!(
            stats.compression_ratio > 50.0,
            "constant field ratio only {}",
            stats.compression_ratio
        );
        assert!(bytes.len() < dims.nbytes_f32());
    }

    #[test]
    fn garbage_input_is_rejected() {
        assert!(decompress(&[]).is_err());
        assert!(decompress(b"not a szhi stream at all").is_err());
        let g = DatasetKind::Nyx.generate(Dims::d3(20, 20, 20), 2);
        let bytes = compress(&g, &SzhiConfig::new(ErrorBound::Relative(1e-2))).unwrap();
        // Truncations anywhere must error, never panic.
        for cut in [5usize, 50, bytes.len() / 2, bytes.len() - 3] {
            assert!(
                decompress(&bytes[..cut]).is_err(),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn mode_labels_match_paper() {
        assert_eq!(mode_label(PipelineMode::Cr), "cuSZ-Hi-CR");
        assert_eq!(mode_label(PipelineMode::Tp), "cuSZ-Hi-TP");
    }

    // -----------------------------------------------------------------
    // Chunked (v3) engine
    // -----------------------------------------------------------------

    #[test]
    fn chunked_roundtrip_matches_bound_on_all_dataset_families() {
        for kind in szhi_datagen::all_kinds() {
            let dims = if kind == DatasetKind::CesmAtm {
                Dims::d2(60, 90)
            } else {
                Dims::d3(40, 33, 35)
            };
            let g = kind.generate(dims, 5);
            let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3)).with_chunk_span([32, 32, 32]);
            let (bytes, stats) = compress_with_stats(&g, &cfg).unwrap();
            assert_eq!(
                crate::format::stream_version(&bytes).unwrap(),
                crate::format::VERSION_STREAMED
            );
            let recon = decompress(&bytes).unwrap();
            assert_eq!(recon.dims(), dims);
            check_bound(&g, &recon, stats.abs_eb);
            assert!(stats.compression_ratio > 1.0, "{kind}: no compression");
        }
    }

    #[test]
    fn chunked_and_monolithic_reconstructions_honour_the_same_bound() {
        let g = DatasetKind::Nyx.generate(Dims::d3(48, 40, 36), 11);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
        let (mono, stats) = compress_with_stats(&g, &cfg).unwrap();
        let chunked = compress_chunked(&g, &cfg, [16, 16, 16]).unwrap();
        check_bound(&g, &decompress(&mono).unwrap(), stats.abs_eb);
        check_bound(&g, &decompress(&chunked).unwrap(), stats.abs_eb);
        // More chunks cost boundary anchors; the overhead must stay small.
        assert!(chunked.len() < mono.len() * 2);
    }

    #[test]
    fn every_chunk_decompresses_independently() {
        let g = DatasetKind::Rtm.generate(Dims::d3(40, 40, 24), 13);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
        let bytes = compress_chunked(&g, &cfg, [16, 16, 16]).unwrap();
        let n = chunk_count(&bytes).unwrap();
        assert_eq!(n, 3 * 3 * 2);
        let abs_eb = ErrorBound::Relative(1e-3).absolute(g.value_range() as f64);
        let mut covered = vec![false; g.dims().len()];
        for i in 0..n {
            let (region, sub) = decompress_chunk(&bytes, i).unwrap();
            assert_eq!(sub.len(), region.len());
            for ((z, y, x), (expect, got)) in region
                .z_range()
                .flat_map(|z| {
                    region
                        .y_range()
                        .flat_map(move |y| region.x_range().map(move |x| (z, y, x)))
                })
                .zip(
                    g.extract(&region)
                        .into_iter()
                        .zip(sub.as_slice().iter().copied()),
                )
            {
                assert!(
                    ((expect as f64) - (got as f64)).abs() <= abs_eb + 1e-12,
                    "chunk {i} bound violated at ({z},{y},{x})"
                );
                covered[g.dims().index(z, y, x)] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "chunks did not cover the field");
        assert!(decompress_chunk(&bytes, n).is_err());
    }

    #[test]
    fn misaligned_chunk_span_is_rejected_with_typed_error() {
        let g = DatasetKind::Nyx.generate(Dims::d3(40, 40, 40), 1);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
        assert!(matches!(
            compress_chunked(&g, &cfg, [12, 16, 16]),
            Err(SzhiError::InvalidInput(_))
        ));
        assert!(matches!(
            compress_chunked(&g, &cfg, [0, 16, 16]),
            Err(SzhiError::InvalidInput(_))
        ));
        // A span larger than the field clamps to one whole-field chunk.
        let bytes = compress_chunked(&g, &cfg, [512, 512, 512]).unwrap();
        assert_eq!(chunk_count(&bytes).unwrap(), 1);
    }

    #[test]
    fn legacy_v2_streams_remain_readable() {
        // A v2 stream (no mode bytes, no checksums) reassembled from a v3
        // stream's bodies must decompress to the same field, support random
        // access, and report the same chunk count.
        let g = DatasetKind::Miranda.generate(Dims::d3(40, 36, 33), 7);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3)).with_chunk_span([16, 16, 16]);
        let v3 = compress(&g, &cfg).unwrap();
        let (header, table) = crate::format::read_stream_chunked(&v3).unwrap();
        let bodies: Vec<Vec<u8>> = (0..table.entries.len())
            .map(|i| table.chunk_slice(&v3, i).to_vec())
            .collect();
        let v2 = crate::format::write_stream_v2(&header, table.span, &bodies);
        assert_eq!(
            crate::format::stream_version(&v2).unwrap(),
            crate::format::VERSION_CHUNKED
        );
        assert_eq!(chunk_count(&v2).unwrap(), chunk_count(&v3).unwrap());
        assert_eq!(
            decompress(&v2).unwrap().as_slice(),
            decompress(&v3).unwrap().as_slice()
        );
        let (r2, s2) = decompress_chunk(&v2, 3).unwrap();
        let (r3, s3) = decompress_chunk(&v3, 3).unwrap();
        assert_eq!(r2, r3);
        assert_eq!(s2.as_slice(), s3.as_slice());
    }

    #[test]
    fn corrupted_v3_chunks_are_rejected_by_checksum_before_decoding() {
        // Byte flips anywhere in the data area must surface as the typed
        // ChunkChecksum error from `decompress` — the codec never sees the
        // corrupt bytes. (Byte-flip fuzz over the *whole* stream, header
        // included, lives in `chunked_stream_byte_flips_never_panic`.)
        let g = DatasetKind::Qmcpack.generate(Dims::d3(20, 20, 20), 3);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-2)).with_chunk_span([16, 16, 16]);
        let bytes = compress(&g, &cfg).unwrap();
        let (_, table) = crate::format::read_stream_chunked(&bytes).unwrap();
        let data_start = table.data_start;
        for pos in (data_start..bytes.len()).step_by(7) {
            for flip in [0x01u8, 0x80] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                assert!(
                    matches!(decompress(&corrupt), Err(SzhiError::ChunkChecksum { .. })),
                    "data-area flip at {pos} xor {flip:#x} not caught by the checksum"
                );
            }
        }
    }

    #[test]
    fn trailered_v4_streams_decompress_and_random_access_like_v3() {
        // A v4 container carrying the same chunk bodies as a v3 stream must
        // decompress bit-identically through `decompress`, report the same
        // chunk count, and support the same random access.
        let g = DatasetKind::Miranda.generate(Dims::d3(40, 36, 33), 7);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3)).with_chunk_span([16, 16, 16]);
        let v3 = compress(&g, &cfg).unwrap();
        let (header, table) = crate::format::read_stream_chunked(&v3).unwrap();
        let chunks: Vec<_> = (0..table.entries.len())
            .map(|i| {
                (
                    table.entries[i].pipeline,
                    table.chunk_slice(&v3, i).to_vec(),
                )
            })
            .collect();
        let v4 = crate::format::write_stream_v4(&header, table.span, &chunks);
        assert_eq!(
            crate::format::stream_version(&v4).unwrap(),
            crate::format::VERSION_TRAILERED
        );
        assert_eq!(chunk_count(&v4).unwrap(), chunk_count(&v3).unwrap());
        assert_eq!(
            decompress(&v4).unwrap().as_slice(),
            decompress(&v3).unwrap().as_slice()
        );
        let (r3, s3) = decompress_chunk(&v3, 3).unwrap();
        let (r4, s4) = decompress_chunk(&v4, 3).unwrap();
        assert_eq!(r3, r4);
        assert_eq!(s3.as_slice(), s4.as_slice());
    }

    #[test]
    fn corrupted_v4_streams_error_with_the_right_typed_error_per_region() {
        // Through top-level `decompress`: data-area flips are caught by the
        // owning chunk's CRC32, chunk-table flips by the trailer's table
        // CRC32, and trailer flips by the trailer validation — each with
        // its own typed error, before any decoder sees corrupt bytes.
        let g = DatasetKind::Qmcpack.generate(Dims::d3(20, 20, 20), 3);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-2)).with_chunk_span([16, 16, 16]);
        let v3 = compress(&g, &cfg).unwrap();
        let (header, table) = crate::format::read_stream_chunked(&v3).unwrap();
        let chunks: Vec<_> = (0..table.entries.len())
            .map(|i| {
                (
                    table.entries[i].pipeline,
                    table.chunk_slice(&v3, i).to_vec(),
                )
            })
            .collect();
        let bytes = crate::format::write_stream_v4(&header, table.span, &chunks);
        let (_, t4) = crate::format::read_stream_trailered(&bytes).unwrap();
        let data_start = t4.data_start;
        let data_len: usize = chunks.iter().map(|(_, b)| b.len()).sum();
        let table_start = data_start + data_len;
        let trailer_start = bytes.len() - crate::format::TRAILER_SIZE;
        for pos in (data_start..table_start).step_by(7) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x80;
            assert!(
                matches!(decompress(&corrupt), Err(SzhiError::ChunkChecksum { .. })),
                "data flip at {pos} not caught by the chunk checksum"
            );
        }
        for pos in (table_start..trailer_start).step_by(3) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x80;
            assert!(
                matches!(decompress(&corrupt), Err(SzhiError::TableChecksum { .. })),
                "table flip at {pos} not caught by the table checksum"
            );
        }
        let mut corrupt = bytes.clone();
        corrupt[trailer_start] ^= 0x80; // low byte of table_offset
        assert!(matches!(
            decompress(&corrupt),
            Err(SzhiError::TrailerCorrupt(_))
        ));

        // The full 3-mask byte-flip fuzz through `decompress`: typed errors
        // only, never a panic, mirroring the v2/v3 suites.
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                let result = std::panic::catch_unwind(|| {
                    let _ = decompress(&corrupt);
                });
                assert!(
                    result.is_ok(),
                    "decompress panicked with v4 byte {pos} xor {flip:#x}"
                );
            }
        }
        // Truncations anywhere must error, never panic.
        for cut in [5usize, 60, bytes.len() / 2, bytes.len() - 3] {
            assert!(decompress(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn chunked_stream_byte_flips_never_panic() {
        let g = DatasetKind::Qmcpack.generate(Dims::d3(20, 20, 20), 2);
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-2)).with_chunk_span([16, 16, 16]);
        let bytes = compress(&g, &cfg).unwrap();
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                let result = std::panic::catch_unwind(|| {
                    let _ = decompress(&corrupt);
                });
                assert!(
                    result.is_ok(),
                    "decompress panicked with byte {pos} xor {flip:#x}"
                );
            }
        }
        // Truncations anywhere must error, never panic.
        for cut in [5usize, 60, bytes.len() / 2, bytes.len() - 3] {
            assert!(decompress(&bytes[..cut]).is_err());
        }
    }
}
