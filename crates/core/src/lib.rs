//! # szhi-core — the cuSZ-Hi compressor
//!
//! This crate is the paper's primary contribution: a high-ratio scientific
//! error-bounded lossy compressor built from the synergistic combination of
//!
//! 1. an **optimized interpolation-based lossy decomposition** — anchor
//!    stride 16, isotropic 17³ tiles, multi-dimensional spline interpolation
//!    with per-level auto-tuning (§5.1);
//! 2. a **level-ordered reordering** of the quantization codes (§5.1.4); and
//! 3. one of two **multi-stage lossless pipelines** (§5.2): the
//!    ratio-preferred `HF-RRE4-TCMS8-RZE1` (CR mode) or the
//!    throughput-preferred `TCMS1-BIT1-RRE1` (TP mode).
//!
//! The public API is two functions:
//!
//! ```
//! use szhi_core::{compress, decompress, ErrorBound, PipelineMode, SzhiConfig};
//! use szhi_ndgrid::{Dims, Grid};
//!
//! let field = Grid::from_fn(Dims::d3(24, 24, 24), |z, y, x| {
//!     ((x as f32) * 0.2).sin() + ((y + z) as f32) * 0.05
//! });
//! let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3)).with_mode(PipelineMode::Cr);
//! let bytes = compress(&field, &cfg).unwrap();
//! let restored = decompress(&bytes).unwrap();
//! assert_eq!(restored.dims(), field.dims());
//! let abs_eb = 1e-3 * field.value_range() as f64;
//! for (a, b) in field.as_slice().iter().zip(restored.as_slice()) {
//!     assert!(((*a as f64) - (*b as f64)).abs() <= abs_eb);
//! }
//! ```

pub mod compressor;
pub mod config;
pub mod error;
pub mod format;

pub use compressor::{compress, compress_with_stats, decompress, CompressionStats};
pub use config::{ErrorBound, PipelineMode, SzhiConfig};
pub use error::SzhiError;
pub use format::{Header, MAGIC, VERSION};
