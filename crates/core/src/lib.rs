//! # szhi-core — the cuSZ-Hi compressor
//!
//! This crate is the paper's primary contribution: a high-ratio scientific
//! error-bounded lossy compressor built from the synergistic combination of
//!
//! 1. an **optimized interpolation-based lossy decomposition** — anchor
//!    stride 16, isotropic 17³ tiles, multi-dimensional spline interpolation
//!    with per-level auto-tuning (§5.1);
//! 2. a **level-ordered reordering** of the quantization codes (§5.1.4); and
//! 3. one of two **multi-stage lossless pipelines** (§5.2): the
//!    ratio-preferred `HF-RRE4-TCMS8-RZE1` (CR mode) or the
//!    throughput-preferred `TCMS1-BIT1-RRE1` (TP mode).
//!
//! The public API is two functions:
//!
//! ```
//! use szhi_core::{compress, decompress, ErrorBound, PipelineMode, SzhiConfig};
//! use szhi_ndgrid::{Dims, Grid};
//!
//! let field = Grid::from_fn(Dims::d3(24, 24, 24), |z, y, x| {
//!     ((x as f32) * 0.2).sin() + ((y + z) as f32) * 0.05
//! });
//! let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3)).with_mode(PipelineMode::Cr);
//! let bytes = compress(&field, &cfg).unwrap();
//! let restored = decompress(&bytes).unwrap();
//! assert_eq!(restored.dims(), field.dims());
//! let abs_eb = 1e-3 * field.value_range() as f64;
//! for (a, b) in field.as_slice().iter().zip(restored.as_slice()) {
//!     assert!(((*a as f64) - (*b as f64)).abs() <= abs_eb);
//! }
//! ```
//!
//! ## Chunked streams (the v3 container)
//!
//! [`SzhiConfig::with_chunk_span`] switches the engine from "one grid, one
//! stream" to "one grid, N independent chunks": the field is partitioned
//! into non-overlapping chunks ([`szhi_ndgrid::ChunkPlan`]), each chunk is
//! compressed as a self-contained sub-field (its own anchors, quantization
//! codes and outliers), and the stream carries a chunk table, so chunks
//! compress **and** decompress in parallel and any single chunk can be
//! reconstructed without touching the rest of the stream
//! ([`decompress_chunk`]). Every chunk-table entry records the chunk's
//! extent, the lossless pipeline that encoded it (the *mode byte*) and a
//! CRC32 integrity checksum, verified before any decoder touches the
//! chunk's bytes:
//!
//! ```text
//! <header, version = 3>
//! | chunk_span 3×u32 | n_chunks u64
//! | n_chunks × (offset u64, length u64, pipeline_id u8, crc32 u32)
//! | n_chunks × chunk body (anchors | outliers | pipeline payload)
//! ```
//!
//! Older containers stay readable: v1 (monolithic) and v2 (chunked, no
//! mode byte or checksum) streams are decoded by the same [`decompress`]
//! entry point, and the trailered v4 container (below) decodes there too.
//! The byte-level specification of all four versions lives in
//! `docs/FORMAT.md` at the repository root.
//!
//! The **chunk-alignment rule**: the span must be a positive multiple of
//! the predictor's anchor stride (16 for cuSZ-Hi) along every
//! non-degenerate axis; spans larger than the field clamp to one
//! whole-field chunk. Chunk origins then sit on the global anchor lattice,
//! and the only compression cost of chunking is the duplicated anchor
//! plane at each chunk boundary.
//!
//! Chunked streams are **byte-identical at every worker-thread count**:
//! each chunk is a pure function of its sub-field and the (globally
//! resolved) configuration, and the container assembles chunks in plan
//! order. The thread count comes from the `SZHI_NUM_THREADS` environment
//! variable (default: all hardware threads); `1` forces fully sequential
//! execution with the same output bytes.
//!
//! ```
//! use szhi_core::{compress, decompress, decompress_chunk, ErrorBound, SzhiConfig};
//! use szhi_ndgrid::{Dims, Grid};
//!
//! let field = Grid::from_fn(Dims::d3(40, 40, 40), |z, y, x| {
//!     ((x + y) as f32 * 0.1).sin() + z as f32 * 0.02
//! });
//! let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3)).with_chunk_span([32, 32, 32]);
//! let bytes = compress(&field, &cfg).unwrap();
//! // Whole-field decompression fans out over chunks...
//! assert_eq!(decompress(&bytes).unwrap().dims(), field.dims());
//! // ...or reconstruct a single chunk by random access.
//! let (region, sub) = decompress_chunk(&bytes, 0).unwrap();
//! assert_eq!(sub.len(), region.len());
//! ```
//!
//! ## Streaming (the incremental engine)
//!
//! The batch engines need the whole field in memory. [`StreamWriter`]
//! inverts that: it accepts anchor-aligned chunks as they arrive and
//! finalizes the v3 container without ever holding the uncompressed
//! field, and [`StreamReader`] decodes chunks lazily, verifying each v3
//! chunk's CRC32 before its bytes reach a decoder. With
//! [`ModeTuning::PerChunk`] the writer picks every chunk's lossless
//! pipeline independently (recorded in the chunk table), so smooth and
//! noisy regions of one field each get the pipeline that compresses them
//! best. Because the writer never sees the whole field, its configuration
//! must be streaming-safe: an [`ErrorBound::Absolute`] bound and
//! whole-field auto-tuning disabled.
//!
//! ## True bounded-memory streaming (the v4 trailered container)
//!
//! [`StreamWriter`] never holds the uncompressed field, but it still
//! buffers every *compressed* chunk body until `finish()` — the v3 chunk
//! table precedes the data area, so the container cannot be emitted until
//! every chunk size is known. [`StreamSink`] removes that last O(stream)
//! buffer: backed by any [`std::io::Write`], it emits the header
//! immediately, appends each chunk body the moment it is encoded, and
//! closes the stream with the chunk table and a fixed-size trailer that
//! locates it (the **v4 trailered container**). Memory high-water is one
//! encoded chunk plus the table — a field larger than RAM compresses
//! straight onto a `File` or socket. [`StreamSource`] is the matching
//! bounded-memory reader over any [`std::io::Read`]` + `[`std::io::Seek`]:
//! it finds the table via the trailer (verifying the table against the
//! trailer's CRC32 before parsing a single entry) and fetches chunks with
//! one seek and one bounded, checksum-verified read each. v4 streams also
//! decode through the in-memory [`decompress`] / [`StreamReader`] /
//! [`decompress_chunk`] entry points like every other version.
//!
//! ## Cost-model orchestration (the v5 tuned container)
//!
//! Trial-encoding every candidate pipeline on every chunk is exactly the
//! cost the paper's *optimized* orchestration avoids.
//! [`ModeTuning::Estimated`] widens the per-chunk candidate set to the
//! full Figure-6 catalogue at a fraction of the exhaustive tuning cost:
//! the `szhi-tuner` cost models estimate every candidate's output size
//! from a deterministic sample of the chunk's codes (code histogram →
//! Huffman/ANS entropy bound, zero-run density → RRE/RZE gain, byte-range
//! occupancy → TCMS/BIT viability) and only the estimated best few are
//! trial-encoded for real; [`ModeTuning::Exhaustive`] is the ground truth
//! it is benchmarked against. Orthogonally,
//! [`SzhiConfig::with_chunk_interp_tuning`] scores the per-level
//! interpolation candidates on every chunk's own blocks; the winning
//! configurations are carried by the **tuned (v5) container** — a config
//! dictionary in the CRC-protected table region and a config id per
//! 23-byte chunk-table entry — and every reader decodes each chunk with
//! its own configuration. All orchestration decisions are pure functions
//! of the chunk data, so tuned streams stay byte-identical at every
//! worker-thread count.
//!
//! ```
//! use szhi_core::{ErrorBound, ModeTuning, StreamReader, StreamWriter, SzhiConfig};
//! use szhi_ndgrid::{Dims, Grid};
//!
//! let dims = Dims::d3(64, 32, 32);
//! let cfg = SzhiConfig::new(ErrorBound::Absolute(1e-3))
//!     .with_auto_tune(false)
//!     .with_chunk_span([32, 32, 32])
//!     .with_mode_tuning(ModeTuning::PerChunk);
//! let mut writer = StreamWriter::new(dims, &cfg).unwrap();
//! // Chunks are produced on demand — the full field never exists.
//! while let Some(region) = writer.next_chunk_region() {
//!     let chunk = Grid::from_fn(region.dims(), |z, y, x| {
//!         ((region.x0() + x) as f32 * 0.1).sin()
//!             + ((region.y0() + y) + (region.z0() + z)) as f32 * 0.01
//!     });
//!     let receipt = writer.push_chunk(&chunk).unwrap();
//!     assert!(receipt.compressed_bytes > 0);
//! }
//! let bytes = writer.finish().unwrap();
//!
//! // Read back lazily: one reconstructed sub-field in memory at a time.
//! let reader = StreamReader::new(&bytes).unwrap();
//! for chunk in reader.chunks() {
//!     let (region, sub) = chunk.unwrap();
//!     assert_eq!(sub.len(), region.len());
//! }
//! ```
//!
//! ## Serving (pipes and concurrent jobs)
//!
//! Two pieces turn the engine into a serving layer. [`ForwardSource`] is
//! the forward-only counterpart of [`StreamSource`]: it decodes any
//! chunked container over a plain [`std::io::Read`] — no `Seek` — so
//! compressed streams decode straight off a pipe, socket or `stdin`
//! (trailered v4/v5 streams are buffered to EOF and their table + trailer
//! validated at end-of-stream; see `docs/FORMAT.md`). [`jobs::JobService`]
//! runs many compress / decompress jobs concurrently over the shared
//! worker pool, each with per-job progress reporting and cooperative
//! cancellation that poisons the job's sink — and every job's output stays
//! byte-identical to a serial run. The `szhi-cli` binary puts both behind
//! `encode` / `decode` / `inspect` / `bench` subcommands.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod compressor;
pub mod config;
pub mod error;
pub mod format;
pub mod jobs;
pub mod stream;
pub(crate) mod telemetry;

pub use compressor::{
    chunk_count, compress, compress_chunked, compress_chunked_with_stats, compress_with_stats,
    decompress, decompress_chunk, CompressionStats,
};
pub use config::{ErrorBound, ModeTuning, PipelineMode, SzhiConfig};
pub use error::SzhiError;
pub use format::{
    stream_version, Header, MAGIC, TRAILER_MAGIC, TRAILER_MAGIC_V5, TRAILER_SIZE, VERSION,
    VERSION_CHUNKED, VERSION_STREAMED, VERSION_TRAILERED, VERSION_TUNED,
};
pub use jobs::{JobHandle, JobProgress, JobService};
pub use stream::{
    ChunkReceipt, EncodedChunk, ForwardChunks, ForwardSource, SourceChunks, StreamReader,
    StreamSink, StreamSource, StreamWriter,
};
