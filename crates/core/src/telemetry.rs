//! The core engine's telemetry instrumentation points: every span,
//! counter and histogram the encode/decode/serve stack records, declared
//! in one place so the event catalogue (`docs/OBSERVABILITY.md`) has a
//! single source of truth.
//!
//! All of these are compiled in unconditionally and cost one relaxed
//! atomic load per event while telemetry is disabled (see
//! `szhi-telemetry`); the `chunked_throughput` benchmark gates the
//! disabled-path overhead in CI.

// szhi-analyzer: scope(no-panic-decode: all)

pub(crate) use szhi_telemetry::{Counter, Histogram, Span};

// --- encode stage spans (per chunk) ---------------------------------------

/// One whole chunk through [`ChunkEncoder::encode_into`]
/// (prediction + quantization, reorder, entropy selection, framing).
///
/// [`ChunkEncoder::encode_into`]: crate::stream::ChunkEncoder
pub(crate) static ENCODE_CHUNK: Span = Span::new("encode.chunk");
/// The predictor pass of one chunk: interpolation prediction and
/// quantization run fused in `compress_into`, so one span covers both.
pub(crate) static ENCODE_PREDICT: Span = Span::new("encode.predict");
/// The level-order reordering of one chunk's quantization codes.
pub(crate) static ENCODE_REORDER: Span = Span::new("encode.reorder");
/// The lossless pipeline selection + encoding of one chunk's codes.
pub(crate) static ENCODE_ENTROPY: Span = Span::new("encode.entropy");
/// The CRC32 of one encoded chunk body before it is written out.
pub(crate) static ENCODE_CRC: Span = Span::new("encode.crc");

// --- decode stage spans (per chunk) ---------------------------------------

/// One whole chunk body through `decompress_chunk_body` (sections,
/// entropy decode, restore, prediction).
pub(crate) static DECODE_CHUNK: Span = Span::new("decode.chunk");
/// The bounded entropy decode of one chunk's payload.
pub(crate) static DECODE_ENTROPY: Span = Span::new("decode.entropy");
/// The level-order restore of one chunk's quantization codes.
pub(crate) static DECODE_REORDER: Span = Span::new("decode.reorder");
/// The predictor reconstruction of one chunk's values.
pub(crate) static DECODE_PREDICT: Span = Span::new("decode.predict");
/// The CRC32 verification of one fetched chunk body.
pub(crate) static DECODE_CRC: Span = Span::new("decode.crc");

// --- job phase spans (coordinator threads) --------------------------------

/// A compress job resolving its configuration (sink construction:
/// header validation, plan, permutation precompute).
pub(crate) static JOB_TUNE: Span = Span::new("job.tune");
/// A compress job's batched encode loop (parallel encode + ordered
/// pushes).
pub(crate) static JOB_ENCODE: Span = Span::new("job.encode");
/// A compress job finalizing its container (table + trailer + flush).
pub(crate) static JOB_FLUSH: Span = Span::new("job.flush");
/// A decompress job's sequential fetch-verify-decode loop.
pub(crate) static JOB_DECODE: Span = Span::new("job.decode");

// --- I/O counters ----------------------------------------------------------

/// Chunk-body bytes written by [`StreamSink`](crate::StreamSink).
pub(crate) static SINK_BYTES: Counter = Counter::new("io.sink.bytes");
/// Chunks written by [`StreamSink`](crate::StreamSink).
pub(crate) static SINK_CHUNKS: Counter = Counter::new("io.sink.chunks");
/// Chunk-body bytes fetched by [`StreamSource`](crate::StreamSource).
pub(crate) static SOURCE_BYTES: Counter = Counter::new("io.source.bytes");
/// Chunk bodies fetched by [`StreamSource`](crate::StreamSource).
pub(crate) static SOURCE_CHUNKS: Counter = Counter::new("io.source.chunks");
/// Chunk-body bytes consumed by [`ForwardSource`](crate::ForwardSource).
pub(crate) static FORWARD_BYTES: Counter = Counter::new("io.forward.bytes");
/// Chunk bodies decoded by [`ForwardSource`](crate::ForwardSource).
pub(crate) static FORWARD_CHUNKS: Counter = Counter::new("io.forward.chunks");

// --- job lifecycle counters ------------------------------------------------

/// Jobs spawned by [`JobService`](crate::JobService) (compress and
/// decompress).
pub(crate) static JOBS_STARTED: Counter = Counter::new("jobs.started");
/// Jobs that ran to successful completion.
pub(crate) static JOBS_COMPLETED: Counter = Counter::new("jobs.completed");
/// Jobs that observed their cancellation flag and stopped.
pub(crate) static JOBS_CANCELLED: Counter = Counter::new("jobs.cancelled");
/// Jobs that ended with an error other than cancellation.
pub(crate) static JOBS_FAILED: Counter = Counter::new("jobs.failed");

// --- tuner estimated-vs-actual ---------------------------------------------

/// The estimator's predicted compressed size for each chunk's winning
/// pipeline (estimated mode only).
pub(crate) static TUNER_ESTIMATED: Histogram = Histogram::new("tuner.estimated_bytes", "bytes");
/// The size actually produced by each chunk's winning pipeline
/// (estimated mode only; pairs with `tuner.estimated_bytes`).
pub(crate) static TUNER_ACTUAL: Histogram = Histogram::new("tuner.actual_bytes", "bytes");
