//! The v3 streaming engine: incremental chunk-at-a-time compression and
//! lazy, checksum-verified decompression.
//!
//! The batch engines in [`crate::compressor`] need the whole field in
//! memory before a single byte is emitted. This module inverts that control
//! flow:
//!
//! * [`StreamWriter`] accepts anchor-aligned chunks **as they arrive**
//!   ([`StreamWriter::push_chunk`]), compresses each one immediately —
//!   running the per-chunk mode tuner to pick the chunk's lossless pipeline
//!   when [`ModeTuning::PerChunk`] is selected — and finalizes a streamed
//!   (v3) container without ever holding the uncompressed field. Only the
//!   compressed chunk bodies are retained until [`StreamWriter::finish`].
//! * [`StreamReader`] parses a chunked (v2) or streamed (v3) container
//!   once, then decodes chunks **lazily** ([`StreamReader::chunks`],
//!   [`StreamReader::read_chunk`]) or drains them eagerly in parallel
//!   ([`StreamReader::read_all`]). Every v3 chunk is verified against its
//!   CRC32 *before* any lossless decoder touches the bytes; corruption
//!   surfaces as the typed [`SzhiError::ChunkChecksum`].
//!
//! The writer is deterministic: pushing the chunks of a field one at a time
//! produces a stream byte-identical to [`crate::compress_chunked`] under
//! the same configuration, at every worker-thread count (the batch engine
//! is itself a thin parallel loop over [`StreamWriter::encode_chunk`]).

use crate::compressor::{decompress_chunk_body, CompressionStats};
use crate::config::{ModeTuning, PipelineMode, SzhiConfig};
use crate::error::SzhiError;
use crate::format::{read_stream_chunked, write_sections, write_stream_v3, ChunkTable, Header};
use rayon::prelude::*;
use szhi_codec::PipelineSpec;
use szhi_ndgrid::{ChunkPlan, Dims, Grid, Region};
use szhi_predictor::{InterpConfig, InterpPredictor, LevelOrder};

/// One compressed chunk, produced by [`StreamWriter::encode_chunk`] and
/// consumed by [`StreamWriter::push_encoded`]. Encoding is a pure function
/// of (chunk data, writer configuration), so chunks can be encoded out of
/// order or in parallel and pushed sequentially.
#[derive(Debug, Clone)]
pub struct EncodedChunk {
    index: usize,
    pipeline: PipelineSpec,
    body: Vec<u8>,
    anchors: usize,
    outliers: usize,
    payload_bytes: usize,
}

impl EncodedChunk {
    /// The chunk's index in plan order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The lossless pipeline chosen for this chunk.
    pub fn pipeline(&self) -> PipelineSpec {
        self.pipeline
    }

    /// Size of the encoded chunk body in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.body.len()
    }
}

/// Metadata returned by [`StreamWriter::push_chunk`]: which chunk was just
/// written, which pipeline its tuner chose, and how large it compressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkReceipt {
    /// The chunk's index in plan order.
    pub index: usize,
    /// The lossless pipeline chosen for the chunk.
    pub pipeline: PipelineSpec,
    /// Size of the encoded chunk body in bytes.
    pub compressed_bytes: usize,
}

/// Incremental writer of streamed (v3) containers: push anchor-aligned
/// chunks as they arrive, finalize without ever holding the whole field.
///
/// ```
/// use szhi_core::{decompress, ErrorBound, StreamWriter, SzhiConfig};
/// use szhi_ndgrid::{Dims, Grid};
///
/// let dims = Dims::d3(40, 32, 32);
/// let cfg = SzhiConfig::new(ErrorBound::Absolute(1e-3))
///     .with_auto_tune(false)
///     .with_chunk_span([32, 32, 32]);
/// let mut writer = StreamWriter::new(dims, &cfg).unwrap();
/// // Produce each chunk only when the writer asks for it: the full field
/// // is never materialised.
/// while let Some(region) = writer.next_chunk_region() {
///     let chunk = Grid::from_fn(region.dims(), |z, y, x| {
///         ((region.x0() + x) as f32 * 0.1).sin()
///             + (region.z0() + z + region.y0() + y) as f32 * 0.01
///     });
///     writer.push_chunk(&chunk).unwrap();
/// }
/// let bytes = writer.finish().unwrap();
/// assert_eq!(decompress(&bytes).unwrap().dims(), dims);
/// ```
#[derive(Debug)]
pub struct StreamWriter {
    header: Header,
    plan: ChunkPlan,
    predictor: InterpPredictor,
    candidates: Vec<PipelineSpec>,
    chunks: Vec<(PipelineSpec, Vec<u8>)>,
    anchors: usize,
    outliers: usize,
    payload_bytes: usize,
}

impl StreamWriter {
    /// Creates a streaming writer for a field of shape `dims` under `cfg`,
    /// using `cfg.chunk_span` (or [`SzhiConfig::DEFAULT_CHUNK_SPAN`]) as
    /// the chunk span.
    ///
    /// Because the writer never sees the whole field, the configuration
    /// must be resolvable without it: the error bound must be
    /// [`ErrorBound::Absolute`](crate::ErrorBound::Absolute) (a relative
    /// bound needs the global value range) and whole-field auto-tuning must
    /// be disabled (`cfg.with_auto_tune(false)`; pre-tune on a
    /// representative sample with `szhi_predictor::autotune::tune` and pass
    /// the result via [`SzhiConfig::with_interp`] instead). Violations are
    /// reported as typed [`SzhiError::InvalidInput`] errors.
    pub fn new(dims: Dims, cfg: &SzhiConfig) -> Result<StreamWriter, SzhiError> {
        let abs_eb = match cfg.error_bound {
            crate::config::ErrorBound::Absolute(eb) => eb,
            crate::config::ErrorBound::Relative(eb) => {
                return Err(SzhiError::InvalidInput(format!(
                    "a streaming writer cannot resolve the value-range-relative bound \
                     {eb:e}: the full field is never held, so the global value range is \
                     unknown; use ErrorBound::Absolute"
                )))
            }
        };
        if cfg.auto_tune {
            return Err(SzhiError::InvalidInput(
                "a streaming writer cannot auto-tune on the whole field; disable it with \
                 with_auto_tune(false), or pre-tune on a representative sample with \
                 szhi_predictor::autotune::tune and pass the result via with_interp"
                    .into(),
            ));
        }
        let span = cfg.chunk_span.unwrap_or(SzhiConfig::DEFAULT_CHUNK_SPAN);
        StreamWriter::with_params(
            dims,
            span,
            abs_eb,
            cfg.interp.clone(),
            cfg.reorder,
            cfg.mode,
            cfg.mode_tuning,
        )
    }

    /// Creates a writer from fully resolved parameters. This is the
    /// constructor the batch engine uses after resolving the error bound
    /// and auto-tuning on the whole field.
    pub(crate) fn with_params(
        dims: Dims,
        span: [usize; 3],
        abs_eb: f64,
        interp: InterpConfig,
        reorder: bool,
        mode: PipelineMode,
        mode_tuning: ModeTuning,
    ) -> Result<StreamWriter, SzhiError> {
        interp
            .validate()
            .map_err(|e| SzhiError::InvalidInput(e.to_string()))?;
        if !(abs_eb.is_finite() && abs_eb > 0.0) {
            return Err(SzhiError::InvalidInput(format!(
                "invalid error bound {abs_eb}"
            )));
        }
        if span.contains(&0) {
            return Err(SzhiError::InvalidInput(format!(
                "chunk span {span:?} has a zero axis"
            )));
        }
        let plan = ChunkPlan::new(dims, span);
        if !plan.is_aligned(interp.anchor_stride) {
            return Err(SzhiError::InvalidInput(format!(
                "chunk span {span:?} is not a multiple of the anchor stride {}",
                interp.anchor_stride
            )));
        }
        if plan.span().iter().any(|&s| s > u32::MAX as usize) {
            // The container stores the span as 3×u32; a silent `as u32`
            // truncation would produce a stream the reader must reject.
            return Err(SzhiError::InvalidInput(format!(
                "chunk span {:?} does not fit the container's u32 span fields",
                plan.span()
            )));
        }
        let predictor = InterpPredictor::new(interp.clone())
            .map_err(|e| SzhiError::InvalidInput(e.to_string()))?;
        let default_spec = mode.pipeline_spec();
        // The per-chunk tuner's candidate set: the configured mode first
        // (it wins ties, keeping output deterministic), then the other
        // production mode when per-chunk selection is on.
        let candidates = match mode_tuning {
            ModeTuning::Global => vec![default_spec],
            ModeTuning::PerChunk => {
                let other = match mode {
                    PipelineMode::Cr => PipelineMode::Tp,
                    PipelineMode::Tp => PipelineMode::Cr,
                };
                vec![default_spec, other.pipeline_spec()]
            }
        };
        let n_chunks = plan.len();
        Ok(StreamWriter {
            header: Header {
                dims,
                abs_eb,
                pipeline: default_spec,
                reorder,
                interp,
            },
            plan,
            predictor,
            candidates,
            chunks: Vec::with_capacity(n_chunks),
            anchors: 0,
            outliers: 0,
            payload_bytes: 0,
        })
    }

    /// The chunk partition the writer expects chunks in (row-major plan
    /// order).
    pub fn plan(&self) -> &ChunkPlan {
        &self.plan
    }

    /// Shape of the full field being written.
    pub fn dims(&self) -> Dims {
        self.header.dims
    }

    /// The absolute error bound every chunk is compressed under.
    pub fn abs_eb(&self) -> f64 {
        self.header.abs_eb
    }

    /// Index of the next chunk [`StreamWriter::push_chunk`] expects.
    pub fn next_index(&self) -> usize {
        self.chunks.len()
    }

    /// The region of the original field the next pushed chunk must cover,
    /// or `None` once every chunk has been pushed.
    pub fn next_chunk_region(&self) -> Option<Region> {
        (self.chunks.len() < self.plan.len()).then(|| self.plan.chunk_at(self.chunks.len()))
    }

    /// Whether every chunk of the plan has been pushed.
    pub fn is_complete(&self) -> bool {
        self.chunks.len() == self.plan.len()
    }

    /// Compresses chunk `index` without appending it to the stream. A pure
    /// function of `(chunk, configuration)` — callers that already hold
    /// several chunks can encode them in parallel and feed the results to
    /// [`StreamWriter::push_encoded`] in order; this is exactly what the
    /// batch engine [`crate::compress_chunked`] does.
    ///
    /// `chunk` must have the standalone shape of chunk `index`
    /// ([`ChunkPlan::chunk_dims`]); any other shape is a typed error.
    pub fn encode_chunk(&self, index: usize, chunk: &Grid<f32>) -> Result<EncodedChunk, SzhiError> {
        if index >= self.plan.len() {
            return Err(SzhiError::InvalidInput(format!(
                "chunk index {index} out of range for a plan of {} chunks",
                self.plan.len()
            )));
        }
        let expected = self.plan.chunk_dims(index);
        if chunk.dims() != expected {
            return Err(SzhiError::InvalidInput(format!(
                "chunk {index} has shape {}, the plan expects {expected}",
                chunk.dims()
            )));
        }
        let output = self.predictor.compress(chunk, self.header.abs_eb);
        let codes = if self.header.reorder {
            LevelOrder::new(expected, self.header.interp.anchor_stride).reorder(&output.codes)
        } else {
            output.codes
        };
        // The per-chunk mode tuner: offer the codes to every candidate
        // pipeline and keep the smallest payload (ties prefer the
        // configured default mode).
        let (pipeline, payload) = PipelineSpec::encode_select(&self.candidates, &codes);
        let mut body = Vec::new();
        write_sections(&mut body, &output.anchors, &output.outliers, &payload);
        Ok(EncodedChunk {
            index,
            pipeline,
            anchors: output.anchors.len(),
            outliers: output.outliers.len(),
            payload_bytes: payload.len(),
            body,
        })
    }

    /// Compresses the next chunk and appends it to the stream. Chunks must
    /// arrive in plan order ([`StreamWriter::next_chunk_region`] names the
    /// region the next one must cover) and carry the standalone shape of
    /// their plan slot.
    pub fn push_chunk(&mut self, chunk: &Grid<f32>) -> Result<ChunkReceipt, SzhiError> {
        if self.is_complete() {
            return Err(SzhiError::InvalidInput(format!(
                "all {} chunks have already been pushed",
                self.plan.len()
            )));
        }
        let encoded = self.encode_chunk(self.chunks.len(), chunk)?;
        let receipt = ChunkReceipt {
            index: encoded.index,
            pipeline: encoded.pipeline,
            compressed_bytes: encoded.body.len(),
        };
        self.push_encoded(encoded)?;
        Ok(receipt)
    }

    /// Appends a chunk previously produced by
    /// [`StreamWriter::encode_chunk`]. Chunks must be pushed strictly in
    /// plan order; a gap or repeat is a typed error.
    pub fn push_encoded(&mut self, chunk: EncodedChunk) -> Result<(), SzhiError> {
        if chunk.index != self.chunks.len() {
            return Err(SzhiError::InvalidInput(format!(
                "chunk {} pushed out of order: the writer expects chunk {}",
                chunk.index,
                self.chunks.len()
            )));
        }
        self.anchors += chunk.anchors;
        self.outliers += chunk.outliers;
        self.payload_bytes += chunk.payload_bytes;
        self.chunks.push((chunk.pipeline, chunk.body));
        Ok(())
    }

    /// Finalizes the streamed (v3) container. Errors if any chunk of the
    /// plan has not been pushed.
    pub fn finish(self) -> Result<Vec<u8>, SzhiError> {
        self.finish_with_stats().map(|(bytes, _)| bytes)
    }

    /// Finalizes the container and reports aggregated statistics.
    pub fn finish_with_stats(self) -> Result<(Vec<u8>, CompressionStats), SzhiError> {
        if !self.is_complete() {
            return Err(SzhiError::InvalidInput(format!(
                "cannot finalize: only {} of {} chunks were pushed",
                self.chunks.len(),
                self.plan.len()
            )));
        }
        let bytes = write_stream_v3(&self.header, self.plan.span(), &self.chunks);
        let original_bytes = self.header.dims.nbytes_f32();
        let stats = CompressionStats {
            original_bytes,
            compressed_bytes: bytes.len(),
            compression_ratio: original_bytes as f64 / bytes.len() as f64,
            abs_eb: self.header.abs_eb,
            anchors: self.anchors,
            outliers: self.outliers,
            encoded_codes_bytes: self.payload_bytes,
        };
        Ok((bytes, stats))
    }
}

/// Lazy, checksum-verifying reader of chunked (v2) and streamed (v3)
/// containers.
///
/// Construction parses and validates the header and chunk table only;
/// chunk bodies are decoded on demand. Every access to a v3 chunk verifies
/// its CRC32 first, so corrupted bytes are rejected
/// ([`SzhiError::ChunkChecksum`]) before any lossless decoder runs.
///
/// ```
/// use szhi_core::{compress_chunked, ErrorBound, StreamReader, SzhiConfig};
/// use szhi_ndgrid::{Dims, Grid};
///
/// let field = Grid::from_fn(Dims::d3(40, 32, 32), |z, y, x| {
///     ((x + y) as f32 * 0.1).sin() + z as f32 * 0.02
/// });
/// let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
/// let bytes = compress_chunked(&field, &cfg, [32, 32, 32]).unwrap();
///
/// let reader = StreamReader::new(&bytes).unwrap();
/// assert_eq!(reader.chunk_count(), 2);
/// // Iterate decoded chunks lazily, one sub-field at a time…
/// for chunk in reader.chunks() {
///     let (region, sub) = chunk.unwrap();
///     assert_eq!(sub.len(), region.len());
/// }
/// // …or drain eagerly, fanning out across worker threads.
/// assert_eq!(reader.read_all().unwrap().dims(), field.dims());
/// ```
#[derive(Debug)]
pub struct StreamReader<'a> {
    bytes: &'a [u8],
    header: Header,
    table: ChunkTable,
    plan: ChunkPlan,
}

impl<'a> StreamReader<'a> {
    /// Parses and validates the header and chunk table of a chunked (v2)
    /// or streamed (v3) container. Monolithic (v1) streams have no chunk
    /// table and are rejected with a typed error — decode those with
    /// [`crate::decompress`].
    pub fn new(bytes: &'a [u8]) -> Result<StreamReader<'a>, SzhiError> {
        let (header, table) = read_stream_chunked(bytes)?;
        let plan = ChunkPlan::new(header.dims, table.span);
        Ok(StreamReader {
            bytes,
            header,
            table,
            plan,
        })
    }

    /// The parsed stream header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Shape of the full field the stream encodes.
    pub fn dims(&self) -> Dims {
        self.header.dims
    }

    /// The chunk partition of the stream.
    pub fn plan(&self) -> &ChunkPlan {
        &self.plan
    }

    /// Number of chunks in the stream.
    pub fn chunk_count(&self) -> usize {
        self.table.entries.len()
    }

    /// The region of the original field chunk `index` covers.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (see [`StreamReader::chunk_count`]).
    pub fn chunk_region(&self, index: usize) -> Region {
        self.plan.chunk_at(index)
    }

    /// The lossless pipeline that encoded chunk `index` (from the v3 mode
    /// byte; for v2 streams, the header's global pipeline).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (see [`StreamReader::chunk_count`]).
    pub fn chunk_pipeline(&self, index: usize) -> PipelineSpec {
        self.table.entries[index].pipeline
    }

    /// Verifies chunk `index` against its recorded CRC32 without decoding
    /// it (a no-op returning `Ok` for v2 streams, which carry no
    /// checksums).
    pub fn verify_chunk(&self, index: usize) -> Result<(), SzhiError> {
        self.check_index(index)?;
        self.table
            .verified_chunk_slice(self.bytes, index)
            .map(|_| ())
    }

    /// Decodes chunk `index`: verifies its checksum, then reconstructs the
    /// sub-field it covers. Returns the chunk's region of the original
    /// field and the reconstructed values.
    pub fn read_chunk(&self, index: usize) -> Result<(Region, Grid<f32>), SzhiError> {
        self.check_index(index)?;
        let body = self.table.verified_chunk_slice(self.bytes, index)?;
        let grid = decompress_chunk_body(
            &self.header,
            self.table.entries[index].pipeline,
            self.plan.chunk_dims(index),
            body,
        )?;
        Ok((self.plan.chunk_at(index), grid))
    }

    /// Iterates over the decoded chunks **lazily**, in plan order: each
    /// chunk is verified and decoded only when the iterator is advanced,
    /// so a consumer holds one reconstructed sub-field at a time.
    pub fn chunks(&self) -> impl Iterator<Item = Result<(Region, Grid<f32>), SzhiError>> + '_ {
        (0..self.chunk_count()).map(move |i| self.read_chunk(i))
    }

    /// Decodes every chunk **eagerly**, fanning the work out across the
    /// worker threads, and assembles the full field.
    pub fn read_all(&self) -> Result<Grid<f32>, SzhiError> {
        let chunks: Vec<Result<(Region, Grid<f32>), SzhiError>> = (0..self.chunk_count())
            .into_par_iter()
            .map(|i| self.read_chunk(i))
            .collect();
        let mut out = Grid::zeros(self.header.dims);
        for chunk in chunks {
            let (region, sub) = chunk?;
            out.insert(&region, sub.as_slice());
        }
        Ok(out)
    }

    fn check_index(&self, index: usize) -> Result<(), SzhiError> {
        if index >= self.chunk_count() {
            return Err(SzhiError::InvalidInput(format!(
                "chunk index {index} out of range for a stream of {} chunks",
                self.chunk_count()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::{compress_chunked, decompress};
    use crate::config::ErrorBound;
    use crate::format::{stream_version, VERSION_STREAMED};
    use szhi_datagen::DatasetKind;

    /// A streaming-safe configuration: absolute bound, no whole-field
    /// auto-tune.
    fn stream_cfg(span: [usize; 3]) -> SzhiConfig {
        SzhiConfig::new(ErrorBound::Absolute(2e-3))
            .with_auto_tune(false)
            .with_chunk_span(span)
    }

    fn push_all(writer: &mut StreamWriter, data: &Grid<f32>) -> Vec<ChunkReceipt> {
        let mut receipts = Vec::new();
        while let Some(region) = writer.next_chunk_region() {
            let dims = writer.plan().chunk_dims(writer.next_index());
            let sub = Grid::from_vec(dims, data.extract(&region));
            receipts.push(writer.push_chunk(&sub).unwrap());
        }
        receipts
    }

    #[test]
    fn pushing_chunks_matches_the_batch_engine_byte_for_byte() {
        let data = DatasetKind::Miranda.generate(Dims::d3(48, 40, 36), 21);
        let cfg = stream_cfg([16, 16, 16]);
        let batch = compress_chunked(&data, &cfg, [16, 16, 16]).unwrap();

        let mut writer = StreamWriter::new(data.dims(), &cfg).unwrap();
        assert_eq!(writer.next_index(), 0);
        let receipts = push_all(&mut writer, &data);
        assert!(writer.is_complete());
        assert_eq!(receipts.len(), writer.plan().len());
        let (streamed, stats) = writer.finish_with_stats().unwrap();

        assert_eq!(
            streamed, batch,
            "streamed and batch outputs must be identical"
        );
        assert_eq!(stream_version(&streamed).unwrap(), VERSION_STREAMED);
        assert_eq!(stats.compressed_bytes, streamed.len());
        assert_eq!(
            receipts.iter().map(|r| r.index).collect::<Vec<_>>(),
            (0..receipts.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn writer_rejects_streaming_hostile_configs() {
        let dims = Dims::d3(32, 32, 32);
        // Relative bound: needs the global value range.
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3)).with_auto_tune(false);
        assert!(matches!(
            StreamWriter::new(dims, &cfg),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("relative")
        ));
        // Whole-field auto-tune.
        let cfg = SzhiConfig::new(ErrorBound::Absolute(1e-3));
        assert!(matches!(
            StreamWriter::new(dims, &cfg),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("auto-tune")
        ));
        // Misaligned span.
        let cfg = stream_cfg([12, 16, 16]);
        assert!(StreamWriter::new(dims, &cfg).is_err());
    }

    #[test]
    fn writer_enforces_chunk_order_shape_and_completeness() {
        let data = DatasetKind::Nyx.generate(Dims::d3(32, 32, 32), 5);
        let cfg = stream_cfg([16, 16, 16]);
        let mut writer = StreamWriter::new(data.dims(), &cfg).unwrap();
        assert_eq!(writer.plan().len(), 8);

        // Wrong shape: chunk 0 expects 16³.
        let wrong = Grid::zeros(Dims::d3(8, 16, 16));
        assert!(matches!(
            writer.push_chunk(&wrong),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("shape")
        ));

        // Out-of-order push of a pre-encoded chunk.
        let region = writer.plan().chunk_at(3);
        let sub = Grid::from_vec(region.dims(), data.extract(&region));
        let encoded = writer.encode_chunk(3, &sub).unwrap();
        assert_eq!(encoded.index(), 3);
        assert!(encoded.compressed_bytes() > 0);
        assert!(matches!(
            writer.push_encoded(encoded),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("out of order")
        ));

        // Finishing early must fail with a typed error.
        let region = writer.plan().chunk_at(0);
        let sub = Grid::from_vec(region.dims(), data.extract(&region));
        writer.push_chunk(&sub).unwrap();
        assert!(matches!(
            writer.finish(),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("1 of 8")
        ));
    }

    #[test]
    fn reader_iterates_lazily_and_drains_eagerly() {
        let data = DatasetKind::Rtm.generate(Dims::d3(40, 40, 24), 13);
        let cfg = stream_cfg([16, 16, 16]);
        let mut writer = StreamWriter::new(data.dims(), &cfg).unwrap();
        push_all(&mut writer, &data);
        let bytes = writer.finish().unwrap();

        let reader = StreamReader::new(&bytes).unwrap();
        assert_eq!(reader.dims(), data.dims());
        assert_eq!(reader.chunk_count(), 3 * 3 * 2);
        let mut covered = 0usize;
        for (i, chunk) in reader.chunks().enumerate() {
            let (region, sub) = chunk.unwrap();
            assert_eq!(region, reader.chunk_region(i));
            assert_eq!(sub.len(), region.len());
            reader.verify_chunk(i).unwrap();
            for (a, b) in data.extract(&region).iter().zip(sub.as_slice()) {
                assert!(((*a as f64) - (*b as f64)).abs() <= 2e-3 + 1e-12);
            }
            covered += region.len();
        }
        assert_eq!(covered, data.dims().len());

        let eager = reader.read_all().unwrap();
        assert_eq!(eager.dims(), data.dims());
        assert_eq!(eager.as_slice(), decompress(&bytes).unwrap().as_slice());
        assert!(reader.read_chunk(reader.chunk_count()).is_err());
    }

    #[test]
    fn per_chunk_tuning_beats_both_global_modes_on_a_mixed_field() {
        // A field whose left half is smooth (CR-friendly codes) and whose
        // right half is hard noise: per-chunk selection must strictly beat
        // both single-mode streams, because different chunks prefer
        // different pipelines.
        let data = szhi_datagen::mixed_smooth_noisy(Dims::d3(32, 32, 64));
        let span = [32, 32, 32];
        let base = stream_cfg(span);
        let sizes: Vec<usize> = [
            base.clone().with_mode(PipelineMode::Cr),
            base.clone().with_mode(PipelineMode::Tp),
            base.clone().with_mode_tuning(ModeTuning::PerChunk),
        ]
        .iter()
        .map(|cfg| compress_chunked(&data, cfg, span).unwrap().len())
        .collect();
        let (cr, tp, tuned) = (sizes[0], sizes[1], sizes[2]);
        assert!(
            tuned < cr && tuned < tp,
            "per-chunk tuning ({tuned} B) must strictly beat global CR ({cr} B) and \
             global TP ({tp} B)"
        );

        // The tuned stream must actually mix modes and still roundtrip.
        let tuned_bytes = compress_chunked(
            &data,
            &base.clone().with_mode_tuning(ModeTuning::PerChunk),
            span,
        )
        .unwrap();
        let reader = StreamReader::new(&tuned_bytes).unwrap();
        let modes: std::collections::HashSet<u8> = (0..reader.chunk_count())
            .map(|i| reader.chunk_pipeline(i).id())
            .collect();
        assert!(modes.len() > 1, "expected a mix of per-chunk modes");
        let recon = reader.read_all().unwrap();
        for (a, b) in data.as_slice().iter().zip(recon.as_slice()) {
            assert!(((*a as f64) - (*b as f64)).abs() <= 2e-3 + 1e-12);
        }
    }
}
