//! The v3 streaming engine: incremental chunk-at-a-time compression and
//! lazy, checksum-verified decompression.
//!
//! The batch engines in [`crate::compressor`] need the whole field in
//! memory before a single byte is emitted. This module inverts that control
//! flow:
//!
//! * [`StreamWriter`] accepts anchor-aligned chunks **as they arrive**
//!   ([`StreamWriter::push_chunk`]), compresses each one immediately —
//!   running the per-chunk orchestrator to pick the chunk's lossless
//!   pipeline ([`ModeTuning::PerChunk`] trial-encodes the production
//!   modes, [`ModeTuning::Exhaustive`] any candidate list,
//!   [`ModeTuning::Estimated`] the same list through the `szhi-tuner`
//!   sampled cost model) and, with
//!   [`SzhiConfig::with_chunk_interp_tuning`], the chunk's own
//!   interpolation configuration — and finalizes a streamed (v3) or tuned
//!   (v5) container without ever holding the uncompressed field. Only the
//!   compressed chunk bodies are retained until [`StreamWriter::finish`].
//! * [`StreamReader`] parses any chunk-bearing container (v2–v5) once,
//!   then decodes chunks **lazily** ([`StreamReader::chunks`],
//!   [`StreamReader::read_chunk`]) or drains them eagerly in parallel
//!   ([`StreamReader::read_all`]), each v5 chunk with its own dictionary
//!   configuration. Every v3+ chunk is verified against its CRC32
//!   *before* any lossless decoder touches the bytes; corruption surfaces
//!   as the typed [`SzhiError::ChunkChecksum`].
//!
//! The writer is deterministic: pushing the chunks of a field one at a time
//! produces a stream byte-identical to [`crate::compress_chunked`] under
//! the same configuration, at every worker-thread count (the batch engine
//! is itself a thin parallel loop over [`StreamWriter::encode_chunk`]).

use crate::compressor::{decompress_chunk_body, CompressionStats};
use crate::config::{ModeTuning, PipelineMode, SzhiConfig};
use crate::error::SzhiError;
use crate::format::{
    self, read_chunk_table, write_sections, write_stream_v3, write_stream_v5, ChunkEntry,
    ChunkTable, Header, TRAILER_SIZE, VERSION_STREAMED, VERSION_TRAILERED, VERSION_TUNED,
};
use rayon::prelude::*;
use std::io::{Read, Seek, SeekFrom, Write};
use szhi_codec::bitio::{put_u32, ByteCursor};
use szhi_codec::checksum::crc32;
use szhi_codec::PipelineSpec;
use szhi_ndgrid::{ChunkPlan, Dims, Grid, Region};
use szhi_predictor::{
    CompressScratch, InterpConfig, InterpOutput, InterpPredictor, LevelConfig, LevelOrder,
};
use szhi_tuner::SelectParams;

/// One compressed chunk, produced by [`StreamWriter::encode_chunk`] and
/// consumed by [`StreamWriter::push_encoded`]. Encoding is a pure function
/// of (chunk data, writer configuration), so chunks can be encoded out of
/// order or in parallel and pushed sequentially.
#[derive(Debug, Clone)]
pub struct EncodedChunk {
    index: usize,
    pipeline: PipelineSpec,
    /// The per-level interpolation configuration this chunk was compressed
    /// with, when per-chunk tuning selected one (recorded in the v5 config
    /// dictionary at push time); `None` when every chunk shares the
    /// header's configuration.
    levels: Option<Vec<LevelConfig>>,
    body: Vec<u8>,
    anchors: usize,
    outliers: usize,
    payload_bytes: usize,
}

impl EncodedChunk {
    /// The chunk's index in plan order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The lossless pipeline chosen for this chunk.
    pub fn pipeline(&self) -> PipelineSpec {
        self.pipeline
    }

    /// Size of the encoded chunk body in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.body.len()
    }
}

/// Metadata returned by [`StreamWriter::push_chunk`]: which chunk was just
/// written, which pipeline its tuner chose, and how large it compressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkReceipt {
    /// The chunk's index in plan order.
    pub index: usize,
    /// The lossless pipeline chosen for the chunk.
    pub pipeline: PipelineSpec,
    /// Size of the encoded chunk body in bytes.
    pub compressed_bytes: usize,
}

/// Incremental writer of streamed (v3) containers: push anchor-aligned
/// chunks as they arrive, finalize without ever holding the whole field.
///
/// ```
/// use szhi_core::{decompress, ErrorBound, StreamWriter, SzhiConfig};
/// use szhi_ndgrid::{Dims, Grid};
///
/// let dims = Dims::d3(40, 32, 32);
/// let cfg = SzhiConfig::new(ErrorBound::Absolute(1e-3))
///     .with_auto_tune(false)
///     .with_chunk_span([32, 32, 32]);
/// let mut writer = StreamWriter::new(dims, &cfg).unwrap();
/// // Produce each chunk only when the writer asks for it: the full field
/// // is never materialised.
/// while let Some(region) = writer.next_chunk_region() {
///     let chunk = Grid::from_fn(region.dims(), |z, y, x| {
///         ((region.x0() + x) as f32 * 0.1).sin()
///             + (region.z0() + z + region.y0() + y) as f32 * 0.01
///     });
///     writer.push_chunk(&chunk).unwrap();
/// }
/// let bytes = writer.finish().unwrap();
/// assert_eq!(decompress(&bytes).unwrap().dims(), dims);
/// ```
#[derive(Debug)]
pub struct StreamWriter {
    enc: ChunkEncoder,
    chunks: Vec<(PipelineSpec, u16, Vec<u8>)>,
    /// The config dictionary of a per-chunk-interp-tuned (v5) stream,
    /// deduplicated in first-use order as chunks are pushed.
    configs: Vec<Vec<LevelConfig>>,
    anchors: usize,
    outliers: usize,
    payload_bytes: usize,
}

/// Resolves a pushed chunk's per-level configuration to its id in the
/// config dictionary, appending a new entry on first use. First-use order
/// over chunks pushed in plan order keeps the dictionary — and therefore
/// the stream bytes — deterministic at any encode-thread count.
fn config_id_for(
    configs: &mut Vec<Vec<LevelConfig>>,
    levels: Option<Vec<LevelConfig>>,
) -> Result<u16, SzhiError> {
    let Some(levels) = levels else { return Ok(0) };
    if let Some(found) = configs.iter().position(|c| *c == levels) {
        return Ok(found as u16);
    }
    // The container stores the dictionary count as a u16, so at most
    // u16::MAX entries (ids 0..u16::MAX-1) are representable — pushing one
    // more would wrap the serialised count and emit an undecodable stream.
    if configs.len() >= u16::MAX as usize {
        return Err(SzhiError::InvalidInput(format!(
            "config dictionary overflow: {} distinct per-chunk configurations",
            configs.len() + 1
        )));
    }
    configs.push(levels);
    Ok((configs.len() - 1) as u16)
}

/// How the chunk encoder picks each chunk's lossless pipeline, resolved
/// from [`ModeTuning`].
#[derive(Debug)]
enum PipelineSelection {
    /// Trial-encode every candidate and keep the smallest payload
    /// ([`ModeTuning::Global`] with one candidate, [`ModeTuning::PerChunk`]
    /// with two, [`ModeTuning::Exhaustive`] with the full list).
    Trial(Vec<PipelineSpec>),
    /// Estimator-guided: rank the candidates with the `szhi-tuner` sampled
    /// cost model and trial-encode only the estimated best few
    /// ([`ModeTuning::Estimated`]).
    Estimated(Vec<PipelineSpec>, SelectParams),
}

impl PipelineSelection {
    /// Resolves a tuning policy into a selection strategy. The configured
    /// default mode is always the first candidate (it wins ties, keeping
    /// output deterministic), and repeated candidates are dropped.
    fn from_tuning(mode: PipelineMode, tuning: ModeTuning) -> PipelineSelection {
        let default_spec = mode.pipeline_spec();
        let normalise = |candidates: Vec<PipelineSpec>| {
            let mut list = vec![default_spec];
            for c in candidates {
                if !list.contains(&c) {
                    list.push(c);
                }
            }
            list
        };
        match tuning {
            ModeTuning::Global => PipelineSelection::Trial(vec![default_spec]),
            ModeTuning::PerChunk => {
                let other = match mode {
                    PipelineMode::Cr => PipelineMode::Tp,
                    PipelineMode::Tp => PipelineMode::Cr,
                };
                PipelineSelection::Trial(vec![default_spec, other.pipeline_spec()])
            }
            ModeTuning::Exhaustive { candidates } => {
                PipelineSelection::Trial(normalise(candidates))
            }
            ModeTuning::Estimated { candidates } => {
                PipelineSelection::Estimated(normalise(candidates), SelectParams::default())
            }
        }
    }

    /// Selects the pipeline for one chunk's codes. Pure: the same codes
    /// always yield the same choice.
    fn select(&self, codes: &[u8]) -> Result<(PipelineSpec, Vec<u8>), SzhiError> {
        match self {
            PipelineSelection::Trial(candidates) => {
                Ok(PipelineSpec::try_encode_select(candidates, codes)?)
            }
            PipelineSelection::Estimated(candidates, params) => {
                let selection = szhi_tuner::select_pipeline(candidates, codes, params)?;
                // Telemetry: the estimator's predicted size for the winner
                // next to the size it actually produced. Exhaustive
                // fallbacks (shortlist covers every candidate) carry no
                // estimate and record nothing.
                let actual = selection.payload.len() as u64;
                if let Some(&(_, est)) = selection
                    .estimates
                    .iter()
                    .find(|(p, _)| *p == selection.pipeline)
                {
                    let estimated = est.max(0.0) as u64;
                    crate::telemetry::TUNER_ESTIMATED.observe(estimated);
                    crate::telemetry::TUNER_ACTUAL.observe(actual);
                    szhi_telemetry::tuner_record(estimated, actual);
                }
                Ok((selection.pipeline, selection.payload))
            }
        }
    }
}

/// Reusable buffers for the per-chunk encode chain: the predictor's
/// reconstruction scratch, its quantization output, the level-reordered
/// code array. Encoding the next chunk of the same shape into a warm
/// scratch touches no new heap beyond the payload the caller keeps.
#[derive(Debug, Default)]
struct EncodeScratch {
    compress: CompressScratch,
    output: InterpOutput,
    reordered: Vec<u8>,
}

/// Everything [`ChunkEncoder::encode_into`] produces besides the body it
/// leaves in the caller's buffer.
struct ChunkMeta {
    pipeline: PipelineSpec,
    levels: Option<Vec<LevelConfig>>,
    anchors: usize,
    outliers: usize,
    payload_bytes: usize,
}

/// The configuration-resolved chunk compressor shared by [`StreamWriter`]
/// (in-memory v3/v5 output) and [`StreamSink`] (io::Write-backed v4/v5
/// output): the validated header, the chunk plan, the predictor instance
/// and the pipeline-selection strategy. Encoding a chunk is a pure `&self`
/// function, so either front end can fan encoding out across threads.
#[derive(Debug)]
pub(crate) struct ChunkEncoder {
    header: Header,
    plan: ChunkPlan,
    predictor: InterpPredictor,
    selection: PipelineSelection,
    /// Per-chunk interpolation tuning: each chunk scores the per-level
    /// candidates on its own blocks and is compressed with the winner
    /// (the container becomes v5 to carry the per-chunk configs).
    chunk_interp: bool,
    /// The level-order permutation for every distinct chunk shape of the
    /// plan (interior chunks plus the boundary remainders — at most eight
    /// shapes), precomputed once so per-chunk encoding never rebuilds it.
    /// Empty when reordering is disabled.
    orders: Vec<(Dims, LevelOrder)>,
}

impl ChunkEncoder {
    /// Validates a user-facing streaming configuration (absolute bound, no
    /// whole-field auto-tune) and resolves it into an encoder.
    fn from_config(dims: Dims, cfg: &SzhiConfig) -> Result<ChunkEncoder, SzhiError> {
        let abs_eb = match cfg.error_bound {
            crate::config::ErrorBound::Absolute(eb) => eb,
            crate::config::ErrorBound::Relative(eb) => {
                return Err(SzhiError::InvalidInput(format!(
                    "a streaming writer cannot resolve the value-range-relative bound \
                     {eb:e}: the full field is never held, so the global value range is \
                     unknown; use ErrorBound::Absolute"
                )))
            }
        };
        if cfg.auto_tune {
            return Err(SzhiError::InvalidInput(
                "a streaming writer cannot auto-tune on the whole field; disable it with \
                 with_auto_tune(false), or pre-tune on a representative sample with \
                 szhi_predictor::autotune::tune and pass the result via with_interp"
                    .into(),
            ));
        }
        let span = cfg.chunk_span.unwrap_or(SzhiConfig::DEFAULT_CHUNK_SPAN);
        ChunkEncoder::with_params(
            dims,
            span,
            abs_eb,
            cfg.interp.clone(),
            cfg.reorder,
            cfg.mode,
            cfg.mode_tuning.clone(),
            cfg.chunk_interp_tuning,
        )
    }

    /// Builds an encoder from fully resolved parameters (the batch engine
    /// calls this after resolving the error bound and auto-tuning on the
    /// whole field).
    #[allow(clippy::too_many_arguments)]
    fn with_params(
        dims: Dims,
        span: [usize; 3],
        abs_eb: f64,
        interp: InterpConfig,
        reorder: bool,
        mode: PipelineMode,
        mode_tuning: ModeTuning,
        chunk_interp: bool,
    ) -> Result<ChunkEncoder, SzhiError> {
        interp
            .validate()
            .map_err(|e| SzhiError::InvalidInput(e.to_string()))?;
        if !(abs_eb.is_finite() && abs_eb > 0.0) {
            return Err(SzhiError::InvalidInput(format!(
                "invalid error bound {abs_eb}"
            )));
        }
        if span.contains(&0) {
            return Err(SzhiError::InvalidInput(format!(
                "chunk span {span:?} has a zero axis"
            )));
        }
        let plan = ChunkPlan::new(dims, span);
        if !plan.is_aligned(interp.anchor_stride) {
            return Err(SzhiError::InvalidInput(format!(
                "chunk span {span:?} is not a multiple of the anchor stride {}",
                interp.anchor_stride
            )));
        }
        if plan.span().iter().any(|&s| s > u32::MAX as usize) {
            // The container stores the span as 3×u32; a silent `as u32`
            // truncation would produce a stream the reader must reject.
            return Err(SzhiError::InvalidInput(format!(
                "chunk span {:?} does not fit the container's u32 span fields",
                plan.span()
            )));
        }
        let predictor = InterpPredictor::new(interp.clone())
            .map_err(|e| SzhiError::InvalidInput(e.to_string()))?;
        // The configured mode is always the selection's first candidate:
        // it wins ties, keeping output deterministic — this is the guard
        // that lets outlier-saturated chunks, whose codes every candidate
        // compresses equally well, fall back cleanly to the configured
        // default.
        let selection = PipelineSelection::from_tuning(mode, mode_tuning);
        let mut orders: Vec<(Dims, LevelOrder)> = Vec::new();
        if reorder {
            for i in 0..plan.len() {
                let d = plan.chunk_dims(i);
                if !orders.iter().any(|(od, _)| *od == d) {
                    orders.push((d, LevelOrder::new(d, interp.anchor_stride)));
                }
            }
        }
        Ok(ChunkEncoder {
            header: Header {
                dims,
                abs_eb,
                pipeline: mode.pipeline_spec(),
                reorder,
                interp,
            },
            plan,
            predictor,
            selection,
            chunk_interp,
            orders,
        })
    }

    /// Compresses chunk `index` (pure in `&self`; see
    /// [`StreamWriter::encode_chunk`]). Each encode thread reuses its own
    /// [`EncodeScratch`], so steady-state encoding allocates only the body
    /// the caller keeps.
    pub(crate) fn encode(
        &self,
        index: usize,
        chunk: &Grid<f32>,
    ) -> Result<EncodedChunk, SzhiError> {
        thread_local! {
            static SCRATCH: std::cell::RefCell<EncodeScratch> =
                std::cell::RefCell::new(EncodeScratch::default());
        }
        SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            // szhi-analyzer: allow(steady-alloc) -- this body vector is moved into the returned `EncodedChunk` and owned by the caller, so it cannot be scratch-routed; the steady-state serving path (`StreamSink::push_chunk`) goes through `encode_into` with a reused buffer instead
            let mut body = Vec::new();
            let meta = self.encode_into(index, chunk, &mut scratch, &mut body)?;
            Ok(EncodedChunk {
                index,
                pipeline: meta.pipeline,
                levels: meta.levels,
                anchors: meta.anchors,
                outliers: meta.outliers,
                payload_bytes: meta.payload_bytes,
                body,
            })
        })
    }

    /// The scratch-reusing core of [`ChunkEncoder::encode`]: compresses
    /// chunk `index` through the caller's buffers and leaves the framed
    /// chunk body in `body` (cleared first). [`StreamSink`] feeds its own
    /// scratch and body buffer through here so pushing a chunk performs no
    /// steady-state heap growth beyond the lossless payload itself.
    fn encode_into(
        &self,
        index: usize,
        chunk: &Grid<f32>,
        scratch: &mut EncodeScratch,
        body: &mut Vec<u8>,
    ) -> Result<ChunkMeta, SzhiError> {
        if index >= self.plan.len() {
            return Err(SzhiError::InvalidInput(format!(
                "chunk index {index} out of range for a plan of {} chunks",
                self.plan.len()
            )));
        }
        let expected = self.plan.chunk_dims(index);
        if chunk.dims() != expected {
            return Err(SzhiError::InvalidInput(format!(
                "chunk {index} has shape {}, the plan expects {expected}",
                chunk.dims()
            )));
        }
        let _chunk_span = crate::telemetry::ENCODE_CHUNK.enter();
        // Per-chunk interpolation tuning: score the per-level candidates
        // on this chunk's own blocks and compress with the winner (a pure
        // function of the chunk, so the tuned stream stays deterministic).
        let levels = {
            let _span = crate::telemetry::ENCODE_PREDICT.enter();
            if self.chunk_interp {
                let tuned = szhi_tuner::tune_chunk_interp(chunk, &self.header.interp);
                let predictor = InterpPredictor::new(tuned.clone())
                    .map_err(|e| SzhiError::InvalidInput(e.to_string()))?;
                predictor.compress_into(
                    chunk,
                    self.header.abs_eb,
                    &mut scratch.compress,
                    &mut scratch.output,
                );
                Some(tuned.levels)
            } else {
                self.predictor.compress_into(
                    chunk,
                    self.header.abs_eb,
                    &mut scratch.compress,
                    &mut scratch.output,
                );
                None
            }
        };
        let codes: &[u8] = if self.header.reorder {
            let _span = crate::telemetry::ENCODE_REORDER.enter();
            let order = self
                .orders
                .iter()
                .find(|(d, _)| *d == expected)
                .map(|(_, o)| o)
                .expect("every plan chunk shape has a precomputed permutation");
            order.reorder_into(&scratch.output.codes, &mut scratch.reordered);
            &scratch.reordered
        } else {
            &scratch.output.codes
        };
        // The per-chunk mode tuner: offer the codes to the selection
        // strategy (trial-encoding or the estimator-guided shortlist) and
        // keep the smallest real payload. The fallible selector turns a
        // misconfigured (empty) candidate set into a typed error instead
        // of aborting a long-running stream.
        let (pipeline, payload) = {
            let _span = crate::telemetry::ENCODE_ENTROPY.enter();
            self.selection.select(codes)?
        };
        body.clear();
        write_sections(
            body,
            &scratch.output.anchors,
            &scratch.output.outliers,
            &payload,
        );
        Ok(ChunkMeta {
            pipeline,
            levels,
            anchors: scratch.output.anchors.len(),
            outliers: scratch.output.outliers.len(),
            payload_bytes: payload.len(),
        })
    }
}

impl StreamWriter {
    /// Creates a streaming writer for a field of shape `dims` under `cfg`,
    /// using `cfg.chunk_span` (or [`SzhiConfig::DEFAULT_CHUNK_SPAN`]) as
    /// the chunk span.
    ///
    /// Because the writer never sees the whole field, the configuration
    /// must be resolvable without it: the error bound must be
    /// [`ErrorBound::Absolute`](crate::ErrorBound::Absolute) (a relative
    /// bound needs the global value range) and whole-field auto-tuning must
    /// be disabled (`cfg.with_auto_tune(false)`; pre-tune on a
    /// representative sample with `szhi_predictor::autotune::tune` and pass
    /// the result via [`SzhiConfig::with_interp`] instead). Violations are
    /// reported as typed [`SzhiError::InvalidInput`] errors.
    pub fn new(dims: Dims, cfg: &SzhiConfig) -> Result<StreamWriter, SzhiError> {
        Ok(StreamWriter::from_encoder(ChunkEncoder::from_config(
            dims, cfg,
        )?))
    }

    /// Creates a writer from fully resolved parameters. This is the
    /// constructor the batch engine uses after resolving the error bound
    /// and auto-tuning on the whole field.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn with_params(
        dims: Dims,
        span: [usize; 3],
        abs_eb: f64,
        interp: InterpConfig,
        reorder: bool,
        mode: PipelineMode,
        mode_tuning: ModeTuning,
        chunk_interp: bool,
    ) -> Result<StreamWriter, SzhiError> {
        Ok(StreamWriter::from_encoder(ChunkEncoder::with_params(
            dims,
            span,
            abs_eb,
            interp,
            reorder,
            mode,
            mode_tuning,
            chunk_interp,
        )?))
    }

    fn from_encoder(enc: ChunkEncoder) -> StreamWriter {
        let n_chunks = enc.plan.len();
        StreamWriter {
            enc,
            chunks: Vec::with_capacity(n_chunks),
            configs: Vec::new(),
            anchors: 0,
            outliers: 0,
            payload_bytes: 0,
        }
    }

    /// The chunk partition the writer expects chunks in (row-major plan
    /// order).
    pub fn plan(&self) -> &ChunkPlan {
        &self.enc.plan
    }

    /// Shape of the full field being written.
    pub fn dims(&self) -> Dims {
        self.enc.header.dims
    }

    /// The absolute error bound every chunk is compressed under.
    pub fn abs_eb(&self) -> f64 {
        self.enc.header.abs_eb
    }

    /// Index of the next chunk [`StreamWriter::push_chunk`] expects.
    pub fn next_index(&self) -> usize {
        self.chunks.len()
    }

    /// The region of the original field the next pushed chunk must cover,
    /// or `None` once every chunk has been pushed.
    pub fn next_chunk_region(&self) -> Option<Region> {
        (self.chunks.len() < self.enc.plan.len()).then(|| self.enc.plan.chunk_at(self.chunks.len()))
    }

    /// Whether every chunk of the plan has been pushed.
    pub fn is_complete(&self) -> bool {
        self.chunks.len() == self.enc.plan.len()
    }

    /// Compresses chunk `index` without appending it to the stream. A pure
    /// function of `(chunk, configuration)` — callers that already hold
    /// several chunks can encode them in parallel and feed the results to
    /// [`StreamWriter::push_encoded`] in order; this is exactly what the
    /// batch engine [`crate::compress_chunked`] does.
    ///
    /// `chunk` must have the standalone shape of chunk `index`
    /// ([`ChunkPlan::chunk_dims`]); any other shape is a typed error.
    pub fn encode_chunk(&self, index: usize, chunk: &Grid<f32>) -> Result<EncodedChunk, SzhiError> {
        self.enc.encode(index, chunk)
    }

    /// Compresses the next chunk and appends it to the stream. Chunks must
    /// arrive in plan order ([`StreamWriter::next_chunk_region`] names the
    /// region the next one must cover) and carry the standalone shape of
    /// their plan slot.
    pub fn push_chunk(&mut self, chunk: &Grid<f32>) -> Result<ChunkReceipt, SzhiError> {
        if self.is_complete() {
            return Err(SzhiError::InvalidInput(format!(
                "all {} chunks have already been pushed",
                self.enc.plan.len()
            )));
        }
        let encoded = self.encode_chunk(self.chunks.len(), chunk)?;
        let receipt = ChunkReceipt {
            index: encoded.index,
            pipeline: encoded.pipeline,
            compressed_bytes: encoded.body.len(),
        };
        self.push_encoded(encoded)?;
        Ok(receipt)
    }

    /// Appends a chunk previously produced by
    /// [`StreamWriter::encode_chunk`]. Chunks must be pushed strictly in
    /// plan order; a gap or repeat is a typed error. With per-chunk
    /// interpolation tuning enabled, the chunk's configuration is interned
    /// into the config dictionary here, in push order.
    pub fn push_encoded(&mut self, chunk: EncodedChunk) -> Result<(), SzhiError> {
        if chunk.index != self.chunks.len() {
            return Err(SzhiError::InvalidInput(format!(
                "chunk {} pushed out of order: the writer expects chunk {}",
                chunk.index,
                self.chunks.len()
            )));
        }
        let config = config_id_for(&mut self.configs, chunk.levels)?;
        self.anchors += chunk.anchors;
        self.outliers += chunk.outliers;
        self.payload_bytes += chunk.payload_bytes;
        self.chunks.push((chunk.pipeline, config, chunk.body));
        Ok(())
    }

    /// Finalizes the container — streamed (v3), or tuned (v5) when
    /// per-chunk interpolation tuning is enabled. Errors if any chunk of
    /// the plan has not been pushed.
    pub fn finish(self) -> Result<Vec<u8>, SzhiError> {
        self.finish_with_stats().map(|(bytes, _)| bytes)
    }

    /// Finalizes the container and reports aggregated statistics.
    pub fn finish_with_stats(self) -> Result<(Vec<u8>, CompressionStats), SzhiError> {
        if !self.is_complete() {
            return Err(SzhiError::InvalidInput(format!(
                "cannot finalize: only {} of {} chunks were pushed",
                self.chunks.len(),
                self.enc.plan.len()
            )));
        }
        let bytes = if self.enc.chunk_interp {
            write_stream_v5(
                &self.enc.header,
                self.enc.plan.span(),
                &self.configs,
                &self.chunks,
            )
        } else {
            let chunks: Vec<(PipelineSpec, Vec<u8>)> = self
                .chunks
                .into_iter()
                .map(|(pipeline, _, body)| (pipeline, body))
                .collect();
            write_stream_v3(&self.enc.header, self.enc.plan.span(), &chunks)
        };
        let original_bytes = self.enc.header.dims.nbytes_f32();
        let stats = CompressionStats {
            original_bytes,
            compressed_bytes: bytes.len(),
            compression_ratio: original_bytes as f64 / bytes.len() as f64,
            abs_eb: self.enc.header.abs_eb,
            anchors: self.anchors,
            outliers: self.outliers,
            encoded_codes_bytes: self.payload_bytes,
        };
        Ok((bytes, stats))
    }
}

/// Incremental, bounded-memory writer of trailered (v4) containers: the
/// header goes to the backing [`io::Write`](std::io::Write) immediately,
/// every pushed chunk's body follows the moment it is encoded, and
/// [`StreamSink::finish`] appends the chunk table plus the fixed-size
/// trailer that locates it. Memory high-water is **O(one encoded chunk +
/// the chunk table)** — never O(field), and unlike [`StreamWriter`] never
/// O(compressed stream) either, so a field larger than RAM can be
/// compressed straight onto a file or socket.
///
/// The sink accepts the same streaming-safe configurations as
/// [`StreamWriter`] (absolute bound, no whole-field auto-tune) and shares
/// its chunk encoder, so the chunk bodies it emits are byte-identical to
/// the v3 writer's — only the container layout differs.
///
/// ```
/// use szhi_core::{decompress, ErrorBound, StreamSink, StreamSource, SzhiConfig};
/// use szhi_ndgrid::{Dims, Grid};
///
/// let dims = Dims::d3(40, 32, 32);
/// let cfg = SzhiConfig::new(ErrorBound::Absolute(1e-3))
///     .with_auto_tune(false)
///     .with_chunk_span([32, 32, 32]);
/// // Any io::Write works: a Vec here, a File or TcpStream in production.
/// let mut sink = StreamSink::new(Vec::new(), dims, &cfg).unwrap();
/// while let Some(region) = sink.next_chunk_region() {
///     let chunk = Grid::from_fn(region.dims(), |z, y, x| {
///         ((region.x0() + x) as f32 * 0.1).sin()
///             + (region.z0() + z + region.y0() + y) as f32 * 0.01
///     });
///     sink.push_chunk(&chunk).unwrap();
/// }
/// let bytes = sink.finish().unwrap();
/// // The trailered stream decompresses like any other container…
/// assert_eq!(decompress(&bytes).unwrap().dims(), dims);
/// // …and `StreamSource` reads it back without holding the whole stream.
/// let mut source = StreamSource::from_bytes(&bytes).unwrap();
/// assert_eq!(source.read_all().unwrap().dims(), dims);
/// ```
#[derive(Debug)]
pub struct StreamSink<W: Write> {
    out: W,
    enc: ChunkEncoder,
    /// One `(offset, len, pipeline, config_id, crc32)` record per pushed
    /// chunk — the only per-chunk state the sink retains (the config id is
    /// 0 and unused unless per-chunk interpolation tuning is on).
    entries: Vec<(u64, u64, PipelineSpec, u16, u32)>,
    /// The config dictionary of a per-chunk-interp-tuned (v5) stream,
    /// interned in push order; empty for v4 output.
    configs: Vec<Vec<LevelConfig>>,
    prefix_len: u64,
    data_written: u64,
    poisoned: bool,
    anchors: usize,
    outliers: usize,
    payload_bytes: usize,
    /// Reusable encode buffers: after the first chunk of each shape, a
    /// push writes the backing stream without growing the heap beyond the
    /// lossless payload (this is what keeps the sink's memory high-water
    /// at O(one encoded chunk + the chunk table)).
    scratch: EncodeScratch,
    body_buf: Vec<u8>,
}

impl<W: Write> StreamSink<W> {
    /// Creates a sink writing a trailered (v4) container for a field of
    /// shape `dims` under `cfg` into `out`, emitting the header and chunk
    /// span immediately. The configuration rules are those of
    /// [`StreamWriter::new`] (absolute bound, auto-tune disabled); write
    /// failures surface as [`SzhiError::Io`].
    pub fn new(out: W, dims: Dims, cfg: &SzhiConfig) -> Result<StreamSink<W>, SzhiError> {
        StreamSink::from_encoder(out, ChunkEncoder::from_config(dims, cfg)?)
    }

    fn from_encoder(mut out: W, enc: ChunkEncoder) -> Result<StreamSink<W>, SzhiError> {
        let version = if enc.chunk_interp {
            VERSION_TUNED
        } else {
            VERSION_TRAILERED
        };
        let mut prefix = Vec::new();
        format::write_header(&mut prefix, &enc.header, version);
        for s in enc.plan.span() {
            put_u32(&mut prefix, s as u32);
        }
        out.write_all(&prefix)?;
        let n_chunks = enc.plan.len();
        Ok(StreamSink {
            out,
            enc,
            entries: Vec::with_capacity(n_chunks),
            configs: Vec::new(),
            prefix_len: prefix.len() as u64,
            data_written: 0,
            poisoned: false,
            anchors: 0,
            outliers: 0,
            payload_bytes: 0,
            scratch: EncodeScratch::default(),
            body_buf: Vec::new(),
        })
    }

    /// The chunk partition the sink expects chunks in (row-major plan
    /// order).
    pub fn plan(&self) -> &ChunkPlan {
        &self.enc.plan
    }

    /// Shape of the full field being written.
    pub fn dims(&self) -> Dims {
        self.enc.header.dims
    }

    /// The absolute error bound every chunk is compressed under.
    pub fn abs_eb(&self) -> f64 {
        self.enc.header.abs_eb
    }

    /// Index of the next chunk [`StreamSink::push_chunk`] expects.
    pub fn next_index(&self) -> usize {
        self.entries.len()
    }

    /// The region of the original field the next pushed chunk must cover,
    /// or `None` once every chunk has been pushed.
    pub fn next_chunk_region(&self) -> Option<Region> {
        (self.entries.len() < self.enc.plan.len())
            .then(|| self.enc.plan.chunk_at(self.entries.len()))
    }

    /// Whether every chunk of the plan has been pushed.
    pub fn is_complete(&self) -> bool {
        self.entries.len() == self.enc.plan.len()
    }

    /// Total bytes handed to the backing writer so far (header + chunk
    /// bodies; the table and trailer are added by [`StreamSink::finish`]).
    pub fn bytes_written(&self) -> u64 {
        self.prefix_len + self.data_written
    }

    /// A reference to the backing writer.
    pub fn get_ref(&self) -> &W {
        &self.out
    }

    /// The sink's chunk encoder, detached from the backing writer so a
    /// parallel encode loop can share it across threads without requiring
    /// `W: Sync` (the job coordinator in [`crate::jobs`] uses this).
    pub(crate) fn encoder(&self) -> &ChunkEncoder {
        &self.enc
    }

    /// Compresses chunk `index` without appending it to the stream — the
    /// same pure function as [`StreamWriter::encode_chunk`], so callers can
    /// encode several chunks in parallel and feed
    /// [`StreamSink::push_encoded`] in plan order.
    pub fn encode_chunk(&self, index: usize, chunk: &Grid<f32>) -> Result<EncodedChunk, SzhiError> {
        self.enc.encode(index, chunk)
    }

    /// Compresses the next chunk and writes its body to the backing writer
    /// immediately. Chunks must arrive in plan order with the standalone
    /// shape of their plan slot ([`StreamSink::next_chunk_region`]).
    ///
    /// This path reuses the sink's own encode scratch, so after the first
    /// chunk of each shape a push performs no heap growth beyond the
    /// lossless payload itself.
    pub fn push_chunk(&mut self, chunk: &Grid<f32>) -> Result<ChunkReceipt, SzhiError> {
        self.check_poisoned()?;
        if self.is_complete() {
            return Err(SzhiError::InvalidInput(format!(
                "all {} chunks have already been pushed",
                self.enc.plan.len()
            )));
        }
        let index = self.entries.len();
        let meta = self
            .enc
            .encode_into(index, chunk, &mut self.scratch, &mut self.body_buf)?;
        let config = config_id_for(&mut self.configs, meta.levels)?;
        let crc = {
            let _span = crate::telemetry::ENCODE_CRC.enter();
            crc32(&self.body_buf)
        };
        if let Err(e) = self.out.write_all(&self.body_buf) {
            self.poisoned = true;
            return Err(e.into());
        }
        crate::telemetry::SINK_BYTES.bump(self.body_buf.len() as u64);
        crate::telemetry::SINK_CHUNKS.bump(1);
        self.entries.push((
            self.data_written,
            self.body_buf.len() as u64,
            meta.pipeline,
            config,
            crc,
        ));
        self.data_written += self.body_buf.len() as u64;
        self.anchors += meta.anchors;
        self.outliers += meta.outliers;
        self.payload_bytes += meta.payload_bytes;
        Ok(ChunkReceipt {
            index,
            pipeline: meta.pipeline,
            compressed_bytes: self.body_buf.len(),
        })
    }

    /// Writes a chunk previously produced by [`StreamSink::encode_chunk`]
    /// to the backing writer. Chunks must be pushed strictly in plan order;
    /// a gap or repeat is a typed error. After a write failure
    /// ([`SzhiError::Io`]) the sink is poisoned — the stream position is
    /// unknown — and every further push or finish fails.
    pub fn push_encoded(&mut self, chunk: EncodedChunk) -> Result<(), SzhiError> {
        self.check_poisoned()?;
        if chunk.index != self.entries.len() {
            return Err(SzhiError::InvalidInput(format!(
                "chunk {} pushed out of order: the sink expects chunk {}",
                chunk.index,
                self.entries.len()
            )));
        }
        let config = config_id_for(&mut self.configs, chunk.levels)?;
        let crc = {
            let _span = crate::telemetry::ENCODE_CRC.enter();
            crc32(&chunk.body)
        };
        if let Err(e) = self.out.write_all(&chunk.body) {
            self.poisoned = true;
            return Err(e.into());
        }
        crate::telemetry::SINK_BYTES.bump(chunk.body.len() as u64);
        crate::telemetry::SINK_CHUNKS.bump(1);
        self.entries.push((
            self.data_written,
            chunk.body.len() as u64,
            chunk.pipeline,
            config,
            crc,
        ));
        self.data_written += chunk.body.len() as u64;
        self.anchors += chunk.anchors;
        self.outliers += chunk.outliers;
        self.payload_bytes += chunk.payload_bytes;
        Ok(())
    }

    /// Finalizes the trailered (v4) container: appends the chunk table and
    /// the trailer, flushes, and returns the backing writer. Errors if any
    /// chunk of the plan has not been pushed.
    pub fn finish(self) -> Result<W, SzhiError> {
        self.finish_with_stats().map(|(out, _)| out)
    }

    /// Finalizes the container and reports aggregated statistics alongside
    /// the backing writer.
    pub fn finish_with_stats(mut self) -> Result<(W, CompressionStats), SzhiError> {
        self.check_poisoned()?;
        if !self.is_complete() {
            return Err(SzhiError::InvalidInput(format!(
                "cannot finalize: only {} of {} chunks were pushed",
                self.entries.len(),
                self.enc.plan.len()
            )));
        }
        let table_offset = self.prefix_len + self.data_written;
        let tail = if self.enc.chunk_interp {
            format::encode_table_tail_v5(table_offset, &self.configs, &self.entries)
        } else {
            let entries: Vec<(u64, u64, PipelineSpec, u32)> = self
                .entries
                .iter()
                .map(|&(offset, len, pipeline, _, crc)| (offset, len, pipeline, crc))
                .collect();
            format::encode_table_tail(table_offset, &entries)
        };
        self.out.write_all(&tail)?;
        self.out.flush()?;
        let compressed_bytes = (table_offset + tail.len() as u64) as usize;
        let original_bytes = self.enc.header.dims.nbytes_f32();
        let stats = CompressionStats {
            original_bytes,
            compressed_bytes,
            compression_ratio: original_bytes as f64 / compressed_bytes as f64,
            abs_eb: self.enc.header.abs_eb,
            anchors: self.anchors,
            outliers: self.outliers,
            encoded_codes_bytes: self.payload_bytes,
        };
        Ok((self.out, stats))
    }

    fn check_poisoned(&self) -> Result<(), SzhiError> {
        if self.poisoned {
            return Err(SzhiError::InvalidInput(
                "the sink is poisoned by an earlier write failure: the stream position is \
                 unknown, so the container cannot be completed"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Poisons the sink explicitly: every further push or finish fails with
    /// a typed error, exactly as after a write failure. A cancelled job
    /// calls this so its half-written stream — which has no chunk table or
    /// trailer — can never be finalized into something that parses.
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    /// Whether the sink has been poisoned, by a write failure or by
    /// [`StreamSink::poison`].
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

/// Lazy, checksum-verifying reader of chunked (v2), streamed (v3) and
/// trailered (v4) containers held in memory.
///
/// Construction parses and validates the header and chunk table only
/// (located behind the data area via the trailer for v4); chunk bodies are
/// decoded on demand. Every access to a v3/v4 chunk verifies its CRC32
/// first, so corrupted bytes are rejected ([`SzhiError::ChunkChecksum`])
/// before any lossless decoder runs. To read a v4 container without
/// holding the whole stream in memory, use [`StreamSource`].
///
/// ```
/// use szhi_core::{compress_chunked, ErrorBound, StreamReader, SzhiConfig};
/// use szhi_ndgrid::{Dims, Grid};
///
/// let field = Grid::from_fn(Dims::d3(40, 32, 32), |z, y, x| {
///     ((x + y) as f32 * 0.1).sin() + z as f32 * 0.02
/// });
/// let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3));
/// let bytes = compress_chunked(&field, &cfg, [32, 32, 32]).unwrap();
///
/// let reader = StreamReader::new(&bytes).unwrap();
/// assert_eq!(reader.chunk_count(), 2);
/// // Iterate decoded chunks lazily, one sub-field at a time…
/// for chunk in reader.chunks() {
///     let (region, sub) = chunk.unwrap();
///     assert_eq!(sub.len(), region.len());
/// }
/// // …or drain eagerly, fanning out across worker threads.
/// assert_eq!(reader.read_all().unwrap().dims(), field.dims());
/// ```
#[derive(Debug)]
pub struct StreamReader<'a> {
    bytes: &'a [u8],
    header: Header,
    table: ChunkTable,
    plan: ChunkPlan,
}

impl<'a> StreamReader<'a> {
    /// Parses and validates the header and chunk table of a chunked (v2),
    /// streamed (v3), trailered (v4) or tuned (v5) container. Monolithic
    /// (v1) streams have no chunk table and are rejected with a clear typed
    /// error — decode those with [`crate::decompress`]; unknown future
    /// versions are rejected as unsupported.
    pub fn new(bytes: &'a [u8]) -> Result<StreamReader<'a>, SzhiError> {
        let (header, table) = read_chunk_table(bytes)?;
        let plan = ChunkPlan::new(header.dims, table.span);
        Ok(StreamReader {
            bytes,
            header,
            table,
            plan,
        })
    }

    /// The parsed stream header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Shape of the full field the stream encodes.
    pub fn dims(&self) -> Dims {
        self.header.dims
    }

    /// The chunk partition of the stream.
    pub fn plan(&self) -> &ChunkPlan {
        &self.plan
    }

    /// Number of chunks in the stream.
    pub fn chunk_count(&self) -> usize {
        self.table.entries.len()
    }

    /// The region of the original field chunk `index` covers.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (see [`StreamReader::chunk_count`]).
    pub fn chunk_region(&self, index: usize) -> Region {
        self.plan.chunk_at(index)
    }

    /// The lossless pipeline that encoded chunk `index` (from the v3+ mode
    /// byte; for v2 streams, the header's global pipeline).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (see [`StreamReader::chunk_count`]).
    pub fn chunk_pipeline(&self, index: usize) -> PipelineSpec {
        // szhi-analyzer: allow(panic-reachability) -- documented `# Panics` contract for out-of-range indices; the reader's own decode paths only pass indices below `chunk_count()`
        self.table.entries[index].pipeline
    }

    /// The interpolation configuration chunk `index` was compressed with:
    /// its config-dictionary entry for tuned (v5) streams, the header's
    /// configuration for every other version.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (see [`StreamReader::chunk_count`]).
    pub fn chunk_interp(&self, index: usize) -> InterpConfig {
        self.table.chunk_interp(&self.header, index)
    }

    /// Verifies chunk `index` against its recorded CRC32 without decoding
    /// it (a no-op returning `Ok` for v2 streams, which carry no
    /// checksums).
    pub fn verify_chunk(&self, index: usize) -> Result<(), SzhiError> {
        self.check_index(index)?;
        self.table
            .verified_chunk_slice(self.bytes, index)
            .map(|_| ())
    }

    /// Decodes chunk `index`: verifies its checksum, then reconstructs the
    /// sub-field it covers. Returns the chunk's region of the original
    /// field and the reconstructed values.
    pub fn read_chunk(&self, index: usize) -> Result<(Region, Grid<f32>), SzhiError> {
        self.check_index(index)?;
        let body = self.table.verified_chunk_slice(self.bytes, index)?;
        let entry =
            self.table.entries.get(index).ok_or_else(|| {
                SzhiError::InvalidInput(format!("chunk index {index} out of range"))
            })?;
        let grid = decompress_chunk_body(
            &self.header,
            entry.pipeline,
            &self.table.chunk_interp(&self.header, index),
            self.plan.chunk_dims(index),
            body,
        )?;
        Ok((self.plan.chunk_at(index), grid))
    }

    /// Iterates over the decoded chunks **lazily**, in plan order: each
    /// chunk is verified and decoded only when the iterator is advanced,
    /// so a consumer holds one reconstructed sub-field at a time.
    pub fn chunks(&self) -> impl Iterator<Item = Result<(Region, Grid<f32>), SzhiError>> + '_ {
        (0..self.chunk_count()).map(move |i| self.read_chunk(i))
    }

    /// Decodes every chunk **eagerly**, fanning the work out across the
    /// worker threads, and assembles the full field.
    pub fn read_all(&self) -> Result<Grid<f32>, SzhiError> {
        let chunks: Vec<Result<(Region, Grid<f32>), SzhiError>> = (0..self.chunk_count())
            .into_par_iter()
            .map(|i| self.read_chunk(i))
            .collect();
        let mut out = Grid::zeros(self.header.dims);
        for chunk in chunks {
            let (region, sub) = chunk?;
            out.insert(&region, sub.as_slice());
        }
        Ok(out)
    }

    fn check_index(&self, index: usize) -> Result<(), SzhiError> {
        if index >= self.chunk_count() {
            return Err(SzhiError::InvalidInput(format!(
                "chunk index {index} out of range for a stream of {} chunks",
                self.chunk_count()
            )));
        }
        Ok(())
    }
}

/// Bounded-memory reader of chunked containers behind any
/// [`io::Read`](std::io::Read)` + `[`io::Seek`](std::io::Seek) — a
/// [`File`](std::fs::File), a [`Cursor`](std::io::Cursor) over bytes, or
/// anything else seekable.
///
/// Construction reads and validates only the header and the chunk table:
/// for trailered (v4) containers the fixed-size trailer at the end of the
/// stream locates the table (whose bytes are verified against the
/// trailer's CRC32 before any entry is parsed); for chunked (v2) and
/// streamed (v3) containers the table sits directly after the header.
/// Chunk bodies are then fetched with one seek + bounded read each and
/// verified against their CRC32 (v3/v4) *before* any lossless decoder
/// sees them — the same discipline as [`StreamReader`], without ever
/// holding more than one compressed chunk in memory. Monolithic (v1)
/// streams and unknown future versions are rejected with clear typed
/// errors.
///
/// ```
/// use std::io::Cursor;
/// use szhi_core::{compress, ErrorBound, StreamSource, SzhiConfig};
/// use szhi_ndgrid::{Dims, Grid};
///
/// let field = Grid::from_fn(Dims::d3(40, 32, 32), |z, y, x| {
///     ((x + y) as f32 * 0.1).sin() + z as f32 * 0.02
/// });
/// let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3)).with_chunk_span([32, 32, 32]);
/// let bytes = compress(&field, &cfg).unwrap();
///
/// // In production the reader is a File; a Cursor works the same way.
/// let mut source = StreamSource::new(Cursor::new(&bytes[..])).unwrap();
/// assert_eq!(source.chunk_count(), 2);
/// for chunk in source.chunks() {
///     let (region, sub) = chunk.unwrap();
///     assert_eq!(sub.len(), region.len());
/// }
/// ```
#[derive(Debug)]
pub struct StreamSource<R> {
    reader: R,
    version: u8,
    header: Header,
    span: [usize; 3],
    entries: Vec<ChunkEntry>,
    /// The config dictionary of a tuned (v5) stream; empty otherwise.
    configs: Vec<Vec<LevelConfig>>,
    data_start: u64,
    plan: ChunkPlan,
}

/// The parsed chunk-table region of an io-backed source: the entries, the
/// (possibly empty) config dictionary and the data-area start offset.
type ParsedTable = (Vec<ChunkEntry>, Vec<Vec<LevelConfig>>, u64);

/// Reads exactly `n` bytes from `reader`, mapping failures (including a
/// premature end of the stream) to [`SzhiError::Io`].
fn read_exact_vec<R: Read>(reader: &mut R, n: usize, what: &str) -> Result<Vec<u8>, SzhiError> {
    let mut buf = vec![0u8; n];
    reader
        .read_exact(&mut buf)
        .map_err(|e| SzhiError::Io(format!("reading {what}: {e}")))?;
    Ok(buf)
}

impl<'a> StreamSource<std::io::Cursor<&'a [u8]>> {
    /// Convenience constructor over an in-memory stream.
    pub fn from_bytes(bytes: &'a [u8]) -> Result<Self, SzhiError> {
        StreamSource::new(std::io::Cursor::new(bytes))
    }
}

impl<R: Read + Seek> StreamSource<R> {
    /// Opens a chunked (v2), streamed (v3), trailered (v4) or tuned (v5)
    /// container, reading and validating the header and chunk table only.
    pub fn new(mut reader: R) -> Result<StreamSource<R>, SzhiError> {
        reader
            .seek(SeekFrom::Start(0))
            .map_err(|e| SzhiError::Io(format!("seeking to the stream start: {e}")))?;
        // The fixed header prefix: magic, version, and everything through
        // the level count at offset 48 (see docs/FORMAT.md).
        let mut head = read_exact_vec(&mut reader, 49, "the stream header")?;
        let version = format::read_magic_version(&mut ByteCursor::new(&head))?;
        format::reject_unchunked_version(version)?;
        // szhi-analyzer: allow(panic-reachability) -- `head` was filled by `read_exact_vec(.., 49, ..)` just above, so index 48 is in bounds; short reads already surfaced as typed errors
        let n_levels = head[48] as usize;
        head.extend(read_exact_vec(
            &mut reader,
            2 * n_levels + 12,
            "the predictor levels and chunk span",
        )?);
        let mut cur = ByteCursor::new(&head);
        format::read_magic_version(&mut cur)?;
        let header = format::read_header_fields(&mut cur)?;
        let span = format::read_span(&mut cur)?;
        let plan = format::validated_plan(&header, span)?;
        let data_start = head.len() as u64;
        let file_len = reader
            .seek(SeekFrom::End(0))
            .map_err(|e| SzhiError::Io(format!("seeking to the stream end: {e}")))?;
        let (entries, configs, data_start) = if version == VERSION_TRAILERED
            || version == VERSION_TUNED
        {
            Self::parse_trailered_table(&mut reader, &header, &plan, version, data_start, file_len)?
        } else {
            let (entries, data_start) = Self::parse_leading_table(
                &mut reader,
                &header,
                &plan,
                version,
                data_start,
                file_len,
            )?;
            (entries, Vec::new(), data_start)
        };
        Ok(StreamSource {
            reader,
            version,
            header,
            span,
            entries,
            configs,
            data_start,
            plan,
        })
    }

    /// Locates and validates the chunk table of a v4/v5 stream via its
    /// trailer: trailer magic and geometry first, then the table-region
    /// CRC32, then (for v5) the config dictionary, then the entries.
    fn parse_trailered_table(
        reader: &mut R,
        header: &Header,
        plan: &ChunkPlan,
        version: u8,
        data_start: u64,
        file_len: u64,
    ) -> Result<ParsedTable, SzhiError> {
        if file_len < data_start + TRAILER_SIZE as u64 {
            return Err(SzhiError::TrailerCorrupt(format!(
                "stream of {file_len} bytes is too short for a {TRAILER_SIZE}-byte trailer"
            )));
        }
        let trailer_start = file_len - TRAILER_SIZE as u64;
        reader
            .seek(SeekFrom::Start(trailer_start))
            .map_err(|e| SzhiError::Io(format!("seeking to the trailer: {e}")))?;
        let tail = read_exact_vec(reader, TRAILER_SIZE, "the trailer")?;
        let trailer = format::parse_trailer(&tail, version)?;
        if version == VERSION_TRAILERED {
            let table_len =
                format::validate_trailer_geometry(&trailer, plan.len(), data_start, trailer_start)?;
            reader
                .seek(SeekFrom::Start(trailer.table_offset))
                .map_err(|e| SzhiError::Io(format!("seeking to the chunk table: {e}")))?;
            let table_bytes = read_exact_vec(reader, table_len as usize, "the chunk table")?;
            let entries = format::parse_trailered_entries(
                &table_bytes,
                &trailer,
                data_start,
                header.pipeline,
            )?;
            Ok((entries, Vec::new(), data_start))
        } else {
            format::validate_tuned_geometry(&trailer, plan.len(), data_start, trailer_start)?;
            reader
                .seek(SeekFrom::Start(trailer.table_offset))
                .map_err(|e| SzhiError::Io(format!("seeking to the table region: {e}")))?;
            let region_len = (trailer_start - trailer.table_offset) as usize;
            let region = read_exact_vec(reader, region_len, "the table region")?;
            let (entries, configs) =
                format::parse_tuned_region(&region, &trailer, data_start, header)?;
            Ok((entries, configs, data_start))
        }
    }

    /// Reads and validates the leading chunk table of a v2/v3 stream (the
    /// table sits directly after the chunk span; the data area follows).
    fn parse_leading_table(
        reader: &mut R,
        header: &Header,
        plan: &ChunkPlan,
        version: u8,
        table_at: u64,
        file_len: u64,
    ) -> Result<(Vec<ChunkEntry>, u64), SzhiError> {
        reader
            .seek(SeekFrom::Start(table_at))
            .map_err(|e| SzhiError::Io(format!("seeking to the chunk table: {e}")))?;
        let count_bytes = read_exact_vec(reader, 8, "the chunk count")?;
        let n_chunks = u64::from_le_bytes(
            *count_bytes
                .first_chunk::<8>()
                .ok_or_else(|| SzhiError::Io("short read of the chunk count".into()))?,
        );
        let entry_size = if version == VERSION_STREAMED {
            format::V3_ENTRY_SIZE
        } else {
            format::V2_ENTRY_SIZE
        };
        let remaining = file_len - (table_at + 8);
        match n_chunks.checked_mul(entry_size as u64) {
            Some(bytes) if bytes <= remaining => {}
            _ => {
                return Err(SzhiError::InvalidStream(format!(
                    "chunk table count {n_chunks} exceeds the {remaining} bytes left in the \
                     stream"
                )))
            }
        }
        if n_chunks != plan.len() as u64 {
            return Err(SzhiError::InvalidStream(format!(
                "chunk table lists {n_chunks} chunks, the {} field at span {:?} has {}",
                header.dims,
                plan.span(),
                plan.len()
            )));
        }
        let table_len = n_chunks * entry_size as u64;
        let table_bytes = read_exact_vec(reader, table_len as usize, "the chunk table")?;
        let mut cur = ByteCursor::new(&table_bytes);
        let raw =
            format::read_raw_entries(&mut cur, version, n_chunks as usize, header.pipeline, 0)?;
        let data_start = table_at + 8 + table_len;
        let data_len = file_len - data_start;
        Ok((format::validate_extents(raw, data_len)?, data_start))
    }

    /// The container version of the stream (2, 3, 4 or 5).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// The parsed stream header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Shape of the full field the stream encodes.
    pub fn dims(&self) -> Dims {
        self.header.dims
    }

    /// Chunk span per axis `(z, y, x)`.
    pub fn span(&self) -> [usize; 3] {
        self.span
    }

    /// The chunk partition of the stream.
    pub fn plan(&self) -> &ChunkPlan {
        &self.plan
    }

    /// Number of chunks in the stream.
    pub fn chunk_count(&self) -> usize {
        self.entries.len()
    }

    /// The region of the original field chunk `index` covers.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (see
    /// [`StreamSource::chunk_count`]).
    pub fn chunk_region(&self, index: usize) -> Region {
        self.plan.chunk_at(index)
    }

    /// The lossless pipeline that encoded chunk `index` (from the v3+
    /// mode byte; for v2 streams, the header's global pipeline).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (see
    /// [`StreamSource::chunk_count`]).
    pub fn chunk_pipeline(&self, index: usize) -> PipelineSpec {
        // szhi-analyzer: allow(panic-reachability) -- documented `# Panics` contract for out-of-range indices; `fetch_chunk` guards every internal use with `check_index`
        self.entries[index].pipeline
    }

    /// The interpolation configuration chunk `index` was compressed with:
    /// its config-dictionary entry for tuned (v5) streams, the header's
    /// configuration for every other version.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (see
    /// [`StreamSource::chunk_count`]).
    pub fn chunk_interp(&self, index: usize) -> InterpConfig {
        // szhi-analyzer: allow(panic-reachability) -- documented `# Panics` contract for out-of-range indices; `fetch_chunk` guards every internal use with `check_index`
        format::resolve_chunk_interp(&self.header, self.entries[index].config, &self.configs)
    }

    fn check_index(&self, index: usize) -> Result<(), SzhiError> {
        if index >= self.entries.len() {
            return Err(SzhiError::InvalidInput(format!(
                "chunk index {index} out of range for a stream of {} chunks",
                self.entries.len()
            )));
        }
        Ok(())
    }

    /// Fetches the body of chunk `index` (one seek + one bounded read) and
    /// verifies it against its recorded CRC32 when the stream carries one.
    fn fetch_chunk(&mut self, index: usize) -> Result<Vec<u8>, SzhiError> {
        self.check_index(index)?;
        let entry = *self
            .entries
            .get(index)
            .ok_or_else(|| SzhiError::InvalidInput(format!("chunk index {index} out of range")))?;
        self.reader
            .seek(SeekFrom::Start(self.data_start + entry.offset as u64))
            .map_err(|e| SzhiError::Io(format!("seeking to chunk {index}: {e}")))?;
        let body = read_exact_vec(&mut self.reader, entry.len, "a chunk body")?;
        crate::telemetry::SOURCE_BYTES.bump(body.len() as u64);
        crate::telemetry::SOURCE_CHUNKS.bump(1);
        if let Some(stored) = entry.checksum {
            let _span = crate::telemetry::DECODE_CRC.enter();
            let computed = crc32(&body);
            if computed != stored {
                return Err(SzhiError::ChunkChecksum {
                    index,
                    stored,
                    computed,
                });
            }
        }
        Ok(body)
    }

    /// Verifies chunk `index` against its recorded CRC32 without decoding
    /// it. v2 streams carry no checksums, so for them this is a true no-op
    /// returning `Ok` — no seek, no read.
    pub fn verify_chunk(&mut self, index: usize) -> Result<(), SzhiError> {
        self.check_index(index)?;
        match self.entries.get(index) {
            Some(e) if e.checksum.is_some() => self.fetch_chunk(index).map(|_| ()),
            _ => Ok(()),
        }
    }

    /// Decodes chunk `index`: reads its body from the backing reader,
    /// verifies the checksum, then reconstructs the sub-field it covers.
    /// Returns the chunk's region of the original field and the
    /// reconstructed values.
    pub fn read_chunk(&mut self, index: usize) -> Result<(Region, Grid<f32>), SzhiError> {
        let body = self.fetch_chunk(index)?;
        let pipeline = self
            .entries
            .get(index)
            .ok_or_else(|| SzhiError::InvalidInput(format!("chunk index {index} out of range")))?
            .pipeline;
        let grid = decompress_chunk_body(
            &self.header,
            pipeline,
            &self.chunk_interp(index),
            self.plan.chunk_dims(index),
            &body,
        )?;
        Ok((self.plan.chunk_at(index), grid))
    }

    /// Iterates over the decoded chunks **lazily**, in plan order: each
    /// chunk is read, verified and decoded only when the iterator is
    /// advanced, so one compressed body and one reconstructed sub-field
    /// are in memory at a time.
    pub fn chunks(&mut self) -> SourceChunks<'_, R> {
        SourceChunks {
            source: self,
            next: 0,
        }
    }

    /// Decodes every chunk sequentially and assembles the full field.
    /// (Reads from one seekable source are inherently serial; decode the
    /// stream via [`StreamReader::read_all`] instead if it is already in
    /// memory and parallel decode matters.)
    pub fn read_all(&mut self) -> Result<Grid<f32>, SzhiError> {
        let mut out = Grid::zeros(self.header.dims);
        for i in 0..self.entries.len() {
            let (region, sub) = self.read_chunk(i)?;
            out.insert(&region, sub.as_slice());
        }
        Ok(out)
    }

    /// Consumes the source, returning the backing reader.
    pub fn into_inner(self) -> R {
        self.reader
    }
}

/// Lazy chunk iterator over a [`StreamSource`], returned by
/// [`StreamSource::chunks`].
#[derive(Debug)]
pub struct SourceChunks<'a, R> {
    source: &'a mut StreamSource<R>,
    next: usize,
}

impl<R: Read + Seek> Iterator for SourceChunks<'_, R> {
    type Item = Result<(Region, Grid<f32>), SzhiError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.source.chunk_count() {
            return None;
        }
        let index = self.next;
        self.next += 1;
        Some(self.source.read_chunk(index))
    }
}

/// Reads exactly `n` bytes from a forward-only reader **without trusting
/// `n` for the allocation**: the buffer grows only with bytes actually
/// present, so a corrupt length field fails as a typed error once the
/// stream runs dry — never as an allocation blowup.
fn read_exact_untrusted<R: Read>(reader: &mut R, n: u64, what: &str) -> Result<Vec<u8>, SzhiError> {
    let mut buf = Vec::new();
    reader
        .take(n)
        .read_to_end(&mut buf)
        .map_err(|e| SzhiError::Io(format!("reading {what}: {e}")))?;
    if (buf.len() as u64) != n {
        return Err(SzhiError::Io(format!(
            "reading {what}: the stream ended after {} of {n} bytes",
            buf.len()
        )));
    }
    Ok(buf)
}

/// Discards exactly `n` bytes from a forward-only reader (the gap between
/// two chunk bodies, which a seekable source would simply seek over).
fn skip_exact<R: Read>(reader: &mut R, n: u64, what: &str) -> Result<(), SzhiError> {
    let copied = std::io::copy(&mut reader.take(n), &mut std::io::sink())
        .map_err(|e| SzhiError::Io(format!("skipping {what}: {e}")))?;
    if copied != n {
        return Err(SzhiError::Io(format!(
            "skipping {what}: the stream ended after {copied} of {n} bytes"
        )));
    }
    Ok(())
}

/// How a [`ForwardSource`] holds the part of the stream behind the header.
#[derive(Debug)]
enum ForwardState<R> {
    /// v2/v3: the chunk table leads the data area, so the source is truly
    /// incremental — it holds the parsed table, the live reader and the
    /// current position within the data area, and decodes each body as it
    /// streams past.
    Streaming {
        reader: R,
        entries: Vec<ChunkEntry>,
        /// Bytes of the data area consumed so far (the forward cursor).
        pos: u64,
    },
    /// v4/v5: the chunk table and trailer sit **behind** the data area, so
    /// no chunk's pipeline, config or checksum is known until the stream
    /// ends. The source buffers the remainder to EOF, then validates
    /// table + trailer in the standard order — the unavoidable price of a
    /// trailered container on a pipe (memory high-water is O(compressed
    /// stream); see [`StreamSource`] for the seekable bounded-memory path).
    Buffered { bytes: Vec<u8>, table: ChunkTable },
}

/// Forward-only reader of chunked containers (v2–v5) over any
/// [`io::Read`](std::io::Read) — **no `Seek` required** — so a compressed
/// stream can be decoded straight off a pipe, a socket, or `stdin`.
///
/// Chunks are decoded strictly in offset order (which for streams written
/// by this workspace is plan order). For v2/v3 containers, whose chunk
/// table precedes the data area, decoding is truly incremental: one
/// compressed body and one reconstructed sub-field in memory at a time.
/// For trailered v4/v5 containers the table and trailer live at the end of
/// the stream, so the source buffers the remainder to EOF first and
/// validates table + trailer at end-of-stream in the same order as the
/// in-memory readers (header → trailer geometry → table-region CRC32 →
/// config dictionary → entries), then every chunk body is still verified
/// against its CRC32 before any lossless decoder touches it.
///
/// ```
/// use szhi_core::{compress, decompress, ErrorBound, ForwardSource, SzhiConfig};
/// use szhi_ndgrid::{Dims, Grid};
///
/// let field = Grid::from_fn(Dims::d3(40, 32, 32), |z, y, x| {
///     ((x + y) as f32 * 0.1).sin() + z as f32 * 0.02
/// });
/// let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3)).with_chunk_span([32, 32, 32]);
/// let bytes = compress(&field, &cfg).unwrap();
///
/// // A plain `&[u8]` implements `Read` but not `Seek` — the forward
/// // source decodes it anyway, identically to `decompress`.
/// let mut source = ForwardSource::new(&bytes[..]).unwrap();
/// let restored = source.read_all().unwrap();
/// assert_eq!(restored.as_slice(), decompress(&bytes).unwrap().as_slice());
/// ```
#[derive(Debug)]
pub struct ForwardSource<R> {
    state: ForwardState<R>,
    version: u8,
    header: Header,
    span: [usize; 3],
    plan: ChunkPlan,
    next: usize,
}

impl<R: Read> ForwardSource<R> {
    /// Opens a chunked (v2), streamed (v3), trailered (v4) or tuned (v5)
    /// container over a forward-only reader. Monolithic (v1) streams and
    /// unknown future versions are rejected with clear typed errors.
    ///
    /// For v2/v3 this reads and validates the header and leading chunk
    /// table only; for v4/v5 it consumes the reader to EOF (see the type
    /// docs for why) and validates the trailing table before returning.
    pub fn new(mut reader: R) -> Result<ForwardSource<R>, SzhiError> {
        // The fixed header prefix: magic, version, and everything through
        // the level count at offset 48 (see docs/FORMAT.md).
        let mut head = read_exact_vec(&mut reader, 49, "the stream header")?;
        let version = format::read_magic_version(&mut ByteCursor::new(&head))?;
        format::reject_unchunked_version(version)?;
        // szhi-analyzer: allow(panic-reachability) -- `head` was filled by `read_exact_vec(.., 49, ..)` just above, so index 48 is in bounds; short reads already surfaced as typed errors
        let n_levels = head[48] as usize;
        head.extend(read_exact_vec(
            &mut reader,
            2 * n_levels + 12,
            "the predictor levels and chunk span",
        )?);
        let mut cur = ByteCursor::new(&head);
        format::read_magic_version(&mut cur)?;
        let header = format::read_header_fields(&mut cur)?;
        let span = format::read_span(&mut cur)?;
        let plan = format::validated_plan(&header, span)?;
        let state = if version == VERSION_TRAILERED || version == VERSION_TUNED {
            Self::buffer_trailered(reader, head)?
        } else {
            Self::parse_forward_leading_table(reader, &header, &plan, version)?
        };
        Ok(ForwardSource {
            state,
            version,
            header,
            span,
            plan,
            next: 0,
        })
    }

    /// The v4/v5 path: drain the reader to EOF behind the already-consumed
    /// header prefix, then validate the whole stream exactly like the
    /// in-memory readers — the table and trailer are validated at
    /// end-of-stream, in the standard order.
    fn buffer_trailered(mut reader: R, head: Vec<u8>) -> Result<ForwardState<R>, SzhiError> {
        let mut bytes = head;
        reader
            .read_to_end(&mut bytes)
            .map_err(|e| SzhiError::Io(format!("reading a trailered stream to its end: {e}")))?;
        let (_, table) = format::read_stream_trailered(&bytes)?;
        Ok(ForwardState::Buffered { bytes, table })
    }

    /// The v2/v3 path: read and validate the leading chunk table, leaving
    /// the reader positioned at the start of the data area. The data
    /// area's length is unknown on a forward stream (it ends at EOF), so
    /// extents are validated against the maximal area; a chunk that claims
    /// bytes past the true end surfaces as a typed I/O error when its body
    /// is read.
    fn parse_forward_leading_table(
        mut reader: R,
        header: &Header,
        plan: &ChunkPlan,
        version: u8,
    ) -> Result<ForwardState<R>, SzhiError> {
        let count_bytes = read_exact_vec(&mut reader, 8, "the chunk count")?;
        let n_chunks = u64::from_le_bytes(
            *count_bytes
                .first_chunk::<8>()
                .ok_or_else(|| SzhiError::Io("short read of the chunk count".into()))?,
        );
        if n_chunks != plan.len() as u64 {
            return Err(SzhiError::InvalidStream(format!(
                "chunk table lists {n_chunks} chunks, the {} field at span {:?} has {}",
                header.dims,
                plan.span(),
                plan.len()
            )));
        }
        let entry_size = if version == VERSION_STREAMED {
            format::V3_ENTRY_SIZE
        } else {
            format::V2_ENTRY_SIZE
        };
        let table_len = n_chunks.saturating_mul(entry_size as u64);
        let table_bytes = read_exact_untrusted(&mut reader, table_len, "the chunk table")?;
        let mut cur = ByteCursor::new(&table_bytes);
        let raw =
            format::read_raw_entries(&mut cur, version, n_chunks as usize, header.pipeline, 0)?;
        let entries = format::validate_extents(raw, u64::MAX)?;
        Ok(ForwardState::Streaming {
            reader,
            entries,
            pos: 0,
        })
    }

    /// The container version of the stream (2, 3, 4 or 5).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// The parsed stream header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Shape of the full field the stream encodes.
    pub fn dims(&self) -> Dims {
        self.header.dims
    }

    /// Chunk span per axis `(z, y, x)`.
    pub fn span(&self) -> [usize; 3] {
        self.span
    }

    /// The chunk partition of the stream.
    pub fn plan(&self) -> &ChunkPlan {
        &self.plan
    }

    /// Number of chunks in the stream.
    pub fn chunk_count(&self) -> usize {
        match &self.state {
            ForwardState::Streaming { entries, .. } => entries.len(),
            ForwardState::Buffered { table, .. } => table.entries.len(),
        }
    }

    /// Index of the next chunk [`ForwardSource::next_chunk`] will decode.
    pub fn next_index(&self) -> usize {
        self.next
    }

    /// The region of the original field chunk `index` covers.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (see
    /// [`ForwardSource::chunk_count`]).
    pub fn chunk_region(&self, index: usize) -> Region {
        self.plan.chunk_at(index)
    }

    /// The table entry of chunk `index`, or a typed error when out of
    /// range.
    fn entry(&self, index: usize) -> Result<ChunkEntry, SzhiError> {
        let entry = match &self.state {
            ForwardState::Streaming { entries, .. } => entries.get(index),
            ForwardState::Buffered { table, .. } => table.entries.get(index),
        };
        entry.copied().ok_or_else(|| {
            SzhiError::InvalidInput(format!(
                "chunk index {index} out of range for a stream of {} chunks",
                self.chunk_count()
            ))
        })
    }

    /// The lossless pipeline that encoded chunk `index` (from the v3+ mode
    /// byte; for v2 streams, the header's global pipeline), or a typed
    /// error when out of range.
    pub fn chunk_pipeline(&self, index: usize) -> Result<PipelineSpec, SzhiError> {
        self.entry(index).map(|e| e.pipeline)
    }

    /// The interpolation configuration chunk `index` was compressed with:
    /// its config-dictionary entry for tuned (v5) streams, the header's
    /// configuration for every other version; a typed error when out of
    /// range.
    pub fn chunk_interp(&self, index: usize) -> Result<InterpConfig, SzhiError> {
        let entry = self.entry(index)?;
        let configs: &[Vec<LevelConfig>] = match &self.state {
            ForwardState::Streaming { .. } => &[],
            ForwardState::Buffered { table, .. } => &table.configs,
        };
        Ok(format::resolve_chunk_interp(
            &self.header,
            entry.config,
            configs,
        ))
    }

    /// Decodes the next chunk in offset order: its region of the original
    /// field plus the reconstructed sub-field, or `None` once every chunk
    /// has been decoded. The chunk's CRC32 (v3+) is verified before any
    /// lossless decoder touches the bytes.
    ///
    /// A forward source cannot rewind, so an error consumes the chunk like
    /// a success: after a checksum or decode failure the stream position
    /// is still consistent (the body was fully consumed) and the next call
    /// moves on to the following chunk; after an I/O failure every later
    /// body read reports a typed I/O error of its own.
    #[allow(clippy::should_implement_trait)]
    pub fn next_chunk(&mut self) -> Option<Result<(Region, Grid<f32>), SzhiError>> {
        if self.next >= self.chunk_count() {
            return None;
        }
        let index = self.next;
        self.next += 1;
        Some(self.decode_chunk(index))
    }

    /// Fetches and decodes chunk `index` (the current forward position).
    fn decode_chunk(&mut self, index: usize) -> Result<(Region, Grid<f32>), SzhiError> {
        let entry = self.entry(index)?;
        let interp = self.chunk_interp(index)?;
        let ForwardSource {
            state,
            header,
            plan,
            ..
        } = self;
        let dims = plan.chunk_dims(index);
        let grid = match state {
            ForwardState::Streaming { reader, pos, .. } => {
                let offset = entry.offset as u64;
                if offset > *pos {
                    // A gap between bodies: a seekable source would seek
                    // over it; a forward source discards it.
                    skip_exact(reader, offset - *pos, "a gap between chunk bodies")?;
                    *pos = offset;
                }
                let body = read_exact_untrusted(reader, entry.len as u64, "a chunk body")?;
                *pos += entry.len as u64;
                crate::telemetry::FORWARD_BYTES.bump(body.len() as u64);
                crate::telemetry::FORWARD_CHUNKS.bump(1);
                if let Some(stored) = entry.checksum {
                    let _span = crate::telemetry::DECODE_CRC.enter();
                    let computed = crc32(&body);
                    if computed != stored {
                        return Err(SzhiError::ChunkChecksum {
                            index,
                            stored,
                            computed,
                        });
                    }
                }
                decompress_chunk_body(header, entry.pipeline, &interp, dims, &body)?
            }
            ForwardState::Buffered { bytes, table } => {
                let body = table.verified_chunk_slice(bytes, index)?;
                crate::telemetry::FORWARD_BYTES.bump(body.len() as u64);
                crate::telemetry::FORWARD_CHUNKS.bump(1);
                decompress_chunk_body(header, entry.pipeline, &interp, dims, body)?
            }
        };
        Ok((plan.chunk_at(index), grid))
    }

    /// Iterates over the remaining decoded chunks in offset order, lazily:
    /// one compressed body and one reconstructed sub-field in memory at a
    /// time (for v2/v3; buffered v4/v5 streams hold the compressed bytes
    /// until the source is dropped).
    pub fn chunks(&mut self) -> ForwardChunks<'_, R> {
        ForwardChunks { source: self }
    }

    /// Decodes every remaining chunk and assembles the full field (regions
    /// already consumed by [`ForwardSource::next_chunk`] stay zero). On a
    /// fresh source this reconstructs the whole field, identically to
    /// [`crate::decompress`].
    pub fn read_all(&mut self) -> Result<Grid<f32>, SzhiError> {
        let mut out = Grid::zeros(self.header.dims);
        while let Some(chunk) = self.next_chunk() {
            let (region, sub) = chunk?;
            out.insert(&region, sub.as_slice());
        }
        Ok(out)
    }
}

/// Lazy chunk iterator over a [`ForwardSource`], returned by
/// [`ForwardSource::chunks`].
#[derive(Debug)]
pub struct ForwardChunks<'a, R> {
    source: &'a mut ForwardSource<R>,
}

impl<R: Read> Iterator for ForwardChunks<'_, R> {
    type Item = Result<(Region, Grid<f32>), SzhiError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.source.next_chunk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::{compress_chunked, decompress};
    use crate::config::ErrorBound;
    use crate::format::{stream_version, VERSION_STREAMED};
    use szhi_datagen::DatasetKind;

    /// A streaming-safe configuration: absolute bound, no whole-field
    /// auto-tune.
    fn stream_cfg(span: [usize; 3]) -> SzhiConfig {
        SzhiConfig::new(ErrorBound::Absolute(2e-3))
            .with_auto_tune(false)
            .with_chunk_span(span)
    }

    fn push_all(writer: &mut StreamWriter, data: &Grid<f32>) -> Vec<ChunkReceipt> {
        let mut receipts = Vec::new();
        while let Some(region) = writer.next_chunk_region() {
            let dims = writer.plan().chunk_dims(writer.next_index());
            let sub = Grid::from_vec(dims, data.extract(&region));
            receipts.push(writer.push_chunk(&sub).unwrap());
        }
        receipts
    }

    #[test]
    fn pushing_chunks_matches_the_batch_engine_byte_for_byte() {
        let data = DatasetKind::Miranda.generate(Dims::d3(48, 40, 36), 21);
        let cfg = stream_cfg([16, 16, 16]);
        let batch = compress_chunked(&data, &cfg, [16, 16, 16]).unwrap();

        let mut writer = StreamWriter::new(data.dims(), &cfg).unwrap();
        assert_eq!(writer.next_index(), 0);
        let receipts = push_all(&mut writer, &data);
        assert!(writer.is_complete());
        assert_eq!(receipts.len(), writer.plan().len());
        let (streamed, stats) = writer.finish_with_stats().unwrap();

        assert_eq!(
            streamed, batch,
            "streamed and batch outputs must be identical"
        );
        assert_eq!(stream_version(&streamed).unwrap(), VERSION_STREAMED);
        assert_eq!(stats.compressed_bytes, streamed.len());
        assert_eq!(
            receipts.iter().map(|r| r.index).collect::<Vec<_>>(),
            (0..receipts.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn writer_rejects_streaming_hostile_configs() {
        let dims = Dims::d3(32, 32, 32);
        // Relative bound: needs the global value range.
        let cfg = SzhiConfig::new(ErrorBound::Relative(1e-3)).with_auto_tune(false);
        assert!(matches!(
            StreamWriter::new(dims, &cfg),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("relative")
        ));
        // Whole-field auto-tune.
        let cfg = SzhiConfig::new(ErrorBound::Absolute(1e-3));
        assert!(matches!(
            StreamWriter::new(dims, &cfg),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("auto-tune")
        ));
        // Misaligned span.
        let cfg = stream_cfg([12, 16, 16]);
        assert!(StreamWriter::new(dims, &cfg).is_err());
    }

    #[test]
    fn writer_enforces_chunk_order_shape_and_completeness() {
        let data = DatasetKind::Nyx.generate(Dims::d3(32, 32, 32), 5);
        let cfg = stream_cfg([16, 16, 16]);
        let mut writer = StreamWriter::new(data.dims(), &cfg).unwrap();
        assert_eq!(writer.plan().len(), 8);

        // Wrong shape: chunk 0 expects 16³.
        let wrong = Grid::zeros(Dims::d3(8, 16, 16));
        assert!(matches!(
            writer.push_chunk(&wrong),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("shape")
        ));

        // Out-of-order push of a pre-encoded chunk.
        let region = writer.plan().chunk_at(3);
        let sub = Grid::from_vec(region.dims(), data.extract(&region));
        let encoded = writer.encode_chunk(3, &sub).unwrap();
        assert_eq!(encoded.index(), 3);
        assert!(encoded.compressed_bytes() > 0);
        assert!(matches!(
            writer.push_encoded(encoded),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("out of order")
        ));

        // Finishing early must fail with a typed error.
        let region = writer.plan().chunk_at(0);
        let sub = Grid::from_vec(region.dims(), data.extract(&region));
        writer.push_chunk(&sub).unwrap();
        assert!(matches!(
            writer.finish(),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("1 of 8")
        ));
    }

    #[test]
    fn reader_iterates_lazily_and_drains_eagerly() {
        let data = DatasetKind::Rtm.generate(Dims::d3(40, 40, 24), 13);
        let cfg = stream_cfg([16, 16, 16]);
        let mut writer = StreamWriter::new(data.dims(), &cfg).unwrap();
        push_all(&mut writer, &data);
        let bytes = writer.finish().unwrap();

        let reader = StreamReader::new(&bytes).unwrap();
        assert_eq!(reader.dims(), data.dims());
        assert_eq!(reader.chunk_count(), 3 * 3 * 2);
        let mut covered = 0usize;
        for (i, chunk) in reader.chunks().enumerate() {
            let (region, sub) = chunk.unwrap();
            assert_eq!(region, reader.chunk_region(i));
            assert_eq!(sub.len(), region.len());
            reader.verify_chunk(i).unwrap();
            for (a, b) in data.extract(&region).iter().zip(sub.as_slice()) {
                assert!(((*a as f64) - (*b as f64)).abs() <= 2e-3 + 1e-12);
            }
            covered += region.len();
        }
        assert_eq!(covered, data.dims().len());

        let eager = reader.read_all().unwrap();
        assert_eq!(eager.dims(), data.dims());
        assert_eq!(eager.as_slice(), decompress(&bytes).unwrap().as_slice());
        assert!(reader.read_chunk(reader.chunk_count()).is_err());
    }

    /// An `io::Write` that swallows `fail_after` writes, then fails every
    /// subsequent one — for exercising the sink's poisoning discipline.
    struct FailAfter(usize);

    impl std::io::Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.0 == 0 {
                return Err(std::io::Error::other("disk full"));
            }
            self.0 -= 1;
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn sink_emits_v4_with_the_same_chunks_as_the_v3_writer() {
        let data = DatasetKind::Miranda.generate(Dims::d3(48, 40, 36), 21);
        let cfg = stream_cfg([16, 16, 16]);
        let v3 = compress_chunked(&data, &cfg, [16, 16, 16]).unwrap();

        let mut sink = StreamSink::new(Vec::new(), data.dims(), &cfg).unwrap();
        assert_eq!(sink.next_index(), 0);
        assert_eq!(sink.dims(), data.dims());
        assert!(sink.abs_eb() > 0.0);
        while let Some(region) = sink.next_chunk_region() {
            let dims = sink.plan().chunk_dims(sink.next_index());
            let sub = Grid::from_vec(dims, data.extract(&region));
            sink.push_chunk(&sub).unwrap();
        }
        assert!(sink.is_complete());
        let (v4, stats) = sink.finish_with_stats().unwrap();
        assert_eq!(
            stream_version(&v4).unwrap(),
            crate::format::VERSION_TRAILERED
        );
        assert_eq!(stats.compressed_bytes, v4.len());

        // The sink shares the v3 writer's chunk encoder: rebuilding a v4
        // container from the v3 stream's bodies and pipelines reproduces
        // the sink's bytes exactly.
        let (header, table) = crate::format::read_stream_chunked(&v3).unwrap();
        let chunks: Vec<(PipelineSpec, Vec<u8>)> = (0..table.entries.len())
            .map(|i| {
                (
                    table.entries[i].pipeline,
                    table.chunk_slice(&v3, i).to_vec(),
                )
            })
            .collect();
        let rebuilt = crate::format::write_stream_v4(&header, table.span, &chunks);
        assert_eq!(v4, rebuilt, "sink bytes must match write_stream_v4");

        // And the trailered stream decompresses bit-identically to the v3
        // stream through every reader.
        let from_v3 = decompress(&v3).unwrap();
        let from_v4 = decompress(&v4).unwrap();
        assert_eq!(from_v3.as_slice(), from_v4.as_slice());
        let reader = StreamReader::new(&v4).unwrap();
        assert_eq!(reader.read_all().unwrap().as_slice(), from_v4.as_slice());
        let mut source = StreamSource::from_bytes(&v4).unwrap();
        assert_eq!(source.version(), crate::format::VERSION_TRAILERED);
        assert_eq!(source.read_all().unwrap().as_slice(), from_v4.as_slice());
    }

    #[test]
    fn sink_enforces_order_shape_completeness_and_poisoning() {
        let data = DatasetKind::Nyx.generate(Dims::d3(32, 32, 32), 5);
        let cfg = stream_cfg([16, 16, 16]);
        let mut sink = StreamSink::new(Vec::new(), data.dims(), &cfg).unwrap();
        assert_eq!(sink.plan().len(), 8);

        // Wrong shape.
        let wrong = Grid::zeros(Dims::d3(8, 16, 16));
        assert!(matches!(
            sink.push_chunk(&wrong),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("shape")
        ));

        // Out-of-order push of a pre-encoded chunk.
        let region = sink.plan().chunk_at(3);
        let sub = Grid::from_vec(region.dims(), data.extract(&region));
        let encoded = sink.encode_chunk(3, &sub).unwrap();
        assert!(matches!(
            sink.push_encoded(encoded),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("out of order")
        ));

        // Finishing early.
        let region = sink.plan().chunk_at(0);
        let sub = Grid::from_vec(region.dims(), data.extract(&region));
        sink.push_chunk(&sub).unwrap();
        assert!(matches!(
            sink.finish(),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("1 of 8")
        ));

        // Streaming-hostile configs are rejected like the v3 writer's.
        let relative = SzhiConfig::new(ErrorBound::Relative(1e-3)).with_auto_tune(false);
        assert!(matches!(
            StreamSink::new(Vec::new(), data.dims(), &relative),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("relative")
        ));

        // A failed write poisons the sink: the error is typed Io, and every
        // further push or finish reports the poisoning.
        let mut sink = StreamSink::new(FailAfter(1), data.dims(), &cfg).unwrap();
        let region = sink.plan().chunk_at(0);
        let sub = Grid::from_vec(region.dims(), data.extract(&region));
        assert!(matches!(sink.push_chunk(&sub), Err(SzhiError::Io(_))));
        assert!(matches!(
            sink.push_chunk(&sub),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("poisoned")
        ));
        assert!(matches!(
            sink.finish(),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("poisoned")
        ));
    }

    #[test]
    fn source_reads_every_chunked_version_like_the_slice_reader() {
        let data = DatasetKind::Rtm.generate(Dims::d3(40, 40, 24), 13);
        let cfg = stream_cfg([16, 16, 16]);
        let v3 = compress_chunked(&data, &cfg, [16, 16, 16]).unwrap();
        // Reassemble v2 and v4 containers carrying the same chunk bodies.
        let (header, table) = crate::format::read_stream_chunked(&v3).unwrap();
        let bodies: Vec<Vec<u8>> = (0..table.entries.len())
            .map(|i| table.chunk_slice(&v3, i).to_vec())
            .collect();
        let chunks: Vec<(PipelineSpec, Vec<u8>)> = bodies
            .iter()
            .enumerate()
            .map(|(i, b)| (table.entries[i].pipeline, b.clone()))
            .collect();
        let v2 = crate::format::write_stream_v2(&header, table.span, &bodies);
        let v4 = crate::format::write_stream_v4(&header, table.span, &chunks);

        let expect = decompress(&v3).unwrap();
        for (version, bytes) in [(2u8, &v2), (3, &v3), (4, &v4)] {
            let mut source = StreamSource::from_bytes(bytes).unwrap();
            assert_eq!(source.version(), version, "v{version}");
            assert_eq!(source.dims(), data.dims());
            assert_eq!(source.span(), table.span);
            assert_eq!(source.chunk_count(), table.entries.len());
            assert_eq!(source.header().pipeline, header.pipeline);
            for i in 0..source.chunk_count() {
                source.verify_chunk(i).unwrap();
                assert_eq!(source.chunk_pipeline(i), table.entries[i].pipeline);
                assert_eq!(source.chunk_region(i), source.plan().chunk_at(i));
            }
            let mut covered = 0usize;
            for chunk in source.chunks() {
                let (region, sub) = chunk.unwrap();
                assert_eq!(sub.len(), region.len());
                covered += region.len();
            }
            assert_eq!(covered, data.dims().len());
            assert_eq!(
                source.read_all().unwrap().as_slice(),
                expect.as_slice(),
                "v{version} source disagrees with decompress"
            );
            assert!(source.read_chunk(source.chunk_count()).is_err());
            let _ = source.into_inner();
        }
    }

    #[test]
    fn reader_and_source_reject_v1_and_unknown_versions_clearly() {
        let data = DatasetKind::Nyx.generate(Dims::d3(20, 20, 20), 2);
        let v1 = crate::compressor::compress(&data, &SzhiConfig::new(ErrorBound::Relative(1e-2)))
            .unwrap();
        assert_eq!(stream_version(&v1).unwrap(), crate::format::VERSION);
        let mut v6 = compress_chunked(&data, &stream_cfg([16, 16, 16]), [16, 16, 16]).unwrap();
        v6[4] = 6;

        // v1: named monolithic, pointed at `decompress` — not a confusing
        // chunk-table parse failure.
        for result in [
            StreamReader::new(&v1).err(),
            StreamSource::from_bytes(&v1).err(),
        ] {
            match result {
                Some(SzhiError::InvalidStream(msg)) => {
                    assert!(msg.contains("monolithic"), "unexpected message: {msg}");
                    assert!(msg.contains("decompress"), "unexpected message: {msg}");
                }
                other => panic!("v1 not rejected clearly: {other:?}"),
            }
        }
        // v6: named unsupported, with the version number.
        for result in [
            StreamReader::new(&v6).err(),
            StreamSource::from_bytes(&v6).err(),
        ] {
            match result {
                Some(SzhiError::InvalidStream(msg)) => {
                    assert!(msg.contains("unsupported"), "unexpected message: {msg}");
                    assert!(msg.contains('6'), "unexpected message: {msg}");
                }
                other => panic!("v6 not rejected clearly: {other:?}"),
            }
        }
    }

    #[test]
    fn v4_byte_flips_and_truncations_through_the_source_never_panic() {
        // The io-backed read path must uphold the same discipline as the
        // slice readers: every single-byte corruption and every truncation
        // of a v4 stream surfaces as a typed error, never a panic.
        let data = DatasetKind::Qmcpack.generate(Dims::d3(20, 20, 20), 3);
        let cfg = stream_cfg([16, 16, 16]);
        let mut sink = StreamSink::new(Vec::new(), data.dims(), &cfg).unwrap();
        while let Some(region) = sink.next_chunk_region() {
            let dims = sink.plan().chunk_dims(sink.next_index());
            sink.push_chunk(&Grid::from_vec(dims, data.extract(&region)))
                .unwrap();
        }
        let bytes = sink.finish().unwrap();
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                let result = std::panic::catch_unwind(|| {
                    if let Ok(mut source) = StreamSource::from_bytes(&corrupt) {
                        let _ = source.read_all();
                    }
                });
                assert!(
                    result.is_ok(),
                    "source panicked with byte {pos} xor {flip:#x}"
                );
            }
        }
        for cut in [0usize, 4, 40, bytes.len() / 2, bytes.len() - 1] {
            let result = std::panic::catch_unwind(|| {
                if let Ok(mut source) = StreamSource::from_bytes(&bytes[..cut]) {
                    let _ = source.read_all();
                }
            });
            assert!(result.is_ok(), "source panicked at truncation {cut}");
        }
    }

    #[test]
    fn per_chunk_tuning_never_loses_to_a_global_mode_even_at_tight_bounds() {
        // Regression for the eb-sensitivity PR 3 noted: at tight bounds the
        // noisy half's codes saturate into outliers and both pipelines see
        // similar inputs, so per-chunk selection may stop *winning* — but
        // because every chunk independently keeps the smaller of the two
        // payloads (ties falling back to the configured default), the tuned
        // stream must never be *larger* than the best global mode. The
        // container overhead is identical (v3 entries are fixed-size), so
        // the guarantee is exact, not approximate.
        let data = szhi_datagen::mixed_smooth_noisy(Dims::d3(32, 32, 64));
        let span = [32, 32, 32];
        for abs_eb in [2e-3, 1e-5, 1e-7] {
            let base = SzhiConfig::new(ErrorBound::Absolute(abs_eb))
                .with_auto_tune(false)
                .with_chunk_span(span);
            let cr =
                compress_chunked(&data, &base.clone().with_mode(PipelineMode::Cr), span).unwrap();
            let tp =
                compress_chunked(&data, &base.clone().with_mode(PipelineMode::Tp), span).unwrap();
            let tuned = compress_chunked(
                &data,
                &base.clone().with_mode_tuning(ModeTuning::PerChunk),
                span,
            )
            .unwrap();
            assert!(
                tuned.len() <= cr.len() && tuned.len() <= tp.len(),
                "eb {abs_eb:e}: per-chunk ({} B) larger than global CR ({} B) or TP ({} B)",
                tuned.len(),
                cr.len(),
                tp.len()
            );
            // The clean-fallback guard: if saturation pushed every chunk to
            // the default (CR) mode, the tuned stream must be byte-identical
            // to the global default stream — no stray mode bytes, no size
            // drift.
            let reader = StreamReader::new(&tuned).unwrap();
            let all_default =
                (0..reader.chunk_count()).all(|i| reader.chunk_pipeline(i) == PipelineSpec::CR);
            if all_default {
                assert_eq!(
                    tuned, cr,
                    "eb {abs_eb:e}: all-default tuned stream must equal CR"
                );
            }
            // And the stream still honours the bound.
            let recon = decompress(&tuned).unwrap();
            for (a, b) in data.as_slice().iter().zip(recon.as_slice()) {
                assert!(((*a as f64) - (*b as f64)).abs() <= abs_eb + 1e-12);
            }
        }
    }

    #[test]
    fn per_chunk_interp_tuning_emits_a_v5_stream_that_roundtrips_everywhere() {
        // The acceptance contract of the tuned (v5) container: with
        // per-chunk interpolation tuning (and estimator-guided pipeline
        // selection) enabled, the batch engine, the incremental writer and
        // the io-backed sink all emit the same v5 bytes, and the stream
        // decodes bit-identically through `decompress`, `StreamReader`
        // and `StreamSource`, honouring the error bound.
        let data = szhi_datagen::mixed_smooth_noisy(Dims::d3(32, 32, 64));
        let abs_eb = 2e-3;
        let cfg = SzhiConfig::new(ErrorBound::Absolute(abs_eb))
            .with_auto_tune(false)
            .with_chunk_span([32, 32, 32])
            .with_mode_tuning(ModeTuning::estimated())
            .with_chunk_interp_tuning(true);

        let batch = compress_chunked(&data, &cfg, [32, 32, 32]).unwrap();
        assert_eq!(stream_version(&batch).unwrap(), VERSION_TUNED);

        // Incremental writer: same bytes.
        let mut writer = StreamWriter::new(data.dims(), &cfg).unwrap();
        push_all(&mut writer, &data);
        let streamed = writer.finish().unwrap();
        assert_eq!(streamed, batch, "writer must match the batch engine");

        // io-backed sink: same bytes again (the v5 tail is identical).
        let mut sink = StreamSink::new(Vec::new(), data.dims(), &cfg).unwrap();
        while let Some(region) = sink.next_chunk_region() {
            let dims = sink.plan().chunk_dims(sink.next_index());
            sink.push_chunk(&Grid::from_vec(dims, data.extract(&region)))
                .unwrap();
        }
        let sunk = sink.finish().unwrap();
        assert_eq!(sunk, batch, "sink must match the batch engine");

        // Every reader agrees bit-for-bit and the bound holds.
        let from_decompress = decompress(&batch).unwrap();
        let reader = StreamReader::new(&batch).unwrap();
        assert_eq!(
            reader.read_all().unwrap().as_slice(),
            from_decompress.as_slice()
        );
        let mut source = StreamSource::from_bytes(&batch).unwrap();
        assert_eq!(source.version(), VERSION_TUNED);
        assert_eq!(
            source.read_all().unwrap().as_slice(),
            from_decompress.as_slice()
        );
        for (a, b) in data.as_slice().iter().zip(from_decompress.as_slice()) {
            assert!(((*a as f64) - (*b as f64)).abs() <= abs_eb + 1e-12);
        }

        // The chunk table exposes each chunk's resolved configuration, and
        // the dictionary holds every referenced config.
        for i in 0..reader.chunk_count() {
            let interp = reader.chunk_interp(i);
            interp.validate().unwrap();
            assert_eq!(interp.anchor_stride, reader.header().interp.anchor_stride);
            assert_eq!(source.chunk_interp(i), interp);
        }

        // Random access decodes each chunk with its own config.
        let (region, sub) = crate::compressor::decompress_chunk(&batch, 1).unwrap();
        for (a, b) in data.extract(&region).iter().zip(sub.as_slice()) {
            assert!(((*a as f64) - (*b as f64)).abs() <= abs_eb + 1e-12);
        }
    }

    #[test]
    fn v5_byte_flips_and_truncations_never_panic_through_any_reader() {
        // The v5 parity fuzz: every single-byte corruption and truncation
        // of a tuned stream surfaces as a typed error through `decompress`
        // and the io-backed `StreamSource` — never a panic.
        let data = szhi_datagen::mixed_smooth_noisy(Dims::d3(16, 16, 32));
        let cfg = SzhiConfig::new(ErrorBound::Absolute(2e-3))
            .with_auto_tune(false)
            .with_chunk_span([16, 16, 16])
            .with_mode_tuning(ModeTuning::PerChunk)
            .with_chunk_interp_tuning(true);
        let bytes = compress_chunked(&data, &cfg, [16, 16, 16]).unwrap();
        assert_eq!(stream_version(&bytes).unwrap(), VERSION_TUNED);
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                let result = std::panic::catch_unwind(|| {
                    let _ = decompress(&corrupt);
                    if let Ok(mut source) = StreamSource::from_bytes(&corrupt) {
                        let _ = source.read_all();
                    }
                });
                assert!(
                    result.is_ok(),
                    "v5 reader panicked with byte {pos} xor {flip:#x}"
                );
            }
        }
        for cut in [0usize, 4, 40, bytes.len() / 2, bytes.len() - 1] {
            let result = std::panic::catch_unwind(|| {
                assert!(decompress(&bytes[..cut]).is_err());
                if let Ok(mut source) = StreamSource::from_bytes(&bytes[..cut]) {
                    let _ = source.read_all();
                }
            });
            assert!(result.is_ok(), "v5 reader panicked at truncation {cut}");
        }
    }

    /// Wraps a byte slice in a reader that implements `Read` but not
    /// `Seek` and hands out bytes a few at a time, like a slow pipe.
    struct PipeReader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Read for PipeReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = buf.len().min(13).min(self.bytes.len() - self.pos);
            buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn forward_source_matches_the_seekable_source_on_every_version() {
        let data = DatasetKind::Rtm.generate(Dims::d3(40, 40, 24), 13);
        let cfg = stream_cfg([16, 16, 16]);
        let v3 = compress_chunked(&data, &cfg, [16, 16, 16]).unwrap();
        let (header, table) = crate::format::read_stream_chunked(&v3).unwrap();
        let bodies: Vec<Vec<u8>> = (0..table.entries.len())
            .map(|i| table.chunk_slice(&v3, i).to_vec())
            .collect();
        let chunks: Vec<(PipelineSpec, Vec<u8>)> = bodies
            .iter()
            .enumerate()
            .map(|(i, b)| (table.entries[i].pipeline, b.clone()))
            .collect();
        let v2 = crate::format::write_stream_v2(&header, table.span, &bodies);
        let v4 = crate::format::write_stream_v4(&header, table.span, &chunks);
        let v5 = compress_chunked(
            &data,
            &cfg.clone()
                .with_mode_tuning(ModeTuning::estimated())
                .with_chunk_interp_tuning(true),
            [16, 16, 16],
        )
        .unwrap();
        assert_eq!(stream_version(&v5).unwrap(), VERSION_TUNED);

        for (version, bytes) in [(2u8, &v2), (3, &v3), (4, &v4), (5, &v5)] {
            let expect = decompress(bytes).unwrap();
            // A `PipeReader` is Read-only — the compiler proves no Seek is
            // used anywhere on this path.
            let mut forward = ForwardSource::new(PipeReader { bytes, pos: 0 }).unwrap();
            assert_eq!(forward.version(), version, "v{version}");
            assert_eq!(forward.dims(), data.dims());
            assert_eq!(forward.span(), table.span);
            assert_eq!(forward.plan().len(), forward.chunk_count());
            let mut seekable = StreamSource::from_bytes(bytes).unwrap();
            assert_eq!(forward.chunk_count(), seekable.chunk_count());
            for i in 0..forward.chunk_count() {
                assert_eq!(
                    forward.chunk_pipeline(i).unwrap(),
                    seekable.chunk_pipeline(i),
                    "v{version} chunk {i} pipeline"
                );
                assert_eq!(
                    forward.chunk_interp(i).unwrap(),
                    seekable.chunk_interp(i),
                    "v{version} chunk {i} interp"
                );
                assert_eq!(forward.chunk_region(i), seekable.chunk_region(i));
            }
            assert!(forward.chunk_pipeline(forward.chunk_count()).is_err());
            assert_eq!(forward.next_index(), 0);
            let restored = forward.read_all().unwrap();
            assert_eq!(forward.next_index(), forward.chunk_count());
            assert_eq!(
                restored.as_slice(),
                expect.as_slice(),
                "v{version} forward source disagrees with decompress"
            );
            assert_eq!(
                seekable.read_all().unwrap().as_slice(),
                expect.as_slice(),
                "v{version} seekable source disagrees with decompress"
            );
            assert!(forward.next_chunk().is_none(), "the source is drained");

            // And the lazy iterator sees every chunk exactly once.
            let mut forward = ForwardSource::new(&bytes[..]).unwrap();
            let mut covered = 0usize;
            for chunk in forward.chunks() {
                let (region, sub) = chunk.unwrap();
                assert_eq!(sub.len(), region.len());
                covered += region.len();
            }
            assert_eq!(covered, data.dims().len(), "v{version}");
        }

        // v1 and unknown versions are rejected with the same clear typed
        // errors as the seekable source.
        let v1 = crate::compressor::compress(&data, &SzhiConfig::new(ErrorBound::Relative(1e-2)))
            .unwrap();
        assert!(matches!(
            ForwardSource::new(&v1[..]),
            Err(SzhiError::InvalidStream(msg)) if msg.contains("monolithic")
        ));
        let mut v6 = v3.clone();
        v6[4] = 6;
        assert!(matches!(
            ForwardSource::new(&v6[..]),
            Err(SzhiError::InvalidStream(msg)) if msg.contains("unsupported")
        ));
    }

    #[test]
    fn forward_source_skips_gaps_between_chunk_bodies() {
        // The format tolerates unused bytes between chunk bodies (extents
        // must only be non-overlapping and non-decreasing). A seekable
        // source seeks over them; the forward source must discard them.
        let data = DatasetKind::Nyx.generate(Dims::d3(32, 32, 32), 5);
        let v3 = compress_chunked(&data, &stream_cfg([16, 16, 16]), [16, 16, 16]).unwrap();
        let (_, table) = crate::format::read_stream_chunked(&v3).unwrap();
        let n = table.entries.len();
        let gap = 5usize;
        let mut gapped = v3[..table.data_start].to_vec();
        let entries_at = table.data_start - n * crate::format::V3_ENTRY_SIZE;
        for (i, e) in table.entries.iter().enumerate() {
            // Patch the entry's offset to account for the gaps inserted
            // before every body, then emit the gap + the body.
            let shifted = (e.offset + gap * (i + 1)) as u64;
            let at = entries_at + i * crate::format::V3_ENTRY_SIZE;
            gapped[at..at + 8].copy_from_slice(&shifted.to_le_bytes());
        }
        for i in 0..n {
            gapped.extend(vec![0xAAu8; gap]);
            gapped.extend_from_slice(table.chunk_slice(&v3, i));
        }
        let expect = decompress(&gapped).unwrap();
        let mut forward = ForwardSource::new(&gapped[..]).unwrap();
        assert_eq!(forward.read_all().unwrap().as_slice(), expect.as_slice());
    }

    #[test]
    fn forward_source_byte_flips_and_truncations_never_panic() {
        // The forward-only read path upholds the same discipline as every
        // other reader: single-byte corruption and truncation of a leading
        // -table (v3) or trailered (v5) stream surface as typed errors —
        // never a panic, never an unbounded allocation.
        let data = szhi_datagen::mixed_smooth_noisy(Dims::d3(16, 16, 32));
        let cfg = SzhiConfig::new(ErrorBound::Absolute(2e-3))
            .with_auto_tune(false)
            .with_chunk_span([16, 16, 16]);
        let v3 = compress_chunked(&data, &cfg, [16, 16, 16]).unwrap();
        let v5 = compress_chunked(
            &data,
            &cfg.clone()
                .with_mode_tuning(ModeTuning::PerChunk)
                .with_chunk_interp_tuning(true),
            [16, 16, 16],
        )
        .unwrap();
        for bytes in [&v3, &v5] {
            for pos in 0..bytes.len() {
                for flip in [0x01u8, 0x80, 0xFF] {
                    let mut corrupt = bytes.clone();
                    corrupt[pos] ^= flip;
                    let result = std::panic::catch_unwind(|| {
                        if let Ok(mut forward) = ForwardSource::new(&corrupt[..]) {
                            let _ = forward.read_all();
                        }
                    });
                    assert!(
                        result.is_ok(),
                        "forward source panicked with byte {pos} xor {flip:#x}"
                    );
                }
            }
            for cut in [0usize, 4, 40, bytes.len() / 2, bytes.len() - 1] {
                let result = std::panic::catch_unwind(|| {
                    if let Ok(mut forward) = ForwardSource::new(&bytes[..cut]) {
                        let _ = forward.read_all();
                    }
                });
                assert!(
                    result.is_ok(),
                    "forward source panicked at truncation {cut}"
                );
            }
        }
    }

    #[test]
    fn estimated_tuning_is_never_worse_than_the_default_and_tracks_exhaustive() {
        // Per-chunk, the estimator-guided selection always refines the
        // configured default, so the tuned stream can never exceed the
        // global-default stream; and over the full fig6 candidate list it
        // must stay within 5% of the exhaustive trial-encode stream.
        let data = szhi_datagen::mixed_smooth_noisy(Dims::d3(32, 32, 64));
        let span = [32, 32, 32];
        let base = SzhiConfig::new(ErrorBound::Absolute(2e-3))
            .with_auto_tune(false)
            .with_chunk_span(span);
        let global = compress_chunked(&data, &base, span).unwrap();
        let estimated = compress_chunked(
            &data,
            &base.clone().with_mode_tuning(ModeTuning::estimated()),
            span,
        )
        .unwrap();
        let exhaustive = compress_chunked(
            &data,
            &base.clone().with_mode_tuning(ModeTuning::exhaustive()),
            span,
        )
        .unwrap();
        assert!(
            estimated.len() <= global.len(),
            "estimated ({}) worse than the global default ({})",
            estimated.len(),
            global.len()
        );
        assert!(
            (estimated.len() as f64) <= exhaustive.len() as f64 * 1.05,
            "estimated ({}) more than 5% above exhaustive ({})",
            estimated.len(),
            exhaustive.len()
        );
        // Both remain plain v3 streams (no per-chunk interp): the wider
        // candidate set needs no container change.
        assert_eq!(stream_version(&estimated).unwrap(), VERSION_STREAMED);
        assert_eq!(stream_version(&exhaustive).unwrap(), VERSION_STREAMED);
        // And the estimated stream still honours the bound.
        let recon = decompress(&estimated).unwrap();
        for (a, b) in data.as_slice().iter().zip(recon.as_slice()) {
            assert!(((*a as f64) - (*b as f64)).abs() <= 2e-3 + 1e-12);
        }
    }

    #[test]
    fn per_chunk_tuning_beats_both_global_modes_on_a_mixed_field() {
        // A field whose left half is smooth (CR-friendly codes) and whose
        // right half is hard noise: per-chunk selection must strictly beat
        // both single-mode streams, because different chunks prefer
        // different pipelines.
        let data = szhi_datagen::mixed_smooth_noisy(Dims::d3(32, 32, 64));
        let span = [32, 32, 32];
        let base = stream_cfg(span);
        let sizes: Vec<usize> = [
            base.clone().with_mode(PipelineMode::Cr),
            base.clone().with_mode(PipelineMode::Tp),
            base.clone().with_mode_tuning(ModeTuning::PerChunk),
        ]
        .iter()
        .map(|cfg| compress_chunked(&data, cfg, span).unwrap().len())
        .collect();
        let (cr, tp, tuned) = (sizes[0], sizes[1], sizes[2]);
        assert!(
            tuned < cr && tuned < tp,
            "per-chunk tuning ({tuned} B) must strictly beat global CR ({cr} B) and \
             global TP ({tp} B)"
        );

        // The tuned stream must actually mix modes and still roundtrip.
        let tuned_bytes = compress_chunked(
            &data,
            &base.clone().with_mode_tuning(ModeTuning::PerChunk),
            span,
        )
        .unwrap();
        let reader = StreamReader::new(&tuned_bytes).unwrap();
        let modes: std::collections::HashSet<u8> = (0..reader.chunk_count())
            .map(|i| reader.chunk_pipeline(i).id())
            .collect();
        assert!(modes.len() > 1, "expected a mix of per-chunk modes");
        let recon = reader.read_all().unwrap();
        for (a, b) in data.as_slice().iter().zip(recon.as_slice()) {
            assert!(((*a as f64) - (*b as f64)).abs() <= 2e-3 + 1e-12);
        }
    }
}
