//! Compressor configuration.

use szhi_codec::PipelineSpec;
use szhi_predictor::InterpConfig;

/// The error-bound specification of a compression run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// A point-wise absolute bound `ε`.
    Absolute(f64),
    /// A value-range-relative bound: the absolute bound is
    /// `eb · (max − min)` of the input field (the convention used by every
    /// table and figure of the paper).
    Relative(f64),
}

impl ErrorBound {
    /// Resolves the bound to an absolute `ε` for a field with the given value
    /// range.
    pub fn absolute(&self, value_range: f64) -> f64 {
        match *self {
            ErrorBound::Absolute(eb) => eb,
            ErrorBound::Relative(eb) => {
                let abs = eb * value_range;
                if abs > 0.0 {
                    abs
                } else {
                    // Constant fields compress exactly under any positive bound.
                    eb.max(f64::MIN_POSITIVE)
                }
            }
        }
    }
}

/// Which of the two cuSZ-Hi lossless pipelines to use (§5.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineMode {
    /// Compression-ratio-preferred: `HF → RRE4 → TCMS8 → RZE1`.
    Cr,
    /// Throughput-preferred: `TCMS1 → BIT1 → RRE1`.
    Tp,
}

impl PipelineMode {
    /// The lossless pipeline implementing this mode.
    pub fn pipeline_spec(&self) -> PipelineSpec {
        match self {
            PipelineMode::Cr => PipelineSpec::CR,
            PipelineMode::Tp => PipelineSpec::TP,
        }
    }

    /// Mode name as used in the paper's tables (`cuSZ-Hi-CR` / `cuSZ-Hi-TP`).
    pub fn name(&self) -> &'static str {
        match self {
            PipelineMode::Cr => "CR",
            PipelineMode::Tp => "TP",
        }
    }
}

/// How the lossless pipeline mode is chosen for the chunks of a chunked or
/// streamed container (per-chunk vs. global tuning policy).
///
/// The per-chunk policies differ in candidate breadth and in how they pay
/// for the choice:
///
/// | policy | candidates | encodes per chunk | quality |
/// |---|---|---|---|
/// | [`Global`](ModeTuning::Global) | 1 (the configured mode) | 1 | baseline |
/// | [`PerChunk`](ModeTuning::PerChunk) | CR + TP | 2 | best of the two production modes |
/// | [`Exhaustive`](ModeTuning::Exhaustive) | any list | `candidates + 1` | true per-chunk optimum over the list |
/// | [`Estimated`](ModeTuning::Estimated) | any list | ≤ 5 | within a few % of `Exhaustive` at a fraction of the cost |
///
/// In every policy the configured [`SzhiConfig::mode`] is implicitly the
/// first candidate, so ties break toward it and the output is
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum ModeTuning {
    /// One global mode for every chunk: [`SzhiConfig::mode`] applies to the
    /// whole stream. This is the default and mirrors the monolithic engine.
    #[default]
    Global,
    /// Tune the mode per chunk: each chunk's quantization codes are encoded
    /// with every candidate pipeline (the CR and TP production modes) and
    /// the smallest payload wins, with ties broken toward
    /// [`SzhiConfig::mode`]. The chosen pipeline id is recorded in the
    /// chunk-table entry, so smooth and noisy regions of one field can use
    /// different lossless pipelines — the per-region orchestration the
    /// paper's synergistic design points at. Costs one extra encode per
    /// chunk at compression time; decompression is unaffected.
    PerChunk,
    /// Trial-encode every candidate pipeline on every chunk and keep the
    /// smallest payload. This finds the true per-chunk optimum over the
    /// candidate list, but its tuning cost scales linearly with the list —
    /// over [`PipelineSpec::fig6_set`] that is 18 full encodes per chunk.
    /// [`SzhiConfig::mode`] is prepended as the tie-winning first
    /// candidate. Prefer [`ModeTuning::Estimated`] unless the exact
    /// optimum is worth the wall-time (it is the ground truth the
    /// estimator is benchmarked against).
    Exhaustive {
        /// The candidate pipelines (deduplicated; the configured mode is
        /// implicitly first).
        candidates: Vec<PipelineSpec>,
    },
    /// Estimate every candidate's output size from a deterministic sample
    /// of the chunk's codes using the `szhi-tuner` stage-aware cost models
    /// (code histogram → Huffman/ANS entropy bound, zero-run density →
    /// RRE/RZE gain, byte-range occupancy → TCMS/BIT viability), then
    /// trial-encode only the estimated best few (plus the configured
    /// default). The chosen payload is always a real encode and never
    /// worse than [`SzhiConfig::mode`]'s; across the
    /// [`PipelineSpec::fig6_set`] candidate list it lands within a few
    /// percent of [`ModeTuning::Exhaustive`] while running ~4× fewer full
    /// encodes.
    Estimated {
        /// The candidate pipelines (deduplicated; the configured mode is
        /// implicitly first).
        candidates: Vec<PipelineSpec>,
    },
}

impl ModeTuning {
    /// Estimator-guided selection over the full Figure-6 pipeline
    /// catalogue ([`PipelineSpec::fig6_set`]).
    pub fn estimated() -> Self {
        ModeTuning::Estimated {
            candidates: PipelineSpec::fig6_set(),
        }
    }

    /// Exhaustive trial-encoding over the full Figure-6 pipeline
    /// catalogue ([`PipelineSpec::fig6_set`]).
    pub fn exhaustive() -> Self {
        ModeTuning::Exhaustive {
            candidates: PipelineSpec::fig6_set(),
        }
    }
}

/// Full configuration of a cuSZ-Hi compression run.
#[derive(Debug, Clone)]
pub struct SzhiConfig {
    /// The error bound to honour.
    pub error_bound: ErrorBound,
    /// Which lossless pipeline to use.
    pub mode: PipelineMode,
    /// Whether to auto-tune the per-level interpolation configuration on a
    /// 0.2 % sample of the input (§5.1.3). Enabled by default.
    pub auto_tune: bool,
    /// Whether to apply the level-ordered code reordering (§5.1.4). Enabled
    /// by default; the ablation harness switches it off.
    pub reorder: bool,
    /// The interpolation predictor configuration (anchor stride, tile span,
    /// per-level scheme/spline defaults). Defaults to
    /// [`InterpConfig::cusz_hi`].
    pub interp: InterpConfig,
    /// Chunked compression: `Some((z, y, x))` splits the field into
    /// independent chunks of that span (each a multiple of the anchor
    /// stride on non-degenerate axes — the chunk-alignment rule) and emits
    /// the streamed (v3) container, compressing chunks in parallel. `None`
    /// (the default) emits the monolithic (v1) container.
    pub chunk_span: Option<[usize; 3]>,
    /// Pipeline-mode tuning policy for chunked/streamed containers:
    /// [`ModeTuning::Global`] (default) uses [`SzhiConfig::mode`] for every
    /// chunk; [`ModeTuning::PerChunk`], [`ModeTuning::Exhaustive`] and
    /// [`ModeTuning::Estimated`] select each chunk's pipeline
    /// independently. Ignored by the monolithic engine.
    pub mode_tuning: ModeTuning,
    /// Per-chunk interpolation-configuration tuning: when enabled, every
    /// chunk of a chunked/streamed container scores the standard per-level
    /// interpolation candidates on a sample of its own blocks
    /// (`szhi-tuner`) and is compressed with the winner. The winning
    /// configurations are carried by the tuned (v5) container's config
    /// dictionary, with one config id per chunk-table entry. Disabled by
    /// default (all chunks share [`SzhiConfig::interp`], possibly
    /// globally auto-tuned, and the container stays v3/v4). Ignored by
    /// the monolithic engine.
    pub chunk_interp_tuning: bool,
}

impl SzhiConfig {
    /// A default cuSZ-Hi configuration (CR mode, auto-tuning and reordering
    /// enabled) for the given error bound.
    pub fn new(error_bound: ErrorBound) -> Self {
        SzhiConfig {
            error_bound,
            mode: PipelineMode::Cr,
            auto_tune: true,
            reorder: true,
            interp: InterpConfig::cusz_hi(),
            chunk_span: None,
            mode_tuning: ModeTuning::Global,
            chunk_interp_tuning: false,
        }
    }

    /// Selects the lossless pipeline mode.
    pub fn with_mode(mut self, mode: PipelineMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enables or disables interpolation auto-tuning.
    pub fn with_auto_tune(mut self, enabled: bool) -> Self {
        self.auto_tune = enabled;
        self
    }

    /// Enables or disables the level-ordered code reordering.
    pub fn with_reorder(mut self, enabled: bool) -> Self {
        self.reorder = enabled;
        self
    }

    /// Replaces the interpolation predictor configuration.
    pub fn with_interp(mut self, interp: InterpConfig) -> Self {
        self.interp = interp;
        self
    }

    /// Enables chunked compression with the given chunk span `(z, y, x)`.
    /// The default span [`SzhiConfig::DEFAULT_CHUNK_SPAN`] is a reasonable
    /// starting point for large 3D fields.
    pub fn with_chunk_span(mut self, span: [usize; 3]) -> Self {
        self.chunk_span = Some(span);
        self
    }

    /// Selects the pipeline-mode tuning policy for chunked/streamed
    /// containers.
    pub fn with_mode_tuning(mut self, tuning: ModeTuning) -> Self {
        self.mode_tuning = tuning;
        self
    }

    /// Enables or disables per-chunk interpolation-configuration tuning
    /// (emits the tuned (v5) container when enabled).
    pub fn with_chunk_interp_tuning(mut self, enabled: bool) -> Self {
        self.chunk_interp_tuning = enabled;
        self
    }

    /// A balanced default chunk span: 64³ points (1 MiB of f32) keeps tens
    /// of chunks in flight on a ≥256³ field while the per-chunk anchor
    /// overhead stays below 0.1 %.
    pub const DEFAULT_CHUNK_SPAN: [usize; 3] = [64, 64, 64];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_bound_scales_with_range() {
        assert_eq!(ErrorBound::Relative(1e-2).absolute(200.0), 2.0);
        assert_eq!(ErrorBound::Absolute(0.5).absolute(200.0), 0.5);
        assert!(ErrorBound::Relative(1e-2).absolute(0.0) > 0.0);
    }

    #[test]
    fn builder_sets_fields() {
        let cfg = SzhiConfig::new(ErrorBound::Absolute(1.0))
            .with_mode(PipelineMode::Tp)
            .with_auto_tune(false)
            .with_reorder(false);
        assert_eq!(cfg.mode, PipelineMode::Tp);
        assert!(!cfg.auto_tune);
        assert!(!cfg.reorder);
        assert_eq!(cfg.interp.anchor_stride, 16);
    }

    #[test]
    fn mode_tuning_defaults_to_global() {
        let cfg = SzhiConfig::new(ErrorBound::Absolute(1.0));
        assert_eq!(cfg.mode_tuning, ModeTuning::Global);
        let cfg = cfg.with_mode_tuning(ModeTuning::PerChunk);
        assert_eq!(cfg.mode_tuning, ModeTuning::PerChunk);
    }

    #[test]
    fn mode_pipelines_match_paper() {
        assert_eq!(
            PipelineMode::Cr.pipeline_spec().name(),
            "HF-RRE4-TCMS8-RZE1"
        );
        assert_eq!(PipelineMode::Tp.pipeline_spec().name(), "TCMS1-BIT1-RRE1");
    }
}
