//! Compressor configuration.

use szhi_codec::PipelineSpec;
use szhi_predictor::InterpConfig;

/// The error-bound specification of a compression run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// A point-wise absolute bound `ε`.
    Absolute(f64),
    /// A value-range-relative bound: the absolute bound is
    /// `eb · (max − min)` of the input field (the convention used by every
    /// table and figure of the paper).
    Relative(f64),
}

impl ErrorBound {
    /// Resolves the bound to an absolute `ε` for a field with the given value
    /// range.
    pub fn absolute(&self, value_range: f64) -> f64 {
        match *self {
            ErrorBound::Absolute(eb) => eb,
            ErrorBound::Relative(eb) => {
                let abs = eb * value_range;
                if abs > 0.0 {
                    abs
                } else {
                    // Constant fields compress exactly under any positive bound.
                    eb.max(f64::MIN_POSITIVE)
                }
            }
        }
    }
}

/// Which of the two cuSZ-Hi lossless pipelines to use (§5.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineMode {
    /// Compression-ratio-preferred: `HF → RRE4 → TCMS8 → RZE1`.
    Cr,
    /// Throughput-preferred: `TCMS1 → BIT1 → RRE1`.
    Tp,
}

impl PipelineMode {
    /// The lossless pipeline implementing this mode.
    pub fn pipeline_spec(&self) -> PipelineSpec {
        match self {
            PipelineMode::Cr => PipelineSpec::CR,
            PipelineMode::Tp => PipelineSpec::TP,
        }
    }

    /// Mode name as used in the paper's tables (`cuSZ-Hi-CR` / `cuSZ-Hi-TP`).
    pub fn name(&self) -> &'static str {
        match self {
            PipelineMode::Cr => "CR",
            PipelineMode::Tp => "TP",
        }
    }
}

/// How the lossless pipeline mode is chosen for the chunks of a chunked or
/// streamed container (per-chunk vs. global tuning policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModeTuning {
    /// One global mode for every chunk: [`SzhiConfig::mode`] applies to the
    /// whole stream. This is the default and mirrors the monolithic engine.
    #[default]
    Global,
    /// Tune the mode per chunk: each chunk's quantization codes are encoded
    /// with every candidate pipeline (the CR and TP production modes) and
    /// the smallest payload wins, with ties broken toward
    /// [`SzhiConfig::mode`]. The chosen pipeline id is recorded in the
    /// chunk-table entry, so smooth and noisy regions of one field can use
    /// different lossless pipelines — the per-region orchestration the
    /// paper's synergistic design points at. Costs one extra encode per
    /// chunk at compression time; decompression is unaffected.
    PerChunk,
}

/// Full configuration of a cuSZ-Hi compression run.
#[derive(Debug, Clone)]
pub struct SzhiConfig {
    /// The error bound to honour.
    pub error_bound: ErrorBound,
    /// Which lossless pipeline to use.
    pub mode: PipelineMode,
    /// Whether to auto-tune the per-level interpolation configuration on a
    /// 0.2 % sample of the input (§5.1.3). Enabled by default.
    pub auto_tune: bool,
    /// Whether to apply the level-ordered code reordering (§5.1.4). Enabled
    /// by default; the ablation harness switches it off.
    pub reorder: bool,
    /// The interpolation predictor configuration (anchor stride, tile span,
    /// per-level scheme/spline defaults). Defaults to
    /// [`InterpConfig::cusz_hi`].
    pub interp: InterpConfig,
    /// Chunked compression: `Some((z, y, x))` splits the field into
    /// independent chunks of that span (each a multiple of the anchor
    /// stride on non-degenerate axes — the chunk-alignment rule) and emits
    /// the streamed (v3) container, compressing chunks in parallel. `None`
    /// (the default) emits the monolithic (v1) container.
    pub chunk_span: Option<[usize; 3]>,
    /// Pipeline-mode tuning policy for chunked/streamed containers:
    /// [`ModeTuning::Global`] (default) uses [`SzhiConfig::mode`] for every
    /// chunk, [`ModeTuning::PerChunk`] selects each chunk's pipeline
    /// independently by trial encoding. Ignored by the monolithic engine.
    pub mode_tuning: ModeTuning,
}

impl SzhiConfig {
    /// A default cuSZ-Hi configuration (CR mode, auto-tuning and reordering
    /// enabled) for the given error bound.
    pub fn new(error_bound: ErrorBound) -> Self {
        SzhiConfig {
            error_bound,
            mode: PipelineMode::Cr,
            auto_tune: true,
            reorder: true,
            interp: InterpConfig::cusz_hi(),
            chunk_span: None,
            mode_tuning: ModeTuning::Global,
        }
    }

    /// Selects the lossless pipeline mode.
    pub fn with_mode(mut self, mode: PipelineMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enables or disables interpolation auto-tuning.
    pub fn with_auto_tune(mut self, enabled: bool) -> Self {
        self.auto_tune = enabled;
        self
    }

    /// Enables or disables the level-ordered code reordering.
    pub fn with_reorder(mut self, enabled: bool) -> Self {
        self.reorder = enabled;
        self
    }

    /// Replaces the interpolation predictor configuration.
    pub fn with_interp(mut self, interp: InterpConfig) -> Self {
        self.interp = interp;
        self
    }

    /// Enables chunked compression with the given chunk span `(z, y, x)`.
    /// The default span [`SzhiConfig::DEFAULT_CHUNK_SPAN`] is a reasonable
    /// starting point for large 3D fields.
    pub fn with_chunk_span(mut self, span: [usize; 3]) -> Self {
        self.chunk_span = Some(span);
        self
    }

    /// Selects the pipeline-mode tuning policy for chunked/streamed
    /// containers.
    pub fn with_mode_tuning(mut self, tuning: ModeTuning) -> Self {
        self.mode_tuning = tuning;
        self
    }

    /// A balanced default chunk span: 64³ points (1 MiB of f32) keeps tens
    /// of chunks in flight on a ≥256³ field while the per-chunk anchor
    /// overhead stays below 0.1 %.
    pub const DEFAULT_CHUNK_SPAN: [usize; 3] = [64, 64, 64];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_bound_scales_with_range() {
        assert_eq!(ErrorBound::Relative(1e-2).absolute(200.0), 2.0);
        assert_eq!(ErrorBound::Absolute(0.5).absolute(200.0), 0.5);
        assert!(ErrorBound::Relative(1e-2).absolute(0.0) > 0.0);
    }

    #[test]
    fn builder_sets_fields() {
        let cfg = SzhiConfig::new(ErrorBound::Absolute(1.0))
            .with_mode(PipelineMode::Tp)
            .with_auto_tune(false)
            .with_reorder(false);
        assert_eq!(cfg.mode, PipelineMode::Tp);
        assert!(!cfg.auto_tune);
        assert!(!cfg.reorder);
        assert_eq!(cfg.interp.anchor_stride, 16);
    }

    #[test]
    fn mode_tuning_defaults_to_global() {
        let cfg = SzhiConfig::new(ErrorBound::Absolute(1.0));
        assert_eq!(cfg.mode_tuning, ModeTuning::Global);
        let cfg = cfg.with_mode_tuning(ModeTuning::PerChunk);
        assert_eq!(cfg.mode_tuning, ModeTuning::PerChunk);
    }

    #[test]
    fn mode_pipelines_match_paper() {
        assert_eq!(
            PipelineMode::Cr.pipeline_spec().name(),
            "HF-RRE4-TCMS8-RZE1"
        );
        assert_eq!(PipelineMode::Tp.pipeline_spec().name(), "TCMS1-BIT1-RRE1");
    }
}
