//! The concurrent job service: many simultaneous compress / decompress
//! jobs multiplexed over the shared persistent worker pool, each with
//! per-job progress reporting and cooperative cancellation.
//!
//! A *job* is one whole-archive operation — compress a field into a
//! [`StreamSink`], or decompress a stream through a [`StreamSource`] —
//! running on its own coordinator thread. The coordinator of a compress
//! job fans chunk encoding out over the workspace's shared work-stealing
//! pool in small batches (so several jobs interleave fairly on the same
//! workers) and pushes the results to the sink in plan order, which keeps
//! every job's output **byte-identical to a serial run**: chunk encoding
//! is a pure function of (chunk, configuration), and the container
//! assembles chunks in plan order regardless of who encoded them when.
//!
//! Progress is observable while the job runs ([`JobHandle::progress`]),
//! and a job can be cancelled cooperatively ([`JobHandle::cancel`]): the
//! coordinator notices between chunks, **poisons** a compress job's sink —
//! the half-written stream has no table or trailer and must never be
//! finalized — and returns the typed [`SzhiError::Cancelled`].
//!
//! ```
//! use szhi_core::{jobs::JobService, ErrorBound, SzhiConfig};
//! use szhi_ndgrid::{Dims, Grid};
//!
//! let field = Grid::from_fn(Dims::d3(32, 32, 32), |z, y, x| {
//!     ((x + y) as f32 * 0.1).sin() + z as f32 * 0.02
//! });
//! let cfg = SzhiConfig::new(ErrorBound::Absolute(1e-3))
//!     .with_auto_tune(false)
//!     .with_chunk_span([16, 16, 16]);
//! let service = JobService::new();
//! // Several jobs can run at once; each returns a handle immediately.
//! let job = service.compress(field, &cfg, Vec::new()).unwrap();
//! let (bytes, stats) = job.join().unwrap();
//! assert_eq!(stats.compressed_bytes, bytes.len());
//! ```

// szhi-analyzer: scope(no-panic-decode: all)

use crate::compressor::CompressionStats;
use crate::config::SzhiConfig;
use crate::error::SzhiError;
use crate::stream::{StreamSink, StreamSource};
use rayon::prelude::*;
use std::io::{Read, Seek, Write};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use szhi_ndgrid::Grid;

/// A snapshot of a job's progress: chunks completed out of chunks total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobProgress {
    /// Chunks fully processed so far.
    pub done: usize,
    /// Total chunks the job will process.
    pub total: usize,
}

impl JobProgress {
    /// Completed fraction in `[0, 1]` (`1.0` for an empty job).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.done as f64 / self.total as f64
        }
    }

    /// Whether every chunk has been processed.
    pub fn is_complete(&self) -> bool {
        self.done >= self.total
    }
}

/// The state a job's coordinator thread and its [`JobHandle`] share.
#[derive(Debug)]
struct JobState {
    done: AtomicUsize,
    total: usize,
    cancelled: AtomicBool,
}

/// A handle to one running job: observe progress, request cancellation,
/// and join for the result. Dropping the handle detaches the job — it
/// runs to completion (or cancellation) unobserved.
#[derive(Debug)]
pub struct JobHandle<T> {
    state: Arc<JobState>,
    thread: std::thread::JoinHandle<Result<T, SzhiError>>,
}

impl<T> JobHandle<T> {
    /// A snapshot of the job's progress, safe to poll from any thread.
    pub fn progress(&self) -> JobProgress {
        JobProgress {
            done: self.state.done.load(Ordering::Relaxed),
            total: self.state.total,
        }
    }

    /// Requests cooperative cancellation. The job notices between chunks:
    /// a compress job poisons its sink (the partial stream must be
    /// discarded) and [`JobHandle::join`] returns
    /// [`SzhiError::Cancelled`]. Cancelling a job that already finished
    /// has no effect.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancel_requested(&self) -> bool {
        self.state.cancelled.load(Ordering::Relaxed)
    }

    /// Whether the job's coordinator thread has finished (successfully or
    /// not) — `join` will not block once this is true.
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }

    /// Blocks until the job completes and returns its result.
    pub fn join(self) -> Result<T, SzhiError> {
        match self.thread.join() {
            Ok(result) => result,
            // A panic on the coordinator is a bug, not an operational
            // error: propagate it instead of laundering it into a typed
            // error the caller might retry.
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

/// Spawns compress / decompress jobs that run concurrently over the
/// shared worker pool. The service itself is stateless — it exists to
/// give the job API an explicit home and keep call sites readable — so
/// it is `Copy` and free to construct.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobService;

impl JobService {
    /// Creates a job service.
    pub fn new() -> JobService {
        JobService
    }

    /// Spawns a job compressing `field` under `cfg` into `out` as a
    /// trailered (v4, or tuned v5) container — the [`StreamSink`] rules
    /// apply: absolute error bound, auto-tune disabled. Configuration
    /// errors surface here, on the caller's thread, before any job
    /// spawns. On success the handle joins to the backing writer and the
    /// aggregated compression statistics.
    pub fn compress<W>(
        &self,
        field: Grid<f32>,
        cfg: &SzhiConfig,
        out: W,
    ) -> Result<JobHandle<(W, CompressionStats)>, SzhiError>
    where
        W: Write + Send + 'static,
    {
        let sink = StreamSink::new(out, field.dims(), cfg)?;
        let state = Arc::new(JobState {
            done: AtomicUsize::new(0),
            total: sink.plan().len(),
            cancelled: AtomicBool::new(false),
        });
        let shared = Arc::clone(&state);
        let thread = std::thread::spawn(move || run_compress(field, sink, &shared));
        Ok(JobHandle { state, thread })
    }

    /// Spawns a job decompressing the stream behind `reader` (any chunked
    /// container, v2–v5) into the full field. Header and chunk-table
    /// errors surface here, on the caller's thread, before any job
    /// spawns.
    pub fn decompress<R>(&self, reader: R) -> Result<JobHandle<Grid<f32>>, SzhiError>
    where
        R: Read + Seek + Send + 'static,
    {
        let source = StreamSource::new(reader)?;
        let state = Arc::new(JobState {
            done: AtomicUsize::new(0),
            total: source.chunk_count(),
            cancelled: AtomicBool::new(false),
        });
        let shared = Arc::clone(&state);
        let thread = std::thread::spawn(move || run_decompress(source, &shared));
        Ok(JobHandle { state, thread })
    }
}

/// The coordinator loop of a compress job: encode chunk batches in
/// parallel over the shared pool, push them to the sink in plan order,
/// check for cancellation between pushes.
fn run_compress<W: Write>(
    field: Grid<f32>,
    mut sink: StreamSink<W>,
    state: &JobState,
) -> Result<(W, CompressionStats), SzhiError> {
    let n = sink.plan().len();
    // Small batches keep several concurrent jobs interleaving fairly on
    // the shared workers and bound the cancellation latency to one batch.
    let batch = rayon::current_num_threads().max(1);
    let mut start = 0usize;
    while start < n {
        if state.cancelled.load(Ordering::Relaxed) {
            sink.poison();
            return Err(SzhiError::Cancelled);
        }
        let end = (start + batch).min(n);
        let encoded: Vec<Result<crate::stream::EncodedChunk, SzhiError>> = {
            // Borrow only the encoder and plan — not the whole sink — so
            // the backing writer never has to be `Sync`.
            let enc = sink.encoder();
            let plan = sink.plan();
            (start..end)
                .into_par_iter()
                .map(|i| {
                    let region = plan.chunk_at(i);
                    let dims = plan.chunk_dims(i);
                    enc.encode(i, &Grid::from_vec(dims, field.extract(&region)))
                })
                .collect()
        };
        for chunk in encoded {
            if state.cancelled.load(Ordering::Relaxed) {
                sink.poison();
                return Err(SzhiError::Cancelled);
            }
            sink.push_encoded(chunk?)?;
            state.done.fetch_add(1, Ordering::Relaxed);
        }
        start = end;
    }
    sink.finish_with_stats()
}

/// The coordinator loop of a decompress job: fetch + decode chunks
/// sequentially (reads from one seekable source are inherently serial),
/// checking for cancellation between chunks.
fn run_decompress<R: Read + Seek>(
    mut source: StreamSource<R>,
    state: &JobState,
) -> Result<Grid<f32>, SzhiError> {
    let mut out = Grid::zeros(source.dims());
    for i in 0..source.chunk_count() {
        if state.cancelled.load(Ordering::Relaxed) {
            return Err(SzhiError::Cancelled);
        }
        let (region, sub) = source.read_chunk(i)?;
        out.insert(&region, sub.as_slice());
        state.done.fetch_add(1, Ordering::Relaxed);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::decompress;
    use crate::config::ErrorBound;
    use szhi_datagen::DatasetKind;
    use szhi_ndgrid::Dims;

    fn job_cfg() -> SzhiConfig {
        SzhiConfig::new(ErrorBound::Absolute(2e-3))
            .with_auto_tune(false)
            .with_chunk_span([16, 16, 16])
    }

    /// Serial reference bytes: the same field through a plain sink.
    fn serial_bytes(field: &Grid<f32>, cfg: &SzhiConfig) -> Vec<u8> {
        let mut sink = StreamSink::new(Vec::new(), field.dims(), cfg).unwrap();
        while let Some(region) = sink.next_chunk_region() {
            let dims = sink.plan().chunk_dims(sink.next_index());
            sink.push_chunk(&Grid::from_vec(dims, field.extract(&region)))
                .unwrap();
        }
        sink.finish().unwrap()
    }

    #[test]
    fn concurrent_jobs_match_serial_runs_byte_for_byte() {
        let cfg = job_cfg();
        let fields: Vec<Grid<f32>> = (0..4)
            .map(|seed| DatasetKind::Miranda.generate(Dims::d3(32, 32, 32), 100 + seed))
            .collect();
        let expected: Vec<Vec<u8>> = fields.iter().map(|f| serial_bytes(f, &cfg)).collect();

        let service = JobService::new();
        let handles: Vec<JobHandle<(Vec<u8>, CompressionStats)>> = fields
            .iter()
            .map(|f| service.compress(f.clone(), &cfg, Vec::new()).unwrap())
            .collect();
        // Join in reverse submission order: completion order must not
        // matter for the bytes.
        for (handle, want) in handles.into_iter().rev().zip(expected.iter().rev()) {
            let (bytes, stats) = handle.join().unwrap();
            assert_eq!(&bytes, want, "a concurrent job diverged from serial");
            assert_eq!(stats.compressed_bytes, bytes.len());
        }
    }

    #[test]
    fn progress_reaches_total_and_decompress_jobs_roundtrip() {
        let cfg = job_cfg();
        let field = DatasetKind::Nyx.generate(Dims::d3(32, 32, 32), 7);
        let service = JobService::new();
        let job = service.compress(field.clone(), &cfg, Vec::new()).unwrap();
        let (bytes, _) = job.join().unwrap();

        let job = service
            .decompress(std::io::Cursor::new(bytes.clone()))
            .unwrap();
        let restored = job.join().unwrap();
        assert_eq!(
            restored.as_slice(),
            decompress(&bytes).unwrap().as_slice(),
            "a decompress job diverged from decompress"
        );

        // A fresh handle reports sane, monotonically meaningful progress.
        let job = service.compress(field, &cfg, Vec::new()).unwrap();
        let total = job.progress().total;
        assert_eq!(total, 8);
        let (_, stats) = job.join().unwrap();
        assert!(stats.compressed_bytes > 0);
        let done = JobProgress { done: total, total };
        assert!(done.is_complete());
        assert!((done.fraction() - 1.0).abs() < f64::EPSILON);
        assert!((JobProgress { done: 0, total: 0 }).is_complete());
    }

    /// A writer that lets `ungated` writes pass, then blocks one write on
    /// the paired channel — pinning a job at a deterministic point so a
    /// test can cancel it mid-flight without racing.
    #[derive(Debug)]
    struct GatedWriter {
        ungated: usize,
        gate: Option<std::sync::mpsc::Receiver<()>>,
        bytes: Vec<u8>,
    }

    impl Write for GatedWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.ungated > 0 {
                self.ungated -= 1;
            } else if let Some(gate) = self.gate.take() {
                // Block until the test releases (or drops) the sender.
                let _ = gate.recv();
            }
            self.bytes.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn cancellation_is_cooperative_and_poisons_the_sink() {
        // The header write (on the caller's thread) passes ungated; the
        // coordinator's first chunk-body write blocks on the gate. The
        // test cancels while the job is pinned there, then releases it:
        // the coordinator finishes that push, sees the flag before the
        // next one, poisons the sink and reports Cancelled.
        let field = DatasetKind::Rtm.generate(Dims::d3(32, 32, 32), 3);
        let (release, gate) = std::sync::mpsc::channel::<()>();
        let out = GatedWriter {
            ungated: 1,
            gate: Some(gate),
            bytes: Vec::new(),
        };
        let service = JobService::new();
        let job = service.compress(field, &job_cfg(), out).unwrap();
        assert_eq!(job.progress().total, 8);
        job.cancel();
        assert!(job.is_cancel_requested());
        drop(release);
        let err = job.join().unwrap_err();
        assert!(
            matches!(err, SzhiError::Cancelled),
            "expected SzhiError::Cancelled, got {err:?}"
        );
    }

    #[test]
    fn cancelled_sinks_refuse_further_pushes() {
        // The poisoned-on-cancel contract at the sink level: after
        // poison(), pushes and finish fail with the poisoning error.
        let field = DatasetKind::Qmcpack.generate(Dims::d3(16, 16, 16), 1);
        let cfg = job_cfg();
        let mut sink = StreamSink::new(Vec::new(), field.dims(), &cfg).unwrap();
        assert!(!sink.is_poisoned());
        sink.poison();
        assert!(sink.is_poisoned());
        let region = sink.plan().chunk_at(0);
        let sub = Grid::from_vec(sink.plan().chunk_dims(0), field.extract(&region));
        assert!(matches!(
            sink.push_chunk(&sub),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("poisoned")
        ));
        assert!(matches!(
            sink.finish(),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("poisoned")
        ));
    }
}
