//! The concurrent job service: many simultaneous compress / decompress
//! jobs multiplexed over the shared persistent worker pool, each with
//! per-job progress reporting and cooperative cancellation.
//!
//! A *job* is one whole-archive operation — compress a field into a
//! [`StreamSink`], or decompress a stream through a [`StreamSource`] —
//! running on its own coordinator thread. The coordinator of a compress
//! job fans chunk encoding out over the workspace's shared work-stealing
//! pool in small batches (so several jobs interleave fairly on the same
//! workers) and pushes the results to the sink in plan order, which keeps
//! every job's output **byte-identical to a serial run**: chunk encoding
//! is a pure function of (chunk, configuration), and the container
//! assembles chunks in plan order regardless of who encoded them when.
//!
//! Progress is observable while the job runs ([`JobHandle::progress`]),
//! and a job can be cancelled cooperatively ([`JobHandle::cancel`]): the
//! coordinator notices between chunks, **poisons** a compress job's sink —
//! the half-written stream has no table or trailer and must never be
//! finalized — and returns the typed [`SzhiError::Cancelled`].
//!
//! ```
//! use szhi_core::{jobs::JobService, ErrorBound, SzhiConfig};
//! use szhi_ndgrid::{Dims, Grid};
//!
//! let field = Grid::from_fn(Dims::d3(32, 32, 32), |z, y, x| {
//!     ((x + y) as f32 * 0.1).sin() + z as f32 * 0.02
//! });
//! let cfg = SzhiConfig::new(ErrorBound::Absolute(1e-3))
//!     .with_auto_tune(false)
//!     .with_chunk_span([16, 16, 16]);
//! let service = JobService::new();
//! // Several jobs can run at once; each returns a handle immediately.
//! let job = service.compress(field, &cfg, Vec::new()).unwrap();
//! let (bytes, stats) = job.join().unwrap();
//! assert_eq!(stats.compressed_bytes, bytes.len());
//! ```

// szhi-analyzer: scope(no-panic-decode: all)

use crate::compressor::CompressionStats;
use crate::config::SzhiConfig;
use crate::error::SzhiError;
use crate::stream::{StreamSink, StreamSource};
use rayon::prelude::*;
use std::io::{Read, Seek, Write};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use szhi_ndgrid::Grid;
use szhi_telemetry::Snapshot;

/// The coarse stage a job is in, fed by telemetry span enter/exit events
/// on the job's threads: the `job.tune` span (configuration resolution
/// and permutation precompute) maps to [`JobPhase::Tuning`], `job.encode`
/// to [`JobPhase::Encoding`], `job.flush` to [`JobPhase::Flushing`],
/// `job.decode` to [`JobPhase::Decoding`], and leaving the final span
/// maps to [`JobPhase::Done`]. A job that errors or is cancelled keeps
/// the phase it was last in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum JobPhase {
    /// The job exists but has not entered a phase span yet.
    Starting = 0,
    /// Resolving configuration: header validation, chunk plan,
    /// level-order permutation precompute.
    Tuning = 1,
    /// The batched parallel encode loop (compress jobs).
    Encoding = 2,
    /// Finalizing the container: table, trailer, flush (compress jobs).
    Flushing = 3,
    /// The sequential fetch-verify-decode loop (decompress jobs).
    Decoding = 4,
    /// The final phase span has exited; the job result is ready.
    Done = 5,
}

impl JobPhase {
    fn from_u8(v: u8) -> JobPhase {
        match v {
            1 => JobPhase::Tuning,
            2 => JobPhase::Encoding,
            3 => JobPhase::Flushing,
            4 => JobPhase::Decoding,
            5 => JobPhase::Done,
            _ => JobPhase::Starting,
        }
    }
}

/// A snapshot of a job's progress: chunks completed out of chunks total,
/// plus the coarse phase the job is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobProgress {
    /// Chunks fully processed so far.
    pub done: usize,
    /// Total chunks the job will process.
    pub total: usize,
    /// The stage the job is in (see [`JobPhase`]).
    pub phase: JobPhase,
}

impl JobProgress {
    /// Completed fraction in `[0, 1]` (`1.0` for an empty job).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.done as f64 / self.total as f64
        }
    }

    /// Whether every chunk has been processed.
    pub fn is_complete(&self) -> bool {
        self.done >= self.total
    }
}

/// The state a job's coordinator thread and its [`JobHandle`] share.
#[derive(Debug)]
struct JobState {
    done: AtomicUsize,
    total: usize,
    cancelled: AtomicBool,
    phase: Arc<AtomicU8>,
    telemetry: Mutex<Option<Snapshot>>,
}

/// Installs a thread-local telemetry span listener that translates the
/// `job.*` span enter/exit events of the current thread into [`JobPhase`]
/// stores, and uninstalls it on drop — RAII so the listener (and the
/// global observe flag it holds up) cannot leak past an early return or
/// a coordinator panic.
struct PhaseFeed;

impl PhaseFeed {
    fn install(phase: Arc<AtomicU8>) -> PhaseFeed {
        szhi_telemetry::set_thread_span_listener(Some(Box::new(move |name, entered| {
            let next = match (name, entered) {
                ("job.tune", true) => Some(JobPhase::Tuning),
                ("job.encode", true) => Some(JobPhase::Encoding),
                ("job.flush", true) => Some(JobPhase::Flushing),
                ("job.decode", true) => Some(JobPhase::Decoding),
                // Leaving the final span of either job kind means the
                // result is ready.
                ("job.flush", false) | ("job.decode", false) => Some(JobPhase::Done),
                _ => None,
            };
            if let Some(p) = next {
                phase.store(p as u8, Ordering::Relaxed);
            }
        })));
        PhaseFeed
    }
}

impl Drop for PhaseFeed {
    fn drop(&mut self) {
        szhi_telemetry::set_thread_span_listener(None);
    }
}

/// A handle to one running job: observe progress, request cancellation,
/// and join for the result. Dropping the handle detaches the job — it
/// runs to completion (or cancellation) unobserved.
#[derive(Debug)]
pub struct JobHandle<T> {
    state: Arc<JobState>,
    thread: std::thread::JoinHandle<Result<T, SzhiError>>,
}

impl<T> JobHandle<T> {
    /// A snapshot of the job's progress, safe to poll from any thread.
    pub fn progress(&self) -> JobProgress {
        JobProgress {
            done: self.state.done.load(Ordering::Relaxed),
            total: self.state.total,
            phase: JobPhase::from_u8(self.state.phase.load(Ordering::Relaxed)),
        }
    }

    /// The telemetry delta recorded over this job's run — every counter,
    /// histogram and span as captured right before the coordinator
    /// started minus right after it finished. `None` until the job
    /// finishes. The metric registry is global, so jobs running
    /// concurrently with this one contribute to its delta too; for an
    /// isolated reading run one job at a time.
    pub fn telemetry(&self) -> Option<Snapshot> {
        self.state
            .telemetry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Requests cooperative cancellation. The job notices between chunks:
    /// a compress job poisons its sink (the partial stream must be
    /// discarded) and [`JobHandle::join`] returns
    /// [`SzhiError::Cancelled`]. Cancelling a job that already finished
    /// has no effect.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancel_requested(&self) -> bool {
        self.state.cancelled.load(Ordering::Relaxed)
    }

    /// Whether the job's coordinator thread has finished (successfully or
    /// not) — `join` will not block once this is true.
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }

    /// Blocks until the job completes and returns its result.
    pub fn join(self) -> Result<T, SzhiError> {
        match self.thread.join() {
            Ok(result) => result,
            // A panic on the coordinator is a bug, not an operational
            // error: propagate it instead of laundering it into a typed
            // error the caller might retry.
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

/// Spawns compress / decompress jobs that run concurrently over the
/// shared worker pool. The service itself is stateless — it exists to
/// give the job API an explicit home and keep call sites readable — so
/// it is `Copy` and free to construct.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobService;

impl JobService {
    /// Creates a job service.
    pub fn new() -> JobService {
        JobService
    }

    /// Spawns a job compressing `field` under `cfg` into `out` as a
    /// trailered (v4, or tuned v5) container — the [`StreamSink`] rules
    /// apply: absolute error bound, auto-tune disabled. Configuration
    /// errors surface here, on the caller's thread, before any job
    /// spawns. On success the handle joins to the backing writer and the
    /// aggregated compression statistics.
    pub fn compress<W>(
        &self,
        field: Grid<f32>,
        cfg: &SzhiConfig,
        out: W,
    ) -> Result<JobHandle<(W, CompressionStats)>, SzhiError>
    where
        W: Write + Send + 'static,
    {
        crate::telemetry::JOBS_STARTED.bump(1);
        let phase = Arc::new(AtomicU8::new(JobPhase::Starting as u8));
        let sink = {
            // Sink construction is the job's tuning step: configuration
            // resolution, chunk planning, level-order permutation
            // precompute. It runs here on the caller's thread (so config
            // errors surface synchronously), with a temporary listener so
            // the phase indicator reflects it.
            let _feed = PhaseFeed::install(Arc::clone(&phase));
            let _span = crate::telemetry::JOB_TUNE.enter();
            StreamSink::new(out, field.dims(), cfg)?
        };
        let state = Arc::new(JobState {
            done: AtomicUsize::new(0),
            total: sink.plan().len(),
            cancelled: AtomicBool::new(false),
            phase,
            telemetry: Mutex::new(None),
        });
        let shared = Arc::clone(&state);
        let thread =
            std::thread::spawn(move || run_job(&shared, |state| run_compress(field, sink, state)));
        Ok(JobHandle { state, thread })
    }

    /// Spawns a job decompressing the stream behind `reader` (any chunked
    /// container, v2–v5) into the full field. Header and chunk-table
    /// errors surface here, on the caller's thread, before any job
    /// spawns.
    pub fn decompress<R>(&self, reader: R) -> Result<JobHandle<Grid<f32>>, SzhiError>
    where
        R: Read + Seek + Send + 'static,
    {
        crate::telemetry::JOBS_STARTED.bump(1);
        let source = StreamSource::new(reader)?;
        let state = Arc::new(JobState {
            done: AtomicUsize::new(0),
            total: source.chunk_count(),
            cancelled: AtomicBool::new(false),
            phase: Arc::new(AtomicU8::new(JobPhase::Starting as u8)),
            telemetry: Mutex::new(None),
        });
        let shared = Arc::clone(&state);
        let thread =
            std::thread::spawn(move || run_job(&shared, |state| run_decompress(source, state)));
        Ok(JobHandle { state, thread })
    }
}

/// Runs a job body on the coordinator thread with the shared job
/// plumbing: the thread-local phase feed, the per-job telemetry delta,
/// and the job lifecycle counters.
fn run_job<T, F>(state: &JobState, body: F) -> Result<T, SzhiError>
where
    F: FnOnce(&JobState) -> Result<T, SzhiError>,
{
    let _feed = PhaseFeed::install(Arc::clone(&state.phase));
    let before = Snapshot::capture();
    let result = body(state);
    let delta = Snapshot::capture().delta(&before);
    *state
        .telemetry
        .lock()
        .unwrap_or_else(PoisonError::into_inner) = Some(delta);
    match &result {
        Ok(_) => crate::telemetry::JOBS_COMPLETED.bump(1),
        Err(SzhiError::Cancelled) => crate::telemetry::JOBS_CANCELLED.bump(1),
        Err(_) => crate::telemetry::JOBS_FAILED.bump(1),
    }
    result
}

/// The coordinator loop of a compress job: encode chunk batches in
/// parallel over the shared pool, push them to the sink in plan order,
/// check for cancellation between pushes.
fn run_compress<W: Write>(
    field: Grid<f32>,
    mut sink: StreamSink<W>,
    state: &JobState,
) -> Result<(W, CompressionStats), SzhiError> {
    let n = sink.plan().len();
    // Small batches keep several concurrent jobs interleaving fairly on
    // the shared workers and bound the cancellation latency to one batch.
    let batch = rayon::current_num_threads().max(1);
    {
        let _span = crate::telemetry::JOB_ENCODE.enter();
        let mut start = 0usize;
        while start < n {
            if state.cancelled.load(Ordering::Relaxed) {
                sink.poison();
                return Err(SzhiError::Cancelled);
            }
            let end = (start + batch).min(n);
            let encoded: Vec<Result<crate::stream::EncodedChunk, SzhiError>> = {
                // Borrow only the encoder and plan — not the whole sink —
                // so the backing writer never has to be `Sync`.
                let enc = sink.encoder();
                let plan = sink.plan();
                (start..end)
                    .into_par_iter()
                    .map(|i| {
                        let region = plan.chunk_at(i);
                        let dims = plan.chunk_dims(i);
                        enc.encode(i, &Grid::from_vec(dims, field.extract(&region)))
                    })
                    .collect()
            };
            for chunk in encoded {
                if state.cancelled.load(Ordering::Relaxed) {
                    sink.poison();
                    return Err(SzhiError::Cancelled);
                }
                sink.push_encoded(chunk?)?;
                state.done.fetch_add(1, Ordering::Relaxed);
            }
            start = end;
        }
    }
    let _span = crate::telemetry::JOB_FLUSH.enter();
    sink.finish_with_stats()
}

/// The coordinator loop of a decompress job: fetch + decode chunks
/// sequentially (reads from one seekable source are inherently serial),
/// checking for cancellation between chunks.
fn run_decompress<R: Read + Seek>(
    mut source: StreamSource<R>,
    state: &JobState,
) -> Result<Grid<f32>, SzhiError> {
    let _span = crate::telemetry::JOB_DECODE.enter();
    let mut out = Grid::zeros(source.dims());
    for i in 0..source.chunk_count() {
        if state.cancelled.load(Ordering::Relaxed) {
            return Err(SzhiError::Cancelled);
        }
        let (region, sub) = source.read_chunk(i)?;
        out.insert(&region, sub.as_slice());
        state.done.fetch_add(1, Ordering::Relaxed);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::decompress;
    use crate::config::ErrorBound;
    use szhi_datagen::DatasetKind;
    use szhi_ndgrid::Dims;

    fn job_cfg() -> SzhiConfig {
        SzhiConfig::new(ErrorBound::Absolute(2e-3))
            .with_auto_tune(false)
            .with_chunk_span([16, 16, 16])
    }

    /// Serial reference bytes: the same field through a plain sink.
    fn serial_bytes(field: &Grid<f32>, cfg: &SzhiConfig) -> Vec<u8> {
        let mut sink = StreamSink::new(Vec::new(), field.dims(), cfg).unwrap();
        while let Some(region) = sink.next_chunk_region() {
            let dims = sink.plan().chunk_dims(sink.next_index());
            sink.push_chunk(&Grid::from_vec(dims, field.extract(&region)))
                .unwrap();
        }
        sink.finish().unwrap()
    }

    #[test]
    fn concurrent_jobs_match_serial_runs_byte_for_byte() {
        let cfg = job_cfg();
        let fields: Vec<Grid<f32>> = (0..4)
            .map(|seed| DatasetKind::Miranda.generate(Dims::d3(32, 32, 32), 100 + seed))
            .collect();
        let expected: Vec<Vec<u8>> = fields.iter().map(|f| serial_bytes(f, &cfg)).collect();

        let service = JobService::new();
        let handles: Vec<JobHandle<(Vec<u8>, CompressionStats)>> = fields
            .iter()
            .map(|f| service.compress(f.clone(), &cfg, Vec::new()).unwrap())
            .collect();
        // Join in reverse submission order: completion order must not
        // matter for the bytes.
        for (handle, want) in handles.into_iter().rev().zip(expected.iter().rev()) {
            let (bytes, stats) = handle.join().unwrap();
            assert_eq!(&bytes, want, "a concurrent job diverged from serial");
            assert_eq!(stats.compressed_bytes, bytes.len());
        }
    }

    #[test]
    fn progress_reaches_total_and_decompress_jobs_roundtrip() {
        let cfg = job_cfg();
        let field = DatasetKind::Nyx.generate(Dims::d3(32, 32, 32), 7);
        let service = JobService::new();
        let job = service.compress(field.clone(), &cfg, Vec::new()).unwrap();
        let (bytes, _) = job.join().unwrap();

        let job = service
            .decompress(std::io::Cursor::new(bytes.clone()))
            .unwrap();
        let restored = job.join().unwrap();
        assert_eq!(
            restored.as_slice(),
            decompress(&bytes).unwrap().as_slice(),
            "a decompress job diverged from decompress"
        );

        // A fresh handle reports sane, monotonically meaningful progress.
        let job = service.compress(field, &cfg, Vec::new()).unwrap();
        let total = job.progress().total;
        assert_eq!(total, 8);
        let (_, stats) = job.join().unwrap();
        assert!(stats.compressed_bytes > 0);
        let done = JobProgress {
            done: total,
            total,
            phase: JobPhase::Done,
        };
        assert!(done.is_complete());
        assert!((done.fraction() - 1.0).abs() < f64::EPSILON);
        assert!((JobProgress {
            done: 0,
            total: 0,
            phase: JobPhase::Done
        })
        .is_complete());
    }

    /// A writer that lets `ungated` writes pass, then blocks one write on
    /// the paired channel — pinning a job at a deterministic point so a
    /// test can cancel it mid-flight without racing.
    #[derive(Debug)]
    struct GatedWriter {
        ungated: usize,
        gate: Option<std::sync::mpsc::Receiver<()>>,
        bytes: Vec<u8>,
    }

    impl Write for GatedWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.ungated > 0 {
                self.ungated -= 1;
            } else if let Some(gate) = self.gate.take() {
                // Block until the test releases (or drops) the sender.
                let _ = gate.recv();
            }
            self.bytes.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn cancellation_is_cooperative_and_poisons_the_sink() {
        // The header write (on the caller's thread) passes ungated; the
        // coordinator's first chunk-body write blocks on the gate. The
        // test cancels while the job is pinned there, then releases it:
        // the coordinator finishes that push, sees the flag before the
        // next one, poisons the sink and reports Cancelled.
        let field = DatasetKind::Rtm.generate(Dims::d3(32, 32, 32), 3);
        let (release, gate) = std::sync::mpsc::channel::<()>();
        let out = GatedWriter {
            ungated: 1,
            gate: Some(gate),
            bytes: Vec::new(),
        };
        let service = JobService::new();
        let job = service.compress(field, &job_cfg(), out).unwrap();
        assert_eq!(job.progress().total, 8);
        job.cancel();
        assert!(job.is_cancel_requested());
        drop(release);
        let err = job.join().unwrap_err();
        assert!(
            matches!(err, SzhiError::Cancelled),
            "expected SzhiError::Cancelled, got {err:?}"
        );
    }

    #[test]
    fn phase_indicator_is_observable_mid_job_and_settles_on_done() {
        // Pin the coordinator on its first chunk-body write: the job is
        // provably mid-encode while we poll the phase.
        let field = DatasetKind::Miranda.generate(Dims::d3(32, 32, 32), 11);
        let (release, gate) = std::sync::mpsc::channel::<()>();
        let out = GatedWriter {
            ungated: 1,
            gate: Some(gate),
            bytes: Vec::new(),
        };
        let service = JobService::new();
        let job = service.compress(field.clone(), &job_cfg(), out).unwrap();
        // The caller-thread tuning step already ran, so the phase starts
        // at Tuning and moves to Encoding when the coordinator enters the
        // encode span. It cannot reach Flushing: the gate holds the first
        // body write back.
        let mut spins = 0usize;
        loop {
            let phase = job.progress().phase;
            assert!(
                phase == JobPhase::Tuning || phase == JobPhase::Encoding,
                "unexpected phase while gated: {phase:?}"
            );
            if phase == JobPhase::Encoding {
                break;
            }
            spins += 1;
            assert!(spins < 20_000, "job never reached the encode phase");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(!job.progress().is_complete());
        drop(release);
        while !job.is_finished() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let end = job.progress();
        assert_eq!(end.phase, JobPhase::Done);
        assert!(end.is_complete());
        // The per-job telemetry delta exists once the job is done.
        assert!(
            job.telemetry().is_some(),
            "finished job has a telemetry delta"
        );
        let (writer, _) = job.join().unwrap();

        // A decompress job reports Decoding on the way to Done.
        let job = service
            .decompress(std::io::Cursor::new(writer.bytes))
            .unwrap();
        let mut saw_decoding = false;
        while !job.is_finished() {
            let phase = job.progress().phase;
            assert!(
                phase == JobPhase::Starting
                    || phase == JobPhase::Decoding
                    || phase == JobPhase::Done,
                "unexpected decompress phase: {phase:?}"
            );
            saw_decoding |= phase == JobPhase::Decoding;
            std::thread::yield_now();
        }
        // The decode loop may finish between polls; Done is the one
        // guaranteed observation.
        let _ = saw_decoding;
        assert_eq!(job.progress().phase, JobPhase::Done);
        let restored = job.join().unwrap();
        assert_eq!(restored.dims(), field.dims());
    }

    #[test]
    fn per_job_telemetry_delta_counts_this_jobs_chunks() {
        // Stats must be on for counters to record; the flag is global and
        // sticky, which is fine — no test in this binary asserts that
        // metrics stay silent.
        szhi_telemetry::set_stats_enabled(true);
        let field = DatasetKind::Nyx.generate(Dims::d3(32, 32, 32), 21);
        let service = JobService::new();
        let job = service.compress(field, &job_cfg(), Vec::new()).unwrap();
        while !job.is_finished() {
            std::thread::yield_now();
        }
        let delta = job.telemetry().expect("finished job has a delta");
        // 32³ at span 16 → 8 chunks. Concurrent tests may add to the
        // global registry, so the delta is a floor, not an equality.
        assert!(
            delta.counter("io.sink.chunks").unwrap_or(0) >= 8,
            "delta records the job's sink pushes: {delta:?}"
        );
        assert!(delta.counter("io.sink.bytes").unwrap_or(0) > 0);
        let (bytes, stats) = job.join().unwrap();
        assert_eq!(stats.compressed_bytes, bytes.len());
    }

    #[test]
    fn cancelled_sinks_refuse_further_pushes() {
        // The poisoned-on-cancel contract at the sink level: after
        // poison(), pushes and finish fail with the poisoning error.
        let field = DatasetKind::Qmcpack.generate(Dims::d3(16, 16, 16), 1);
        let cfg = job_cfg();
        let mut sink = StreamSink::new(Vec::new(), field.dims(), &cfg).unwrap();
        assert!(!sink.is_poisoned());
        sink.poison();
        assert!(sink.is_poisoned());
        let region = sink.plan().chunk_at(0);
        let sub = Grid::from_vec(sink.plan().chunk_dims(0), field.extract(&region));
        assert!(matches!(
            sink.push_chunk(&sub),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("poisoned")
        ));
        assert!(matches!(
            sink.finish(),
            Err(SzhiError::InvalidInput(msg)) if msg.contains("poisoned")
        ));
    }
}
