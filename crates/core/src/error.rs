//! Error type of the cuSZ-Hi compressor.

use szhi_codec::CodecError;

/// Errors produced while compressing or decompressing a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SzhiError {
    /// The input field or configuration is invalid.
    InvalidInput(String),
    /// The compressed stream is not a szhi stream or uses an unsupported
    /// version.
    InvalidStream(String),
    /// A chunk of a streamed (v3) container failed its integrity checksum:
    /// the chunk's bytes were corrupted after compression. Raised *before*
    /// any lossless decoder touches the chunk body.
    ChunkChecksum {
        /// Index of the failing chunk in plan order.
        index: usize,
        /// The CRC32 recorded in the chunk table.
        stored: u32,
        /// The CRC32 of the bytes actually present.
        computed: u32,
    },
    /// A lossless decoding stage failed (truncated or corrupted payload).
    Codec(CodecError),
}

impl std::fmt::Display for SzhiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SzhiError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            SzhiError::InvalidStream(msg) => write!(f, "invalid compressed stream: {msg}"),
            SzhiError::ChunkChecksum {
                index,
                stored,
                computed,
            } => write!(
                f,
                "chunk {index} failed its integrity checksum \
                 (stored {stored:#010x}, computed {computed:#010x})"
            ),
            SzhiError::Codec(e) => write!(f, "lossless decoding failed: {e}"),
        }
    }
}

impl std::error::Error for SzhiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SzhiError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for SzhiError {
    fn from(e: CodecError) -> Self {
        SzhiError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = SzhiError::InvalidStream("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        let e: SzhiError = CodecError::eof("huffman").into();
        assert!(e.to_string().contains("huffman"));
    }
}
