//! Error type of the cuSZ-Hi compressor.

use szhi_codec::CodecError;

/// Errors produced while compressing or decompressing a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SzhiError {
    /// The input field or configuration is invalid.
    InvalidInput(String),
    /// The compressed stream is not a szhi stream or uses an unsupported
    /// version.
    InvalidStream(String),
    /// A chunk-table entry (or the stream header) names a lossless-pipeline
    /// id that is not in the [`PipelineSpec`](szhi_codec::PipelineSpec)
    /// catalogue. Distinct from the generic [`SzhiError::InvalidStream`] so
    /// callers can tell "this stream needs a newer decoder" from garbage.
    UnknownPipelineId {
        /// Index of the chunk whose table entry carried the id, or `None`
        /// when the stream header's default pipeline field did.
        chunk: Option<usize>,
        /// The unrecognised pipeline id.
        id: u8,
    },
    /// A tuned (v5) chunk-table entry points at a predictor-config id
    /// outside the stream's config dictionary.
    UnknownConfigId {
        /// Index of the chunk whose table entry carried the id.
        chunk: usize,
        /// The out-of-range config id.
        id: u16,
        /// Number of entries the stream's config dictionary actually has.
        n_configs: usize,
    },
    /// A chunk of a streamed (v3/v4/v5) container failed its integrity
    /// checksum: the chunk's bytes were corrupted after compression. Raised
    /// *before* any lossless decoder touches the chunk body.
    ChunkChecksum {
        /// Index of the failing chunk in plan order.
        index: usize,
        /// The CRC32 recorded in the chunk table.
        stored: u32,
        /// The CRC32 of the bytes actually present.
        computed: u32,
    },
    /// The fixed-size trailer of a trailered (v4) container is missing,
    /// truncated, carries the wrong magic, or points at a chunk table that
    /// cannot lie where it claims. Raised before any table byte is parsed.
    TrailerCorrupt(String),
    /// The chunk table of a trailered (v4) container does not match the
    /// CRC32 recorded in the trailer: the table bytes were corrupted after
    /// compression. Raised *before* any table entry is parsed.
    TableChecksum {
        /// The CRC32 recorded in the trailer.
        stored: u32,
        /// The CRC32 of the table bytes actually present.
        computed: u32,
    },
    /// An I/O error from the sink or source backing a v4 stream (the
    /// formatted [`std::io::Error`]; kept as a string so `SzhiError` stays
    /// `Clone`/`Eq`).
    Io(String),
    /// The job was cancelled cooperatively before it completed
    /// (`JobHandle::cancel`). A cancelled compress job poisons its sink:
    /// the partially written stream has no table or trailer and must be
    /// discarded.
    Cancelled,
    /// A lossless decoding stage failed (truncated or corrupted payload).
    Codec(CodecError),
}

impl std::fmt::Display for SzhiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SzhiError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            SzhiError::InvalidStream(msg) => write!(f, "invalid compressed stream: {msg}"),
            SzhiError::UnknownPipelineId { chunk: None, id } => {
                write!(f, "the stream header names unknown pipeline id {id}")
            }
            SzhiError::UnknownPipelineId {
                chunk: Some(chunk),
                id,
            } => write!(f, "chunk {chunk} names unknown pipeline id {id}"),
            SzhiError::UnknownConfigId {
                chunk,
                id,
                n_configs,
            } => write!(
                f,
                "chunk {chunk} names predictor-config id {id}, but the config \
                 dictionary has only {n_configs} entries"
            ),
            SzhiError::ChunkChecksum {
                index,
                stored,
                computed,
            } => write!(
                f,
                "chunk {index} failed its integrity checksum \
                 (stored {stored:#010x}, computed {computed:#010x})"
            ),
            SzhiError::TrailerCorrupt(msg) => write!(f, "corrupt stream trailer: {msg}"),
            SzhiError::TableChecksum { stored, computed } => write!(
                f,
                "the chunk table failed its integrity checksum \
                 (stored {stored:#010x}, computed {computed:#010x})"
            ),
            SzhiError::Io(msg) => write!(f, "stream I/O failed: {msg}"),
            SzhiError::Cancelled => write!(f, "the job was cancelled before it completed"),
            SzhiError::Codec(e) => write!(f, "lossless decoding failed: {e}"),
        }
    }
}

impl std::error::Error for SzhiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SzhiError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for SzhiError {
    fn from(e: CodecError) -> Self {
        SzhiError::Codec(e)
    }
}

impl From<std::io::Error> for SzhiError {
    fn from(e: std::io::Error) -> Self {
        SzhiError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = SzhiError::InvalidStream("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        let e: SzhiError = CodecError::eof("huffman").into();
        assert!(matches!(&e, SzhiError::Codec(_)));
        assert!(e.to_string().contains("huffman"));
        let e = SzhiError::TrailerCorrupt("bad trailer magic".into());
        assert!(e.to_string().contains("bad trailer magic"));
        let e = SzhiError::TableChecksum {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("chunk table"));
        let e: SzhiError =
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "disk vanished").into();
        assert!(matches!(&e, SzhiError::Io(msg) if msg.contains("disk vanished")));
        let e = SzhiError::Cancelled;
        assert!(e.to_string().contains("cancelled"));
    }
}
