//! Estimator-guided pipeline selection.
//!
//! [`select_pipeline`] is the orchestration primitive `szhi-core`'s
//! `ModeTuning::Estimated` runs per chunk: rank every candidate by the
//! sampled cost model, then trial-encode only a short refinement list and
//! keep the genuinely smallest payload. The chosen payload is therefore
//! always a *real* encode — the estimator only decides which few encodes
//! are worth running — and because the configured default (the first
//! candidate) is always refined, the selection can never be worse than
//! the default mode.

use crate::estimate::estimate_size;
use crate::sample::{sample_codes, DEFAULT_SEGMENTS};
use szhi_codec::{CodecError, PipelineSpec};

/// Tunable knobs of the estimator-guided selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectParams {
    /// Maximum sampled bytes per chunk (the cost-model input).
    pub sample_budget: usize,
    /// Number of contiguous segments the sample is assembled from.
    pub segments: usize,
    /// How many of the best-estimated candidates are trial-encoded in
    /// full. The first candidate (the configured default) is always
    /// refined in addition, so the real encode count per chunk is at most
    /// `refine + 1` — against `candidates.len()` for exhaustive
    /// trial-encoding.
    pub refine: usize,
}

impl Default for SelectParams {
    fn default() -> Self {
        SelectParams {
            sample_budget: 8192,
            segments: DEFAULT_SEGMENTS,
            refine: 3,
        }
    }
}

/// The outcome of one estimator-guided selection.
#[derive(Debug, Clone)]
pub struct Selection {
    /// The winning pipeline.
    pub pipeline: PipelineSpec,
    /// Its (real, decodable) encoded payload.
    pub payload: Vec<u8>,
    /// Every candidate's estimated size, in the order the candidates were
    /// given (after deduplication).
    pub estimates: Vec<(PipelineSpec, f64)>,
    /// How many candidates were trial-encoded in full.
    pub trial_encoded: usize,
}

/// Selects the lossless pipeline for `codes` from `candidates` using the
/// sampled cost model, trial-encoding only the estimated best few (plus
/// the first candidate, the caller's default). Ties among trial-encoded
/// payloads break toward the earlier candidate, exactly like
/// [`PipelineSpec::try_encode_select`] — so with the default first, the
/// choice is deterministic and never worse than the default mode.
///
/// Repeated candidates are deduplicated (first occurrence wins). An empty
/// candidate set is a typed [`CodecError::InvalidRequest`].
///
/// ```
/// use szhi_codec::PipelineSpec;
/// use szhi_tuner::{select_pipeline, SelectParams};
///
/// let codes = vec![128u8; 100_000];
/// let sel = select_pipeline(
///     &PipelineSpec::fig6_set(),
///     &codes,
///     &SelectParams::default(),
/// )
/// .unwrap();
/// // Far fewer full encodes than the 18-candidate exhaustive sweep…
/// assert!(sel.trial_encoded <= 4);
/// // …and the payload is a real encode that round-trips.
/// assert_eq!(sel.pipeline.build().decode(&sel.payload).unwrap(), codes);
/// ```
pub fn select_pipeline(
    candidates: &[PipelineSpec],
    codes: &[u8],
    params: &SelectParams,
) -> Result<Selection, CodecError> {
    // Deduplicate, keeping first occurrences: order carries the tie-break.
    let mut cands: Vec<PipelineSpec> = Vec::with_capacity(candidates.len());
    for &c in candidates {
        if !cands.contains(&c) {
            cands.push(c);
        }
    }
    if cands.is_empty() {
        return Err(CodecError::request(
            "select_pipeline",
            "empty candidate pipeline set".to_string(),
        ));
    }
    let refine = params.refine.max(1);
    if cands.len() <= refine + 1 {
        // Estimation cannot save an encode: trial the whole (small) set.
        let (pipeline, payload) = PipelineSpec::try_encode_select(&cands, codes)?;
        let trial_encoded = cands.len();
        return Ok(Selection {
            pipeline,
            payload,
            estimates: Vec::new(),
            trial_encoded,
        });
    }

    let sample = sample_codes(codes, params.sample_budget, params.segments);
    let estimates: Vec<(PipelineSpec, f64)> = cands
        .iter()
        .map(|&spec| (spec, estimate_size(spec, &sample, codes.len()).bytes))
        .collect();

    // Rank by estimate; `total_cmp` plus the candidate index keeps the
    // order fully deterministic even on exactly equal estimates.
    let mut ranked: Vec<usize> = (0..cands.len()).collect();
    ranked.sort_by(|&a, &b| estimates[a].1.total_cmp(&estimates[b].1).then(a.cmp(&b)));

    // The refinement list: the estimated top `refine`, plus the default
    // (candidate 0) as a floor. Re-sorted into candidate order so the
    // first-wins tie-break of `try_encode_select` still prefers the
    // default over an equally sized challenger.
    let mut shortlist: Vec<usize> = ranked[..refine].to_vec();
    if !shortlist.contains(&0) {
        shortlist.push(0);
    }
    shortlist.sort_unstable();
    let shortlist: Vec<PipelineSpec> = shortlist.into_iter().map(|i| cands[i]).collect();
    let trial_encoded = shortlist.len();
    let (pipeline, payload) = PipelineSpec::try_encode_select(&shortlist, codes)?;
    Ok(Selection {
        pipeline,
        payload,
        estimates,
        trial_encoded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn quant_like(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let r: f64 = rng.gen();
                if r < 0.995 {
                    let d: f64 = rng.gen::<f64>() * rng.gen::<f64>() * 3.0;
                    128u8.wrapping_add((d as i8 * if rng.gen() { 1 } else { -1 }) as u8)
                } else {
                    rng.gen()
                }
            })
            .collect()
    }

    #[test]
    fn empty_candidate_set_is_a_typed_error() {
        let err = select_pipeline(&[], &[1, 2, 3], &SelectParams::default()).unwrap_err();
        assert!(matches!(err, CodecError::InvalidRequest { .. }));
    }

    #[test]
    fn small_candidate_sets_fall_back_to_exhaustive_trial_encoding() {
        let codes = quant_like(50_000, 3);
        let sel = select_pipeline(
            &[PipelineSpec::CR, PipelineSpec::TP],
            &codes,
            &SelectParams::default(),
        )
        .unwrap();
        let (spec, payload) =
            PipelineSpec::try_encode_select(&[PipelineSpec::CR, PipelineSpec::TP], &codes).unwrap();
        assert_eq!(sel.pipeline, spec);
        assert_eq!(sel.payload, payload);
        assert_eq!(sel.trial_encoded, 2);
    }

    #[test]
    fn selection_is_never_worse_than_the_default_candidate() {
        // The default (first candidate) is always refined, so the chosen
        // payload can never exceed the default's.
        for seed in [5u64, 17, 29] {
            let codes = quant_like(80_000, seed);
            let cands = PipelineSpec::fig6_set();
            let sel = select_pipeline(&cands, &codes, &SelectParams::default()).unwrap();
            let default_len = cands[0].build().encode(&codes).len();
            assert!(
                sel.payload.len() <= default_len,
                "seed {seed}: selection ({}) worse than default ({default_len})",
                sel.payload.len()
            );
        }
    }

    #[test]
    fn selection_tracks_the_exhaustive_winner_within_tolerance() {
        // The acceptance contract: the estimator-guided payload is within
        // 5% of the exhaustive trial-encode winner's.
        for (label, codes) in [
            ("quant-like", quant_like(120_000, 41)),
            (
                "runs",
                (0..120_000usize).map(|i| (i / 64 % 5) as u8 * 51).collect(),
            ),
            ("zero-heavy", {
                let mut rng = rand::rngs::StdRng::seed_from_u64(43);
                (0..120_000usize)
                    .map(|_| {
                        if rng.gen::<f64>() < 0.97 {
                            0u8
                        } else {
                            rng.gen()
                        }
                    })
                    .collect()
            }),
        ] {
            let cands = PipelineSpec::fig6_set();
            let sel = select_pipeline(&cands, &codes, &SelectParams::default()).unwrap();
            let (_, exhaustive) = PipelineSpec::try_encode_select(&cands, &codes).unwrap();
            assert!(
                (sel.payload.len() as f64) <= exhaustive.len() as f64 * 1.05,
                "{label}: estimated pick {} vs exhaustive {}",
                sel.payload.len(),
                exhaustive.len()
            );
            assert!(
                sel.trial_encoded < cands.len() / 3,
                "{label}: refined {} of {} candidates",
                sel.trial_encoded,
                cands.len()
            );
        }
    }

    #[test]
    fn selection_is_deterministic_and_dedups() {
        let codes = quant_like(60_000, 51);
        let cands = PipelineSpec::fig6_set();
        let mut with_dups = cands.clone();
        with_dups.extend_from_slice(&cands);
        let a = select_pipeline(&cands, &codes, &SelectParams::default()).unwrap();
        let b = select_pipeline(&with_dups, &codes, &SelectParams::default()).unwrap();
        assert_eq!(a.pipeline, b.pipeline);
        assert_eq!(a.payload, b.payload);
        assert_eq!(a.estimates.len(), b.estimates.len());
    }
}
