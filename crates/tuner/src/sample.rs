//! Deterministic code sampling.
//!
//! The cost models in this crate never look at a whole chunk's
//! quantization codes: they look at a small, **deterministic** sample.
//! Two properties matter:
//!
//! * the sample must be a pure function of the input (no RNG), so
//!   orchestration decisions are byte-reproducible at any thread count;
//! * the sample must preserve *local* structure — zero runs and repeat
//!   runs are what RRE/RZE exploit — so it is drawn as a handful of
//!   **contiguous segments** spread evenly across the chunk, not as a
//!   strided gather (which would shred every run).

/// Number of contiguous segments a sample is assembled from.
pub const DEFAULT_SEGMENTS: usize = 16;

/// Draws a deterministic sample of at most `budget` bytes from `codes`:
/// `segments` contiguous, equally long segments whose starts are spread
/// evenly across the input (first segment at the start, last ending at the
/// end). Inputs no longer than the budget are returned whole.
///
/// ```
/// let codes: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
/// let sample = szhi_tuner::sample_codes(&codes, 8192, 16);
/// assert!(sample.len() <= 8192);
/// // Deterministic: the same input always yields the same sample.
/// assert_eq!(sample, szhi_tuner::sample_codes(&codes, 8192, 16));
/// ```
pub fn sample_codes(codes: &[u8], budget: usize, segments: usize) -> Vec<u8> {
    if codes.len() <= budget || budget == 0 {
        return codes.to_vec();
    }
    let segments = segments.clamp(1, budget);
    let seg_len = (budget / segments).max(1);
    let mut out = Vec::with_capacity(seg_len * segments);
    let last_start = codes.len() - seg_len;
    for s in 0..segments {
        // Integer interpolation of the segment start over [0, last_start]:
        // deterministic, no overlap while seg_len ≤ last_start/(segments-1).
        let start = if segments == 1 {
            0
        } else {
            last_start * s / (segments - 1)
        };
        out.extend_from_slice(&codes[start..start + seg_len]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_inputs_are_returned_whole() {
        let codes = vec![7u8; 100];
        assert_eq!(sample_codes(&codes, 8192, 16), codes);
        assert_eq!(sample_codes(&[], 8192, 16), Vec::<u8>::new());
    }

    #[test]
    fn samples_respect_the_budget_and_cover_both_ends() {
        let codes: Vec<u8> = (0..100_000usize).map(|i| (i % 256) as u8).collect();
        let sample = sample_codes(&codes, 8192, 16);
        assert!(sample.len() <= 8192);
        assert!(sample.len() >= 8192 - 16);
        // First segment starts at the start, last segment ends at the end.
        assert_eq!(sample[0], codes[0]);
        assert_eq!(sample[sample.len() - 1], codes[codes.len() - 1]);
    }

    #[test]
    fn segments_preserve_run_structure() {
        // A stream of 64-byte constant runs: any contiguous 512-byte
        // segment has ≥ 87% repeat density; a strided gather would have 0.
        let codes: Vec<u8> = (0..65_536usize).map(|i| (i / 64 % 256) as u8).collect();
        let sample = sample_codes(&codes, 8192, 16);
        let repeats = sample.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(
            repeats as f64 / sample.len() as f64 > 0.8,
            "sampling destroyed run structure: {repeats}/{}",
            sample.len()
        );
    }

    #[test]
    fn degenerate_parameters_do_not_panic() {
        let codes = vec![1u8; 1000];
        assert_eq!(sample_codes(&codes, 0, 16), codes);
        let s = sample_codes(&codes, 10, 0);
        assert!(!s.is_empty() && s.len() <= 10);
        let s = sample_codes(&codes, 999, 1000);
        assert!(!s.is_empty() && s.len() <= 999);
    }
}
