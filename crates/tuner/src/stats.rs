//! Byte-stream statistics for the stage-aware size models.

/// Summary statistics of a (sampled) byte stream, computed in one pass.
///
/// These are exactly the features the stage models in
/// [`estimate`](crate::estimate) key on: the code **histogram** drives the
/// Huffman/ANS entropy bound, the **zero** and **repeat** densities drive
/// the RZE/RRE gain models, and the **byte-range occupancy** (how many bit
/// positions the stream actually exercises) is what makes the TCMS/BIT
/// transform-plus-reduce pipelines viable.
#[derive(Debug, Clone)]
pub struct CodeStats {
    /// Number of bytes summarised.
    pub n: usize,
    /// Byte-value histogram.
    pub histogram: [u64; 256],
    /// Shannon entropy of the histogram in bits per byte (0 for an empty
    /// stream).
    pub entropy_bits: f64,
    /// Number of distinct byte values present.
    pub distinct: usize,
    /// Fraction of bytes equal to zero (the RZE target).
    pub zero_fraction: f64,
    /// Fraction of positions `i > 0` with `b[i] == b[i-1]` (the RRE
    /// target).
    pub repeat_fraction: f64,
    /// Number of bit positions (0–8) that vary anywhere in the stream:
    /// `popcount(OR of all bytes XOR AND of all bytes)`. Low occupancy
    /// means most bit planes are constant — the regime where a bit shuffle
    /// followed by run elimination collapses the stream.
    pub occupied_bits: u32,
}

impl CodeStats {
    /// Computes the statistics of `bytes` in a single pass.
    pub fn from_codes(bytes: &[u8]) -> CodeStats {
        let mut histogram = [0u64; 256];
        let mut repeats = 0usize;
        let mut or_acc = 0u8;
        let mut and_acc = 0xFFu8;
        let mut prev: Option<u8> = None;
        for &b in bytes {
            histogram[b as usize] += 1;
            or_acc |= b;
            and_acc &= b;
            if prev == Some(b) {
                repeats += 1;
            }
            prev = Some(b);
        }
        let n = bytes.len();
        let mut entropy_bits = 0.0f64;
        let mut distinct = 0usize;
        if n > 0 {
            for &count in &histogram {
                if count > 0 {
                    distinct += 1;
                    let p = count as f64 / n as f64;
                    entropy_bits -= p * p.log2();
                }
            }
        }
        CodeStats {
            n,
            histogram,
            entropy_bits,
            distinct,
            zero_fraction: if n == 0 {
                0.0
            } else {
                histogram[0] as f64 / n as f64
            },
            repeat_fraction: if n < 2 {
                0.0
            } else {
                repeats as f64 / (n - 1) as f64
            },
            occupied_bits: if n == 0 {
                0
            } else {
                (or_acc ^ and_acc).count_ones()
            },
        }
    }

    /// The histogram → entropy lower bound on any entropy coder's payload
    /// for a stream of `scaled_n` bytes with this distribution, in bytes
    /// (table/header overhead excluded).
    pub fn entropy_bound_bytes(&self, scaled_n: f64) -> f64 {
        scaled_n * self.entropy_bits / 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_stream_has_zero_entropy_and_full_repeats() {
        let s = CodeStats::from_codes(&[42u8; 1000]);
        assert_eq!(s.n, 1000);
        assert_eq!(s.distinct, 1);
        assert_eq!(s.entropy_bits, 0.0);
        assert_eq!(s.repeat_fraction, 1.0);
        assert_eq!(s.zero_fraction, 0.0);
        assert_eq!(s.occupied_bits, 0);
    }

    #[test]
    fn uniform_stream_has_eight_bits_of_entropy() {
        let bytes: Vec<u8> = (0..25_600usize).map(|i| (i % 256) as u8).collect();
        let s = CodeStats::from_codes(&bytes);
        assert!((s.entropy_bits - 8.0).abs() < 1e-9);
        assert_eq!(s.distinct, 256);
        assert_eq!(s.occupied_bits, 8);
        assert_eq!(s.zero_fraction, 100.0 / 25_600.0);
    }

    #[test]
    fn two_symbol_stream_has_one_bit_of_entropy() {
        let bytes: Vec<u8> = (0..4096usize).map(|i| (i % 2) as u8 * 128).collect();
        let s = CodeStats::from_codes(&bytes);
        assert!((s.entropy_bits - 1.0).abs() < 1e-9);
        assert_eq!(s.occupied_bits, 1, "only bit 7 varies");
        assert_eq!(s.repeat_fraction, 0.0, "strict alternation never repeats");
        assert!((s.entropy_bound_bytes(4096.0) - 512.0).abs() < 1e-6);
    }

    #[test]
    fn empty_stream_is_all_zeros() {
        let s = CodeStats::from_codes(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.entropy_bits, 0.0);
        assert_eq!(s.distinct, 0);
        assert_eq!(s.occupied_bits, 0);
    }
}
