//! Stage-aware pipeline output-size estimation.
//!
//! [`estimate_size`] predicts a candidate pipeline's encoded size for a
//! full code stream while touching only a small deterministic sample of
//! it. It walks the pipeline's [`StageSpec`] list and models each stage by
//! what the stage actually *is*:
//!
//! * **Component stages** (RRE/RZE repeat- and zero-run eliminators, the
//!   TCMS/BIT/DIFFMS/CLOG/TUPL transforms, Bitcomp, LZ) are applied to
//!   the sample itself. These stages are cheap and local, so the sampled
//!   stream's zero-run density and byte-range occupancy — the features
//!   [`CodeStats`] summarises — propagate through them exactly as they
//!   would through the full stream, and their reduction measured on the
//!   sample extrapolates linearly.
//! * **Entropy coders** (Huffman/ANS) are closed with the **histogram →
//!   entropy bound**: the payload of a full stream with the sampled
//!   distribution is `n · H / 8` bytes, no encode needed. Stages *behind*
//!   the entropy coder see near-incompressible bytes, so their net effect
//!   is measured once on the sample and applied as a multiplicative
//!   factor to the bound.
//! * The pipeline's **constant skeleton** (length headers, the Huffman
//!   code-length table, the ANS frequency table) is measured exactly by
//!   encoding an empty stream — it must not be multiplied by the
//!   sample-to-full scale factor, which is what makes naive
//!   sample-encode-and-scale estimates misrank close candidates.
//!
//! The estimate is a pure function of `(spec, sample, full_len)`; with the
//! deterministic sampler in [`crate::sample`] the whole cost model is
//! byte-reproducible at any thread count.

use crate::stats::CodeStats;
use szhi_codec::{PipelineSpec, StageSpec};

/// One pipeline's estimated output size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeEstimate {
    /// The candidate pipeline.
    pub pipeline: PipelineSpec,
    /// Estimated encoded size of the full stream, in bytes.
    pub bytes: f64,
    /// Whether the estimate was closed by the histogram → entropy bound
    /// (the pipeline contains a Huffman/ANS stage) rather than by sampled
    /// component reduction alone.
    pub entropy_bounded: bool,
}

/// Estimates the encoded size of a `full_len`-byte stream under `spec`,
/// from a deterministic `sample` of it (see [`crate::sample_codes`]).
///
/// ```
/// use szhi_codec::PipelineSpec;
///
/// // A heavily repetitive stream: the CR-style entropy pipelines estimate
/// // far below the raw size.
/// let codes = vec![128u8; 200_000];
/// let sample = szhi_tuner::sample_codes(&codes, 4096, 16);
/// let est = szhi_tuner::estimate_size(PipelineSpec::CR, &sample, codes.len());
/// assert!(est.bytes < 20_000.0);
/// ```
pub fn estimate_size(spec: PipelineSpec, sample: &[u8], full_len: usize) -> SizeEstimate {
    // The constant skeleton: headers and tables that do not scale with the
    // input. Encoding an empty stream measures it exactly.
    let skeleton = spec.build().encode(&[]).len() as f64;
    if sample.is_empty() || full_len == 0 {
        return SizeEstimate {
            pipeline: spec,
            bytes: skeleton,
            entropy_bounded: false,
        };
    }
    let scale = full_len as f64 / sample.len() as f64;
    let stages = spec.stages();

    if let Some(k) = stages.iter().position(StageSpec::is_entropy_coder) {
        // Component stages ahead of the entropy coder: apply them to the
        // sample so their run/occupancy effects reach the histogram.
        let mut model = sample.to_vec();
        for stage in &stages[..k] {
            model = stage.build().encode(&model);
        }
        // The histogram bound for the full stream at this stage (the
        // stream is `scale`× the sampled one with the same distribution).
        // ANS approaches the Shannon entropy; Huffman is a prefix code
        // that cannot spend less than one bit per symbol, so its bound is
        // the exact cost of the canonical code built from the histogram.
        let stats = CodeStats::from_codes(&model);
        let bound = match stages[k] {
            StageSpec::Huffman => {
                let book = szhi_codec::huffman::HuffmanBook::from_histogram(&stats.histogram);
                book.encoded_bits(&stats.histogram) as f64 / 8.0 * scale
            }
            _ => stats.entropy_bound_bytes(model.len() as f64 * scale),
        };
        // Stages behind the entropy coder act on near-incompressible
        // bytes; measure their net *payload* factor once on the sample.
        // Constant parts (the entropy coder's table, the post stages'
        // headers) are taken out of both sides first — they are already
        // accounted for by the unscaled skeleton term, and leaving them
        // in would multiply sample-level constants by the scale factor.
        let entropy_out = stages[k].build().encode(&model);
        let mut entropy_skeleton = stages[k].build().encode(&[]);
        let payload_in = (entropy_out.len() as f64 - entropy_skeleton.len() as f64).max(1.0);
        let mut tail = entropy_out;
        for stage in &stages[k + 1..] {
            tail = stage.build().encode(&tail);
            entropy_skeleton = stage.build().encode(&entropy_skeleton);
        }
        let payload_out = (tail.len() as f64 - entropy_skeleton.len() as f64).max(0.0);
        let post_factor = payload_out / payload_in;
        SizeEstimate {
            pipeline: spec,
            bytes: bound * post_factor + skeleton,
            entropy_bounded: true,
        }
    } else {
        // No entropy stage: the sampled reduction extrapolates linearly
        // once the constant skeleton is taken out of the scaled term.
        let mut model = sample.to_vec();
        for stage in &stages {
            model = stage.build().encode(&model);
        }
        SizeEstimate {
            pipeline: spec,
            bytes: (model.len() as f64 - skeleton).max(0.0) * scale + skeleton,
            entropy_bounded: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_codes;
    use rand::{Rng, SeedableRng};

    /// Quantization-code-like data: tightly clustered around 128 with rare
    /// excursions (mirrors the codec crate's test distribution).
    fn quant_like(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let r: f64 = rng.gen();
                if r < 0.995 {
                    let d: f64 = rng.gen::<f64>() * rng.gen::<f64>() * 3.0;
                    128u8.wrapping_add((d as i8 * if rng.gen() { 1 } else { -1 }) as u8)
                } else {
                    rng.gen()
                }
            })
            .collect()
    }

    fn uniform(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    /// 64-byte constant runs with slowly varying values (RRE-friendly).
    fn runs(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i / 64 % 7) as u8 * 36).collect()
    }

    /// Mostly zeros with sparse spikes (RZE-friendly).
    fn zero_heavy(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                if rng.gen::<f64>() < 0.97 {
                    0
                } else {
                    rng.gen()
                }
            })
            .collect()
    }

    fn rank_of_true_best(codes: &[u8]) -> usize {
        let candidates = PipelineSpec::fig6_set();
        let sample = sample_codes(codes, 8192, 16);
        let mut est: Vec<(usize, f64)> = candidates
            .iter()
            .enumerate()
            .map(|(i, &spec)| (i, estimate_size(spec, &sample, codes.len()).bytes))
            .collect();
        est.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let actual_best = candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, spec)| spec.build().encode(codes).len())
            .map(|(i, _)| i)
            .unwrap();
        est.iter().position(|&(i, _)| i == actual_best).unwrap()
    }

    #[test]
    fn the_true_best_pipeline_ranks_near_the_top_of_the_estimates() {
        // The contract the top-K refinement in `select` relies on: across
        // qualitatively different code distributions, the estimator puts
        // the genuinely smallest pipeline within its top few candidates.
        for (label, codes) in [
            ("quant-like", quant_like(120_000, 7)),
            ("uniform", uniform(120_000, 11)),
            ("runs", runs(120_000)),
            ("zero-heavy", zero_heavy(120_000, 13)),
        ] {
            let rank = rank_of_true_best(&codes);
            assert!(
                rank < 4,
                "{label}: true best pipeline ranked {rank} by the estimator"
            );
        }
    }

    #[test]
    fn estimates_are_within_a_factor_of_the_truth_on_quant_codes() {
        let codes = quant_like(150_000, 23);
        let sample = sample_codes(&codes, 8192, 16);
        for spec in PipelineSpec::fig6_set() {
            let est = estimate_size(spec, &sample, codes.len()).bytes;
            let actual = spec.build().encode(&codes).len() as f64;
            let ratio = est / actual;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{spec}: estimate {est:.0} vs actual {actual:.0} (x{ratio:.2})"
            );
        }
    }

    #[test]
    fn entropy_bound_drives_hf_estimates() {
        // A two-symbol stream has 1 bit/byte of entropy: the HF estimate
        // must sit near n/8, far below the raw size.
        let codes: Vec<u8> = (0..131_072usize).map(|i| (i % 2) as u8 * 9).collect();
        let sample = sample_codes(&codes, 8192, 16);
        let est = estimate_size(PipelineSpec::Hf, &sample, codes.len());
        assert!(est.entropy_bounded);
        let bound = codes.len() as f64 / 8.0;
        assert!(
            est.bytes > bound * 0.8 && est.bytes < bound * 2.0,
            "HF estimate {:.0} vs entropy bound {bound:.0}",
            est.bytes
        );
    }

    #[test]
    fn empty_and_degenerate_inputs_estimate_the_skeleton() {
        for spec in PipelineSpec::fig6_set() {
            let est = estimate_size(spec, &[], 0);
            let skeleton = spec.build().encode(&[]).len() as f64;
            assert_eq!(est.bytes, skeleton, "{spec}");
        }
    }

    #[test]
    fn estimates_are_deterministic() {
        let codes = quant_like(100_000, 31);
        let sample = sample_codes(&codes, 8192, 16);
        for spec in PipelineSpec::fig6_set() {
            let a = estimate_size(spec, &sample, codes.len());
            let b = estimate_size(spec, &sample, codes.len());
            assert_eq!(a.bytes.to_bits(), b.bytes.to_bits(), "{spec}");
        }
    }
}
