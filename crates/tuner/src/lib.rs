//! # szhi-tuner — sampling-based cost-model orchestration
//!
//! The paper's core claim is that the lossy predictor configuration and
//! the lossless pipeline should be chosen **jointly, per region** — but
//! trial-encoding every candidate pipeline on every chunk is exactly the
//! cost the paper's "optimized" orchestration avoids. This crate provides
//! the cheap middle path, in the spirit of cuSZ+'s histogram-driven size
//! estimation:
//!
//! 1. [`sample::sample_codes`] draws a **deterministic** subset of a
//!    chunk's quantization codes (evenly spaced contiguous segments, so
//!    run structure survives);
//! 2. [`stats::CodeStats`] summarises the sample (code histogram, Shannon
//!    entropy, zero density, repeat-run density, byte-range occupancy);
//! 3. [`estimate::estimate_size`] walks a candidate pipeline's
//!    [`StageSpec`](szhi_codec::StageSpec) list with **stage-aware
//!    models**: component stages (RRE/RZE/TCMS/BIT/…) are applied to the
//!    sample itself — their zero-run and occupancy effects propagate
//!    exactly — while entropy-coder stages (Huffman/ANS) are closed with
//!    the histogram → entropy bound, which needs no encode at all;
//! 4. [`select::select_pipeline`] ranks the full candidate list by
//!    estimated size and trial-encodes only a short refinement list (the
//!    estimated top few plus the configured default), so the chosen
//!    payload is always a *real* encode and never worse than the default
//!    mode — at a fraction of the exhaustive trial-encode cost.
//!
//! The same per-chunk philosophy applies to the lossy side:
//! [`interp::tune_chunk_interp`] scores the standard per-level
//! interpolation candidates ([`szhi_predictor::autotune::candidates`]) on
//! a sampled subset of the chunk's blocks, giving every chunk its own
//! predictor configuration (carried by the v5 container's config
//! dictionary in `szhi-core`).
//!
//! Everything in this crate is a pure function of its inputs — no RNG, no
//! global state — so orchestration decisions are byte-reproducible at any
//! worker-thread count.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod estimate;
pub mod interp;
pub mod sample;
pub mod select;
pub mod stats;

pub use estimate::{estimate_size, SizeEstimate};
pub use interp::{tune_chunk_interp, tune_chunk_interp_with_report};
pub use sample::sample_codes;
pub use select::{select_pipeline, SelectParams, Selection};
pub use stats::CodeStats;
