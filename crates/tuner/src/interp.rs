//! Per-chunk interpolation-configuration tuning.
//!
//! The global auto-tuner (`szhi_predictor::autotune`) picks one per-level
//! (scheme, spline) configuration for the whole field from a 0.2 % block
//! sample. Fields are rarely homogeneous, though: a turbulent region wants
//! different splines than a laminar one. This module runs the same sampled
//! scoring — the identical candidate set
//! ([`szhi_predictor::autotune::candidates`]) and trial-error metric —
//! **per chunk**, so every chunk of a v5 container can carry the
//! configuration that predicts *its* data best.
//!
//! Tuning a chunk is a pure function of `(chunk, base)`, so per-chunk
//! configurations are byte-reproducible at any worker-thread count.

use szhi_ndgrid::Grid;
use szhi_predictor::autotune::{self, TuneResult};
use szhi_predictor::InterpConfig;

/// Scores the per-level interpolation candidates on a sampled subset of
/// `chunk`'s blocks and returns the winning configuration. The anchor
/// stride and block span of `base` are preserved — only the per-level
/// scheme/spline selections change, which is exactly what the v5
/// container's config dictionary records.
///
/// ```
/// use szhi_ndgrid::{Dims, Grid};
/// use szhi_predictor::InterpConfig;
///
/// let chunk = Grid::from_fn(Dims::d3(32, 32, 32), |z, y, x| {
///     ((x + y) as f32 * 0.07).sin() + z as f32 * 0.01
/// });
/// let tuned = szhi_tuner::tune_chunk_interp(&chunk, &InterpConfig::cusz_hi());
/// assert_eq!(tuned.anchor_stride, 16);
/// assert_eq!(tuned.levels.len(), 4);
/// tuned.validate().unwrap();
/// ```
pub fn tune_chunk_interp(chunk: &Grid<f32>, base: &InterpConfig) -> InterpConfig {
    tune_chunk_interp_with_report(chunk, base).0
}

/// Like [`tune_chunk_interp`], additionally returning the per-level trial
/// errors and sampled block count (for benchmarking and diagnostics).
pub fn tune_chunk_interp_with_report(
    chunk: &Grid<f32>,
    base: &InterpConfig,
) -> (InterpConfig, TuneResult) {
    autotune::tune(chunk, base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use szhi_ndgrid::Dims;
    use szhi_predictor::Spline;

    #[test]
    fn smooth_chunks_prefer_cubic_at_the_finest_level() {
        let chunk = Grid::from_fn(Dims::d3(48, 48, 48), |z, y, x| {
            let (fz, fy, fx) = (z as f32 * 0.05, y as f32 * 0.045, x as f32 * 0.035);
            (fx + fy * 0.7).sin() * 5.0 + (fz - fx * 0.2).cos() * 3.0
        });
        let tuned = tune_chunk_interp(&chunk, &InterpConfig::cusz_hi());
        assert_eq!(tuned.levels[0].spline, Spline::Cubic);
        tuned.validate().unwrap();
    }

    #[test]
    fn different_chunks_of_one_field_can_tune_differently() {
        // A smooth chunk and a hash-noise chunk: the tuner must at least
        // produce valid configurations for both, and the scoring must see
        // genuinely different errors (the configs may or may not differ —
        // the *option* to differ is what the v5 container records).
        let smooth = Grid::from_fn(Dims::d3(32, 32, 32), |z, y, x| {
            ((x + y) as f32 * 0.09).sin() * 0.5 + z as f32 * 0.01
        });
        let noisy = Grid::from_fn(Dims::d3(32, 32, 32), |z, y, x| {
            let mut h = (z * 73_856_093) ^ (y * 19_349_663) ^ (x * 83_492_791);
            h ^= h >> 13;
            h = h.wrapping_mul(0x5bd1_e995);
            h ^= h >> 15;
            ((h & 0xFFFF) as f32 / 65_535.0) - 0.5
        });
        let base = InterpConfig::cusz_hi();
        let (cfg_s, rep_s) = tune_chunk_interp_with_report(&smooth, &base);
        let (cfg_n, rep_n) = tune_chunk_interp_with_report(&noisy, &base);
        cfg_s.validate().unwrap();
        cfg_n.validate().unwrap();
        assert!(rep_s.sampled_blocks >= 1 && rep_n.sampled_blocks >= 1);
        // The noisy chunk's level-1 trial errors dwarf the smooth chunk's.
        let best = |errs: &[f64; 4]| errs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(best(&rep_n.errors[0]) > best(&rep_s.errors[0]) * 10.0);
    }

    #[test]
    fn tuning_is_deterministic() {
        let chunk = Grid::from_fn(Dims::d3(32, 32, 32), |z, y, x| {
            ((x * 3 + y * 2 + z) as f32 * 0.11).sin()
        });
        let base = InterpConfig::cusz_hi();
        let a = tune_chunk_interp(&chunk, &base);
        let b = tune_chunk_interp(&chunk, &base);
        assert_eq!(a, b);
    }
}
