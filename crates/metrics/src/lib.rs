//! Compression quality and performance metrics.
//!
//! This crate is the workspace's stand-in for the Z-checker tooling the
//! paper's evaluation relies on: it computes the distortion metrics (PSNR,
//! NRMSE, maximum point-wise error), the size metrics (compression ratio,
//! bit rate) and the speed metrics (GiB/s throughput) that every table and
//! figure of the paper reports.
#![forbid(unsafe_code)]

pub mod quality;
pub mod size;
pub mod timing;

pub use quality::{verify_error_bound, QualityReport};
pub use size::{bitrate, compression_ratio, SizeReport};
pub use timing::{throughput_gibps, Stopwatch, ThroughputReport};
