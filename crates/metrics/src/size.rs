//! Compression-size metrics: compression ratio and bit rate.

/// Size statistics of one compression run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeReport {
    /// Uncompressed size in bytes.
    pub original_bytes: usize,
    /// Compressed size in bytes.
    pub compressed_bytes: usize,
    /// `original_bytes / compressed_bytes`.
    pub compression_ratio: f64,
    /// Average number of compressed bits per original scalar (assumes `f32`
    /// input, i.e. `32 / compression_ratio`), the paper's bit-rate metric.
    pub bitrate: f64,
}

impl SizeReport {
    /// Builds a report from an original byte count and a compressed byte
    /// count (the original is assumed to be an `f32` field for the bit-rate).
    pub fn new(original_bytes: usize, compressed_bytes: usize) -> Self {
        let cr = compression_ratio(original_bytes, compressed_bytes);
        SizeReport {
            original_bytes,
            compressed_bytes,
            compression_ratio: cr,
            bitrate: if cr > 0.0 { 32.0 / cr } else { f64::INFINITY },
        }
    }
}

/// The compression ratio `original / compressed`.
pub fn compression_ratio(original_bytes: usize, compressed_bytes: usize) -> f64 {
    assert!(compressed_bytes > 0, "compressed size must be non-zero");
    original_bytes as f64 / compressed_bytes as f64
}

/// The bit rate in bits per scalar for `n_points` original values compressed
/// into `compressed_bytes` bytes.
pub fn bitrate(n_points: usize, compressed_bytes: usize) -> f64 {
    assert!(n_points > 0, "cannot compute a bit rate for zero points");
    compressed_bytes as f64 * 8.0 / n_points as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_bitrate_are_consistent() {
        let r = SizeReport::new(4000, 100);
        assert!((r.compression_ratio - 40.0).abs() < 1e-12);
        assert!((r.bitrate - 0.8).abs() < 1e-12);
        // 4000 bytes of f32 = 1000 points; 100 bytes = 800 bits → 0.8 bits/pt.
        assert!((bitrate(1000, 100) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn unit_ratio() {
        assert_eq!(compression_ratio(123, 123), 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_compressed_size_panics() {
        let _ = compression_ratio(10, 0);
    }
}
