//! Distortion metrics between an original and a reconstructed field.

use rayon::prelude::*;
use szhi_ndgrid::Grid;

/// Point-wise distortion statistics of a reconstruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Mean squared error.
    pub mse: f64,
    /// Peak signal-to-noise ratio in dB, computed against the value range of
    /// the original data (the convention used by Z-checker and the paper).
    pub psnr: f64,
    /// Root-mean-square error normalised by the value range.
    pub nrmse: f64,
    /// Maximum absolute point-wise error.
    pub max_abs_error: f64,
    /// Value range (max − min) of the original data.
    pub value_range: f64,
    /// Number of points compared.
    pub points: usize,
}

impl QualityReport {
    /// Computes all distortion metrics between `original` and `restored`.
    ///
    /// Panics if the two fields have different shapes.
    pub fn compare(original: &Grid<f32>, restored: &Grid<f32>) -> Self {
        assert_eq!(original.dims(), restored.dims(), "field shapes differ");
        Self::compare_slices(
            original.as_slice(),
            restored.as_slice(),
            original.value_range() as f64,
        )
    }

    /// Computes distortion metrics between two raw buffers given the value
    /// range of the original data.
    pub fn compare_slices(original: &[f32], restored: &[f32], value_range: f64) -> Self {
        assert_eq!(original.len(), restored.len(), "buffer lengths differ");
        assert!(!original.is_empty(), "cannot compare empty buffers");
        let (sum_sq, max_err) = original
            .par_chunks(1 << 16)
            .zip(restored.par_chunks(1 << 16))
            .map(|(a, b)| {
                let mut sq = 0.0f64;
                let mut mx = 0.0f64;
                for (x, y) in a.iter().zip(b.iter()) {
                    let d = (*x as f64) - (*y as f64);
                    sq += d * d;
                    mx = mx.max(d.abs());
                }
                (sq, mx)
            })
            .reduce(|| (0.0, 0.0), |l, r| (l.0 + r.0, l.1.max(r.1)));
        let n = original.len() as f64;
        let mse = sum_sq / n;
        let rmse = mse.sqrt();
        let psnr = if mse == 0.0 {
            f64::INFINITY
        } else if value_range == 0.0 {
            0.0
        } else {
            20.0 * (value_range / rmse).log10()
        };
        let nrmse = if value_range == 0.0 {
            0.0
        } else {
            rmse / value_range
        };
        QualityReport {
            mse,
            psnr,
            nrmse,
            max_abs_error: max_err,
            value_range,
            points: original.len(),
        }
    }
}

/// Returns `Ok(())` when every reconstructed point is within `bound` of the
/// original, otherwise the index and magnitude of the worst violation.
pub fn verify_error_bound(
    original: &[f32],
    restored: &[f32],
    bound: f64,
) -> Result<(), (usize, f64)> {
    assert_eq!(original.len(), restored.len());
    let mut worst: Option<(usize, f64)> = None;
    for (i, (a, b)) in original.iter().zip(restored.iter()).enumerate() {
        let err = ((*a as f64) - (*b as f64)).abs();
        if err > bound && worst.is_none_or(|(_, w)| err > w) {
            worst = Some((i, err));
        }
    }
    match worst {
        None => Ok(()),
        Some(v) => Err(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use szhi_ndgrid::Dims;

    #[test]
    fn identical_fields_have_infinite_psnr() {
        let g = Grid::from_fn(Dims::d3(8, 8, 8), |z, y, x| (z + y + x) as f32);
        let q = QualityReport::compare(&g, &g);
        assert_eq!(q.mse, 0.0);
        assert!(q.psnr.is_infinite());
        assert_eq!(q.max_abs_error, 0.0);
    }

    #[test]
    fn constant_offset_gives_expected_mse() {
        let a = Grid::from_vec(Dims::d1(4), vec![0.0f32, 1.0, 2.0, 3.0]);
        let b = Grid::from_vec(Dims::d1(4), vec![0.5f32, 1.5, 2.5, 3.5]);
        let q = QualityReport::compare(&a, &b);
        assert!((q.mse - 0.25).abs() < 1e-12);
        assert!((q.max_abs_error - 0.5).abs() < 1e-12);
        // range = 3, rmse = 0.5 → psnr = 20 log10(6) ≈ 15.563 dB
        assert!((q.psnr - 20.0 * 6.0f64.log10()).abs() < 1e-9);
        assert!((q.nrmse - 0.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let a = Grid::from_fn(Dims::d2(64, 64), |_, y, x| ((y * x) as f32).sin());
        let mut small = a.clone();
        let mut large = a.clone();
        for (i, v) in small.as_mut_slice().iter_mut().enumerate() {
            *v += if i % 2 == 0 { 1e-3 } else { -1e-3 };
        }
        for (i, v) in large.as_mut_slice().iter_mut().enumerate() {
            *v += if i % 2 == 0 { 1e-1 } else { -1e-1 };
        }
        let q_small = QualityReport::compare(&a, &small);
        let q_large = QualityReport::compare(&a, &large);
        assert!(q_small.psnr > q_large.psnr + 30.0);
    }

    #[test]
    fn verify_error_bound_finds_worst_violation() {
        let a = [0.0f32, 0.0, 0.0];
        let b = [0.05f32, 0.3, 0.2];
        assert!(verify_error_bound(&a, &b, 0.5).is_ok());
        let (idx, err) = verify_error_bound(&a, &b, 0.1).unwrap_err();
        assert_eq!(idx, 1);
        assert!((err - 0.3).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn mismatched_shapes_panic() {
        let a = Grid::<f32>::zeros(Dims::d1(4));
        let b = Grid::<f32>::zeros(Dims::d1(5));
        let _ = QualityReport::compare(&a, &b);
    }
}
