//! Throughput measurement helpers.

use std::time::{Duration, Instant};

/// Wall-clock throughput of one compression or decompression pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputReport {
    /// Bytes of *uncompressed* data processed (the convention used in the
    /// paper's GiB/s figures).
    pub bytes: usize,
    /// Elapsed wall-clock time.
    pub elapsed: Duration,
    /// Throughput in GiB/s.
    pub gibps: f64,
}

impl ThroughputReport {
    /// Builds a report for `bytes` processed in `elapsed`.
    pub fn new(bytes: usize, elapsed: Duration) -> Self {
        ThroughputReport {
            bytes,
            elapsed,
            gibps: throughput_gibps(bytes, elapsed),
        }
    }
}

/// Converts a byte count and duration into GiB/s.
pub fn throughput_gibps(bytes: usize, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs == 0.0 {
        return f64::INFINITY;
    }
    bytes as f64 / (1024.0 * 1024.0 * 1024.0) / secs
}

/// A small stopwatch for timing compression passes.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since the stopwatch was started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Stops the watch and converts `bytes` processed into a throughput
    /// report.
    pub fn finish(self, bytes: usize) -> ThroughputReport {
        ThroughputReport::new(bytes, self.elapsed())
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gibps_conversion() {
        let one_gib = 1usize << 30;
        assert!((throughput_gibps(one_gib, Duration::from_secs(1)) - 1.0).abs() < 1e-12);
        assert!((throughput_gibps(one_gib / 2, Duration::from_secs(1)) - 0.5).abs() < 1e-12);
        assert!((throughput_gibps(one_gib, Duration::from_millis(500)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_reports_infinity() {
        assert!(throughput_gibps(100, Duration::ZERO).is_infinite());
    }

    #[test]
    fn stopwatch_measures_something() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(5));
        let rep = sw.finish(1 << 20);
        assert!(rep.elapsed >= Duration::from_millis(4));
        assert!(rep.gibps.is_finite());
    }
}
