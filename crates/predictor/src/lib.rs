//! Lossy decomposition substrate: predictors, quantization, reordering and
//! auto-tuning.
//!
//! Error-bounded lossy compressors of the cuSZ family all follow the same
//! two-phase design the paper formalises in Eq. 2: a *lossy decomposition*
//! turns the floating-point field into an integer array of quantized
//! prediction errors (plus a small lossless side channel), and a *lossless
//! encoder* shrinks that integer array. This crate implements the first
//! phase for every compressor in the workspace:
//!
//! * [`quantize`] — the error-bounded linear quantizer with one-byte codes
//!   and an outlier side channel (§5.2.1);
//! * [`lorenzo`] — the dual-quantization Lorenzo predictor used by the
//!   cuSZ-L and FZ-GPU baselines;
//! * [`interp`] — the spline-interpolation predictor: the cuSZ-I
//!   configuration (anchor stride 8, dimension-sequence interpolation) and
//!   the cuSZ-Hi configuration (anchor stride 16, multi-dimensional
//!   interpolation, §5.1.1–§5.1.2);
//! * [`reorder`] — the level-ordered quantization-code mapping (§5.1.4,
//!   Eq. 3);
//! * [`autotune`] — the sampled, workload-balanced interpolation auto-tuner
//!   (§5.1.3).
#![forbid(unsafe_code)]

pub mod autotune;
pub mod error;
pub mod interp;
pub mod lorenzo;
pub mod quantize;
pub mod reorder;

pub use error::PredictorError;
pub use interp::{
    CompressScratch, InterpConfig, InterpOutput, InterpPredictor, LevelConfig, Scheme, Spline,
};
pub use quantize::{Outlier, Quantizer, OUTLIER_CODE, ZERO_CODE};
pub use reorder::LevelOrder;
