//! Interpolation kernels: step enumeration and point prediction.
//!
//! These are the building blocks shared by the predictor
//! ([`super::InterpPredictor`]) and the auto-tuner
//! ([`crate::autotune`]): the decomposition of one interpolation level into
//! steps of independent target points, and the spline prediction of a single
//! point from its already-known neighbours.

use super::{Scheme, Spline};
use szhi_ndgrid::Dims;

/// One interpolation step: a lattice of target points (`start`, `stride` per
/// axis) that are all predicted from points known *before* the step, plus the
/// axes along which the prediction interpolates.
#[derive(Debug, Clone)]
pub struct Step {
    /// `(start, stride)` of target coordinates along `z`.
    pub z: (usize, usize),
    /// `(start, stride)` of target coordinates along `y`.
    pub y: (usize, usize),
    /// `(start, stride)` of target coordinates along `x`.
    pub x: (usize, usize),
    /// Axes to interpolate along (0 = z, 1 = y, 2 = x). Multi-axis steps
    /// average the highest-order per-axis predictions.
    pub interp_axes: Vec<usize>,
}

impl Step {
    fn new(
        z: (usize, usize),
        y: (usize, usize),
        x: (usize, usize),
        interp_axes: Vec<usize>,
    ) -> Self {
        Step {
            z,
            y,
            x,
            interp_axes,
        }
    }

    /// Iterates every target coordinate of the step.
    pub fn targets(&self, dims: Dims) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let (z0, zs) = self.z;
        let (y0, ys) = self.y;
        let (x0, xs) = self.x;
        (z0..dims.nz()).step_by(zs).flat_map(move |z| {
            (y0..dims.ny())
                .step_by(ys)
                .flat_map(move |y| (x0..dims.nx()).step_by(xs).map(move |x| (z, y, x)))
        })
    }
}

/// Enumerates the interpolation steps of one level (stride `s`) under the
/// given scheme. Executing the steps in order guarantees every target's
/// neighbours are already known.
pub fn steps(dims: Dims, s: usize, scheme: Scheme) -> Vec<Step> {
    let _ = dims;
    let s2 = 2 * s;
    match scheme {
        Scheme::DimSequence => vec![
            // 1D along x: z and y on the coarse grid, x at odd multiples of s.
            Step::new((0, s2), (0, s2), (s, s2), vec![2]),
            // 1D along y: x already refined to the s-grid.
            Step::new((0, s2), (s, s2), (0, s), vec![1]),
            // 1D along z: x and y already refined.
            Step::new((s, s2), (0, s), (0, s), vec![0]),
        ],
        Scheme::MultiDim => vec![
            // Edge centres: exactly one odd coordinate → 1D interpolation.
            Step::new((0, s2), (0, s2), (s, s2), vec![2]),
            Step::new((0, s2), (s, s2), (0, s2), vec![1]),
            Step::new((s, s2), (0, s2), (0, s2), vec![0]),
            // Face centres: exactly two odd coordinates → averaged 2D.
            Step::new((0, s2), (s, s2), (s, s2), vec![1, 2]),
            Step::new((s, s2), (0, s2), (s, s2), vec![0, 2]),
            Step::new((s, s2), (s, s2), (0, s2), vec![0, 1]),
            // Body centres: all three odd → averaged 3D.
            Step::new((s, s2), (s, s2), (s, s2), vec![0, 1, 2]),
        ],
    }
}

/// Order of a 1D prediction: higher order means more neighbours were usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Order {
    /// No neighbour available (degenerate axis).
    None,
    /// One-sided copy of the nearest neighbour.
    Copy,
    /// Two-point linear interpolation.
    Linear,
    /// Four-point cubic interpolation.
    Cubic,
}

/// Predicts the value at `coord` by interpolating along a single axis with
/// stride `s`, confined to the block tile and the domain.
fn predict_1d(
    recon: &[f32],
    dims: Dims,
    coord: (usize, usize, usize),
    axis: usize,
    s: usize,
    spline: Spline,
    block_span: [usize; 3],
) -> (f32, Order) {
    let (z, y, x) = coord;
    let c = [z, y, x][axis] as isize;
    let extent = dims.extent(axis) as isize;
    let span = block_span[axis] as isize;
    // Tile bounds along this axis (inclusive).
    let lo = (c / span) * span;
    let hi = (lo + span).min(extent - 1);
    let s = s as isize;

    let value_at = |offset: isize| -> Option<f32> {
        let n = c + offset;
        if n < lo || n > hi {
            return None;
        }
        let (mut zz, mut yy, mut xx) = (z, y, x);
        match axis {
            0 => zz = n as usize,
            1 => yy = n as usize,
            _ => xx = n as usize,
        }
        Some(recon[dims.index(zz, yy, xx)])
    };

    let inner_lo = value_at(-s);
    let inner_hi = value_at(s);
    match (inner_lo, inner_hi) {
        (Some(a), Some(b)) => {
            if spline == Spline::Cubic {
                if let (Some(aa), Some(bb)) = (value_at(-3 * s), value_at(3 * s)) {
                    // Four-point cubic spline through equally spaced samples.
                    let pred = (-aa + 9.0 * a + 9.0 * b - bb) / 16.0;
                    return (pred, Order::Cubic);
                }
            }
            ((a + b) * 0.5, Order::Linear)
        }
        (Some(a), None) => (a, Order::Copy),
        (None, Some(b)) => (b, Order::Copy),
        (None, None) => (0.0, Order::None),
    }
}

/// Predicts the value at `coord` by interpolating along `axes` with stride
/// `s`, averaging only the predictions of the highest available order
/// (§5.1.2: a cubic prediction is never diluted by a linear one).
pub fn predict_point(
    recon: &[f32],
    dims: Dims,
    coord: (usize, usize, usize),
    axes: &[usize],
    s: usize,
    spline: Spline,
    block_span: [usize; 3],
) -> f32 {
    let mut best_order = Order::None;
    let mut preds: [(f32, Order); 3] = [(0.0, Order::None); 3];
    let mut n = 0;
    for &axis in axes {
        if dims.extent(axis) <= 1 {
            continue;
        }
        let (p, o) = predict_1d(recon, dims, coord, axis, s, spline, block_span);
        preds[n] = (p, o);
        n += 1;
        if o > best_order {
            best_order = o;
        }
    }
    if best_order == Order::None {
        return 0.0;
    }
    let mut sum = 0.0f32;
    let mut count = 0usize;
    for &(p, o) in &preds[..n] {
        if o == best_order {
            sum += p;
            count += 1;
        }
    }
    sum / count as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use szhi_ndgrid::Grid;

    fn coverage_of(dims: Dims, anchor_stride: usize, scheme: Scheme) -> Vec<u32> {
        let mut count = vec![0u32; dims.len()];
        // Anchors.
        for z in 0..dims.nz() {
            for y in 0..dims.ny() {
                for x in 0..dims.nx() {
                    let anchor_z = dims.nz() == 1 || z % anchor_stride == 0;
                    let anchor_y = dims.ny() == 1 || y % anchor_stride == 0;
                    let anchor_x = dims.nx() == 1 || x % anchor_stride == 0;
                    if anchor_z && anchor_y && anchor_x {
                        count[dims.index(z, y, x)] += 1;
                    }
                }
            }
        }
        let levels = anchor_stride.trailing_zeros() as usize;
        for level in (1..=levels).rev() {
            let s = 1usize << (level - 1);
            for step in steps(dims, s, scheme) {
                for (z, y, x) in step.targets(dims) {
                    count[dims.index(z, y, x)] += 1;
                }
            }
        }
        count
    }

    #[test]
    fn every_point_is_covered_exactly_once() {
        for dims in [
            Dims::d3(33, 20, 17),
            Dims::d3(16, 16, 16),
            Dims::d2(40, 50),
            Dims::d1(100),
            Dims::d3(5, 3, 70),
        ] {
            for scheme in [Scheme::DimSequence, Scheme::MultiDim] {
                for stride in [8usize, 16] {
                    let cov = coverage_of(dims, stride, scheme);
                    for (i, &c) in cov.iter().enumerate() {
                        assert_eq!(
                            c, 1,
                            "point {i} of {dims} covered {c} times (stride {stride}, {scheme:?})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn linear_prediction_is_exact_on_linear_data() {
        let dims = Dims::d1(65);
        let g = Grid::from_fn(dims, |_, _, x| 3.0 * x as f32 + 1.0);
        for s in [1usize, 2, 4, 8] {
            let pred = predict_point(
                g.as_slice(),
                dims,
                (0, 0, 16),
                &[2],
                s,
                Spline::Linear,
                [64, 64, 64],
            );
            assert!((pred - g.get(0, 0, 16)).abs() < 1e-4, "stride {s}: {pred}");
        }
    }

    #[test]
    fn cubic_prediction_is_exact_on_cubic_data() {
        let dims = Dims::d1(129);
        let g = Grid::from_fn(dims, |_, _, x| {
            let t = x as f32 / 16.0;
            t * t * t - 2.0 * t * t + 0.5 * t + 3.0
        });
        // Interior point with all four neighbours available inside the block.
        let pred = predict_point(
            g.as_slice(),
            dims,
            (0, 0, 64),
            &[2],
            4,
            Spline::Cubic,
            [128, 128, 128],
        );
        assert!(
            (pred - g.get(0, 0, 64)).abs() < 1e-3,
            "cubic not exact: {pred} vs {}",
            g.get(0, 0, 64)
        );
    }

    #[test]
    fn cubic_beats_linear_on_curved_data() {
        let dims = Dims::d1(129);
        let g = Grid::from_fn(dims, |_, _, x| ((x as f32) * 0.1).sin());
        let target = 64;
        let exact = g.get(0, 0, target);
        let lin = predict_point(
            g.as_slice(),
            dims,
            (0, 0, target),
            &[2],
            8,
            Spline::Linear,
            [128, 128, 128],
        );
        let cub = predict_point(
            g.as_slice(),
            dims,
            (0, 0, target),
            &[2],
            8,
            Spline::Cubic,
            [128, 128, 128],
        );
        assert!(
            (cub - exact).abs() < (lin - exact).abs(),
            "cubic {cub} should beat linear {lin} (exact {exact})"
        );
    }

    #[test]
    fn block_confinement_restricts_neighbours() {
        // With a span of 16, the prediction of x=24 at stride 8 may use x=16
        // and x=32 (wait: 32 > hi=32? hi = lo+span = 16+16 = 32, inclusive) but
        // never x=0 or x=48.
        let dims = Dims::d1(64);
        let mut values = vec![0.0f32; 64];
        values[16] = 1.0;
        values[32] = 3.0;
        values[0] = 100.0;
        values[48] = 100.0;
        let pred = predict_point(
            &values,
            dims,
            (0, 0, 24),
            &[2],
            8,
            Spline::Cubic,
            [16, 16, 16],
        );
        // Only the linear neighbours are inside the tile → (1 + 3) / 2.
        assert!(
            (pred - 2.0).abs() < 1e-6,
            "confined prediction should be 2.0, got {pred}"
        );
    }

    #[test]
    fn multidim_averages_only_highest_order() {
        // Along x the point has 4 neighbours (cubic); along y only 2 (linear).
        // The result must equal the pure-x cubic prediction.
        let dims = Dims::d2(3, 65);
        let g = Grid::from_fn(dims, |_, y, x| (x as f32 * 0.17).sin() + y as f32 * 10.0);
        let coord = (0usize, 1usize, 32usize);
        let only_x = predict_point(
            g.as_slice(),
            dims,
            coord,
            &[2],
            1,
            Spline::Cubic,
            [64, 64, 64],
        );
        let joint = predict_point(
            g.as_slice(),
            dims,
            coord,
            &[1, 2],
            1,
            Spline::Cubic,
            [64, 64, 64],
        );
        assert_eq!(only_x, joint);
    }

    #[test]
    fn degenerate_axes_are_skipped() {
        let dims = Dims::d2(4, 4);
        let g = Grid::from_fn(dims, |_, y, x| (y + x) as f32);
        // Interpolating "along z" on 2D data must not panic and falls back to
        // the remaining axes.
        let p = predict_point(
            g.as_slice(),
            dims,
            (0, 1, 1),
            &[0, 1, 2],
            1,
            Spline::Cubic,
            [16, 16, 16],
        );
        assert!(p.is_finite());
    }
}
